"""Ablations of the design choices DESIGN.md calls out.

1. software pipelining on/off (the Ladder gap),
2. the global layout transform on/off (the Triton gap),
3. vectorized PRMT/LOP3 casting vs the bitwise fallback,
4. split-k on/off for decode shapes.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from helpers import emit_table, fmt

from repro.autotune import config_latency_estimate
from repro.compiler import cast_cost_per_element, fallback_load_plan
from repro.dtypes import dtype_from_name, float16
from repro.kernels import MatmulConfig
from repro.perf import ALL_SYSTEMS, L40S, MatmulWorkload, Tilus, Triton

W_DECODE = MatmulWorkload.of(1, 57344, 8192, "u4")


def ablation_rows():
    rows = []
    # 1. Pipelining: same config with 1 vs 3 stages.
    base = MatmulConfig(16, 64, 64, num_stages=1)
    piped = MatmulConfig(16, 64, 64, num_stages=3)
    t_serial = config_latency_estimate(W_DECODE, base, L40S)
    t_piped = config_latency_estimate(W_DECODE, piped, L40S)
    rows.append(["software pipelining", fmt(t_serial * 1e6), fmt(t_piped * 1e6),
                 fmt(t_serial / t_piped, 2) + "x"])

    # 2. Layout transform: Tilus vs a Triton-style conversion path.
    tilus = ALL_SYSTEMS["tilus"]
    triton_like = Triton(mem_efficiency=Tilus().mem_efficiency)
    t_with = tilus.matmul_latency(W_DECODE, L40S)
    t_without = triton_like.matmul_latency(W_DECODE, L40S)
    rows.append(["global layout transform", fmt(t_without * 1e6), fmt(t_with * 1e6),
                 fmt(t_without / t_with, 2) + "x"])

    # 3. Vectorized cast vs fallback bitwise extraction.
    u5 = dtype_from_name("u5")
    vec_ops = cast_cost_per_element(u5, float16)
    fallback_ops = sum(
        len(fallback_load_plan(5, i)) for i in range(8)
    ) / 8 + 1  # extraction + convert per element
    rows.append(["vectorized cast (u5)", fmt(fallback_ops, 2), fmt(vec_ops, 2),
                 fmt(fallback_ops / vec_ops, 2) + "x"])

    # 4. split-k for decode.
    no_split = MatmulConfig(16, 64, 64, num_stages=2, split_k=1)
    split = MatmulConfig(16, 64, 64, num_stages=2, split_k=4)
    t_no = config_latency_estimate(W_DECODE, no_split, L40S)
    t_yes = config_latency_estimate(W_DECODE, split, L40S)
    rows.append(["k-dimension split (m=1)", fmt(t_no * 1e6), fmt(t_yes * 1e6),
                 fmt(t_no / t_yes, 2) + "x"])
    return rows


def test_ablations(benchmark):
    rows = benchmark(ablation_rows)
    emit_table("ablations", ["design choice", "without", "with", "gain"], rows)
    gains = {r[0]: float(r[3].rstrip("x")) for r in rows}
    assert gains["software pipelining"] > 1.2
    assert gains["global layout transform"] > 1.3
    assert gains["vectorized cast (u5)"] > 1.5
