"""Autotuning behaviour (paper Section 9.3): ~200 configurations per
operator, searched once and cached."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from helpers import emit_table

from repro.autotune import Autotuner, enumerate_valid_configs
from repro.perf import L40S, MatmulWorkload

OPERATORS = [
    (1, 8192, 8192, "u4"),
    (16, 8192, 28672, "u4"),
    (16, 57344, 8192, "f6"),
    (4096, 8192, 8192, "u4"),
    (16, 57344, 8192, "u3"),
]


def tune_all():
    tuner = Autotuner(L40S)
    rows = []
    for m, n, k, w in OPERATORS:
        workload = MatmulWorkload.of(m, n, k, w)
        result = tuner.tune(workload)
        rows.append(
            [
                f"m{m}-n{n}-k{k}-{w}",
                result.num_candidates,
                result.config.describe(),
                f"{result.estimated_latency * 1e6:.1f}",
            ]
        )
    return rows, tuner


def test_autotune_search(benchmark):
    rows, _ = benchmark(tune_all)
    emit_table("autotune", ["operator", "candidates", "best config", "est us"], rows)
    for row in rows:
        assert row[1] >= 100  # the paper's "~200 configurations" order


def test_autotune_cache_amortizes(benchmark):
    tuner = Autotuner(L40S)
    w = MatmulWorkload.of(16, 8192, 8192, "u4")
    tuner.tune(w)  # warm

    result = benchmark(tuner.tune, w)  # cached path
    assert result.config is tuner.tune(w).config


def test_enumeration_speed(benchmark):
    w = MatmulWorkload.of(16, 8192, 8192, "u4")
    configs = benchmark(enumerate_valid_configs, w, L40S)
    assert len(configs) > 100
