"""Continuous-batching serving throughput (extends Figure 12's story).

Serves a burst of requests against Gemma-2-9B on the L40S with
continuous batching and compares tokens/s and mean latency across
vLLM-f16, Ladder-u4 and Tilus-u4.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from helpers import emit_table, fmt

from repro.dtypes import float16, uint4
from repro.llm import (
    ContinuousBatchingSimulator,
    GEMMA2_9B,
    ServingConfig,
    uniform_trace,
)
from repro.perf import L40S

TRACE = uniform_trace(8, interarrival_s=0.0, prompt_tokens=256, output_tokens=48)
SYSTEMS = [("vllm", float16), ("ladder", uint4), ("tilus", uint4)]


def run_all():
    rows = []
    results = {}
    for sysname, dtype in SYSTEMS:
        sim = ContinuousBatchingSimulator(
            GEMMA2_9B, ServingConfig(sysname, dtype, L40S), max_batch=8
        )
        outcome = sim.run(TRACE)
        results[sysname] = outcome
        rows.append(
            [
                f"{sysname}-{dtype.name}",
                fmt(outcome.throughput_tokens_per_s, 0),
                fmt(outcome.mean_ttft_s() * 1e3, 1),
                fmt(outcome.mean_latency_s() * 1e3, 1),
                fmt(outcome.total_time_s * 1e3, 1),
            ]
        )
    return rows, results


def test_batching_throughput(benchmark):
    rows, results = benchmark(run_all)
    emit_table(
        "batching",
        ["system", "tokens/s", "mean TTFT ms", "mean latency ms", "trace ms"],
        rows,
    )
    # Tilus u4 serves the decode-heavy trace faster than both baselines.
    assert (
        results["tilus"].throughput_tokens_per_s
        > results["ladder"].throughput_tokens_per_s
    )
    assert (
        results["tilus"].throughput_tokens_per_s
        > results["vllm"].throughput_tokens_per_s
    )
    # Everyone finishes all 8 requests.
    for outcome in results.values():
        assert len(outcome.results) == 8
