"""Figure 1: the weight-loading pipelines of Triton, Ladder and Tilus.

Regenerates the stage tables of the paper's motivating figure and
quantifies each pipeline's serial (non-overlapped) cost per weight tile.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from helpers import emit_table

from repro.dtypes import uint4
from repro.perf import L40S, PIPELINES

TILE_ELEMS = 64 * 64  # one staged weight tile


def pipeline_rows() -> list[list[str]]:
    rows = []
    for name, factory in PIPELINES.items():
        pipeline = factory(TILE_ELEMS, uint4)
        for idx, stage in enumerate(pipeline.stages, 1):
            rows.append(
                [
                    name,
                    str(idx),
                    stage.name,
                    f"{stage.src}->{stage.dst}",
                    "yes" if stage.pipelined else "NO",
                    f"{stage.bytes_moved:.0f}",
                    "<-- bottleneck" if stage.is_bottleneck else "",
                ]
            )
        rows.append(
            [
                name,
                "",
                "serial bytes on critical path",
                "",
                "",
                f"{pipeline.serial_bytes():.0f}",
                f"{pipeline.critical_time(L40S) * 1e9:.0f} ns/tile",
            ]
        )
    return rows


def test_fig01_pipeline_stages(benchmark):
    rows = benchmark(pipeline_rows)
    emit_table(
        "fig01_pipelines",
        ["system", "step", "stage", "scopes", "overlaps", "bytes", "note"],
        rows,
    )
    serial = {
        name: PIPELINES[name](TILE_ELEMS, uint4).serial_bytes()
        for name in PIPELINES
    }
    # Tilus: zero serial work; Ladder: everything serial; Triton: the
    # conversion's two f16 passes.
    assert serial["tilus"] == 0
    assert serial["triton"] == 2 * TILE_ELEMS * 2
    assert serial["ladder"] > serial["triton"]


def test_fig01_critical_times(benchmark):
    def times():
        return {
            name: PIPELINES[name](TILE_ELEMS, uint4).critical_time(L40S)
            for name in PIPELINES
        }

    t = benchmark(times)
    assert t["tilus"] < t["triton"] < t["ladder"] * 10  # tilus strictly best
    assert t["tilus"] == 0.0
