"""Figure 10: speedup of low-precision kernels vs cuBLAS f16.

Workloads BS-N-K are Llama-3.3-70B matmuls at batch sizes 1 and 16;
data types u8, f6 (e3m2), u4, i4, u2, u1; systems Triton, QuantLLM,
Ladder, Marlin and Tilus on the L40S model.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from helpers import emit_table, fmt

from repro.perf import ALL_SYSTEMS, L40S, MatmulWorkload, speedup_vs_cublas

SHAPES = [(8192, 8192), (8192, 28672), (57344, 8192)]
DTYPES = ["u8", "f6", "u4", "i4", "u2", "u1"]
SYSTEMS = ["triton", "quantllm", "ladder", "marlin", "tilus"]


def figure10_rows(batch: int) -> list[list[str]]:
    rows = []
    for sysname in SYSTEMS:
        system = ALL_SYSTEMS[sysname]
        for n, k in SHAPES:
            row = [system.display, f"BS{batch}-{n}-{k}"]
            for wname in DTYPES:
                w = MatmulWorkload.of(batch, n, k, wname)
                if system.supports(w, L40S):
                    row.append(fmt(speedup_vs_cublas(system, w, L40S)))
                else:
                    row.append("-")
            rows.append(row)
    return rows


def test_fig10_bs1(benchmark):
    rows = benchmark(figure10_rows, 1)
    emit_table("fig10_bs1", ["system", "workload", *DTYPES], rows)
    tilus_rows = [r for r in rows if "Tilus" in r[0]]
    # Shape checks from the paper: u1 > u2 > u4 > f6 > u8 > 1.
    for row in tilus_rows:
        values = [float(v) for v in row[2:]]
        assert values[5] > values[4] > values[2] > values[1] > values[0] > 1.0


def test_fig10_bs16(benchmark):
    rows = benchmark(figure10_rows, 16)
    emit_table("fig10_bs16", ["system", "workload", *DTYPES], rows)
    # Ladder inverts below 1.0 at BS=16 (slower than cuBLAS f16).
    ladder_rows = [r for r in rows if r[0] == "Ladder"]
    for row in ladder_rows:
        assert float(row[4]) < 1.0  # u4 column


def test_fig10_tilus_wins_everywhere(benchmark):
    def check():
        wins = 0
        for batch in (1, 16):
            for n, k in SHAPES:
                for wname in DTYPES:
                    w = MatmulWorkload.of(batch, n, k, wname)
                    t = ALL_SYSTEMS["tilus"].matmul_latency(w, L40S)
                    for sysname in ("triton", "quantllm", "ladder", "marlin"):
                        system = ALL_SYSTEMS[sysname]
                        if system.supports(w, L40S):
                            assert system.matmul_latency(w, L40S) >= t
                            wins += 1
        return wins

    wins = benchmark(check)
    assert wins > 50
