"""Figure 11: the full quantized-dtype spectrum heatmap.

Speedup of Tilus over cuBLAS f16 for every weight type — uint1..8,
int2..8, float3..8 — at BS=16, K=8192, N=57344 (the paper's setting).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from helpers import emit_table, fmt

from repro.dtypes import all_weight_dtypes
from repro.perf import ALL_SYSTEMS, L40S, MatmulWorkload, speedup_vs_cublas
from repro.perf.workload import MatmulWorkload as WL

M, N, K = 16, 57344, 8192

# Paper Figure 11 reference values (uint row / int row / float row).
PAPER = {
    "uint": {8: 2.1, 7: 2.4, 6: 2.8, 5: 3.3, 4: 3.8, 3: 5.0, 2: 6.3, 1: 9.4},
    "int": {8: 2.2, 7: 2.4, 6: 2.8, 5: 3.3, 4: 3.8, 3: 5.0, 2: 6.9},
    "float": {8: 2.2, 7: 2.4, 6: 2.8, 5: 3.3, 4: 4.0, 3: 5.0},
}


def spectrum() -> dict[str, dict[int, float]]:
    tilus = ALL_SYSTEMS["tilus"]
    out: dict[str, dict[int, float]] = {"uint": {}, "int": {}, "float": {}}
    for dtype in all_weight_dtypes():
        kind = "float" if dtype.is_float else ("int" if dtype.is_signed else "uint")
        w = MatmulWorkload(m=M, n=N, k=K, weight_dtype=dtype)
        out[kind][dtype.nbits] = speedup_vs_cublas(tilus, w, L40S)
    return out


def test_fig11_spectrum(benchmark):
    data = benchmark(spectrum)
    rows = []
    for kind in ("uint", "int", "float"):
        row = [kind]
        for bits in range(8, 0, -1):
            ours = data[kind].get(bits)
            ref = PAPER[kind].get(bits)
            cell = f"{fmt(ours)}" + (f" ({ref})" if ref else "") if ours else "-"
            row.append(cell)
        rows.append(row)
    emit_table("fig11_spectrum", ["kind", *[f"{b}b" for b in range(8, 0, -1)]], rows)

    # Shape assertions: monotone in width, every cell within 35% of paper.
    for kind, cells in data.items():
        widths = sorted(cells)
        values = [cells[w] for w in widths]
        assert values == sorted(values, reverse=True), kind
        for bits, value in cells.items():
            ref = PAPER[kind][bits]
            assert abs(value - ref) / ref < 0.35, (kind, bits, value, ref)


def test_fig11_all_21_types_supported(benchmark):
    def count_supported():
        tilus = ALL_SYSTEMS["tilus"]
        return sum(
            tilus.supports(WL(m=M, n=N, k=K, weight_dtype=d), L40S)
            for d in all_weight_dtypes()
        )

    assert benchmark(count_supported) == 21
