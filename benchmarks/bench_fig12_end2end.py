"""Figure 12: end-to-end LLM serving latency on the L40S.

Three models x three stages (decode@1, decode@16, prefill@2048) x the
serving systems vLLM (f16), Ladder and Tilus with u8/u4/u2 weights.
OOM cells reproduce the paper's out-of-memory annotations.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from helpers import emit_table

from repro.dtypes import float16, uint2, uint4, uint8
from repro.llm import MODELS, ServingConfig, simulate_cell
from repro.perf import L40S

COLUMNS = [
    ("vllm", float16),
    ("ladder", uint8),
    ("tilus", uint8),
    ("ladder", uint4),
    ("tilus", uint4),
    ("ladder", uint2),
    ("tilus", uint2),
]
STAGES = [("decode", 1), ("decode", 16), ("prefill", 2048)]


def figure12() -> list[list[str]]:
    rows = []
    for model in MODELS.values():
        for stage, tokens in STAGES:
            row = [model.name, f"{stage}@{tokens}"]
            for sysname, dtype in COLUMNS:
                cell = simulate_cell(model, ServingConfig(sysname, dtype, L40S), stage, tokens)
                row.append(f"{cell.latency_ms:.1f}" if cell.ok else cell.error)
            rows.append(row)
    return rows


def test_fig12_end2end(benchmark):
    rows = benchmark(figure12)
    header = ["model", "stage", *[f"{s}-{d.name}" for s, d in COLUMNS]]
    emit_table("fig12_end2end", header, rows)

    table = {(r[0], r[1]): r[2:] for r in rows}
    # OOM pattern of the paper's figure.
    assert table[("Qwen2.5-32B", "decode@1")][0] == "OOM"      # vLLM f16
    assert table[("Llama-3.3-70B", "decode@1")][0] == "OOM"    # vLLM f16
    assert table[("Llama-3.3-70B", "decode@1")][1] == "OOM"    # ladder u8
    assert table[("Llama-3.3-70B", "decode@1")][2] == "OOM"    # tilus u8
    assert table[("Gemma-2-9B", "decode@1")][0] != "OOM"

    # Decode@16: Ladder u4 slower than vLLM, Tilus u4 much faster.
    gemma16 = table[("Gemma-2-9B", "decode@16")]
    assert float(gemma16[3]) > float(gemma16[0])   # ladder u4 > vllm
    assert float(gemma16[4]) < float(gemma16[0])   # tilus u4 < vllm

    # Prefill: quantized paths slower than f16, Tilus ahead of Ladder.
    gp = table[("Gemma-2-9B", "prefill@2048")]
    assert float(gp[0]) < float(gp[4]) < float(gp[3])


def test_fig12_tilus_vs_ladder_every_cell(benchmark):
    def check():
        count = 0
        for model in MODELS.values():
            for stage, tokens in STAGES:
                for dtype in (uint8, uint4, uint2):
                    t = simulate_cell(model, ServingConfig("tilus", dtype, L40S), stage, tokens)
                    l = simulate_cell(model, ServingConfig("ladder", dtype, L40S), stage, tokens)
                    if t.ok and l.ok:
                        assert t.latency_ms <= l.latency_ms
                        count += 1
        return count

    assert benchmark(check) >= 18
