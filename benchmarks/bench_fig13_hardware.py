"""Figure 13: Qwen2.5-32B across NVIDIA A100, L40S and H100.

vLLM (f16) vs Ladder (u4) vs Tilus (u4) on decode@1, decode@16 and
prefill@2048.  Reproduces the OOM cell (vLLM on the 48 GiB L40S) and the
ERR cell (Ladder's illegal instruction on Hopper).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from helpers import emit_table

from repro.dtypes import float16, uint4
from repro.llm import QWEN2_5_32B, ServingConfig, simulate_cell
from repro.perf import A100, H100, L40S

GPUS = [A100, L40S, H100]
STAGES = [("decode", 1), ("decode", 16), ("prefill", 2048)]
SYSTEMS = [("vllm", float16), ("ladder", uint4), ("tilus", uint4)]


def figure13() -> list[list[str]]:
    rows = []
    for gpu in GPUS:
        for stage, tokens in STAGES:
            row = [gpu.name, f"{stage}@{tokens}"]
            for sysname, dtype in SYSTEMS:
                cell = simulate_cell(
                    QWEN2_5_32B, ServingConfig(sysname, dtype, gpu), stage, tokens
                )
                row.append(f"{cell.latency_ms:.0f}" if cell.ok else cell.error)
            rows.append(row)
    return rows


def test_fig13_hardware(benchmark):
    rows = benchmark(figure13)
    emit_table("fig13_hardware", ["gpu", "stage", "vLLM-f16", "Ladder-u4", "Tilus-u4"], rows)

    table = {(r[0], r[1]): r[2:] for r in rows}
    # ERR on Hopper for Ladder, every stage.
    for stage, tokens in STAGES:
        assert table[("H100", f"{stage}@{tokens}")][1] == "ERR"
    # OOM for vLLM f16 on the 48 GiB L40S only.
    assert table[("L40S", "decode@1")][0] == "OOM"
    assert table[("A100", "decode@1")][0] != "OOM"
    assert table[("H100", "decode@1")][0] != "OOM"
    # Tilus runs everywhere and beats Ladder wherever Ladder runs.
    for gpu in GPUS:
        for stage, tokens in STAGES:
            cells = table[(gpu.name, f"{stage}@{tokens}")]
            assert cells[2] not in ("OOM", "ERR")
            if cells[1] not in ("OOM", "ERR"):
                assert float(cells[2]) < float(cells[1])


def test_fig13_decode_scales_with_bandwidth(benchmark):
    def decode_latencies():
        return {
            gpu.name: simulate_cell(
                QWEN2_5_32B, ServingConfig("tilus", uint4, gpu), "decode", 1
            ).latency_ms
            for gpu in GPUS
        }

    lat = benchmark(decode_latencies)
    assert lat["H100"] < lat["A100"] < lat["L40S"]
