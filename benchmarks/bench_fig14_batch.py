"""Figure 14: speedup of quantized matmuls across batch sizes.

Llama-3.3-70B shape (k=8192, n=57344) with f6 and u4 weights; decode
batches 1/4/8/16 and prefill batches 4096/8192/12288.  The headline
shape: large speedups at decode, convergence toward parity at prefill.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from helpers import emit_table, fmt

from repro.perf import ALL_SYSTEMS, L40S, MatmulWorkload, speedup_vs_cublas

N, K = 57344, 8192
DECODE_BATCHES = [1, 4, 8, 16]
PREFILL_BATCHES = [4096, 8192, 12288]
CURVES = [
    ("triton", "u4"),
    ("quantllm", "f6"),
    ("ladder", "u4"),
    ("tilus", "f6"),
    ("tilus", "u4"),
]


def figure14() -> list[list[str]]:
    rows = []
    for sysname, wname in CURVES:
        system = ALL_SYSTEMS[sysname]
        row = [f"{system.display} ({wname})"]
        for m in DECODE_BATCHES + PREFILL_BATCHES:
            w = MatmulWorkload.of(m, N, K, wname)
            row.append(
                fmt(speedup_vs_cublas(system, w, L40S), 2)
                if system.supports(w, L40S)
                else "-"
            )
        rows.append(row)
    return rows


def test_fig14_batch_sweep(benchmark):
    rows = benchmark(figure14)
    header = ["system", *[str(b) for b in DECODE_BATCHES + PREFILL_BATCHES]]
    emit_table("fig14_batch", header, rows)

    tilus_u4 = next(r for r in rows if r[0].startswith("Tilus") and "u4" in r[0])
    values = [float(v) for v in tilus_u4[1:]]
    # Decode: >3x; prefill: near parity; monotone decay across the sweep.
    assert all(v > 3.0 for v in values[:4])
    assert all(0.8 <= v <= 1.2 for v in values[4:])
    assert values == sorted(values, reverse=True)


def test_fig14_tilus_leads_at_every_batch(benchmark):
    def check():
        count = 0
        for m in DECODE_BATCHES + PREFILL_BATCHES:
            for sysname, wname in CURVES:
                if sysname == "tilus":
                    continue
                system = ALL_SYSTEMS[sysname]
                w = MatmulWorkload.of(m, N, K, wname)
                if not system.supports(w, L40S):
                    continue
                tilus_lat = ALL_SYSTEMS["tilus"].matmul_latency(w, L40S)
                assert system.matmul_latency(w, L40S) >= tilus_lat, (sysname, m)
                count += 1
        return count

    assert benchmark(check) >= 15
