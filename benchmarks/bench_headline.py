"""Headline speedups (paper Abstract / Section 1): geomean improvement of
Tilus over Triton (1.75x), Ladder (2.61x), QuantLLM (1.29x), Marlin
(1.03x) across the Figure-10 workload population."""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from helpers import emit_table, fmt

from repro.perf import ALL_SYSTEMS, L40S, MatmulWorkload

SHAPES = [(8192, 8192), (8192, 28672), (57344, 8192)]
DTYPES = ["u8", "f6", "u4", "i4", "u2", "u1"]
PAPER = {"triton": 1.75, "ladder": 2.61, "quantllm": 1.29, "marlin": 1.03}
TOLERANCE = {"triton": 0.15, "ladder": 0.60, "quantllm": 0.15, "marlin": 0.10}


def headline() -> dict[str, float]:
    tilus = ALL_SYSTEMS["tilus"]
    out = {}
    for base in PAPER:
        system = ALL_SYSTEMS[base]
        ratios = []
        for m in (1, 16):
            for n, k in SHAPES:
                for wname in DTYPES:
                    w = MatmulWorkload.of(m, n, k, wname)
                    if system.supports(w, L40S):
                        ratios.append(
                            system.matmul_latency(w, L40S) / tilus.matmul_latency(w, L40S)
                        )
        out[base] = float(np.exp(np.mean(np.log(ratios))))
    return out


def test_headline_geomeans(benchmark):
    result = benchmark(headline)
    rows = [
        [base, fmt(result[base], 2), fmt(PAPER[base], 2),
         fmt(abs(result[base] - PAPER[base]) / PAPER[base] * 100, 0) + "%"]
        for base in PAPER
    ]
    emit_table("headline", ["baseline", "ours", "paper", "deviation"], rows)
    for base, target in PAPER.items():
        assert abs(result[base] - target) <= target * TOLERANCE[base], base
    # Ordering preserved: Ladder worst, Marlin closest.
    assert result["ladder"] > result["triton"] > result["quantllm"] > result["marlin"]
