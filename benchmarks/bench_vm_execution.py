"""Microbenchmarks of the reproduction's own machinery: VM kernel
execution throughput, layout algebra, transform, and compilation speed.

These are honest pytest-benchmark measurements of this library (the
figures above are analytical); they guard against performance regressions
in the interpreter and compiler.
"""

import numpy as np

from repro.dtypes import float16, int6, uint8
from repro.kernels import (
    MatmulConfig,
    matmul_layouts,
    quantized_matmul_program,
)
from repro.compiler import compile_program
from repro.layout import local, mma_m16n8k16, spatial
from repro.quant import QuantScheme, quantize_weight, transform_weight
from repro.vm import Interpreter


def _setup_matmul(m=32, n=16, k=64, stages=1):
    scheme = QuantScheme(int6, group_size=32)
    cfg = MatmulConfig(16, 8, 16, num_stages=stages)
    rng = np.random.default_rng(0)
    a = float16.quantize(rng.standard_normal((m, k)))
    q, scales = quantize_weight(rng.standard_normal((k, n)), scheme)
    lay = matmul_layouts(cfg, int6)
    packed = transform_weight(q, int6, lay.b_warp)
    prog = quantized_matmul_program(m, n, k, float16, scheme, cfg)
    interp = Interpreter()
    args = [
        interp.upload(a, float16),
        interp.upload(packed, uint8),
        interp.upload(float16.quantize(scales), float16),
        interp.alloc_output([m, n], float16),
    ]
    return interp, prog, args


def test_vm_matmul_direct(benchmark):
    interp, prog, args = _setup_matmul(stages=1)
    benchmark(interp.launch, prog, args)


def test_vm_matmul_pipelined(benchmark):
    interp, prog, args = _setup_matmul(stages=2)
    benchmark(interp.launch, prog, args)


def test_layout_compose(benchmark):
    a = local(2, 1)
    b = spatial(8, 4)
    c = local(1, 2)
    benchmark(lambda: a.compose(b).compose(c))


def test_layout_map_batch(benchmark):
    layout = mma_m16n8k16().a_layout
    t = np.repeat(np.arange(32), 8)
    i = np.tile(np.arange(8), 32)
    benchmark(layout.map_batch, t, i)


def test_layout_divide(benchmark):
    from repro.layout import divide

    h = local(2, 1).spatial(8, 4).local(1, 2)
    g = local(1, 2)
    benchmark(divide, h, g)


def test_weight_transform_host(benchmark):
    lay = matmul_layouts(MatmulConfig(16, 8, 16), int6)
    q = np.random.default_rng(0).integers(-32, 32, size=(128, 64))
    benchmark(transform_weight, q, int6, lay.b_warp)


def test_compile_pipeline(benchmark):
    prog = quantized_matmul_program(
        64, 32, 64, float16, QuantScheme(int6, 32),
        MatmulConfig(32, 16, 32, 2, 2, num_stages=2),
    )
    benchmark(compile_program, prog)
