"""Microbenchmarks of the reproduction's own machinery: VM kernel
execution throughput (sequential vs grid-vectorized batched engine),
kernel-specialization-cache behaviour, layout algebra, transform, and
compilation speed.

These are honest pytest-benchmark measurements of this library (the
figures above are analytical); they guard against performance regressions
in the interpreter and compiler.

Run ``python benchmarks/bench_vm_execution.py --quick`` for a fast
self-checking summary: it measures the batched-vs-sequential speedup on a
multi-block program (asserting the >= 3x target) and reports the
specialization cache hit rate of a repeated-launch scenario.
"""

import time

import numpy as np

from repro.dtypes import float16, int6, uint8
from repro.kernels import (
    MatmulConfig,
    matmul_layouts,
    quantized_matmul_program,
)
from repro.compiler import compile_program
from repro.lang import ProgramBuilder, pointer
from repro.layout import local, mma_m16n8k16, spatial
from repro.quant import QuantScheme, quantize_weight, transform_weight
from repro.runtime import Runtime
from repro.vm import BatchedExecutor, Interpreter


def _setup_matmul(m=32, n=16, k=64, stages=1):
    scheme = QuantScheme(int6, group_size=32)
    cfg = MatmulConfig(16, 8, 16, num_stages=stages)
    rng = np.random.default_rng(0)
    a = float16.quantize(rng.standard_normal((m, k)))
    q, scales = quantize_weight(rng.standard_normal((k, n)), scheme)
    lay = matmul_layouts(cfg, int6)
    packed = transform_weight(q, int6, lay.b_warp)
    prog = quantized_matmul_program(m, n, k, float16, scheme, cfg)
    interp = Interpreter()
    args = [
        interp.upload(a, float16),
        interp.upload(packed, uint8),
        interp.upload(float16.quantize(scales), float16),
        interp.alloc_output([m, n], float16),
    ]
    return interp, prog, args


def test_vm_matmul_direct(benchmark):
    interp, prog, args = _setup_matmul(stages=1)
    benchmark(interp.launch, prog, args)


def test_vm_matmul_pipelined(benchmark):
    interp, prog, args = _setup_matmul(stages=2)
    benchmark(interp.launch, prog, args)


def test_layout_compose(benchmark):
    a = local(2, 1)
    b = spatial(8, 4)
    c = local(1, 2)
    benchmark(lambda: a.compose(b).compose(c))


def test_layout_map_batch(benchmark):
    layout = mma_m16n8k16().a_layout
    t = np.repeat(np.arange(32), 8)
    i = np.tile(np.arange(8), 32)
    benchmark(layout.map_batch, t, i)


def test_layout_divide(benchmark):
    from repro.layout import divide

    h = local(2, 1).spatial(8, 4).local(1, 2)
    g = local(1, 2)
    benchmark(divide, h, g)


def test_weight_transform_host(benchmark):
    lay = matmul_layouts(MatmulConfig(16, 8, 16), int6)
    q = np.random.default_rng(0).integers(-32, 32, size=(128, 64))
    benchmark(transform_weight, q, int6, lay.b_warp)


def test_compile_pipeline(benchmark):
    prog = quantized_matmul_program(
        64, 32, 64, float16, QuantScheme(int6, 32),
        MatmulConfig(32, 16, 32, 2, 2, num_stages=2),
    )
    benchmark(compile_program, prog)


# ---------------------------------------------------------------------------
# Batched engine vs sequential interpreter
# ---------------------------------------------------------------------------


def _multiblock_program(gb=8, gw=8, th=8, tw=4, steps=4):
    """An elementwise kernel over a gb*gw grid: out = (a * 2 + 1) summed
    ``steps`` times — the many-small-blocks shape that dominates serving
    traffic and that grid vectorization targets."""
    pb = ProgramBuilder("multiblock", grid=[gb, gw])
    a_ptr = pb.param("a", pointer(float16))
    out_ptr = pb.param("out", pointer(float16))
    bi, bj = pb.block_indices()
    rows, cols = gb * th, gw * tw
    g_a = pb.view_global(a_ptr, dtype=float16, shape=[rows, cols])
    g_out = pb.view_global(out_ptr, dtype=float16, shape=[rows, cols])
    layout = spatial(th, tw)
    acc = pb.allocate_register("f32", layout=layout, init=0.0)
    tile = pb.load_global(g_a, layout=layout, offset=[bi * th, bj * tw])
    scaled = pb.mul(tile, 2.0)
    shifted = pb.add(scaled, 1.0)
    contrib = pb.cast(shifted, "f32")
    with pb.for_range(steps):
        pb.add(acc, contrib, out=acc)
    result = pb.cast(acc, "f16")
    pb.store_global(result, g_out, offset=[bi * th, bj * tw])
    return pb.finish(), (rows, cols)


def _setup_multiblock(engine_cls, gb=8, gw=8):
    prog, (rows, cols) = _multiblock_program(gb=gb, gw=gw)
    engine = engine_cls()
    data = float16.quantize(np.random.default_rng(0).standard_normal((rows, cols)))
    args = [engine.upload(data, float16), engine.alloc_output([rows, cols], float16)]
    return engine, prog, args


def test_vm_multiblock_sequential(benchmark):
    engine, prog, args = _setup_multiblock(Interpreter)
    benchmark(engine.launch, prog, args)


def test_vm_multiblock_batched(benchmark):
    engine, prog, args = _setup_multiblock(BatchedExecutor)
    benchmark(engine.launch, prog, args)


def test_specialization_cache_relaunch(benchmark):
    """Steady-state relaunch cost: compile once, then cache-hit launches."""
    rt = Runtime()
    prog, (rows, cols) = _multiblock_program(gb=4, gw=4)
    data = float16.quantize(np.random.default_rng(0).standard_normal((rows, cols)))
    args = [rt.upload(data, float16), rt.empty([rows, cols], float16)]
    rt.launch(prog, args)  # warm the cache
    benchmark(rt.launch, prog, args)
    assert rt.cache.misses == 1 and rt.cache.hits >= 1


# ---------------------------------------------------------------------------
# Quick self-checking mode (CI smoke test)
# ---------------------------------------------------------------------------


def _time_best(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def quick_report(min_speedup: float = 3.0, launches: int = 20) -> dict:
    """Measure the headline numbers and assert the speedup target."""
    seq_engine, seq_prog, seq_args = _setup_multiblock(Interpreter)
    bat_engine, bat_prog, bat_args = _setup_multiblock(BatchedExecutor)
    t_seq = _time_best(lambda: seq_engine.launch(seq_prog, seq_args))
    t_bat = _time_best(lambda: bat_engine.launch(bat_prog, bat_args))
    speedup = t_seq / t_bat

    # Repeated-launch scenario: the template is rebuilt on every call (the
    # operator pattern) but the structural cache key makes every launch
    # after the first skip lowering entirely.
    rt = Runtime()
    _, (rows, cols) = _multiblock_program(gb=4, gw=4)
    data = float16.quantize(np.random.default_rng(0).standard_normal((rows, cols)))
    args = [rt.upload(data, float16), rt.empty([rows, cols], float16)]
    for _ in range(launches):
        prog, _ = _multiblock_program(gb=4, gw=4)  # fresh build each call
        rt.launch(prog, args)
    report = {
        "sequential_ms": t_seq * 1e3,
        "batched_ms": t_bat * 1e3,
        "speedup": speedup,
        "cache_hits": rt.cache.hits,
        "cache_misses": rt.cache.misses,
        "cache_hit_rate": rt.cache.hit_rate,
    }
    print(
        f"multi-block (64 blocks): sequential {report['sequential_ms']:.2f} ms, "
        f"batched {report['batched_ms']:.2f} ms -> {speedup:.1f}x speedup"
    )
    print(
        f"repeated launches ({launches} rebuilt templates): "
        f"{rt.cache.hits} hits / {rt.cache.misses} miss "
        f"(hit rate {rt.cache.hit_rate:.0%}) — re-lowering eliminated"
    )
    assert speedup >= min_speedup, (
        f"batched engine speedup {speedup:.2f}x below the {min_speedup:.1f}x target"
    )
    assert rt.cache.misses == 1 and rt.cache.hits == launches - 1
    return report


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the self-checking speedup/cache summary instead of pytest-benchmark",
    )
    parser.add_argument("--min-speedup", type=float, default=3.0)
    args = parser.parse_args()
    if args.quick:
        quick_report(min_speedup=args.min_speedup)
    else:
        parser.error("use pytest for full benchmarks, or pass --quick")


if __name__ == "__main__":
    main()
