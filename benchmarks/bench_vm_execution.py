"""Microbenchmarks of the reproduction's own machinery: VM kernel
execution throughput (sequential vs grid-vectorized batched engine),
multi-stream asynchronous launch throughput, kernel-specialization-cache
behaviour, layout algebra, transform, and compilation speed.

These are honest pytest-benchmark measurements of this library (the
figures above are analytical); they guard against performance regressions
in the interpreter and compiler.

Run ``python benchmarks/bench_vm_execution.py --quick`` for a fast
self-checking summary: it measures the batched-vs-sequential speedup on a
multi-block program (asserting the >= 3x target), the multi-stream
speedup of 8 streams of independent launches over serial issue (asserting
the >= 1.5x target *and* bit-exactness versus a serial replay), the
execution-graph replay speedup over per-step eager stream submission on
the kernel-in-the-loop decode workload (asserting the >= 1.3x target and
bit-exactness), the profile-guided graph-optimization speedup on a
skewed-cost 8-stream workload (measured-cost LPT placement + dead-node
elimination vs the capture-time heuristic, asserting the >= 1.2x target
and bit-exactness vs the serial oracle), the adaptive runtime's
cold -> warmup -> converged serving loop (the policy swaps the live
graph automatically after its warmup window — no explicit reoptimize
call — asserting the >= 1.15x converged-over-cold target and
bit-exactness vs the serial oracle), the multi-process sharded-serving
stack (4 spawned worker processes behind the router's admission + SLO
scheduling serving an open-loop Poisson burst — asserting the >= 2.5x
simulated-throughput target over the single-process simulator,
bit-exact output digests vs the serial oracle, and the p50/p99 latency
gates), the tiered JIT (the pass-pipeline-lowered compiled kernel vs
the batched engine on the quantized-matmul template family — asserting
the >= 3x target and bit-exactness, with the one-time lowering cost
reported), the persistent tuning store's warm boot (a fresh device
image starting from the store's published profile + placement must
reach converged throughput with zero adaptive swaps, >= 1.3x faster
time-to-converged than a cold start, bit-exact vs the serial oracle),
and reports the specialization cache hit rate of a repeated-launch
scenario.  ``--section
engine|streams|graphs|pgo|adaptive|coldstart|serving|jit|obs|all``
selects which quick checks run (the CI matrix runs them as separate
jobs); an unknown section is rejected with the list of valid ones.
"""

import time

import numpy as np

from repro.dtypes import float16, int6, uint8
from repro.kernels import (
    MatmulConfig,
    matmul_layouts,
    quantized_matmul_program,
)
from repro.compiler import compile_program
from repro.lang import ProgramBuilder, pointer
from repro.layout import local, mma_m16n8k16, spatial
from repro.quant import QuantScheme, quantize_weight, transform_weight
from repro.runtime import Profile, Runtime, StreamPool
from repro.vm import BatchedExecutor, GlobalMemory, Interpreter


def _setup_matmul(m=32, n=16, k=64, stages=1):
    scheme = QuantScheme(int6, group_size=32)
    cfg = MatmulConfig(16, 8, 16, num_stages=stages)
    rng = np.random.default_rng(0)
    a = float16.quantize(rng.standard_normal((m, k)))
    q, scales = quantize_weight(rng.standard_normal((k, n)), scheme)
    lay = matmul_layouts(cfg, int6)
    packed = transform_weight(q, int6, lay.b_warp)
    prog = quantized_matmul_program(m, n, k, float16, scheme, cfg)
    interp = Interpreter()
    args = [
        interp.upload(a, float16),
        interp.upload(packed, uint8),
        interp.upload(float16.quantize(scales), float16),
        interp.alloc_output([m, n], float16),
    ]
    return interp, prog, args


def test_vm_matmul_direct(benchmark):
    interp, prog, args = _setup_matmul(stages=1)
    benchmark(interp.launch, prog, args)


def test_vm_matmul_pipelined(benchmark):
    interp, prog, args = _setup_matmul(stages=2)
    benchmark(interp.launch, prog, args)


def test_layout_compose(benchmark):
    a = local(2, 1)
    b = spatial(8, 4)
    c = local(1, 2)
    benchmark(lambda: a.compose(b).compose(c))


def test_layout_map_batch(benchmark):
    layout = mma_m16n8k16().a_layout
    t = np.repeat(np.arange(32), 8)
    i = np.tile(np.arange(8), 32)
    benchmark(layout.map_batch, t, i)


def test_layout_divide(benchmark):
    from repro.layout import divide

    h = local(2, 1).spatial(8, 4).local(1, 2)
    g = local(1, 2)
    benchmark(divide, h, g)


def test_weight_transform_host(benchmark):
    lay = matmul_layouts(MatmulConfig(16, 8, 16), int6)
    q = np.random.default_rng(0).integers(-32, 32, size=(128, 64))
    benchmark(transform_weight, q, int6, lay.b_warp)


def test_compile_pipeline(benchmark):
    prog = quantized_matmul_program(
        64, 32, 64, float16, QuantScheme(int6, 32),
        MatmulConfig(32, 16, 32, 2, 2, num_stages=2),
    )
    benchmark(compile_program, prog)


# ---------------------------------------------------------------------------
# Batched engine vs sequential interpreter
# ---------------------------------------------------------------------------


def _multiblock_program(gb=8, gw=8, th=8, tw=4, steps=4, name="multiblock"):
    """An elementwise kernel over a gb*gw grid: out = (a * 2 + 1) summed
    ``steps`` times — the many-small-blocks shape that dominates serving
    traffic and that grid vectorization targets."""
    pb = ProgramBuilder(name, grid=[gb, gw])
    a_ptr = pb.param("a", pointer(float16))
    out_ptr = pb.param("out", pointer(float16))
    bi, bj = pb.block_indices()
    rows, cols = gb * th, gw * tw
    g_a = pb.view_global(a_ptr, dtype=float16, shape=[rows, cols])
    g_out = pb.view_global(out_ptr, dtype=float16, shape=[rows, cols])
    layout = spatial(th, tw)
    acc = pb.allocate_register("f32", layout=layout, init=0.0)
    tile = pb.load_global(g_a, layout=layout, offset=[bi * th, bj * tw])
    scaled = pb.mul(tile, 2.0)
    shifted = pb.add(scaled, 1.0)
    contrib = pb.cast(shifted, "f32")
    with pb.for_range(steps):
        pb.add(acc, contrib, out=acc)
    result = pb.cast(acc, "f16")
    pb.store_global(result, g_out, offset=[bi * th, bj * tw])
    return pb.finish(), (rows, cols)


def _setup_multiblock(engine_cls, gb=8, gw=8):
    prog, (rows, cols) = _multiblock_program(gb=gb, gw=gw)
    engine = engine_cls()
    data = float16.quantize(np.random.default_rng(0).standard_normal((rows, cols)))
    args = [engine.upload(data, float16), engine.alloc_output([rows, cols], float16)]
    return engine, prog, args


def test_vm_multiblock_sequential(benchmark):
    engine, prog, args = _setup_multiblock(Interpreter)
    benchmark(engine.launch, prog, args)


def test_vm_multiblock_batched(benchmark):
    engine, prog, args = _setup_multiblock(BatchedExecutor)
    benchmark(engine.launch, prog, args)


def test_specialization_cache_relaunch(benchmark):
    """Steady-state relaunch cost: compile once, then cache-hit launches."""
    rt = Runtime()
    prog, (rows, cols) = _multiblock_program(gb=4, gw=4)
    data = float16.quantize(np.random.default_rng(0).standard_normal((rows, cols)))
    args = [rt.upload(data, float16), rt.empty([rows, cols], float16)]
    rt.launch(prog, args)  # warm the cache
    benchmark(rt.launch, prog, args)
    assert rt.cache.misses == 1 and rt.cache.hits >= 1


# ---------------------------------------------------------------------------
# Multi-stream asynchronous issue vs serial issue
# ---------------------------------------------------------------------------

#: The serving-shaped stream workload: many independent small multi-block
#: launches (distinct in-flight decode requests), the regime where launch
#: orchestration — not kernel math — dominates.
STREAM_GRID = (2, 2)
STREAM_STEPS = 8


def _stream_workload(num_streams: int, per_stream: int):
    """One device image per issue mode: identical uploads, so outputs can
    be compared bit-exactly afterwards."""
    prog, (rows, cols) = _multiblock_program(
        gb=STREAM_GRID[0], gw=STREAM_GRID[1], steps=STREAM_STEPS, name="stream_block"
    )
    rng = np.random.default_rng(0)
    datas = [
        float16.quantize(rng.standard_normal((rows, cols)))
        for _ in range(num_streams * per_stream)
    ]
    memory = GlobalMemory(1 << 24)
    host = Interpreter(memory)
    args = [
        (host.upload(d, float16), host.alloc_output([rows, cols], float16))
        for d in datas
    ]
    return prog, (rows, cols), memory, host, args


def stream_report(
    min_speedup: float = 1.5, num_streams: int = 8, per_stream: int = 8
) -> dict:
    """Measure 8-stream asynchronous issue against serial issue.

    Serial issue runs every launch to completion before issuing the next
    (the synchronous ``Runtime.launch`` pattern); streamed issue enqueues
    all launches round-robin across the streams and synchronizes once.
    Asserts the >= ``min_speedup`` target and that streamed outputs are
    bit-identical to the serial replay's.
    """
    prog, (rows, cols), mem_serial, host_serial, args_serial = _stream_workload(
        num_streams, per_stream
    )
    executor = BatchedExecutor(mem_serial, stats=host_serial.stats)

    def serial():
        for a, o in args_serial:
            executor.launch(prog, [a, o])

    t_serial = _time_best(serial)

    _, _, mem_stream, host_stream, args_stream = _stream_workload(
        num_streams, per_stream
    )
    pool = StreamPool(mem_stream, num_streams=num_streams)

    def streamed():
        for i, (a, o) in enumerate(args_stream):
            pool.submit(prog, [a, o], stream=pool.streams[i % num_streams])
        pool.synchronize()

    try:
        t_stream = _time_best(streamed, repeats=7)
        # Counters for exactly one workload pass (not the timing repeats).
        launches0, executions0 = pool.launches, pool.executions
        streamed()
        launches = pool.launches - launches0
        executions = pool.executions - executions0
    finally:
        pool.shutdown()
    speedup = t_serial / t_stream

    for (_, o_serial), (_, o_stream) in zip(args_serial, args_stream):
        want = host_serial.download(o_serial, [rows, cols], float16)
        got = host_stream.download(o_stream, [rows, cols], float16)
        assert np.array_equal(got, want), "streamed outputs diverge from serial replay"

    report = {
        "serial_ms": t_serial * 1e3,
        "streamed_ms": t_stream * 1e3,
        "stream_speedup": speedup,
        "launches": launches,
        "executions": executions,
    }
    n = num_streams * per_stream
    print(
        f"{n} independent launches: serial issue {report['serial_ms']:.2f} ms, "
        f"{num_streams} streams {report['streamed_ms']:.2f} ms -> "
        f"{speedup:.1f}x speedup (bit-exact), "
        f"{launches} launches coalesced into {executions} executions"
    )
    assert speedup >= min_speedup, (
        f"multi-stream speedup {speedup:.2f}x below the {min_speedup:.1f}x target"
    )
    return report


# ---------------------------------------------------------------------------
# Execution-graph replay vs per-step eager stream submission
# ---------------------------------------------------------------------------

#: The decode-shaped graph workload: every "step" runs one tiny kernel
#: per in-flight request (each updating its own private buffer in place),
#: spread over the streams — and the step's launch DAG is identical every
#: time, which is exactly what graph capture freezes.  Single-block
#: grids with the batched engine forced keep the per-step math minimal
#: (coalescing stacks each stream's requests into one execution) so the
#: measurement isolates what capture eliminates: per-launch scheduling,
#: hazard analysis, and coalescing probes.
GRAPH_REQUESTS = 32
GRAPH_STREAMS = 4


def _decode_step_program(name="decode_step"):
    """An in-place per-request kernel: ``buf = buf * 0.5 + 1`` on one
    (8, 4) tile — small enough that per-launch orchestration, not kernel
    math, dominates a step."""
    pb = ProgramBuilder(name, grid=[1, 1])
    buf_ptr = pb.param("buf", pointer(float16))
    bi, bj = pb.block_indices()
    g_buf = pb.view_global(buf_ptr, dtype=float16, shape=[8, 4])
    tile = pb.load_global(g_buf, layout=spatial(8, 4), offset=[bi * 8, bj * 4])
    result = pb.add(pb.mul(tile, 0.5), 1.0)
    pb.store_global(result, g_buf, offset=[bi * 8, bj * 4])
    return pb.finish(), (8, 4)


def _graph_workload(num_requests: int):
    prog, (rows, cols) = _decode_step_program()
    memory = GlobalMemory(1 << 24)
    host = Interpreter(memory)
    rng = np.random.default_rng(0)
    bufs = [
        host.upload(float16.quantize(rng.standard_normal((rows, cols))), float16)
        for _ in range(num_requests)
    ]
    return prog, (rows, cols), memory, host, bufs


def graph_report(
    min_speedup: float = 1.3,
    num_requests: int = GRAPH_REQUESTS,
    num_streams: int = GRAPH_STREAMS,
    steps: int = 20,
) -> dict:
    """Measure execution-graph replay against per-step eager submission.

    Eager issue re-submits the step's launch DAG every step — paying
    scheduling, hazard-range analysis and coalescing probes per launch;
    graph replay captures the DAG once and drives the per-stream engines
    directly.  Asserts the >= ``min_speedup`` target and that replayed
    device memory is bit-identical to the eager run's after the same
    number of steps.
    """
    prog, (rows, cols), _, host_e, bufs_e = _graph_workload(num_requests)
    pool_e = StreamPool(host_e.memory, num_streams=num_streams)

    def eager_step():
        for i, buf in enumerate(bufs_e):
            pool_e.submit(
                prog, [buf], stream=pool_e.streams[i % num_streams], engine="batched"
            )
        pool_e.synchronize()

    _, _, _, host_g, bufs_g = _graph_workload(num_requests)
    pool_g = StreamPool(host_g.memory, num_streams=num_streams)
    with pool_g.capture() as graph:
        for i, buf in enumerate(bufs_g):
            pool_g.submit(
                prog, [buf], stream=pool_g.streams[i % num_streams], engine="batched"
            )

    try:
        # Correctness first (before the timing loops perturb the data):
        # the same number of steps through each path must leave device
        # memory bit-identical.
        for _ in range(5):
            eager_step()
        for _ in range(5):
            graph.replay()
        for b_e, b_g in zip(bufs_e, bufs_g):
            want = host_e.download(b_e, [rows, cols], float16)
            got = host_g.download(b_g, [rows, cols], float16)
            assert np.array_equal(got, want), "graph replay diverges from eager issue"

        def eager_steps():
            for _ in range(steps):
                eager_step()

        def replay_steps():
            for _ in range(steps):
                graph.replay()

        t_eager = _time_best(eager_steps)
        t_replay = _time_best(replay_steps)
    finally:
        pool_e.shutdown()
        pool_g.shutdown()
    speedup = t_eager / t_replay
    report = {
        "eager_ms": t_eager * 1e3,
        "replay_ms": t_replay * 1e3,
        "graph_speedup": speedup,
        "nodes": graph.num_nodes,
        "groups": graph.num_groups,
    }
    print(
        f"{steps}-step decode DAG ({num_requests} requests, {num_streams} "
        f"streams): eager issue {report['eager_ms']:.2f} ms, graph replay "
        f"{report['replay_ms']:.2f} ms -> {speedup:.1f}x speedup (bit-exact), "
        f"{graph.num_nodes} nodes frozen into {graph.num_groups} groups"
    )
    assert speedup >= min_speedup, (
        f"graph replay speedup {speedup:.2f}x below the {min_speedup:.1f}x target"
    )
    return report


# ---------------------------------------------------------------------------
# Profile-guided graph optimization vs heuristic placement
# ---------------------------------------------------------------------------

#: The PGO workload: a *skewed-cost* launch mix on 8 streams.  Four
#: heavy kernels (distinct programs, so they never coalesce away) land
#: on one stream under the capture-time round-robin heuristic — their
#: submission positions are congruent mod the stream count — while 28
#: cheap kernels fill the rest, and 8 more heavy launches write scratch
#: buffers nothing ever reads.  A profiled replay records the real
#: per-node costs; ``graph.optimize(profile)`` then spreads the heavies
#: by longest-processing-time placement and eliminates the dead nodes.
PGO_STREAMS = 8
PGO_LIVE = 32
PGO_DEAD = 8
PGO_HEAVY_STEPS = 48
PGO_LIGHT_STEPS = 2


def _pgo_workload():
    heavies = [
        _multiblock_program(gb=4, gw=4, steps=PGO_HEAVY_STEPS, name=f"pgo_heavy{i}")[0]
        for i in range(4)
    ]
    dead_prog, _ = _multiblock_program(
        gb=4, gw=4, steps=PGO_HEAVY_STEPS, name="pgo_dead"
    )
    light_prog, (rows, cols) = _multiblock_program(
        gb=4, gw=4, steps=PGO_LIGHT_STEPS, name="pgo_light"
    )
    memory = GlobalMemory(1 << 24)
    host = Interpreter(memory)
    rng = np.random.default_rng(0)
    launches = []  # (program, a_addr, out_addr, is_heavy)
    heavy_iter = iter(heavies)
    for i in range(PGO_LIVE):
        a = host.upload(float16.quantize(rng.standard_normal((rows, cols))), float16)
        out = host.alloc_output([rows, cols], float16)
        heavy = i % PGO_STREAMS == 0  # all heavies hit one heuristic stream
        program = next(heavy_iter) if heavy else light_prog
        launches.append((program, a, out, heavy))
    dead = []  # scratch writers: outputs never read, never bound
    for _ in range(PGO_DEAD):
        a = host.upload(float16.quantize(rng.standard_normal((rows, cols))), float16)
        scratch = host.alloc_output([rows, cols], float16)
        dead.append((dead_prog, a, scratch))
    return (rows, cols), host, launches, dead


def pgo_report(min_speedup: float = 1.2) -> dict:
    """Measure profile-optimized replay against heuristic-placement replay.

    Captures the skewed workload with scheduler placement, binds the live
    output buffers, collects a per-node profile from one replay, and
    optimizes.  Asserts that the heavies spread to distinct streams, that
    the dead nodes are eliminated, that the optimized replay is >=
    ``min_speedup`` faster, and that its outputs match the serial oracle
    bit-for-bit.
    """
    (rows, cols), host, launches, dead = _pgo_workload()
    pool = StreamPool(host.memory, num_streams=PGO_STREAMS)
    try:
        with pool.capture() as graph:
            for program, a, out, _ in launches:
                pool.submit(program, [a, out], engine="batched")
            for program, a, scratch in dead:
                pool.submit(program, [a, scratch], engine="batched")
        out_bytes = rows * cols * 2
        for i, (_, _, out, _) in enumerate(launches):
            graph.bind(f"out{i}", out, out_bytes)

        # Serial oracle first: the bit-exactness reference (the kernels
        # are out = f(a), so repeated replays are idempotent).
        graph.replay(serial=True)
        want = [host.download(out, [rows, cols], float16) for _, _, out, _ in launches]

        profile = Profile()
        pool.profiler = profile
        graph.replay()
        pool.synchronize()
        pool.profiler = None

        optimized = graph.optimize(profile)
        assert optimized.num_nodes == PGO_LIVE, (
            f"dead-node elimination kept {optimized.num_nodes} of "
            f"{graph.num_nodes} nodes, expected {PGO_LIVE}"
        )
        heavy_indices = [i for i, (_, _, _, heavy) in enumerate(launches) if heavy]
        heuristic_streams = {graph.nodes[i].stream_index for i in heavy_indices}
        optimized_streams = {optimized.nodes[i].stream_index for i in heavy_indices}
        assert len(heuristic_streams) == 1, "workload no longer skews the heuristic"
        assert len(optimized_streams) == len(heavy_indices), (
            f"LPT left heavy nodes sharing streams: {sorted(optimized_streams)}"
        )

        optimized.replay()
        pool.synchronize()
        t_heur = _time_best(lambda: graph.replay())
        t_opt = _time_best(lambda: optimized.replay())
        pool.synchronize()

        got = [host.download(out, [rows, cols], float16) for _, _, out, _ in launches]
        for w, g in zip(want, got):
            assert np.array_equal(g, w), "optimized replay diverges from serial oracle"
    finally:
        pool.shutdown()
    speedup = t_heur / t_opt
    report = {
        "heuristic_ms": t_heur * 1e3,
        "optimized_ms": t_opt * 1e3,
        "pgo_speedup": speedup,
        "nodes_before": graph.num_nodes,
        "nodes_after": optimized.num_nodes,
        "heavy_streams": sorted(optimized_streams),
    }
    print(
        f"skewed {PGO_STREAMS}-stream DAG ({graph.num_nodes} nodes, "
        f"{len(heavy_indices)} heavy on 1 stream, {PGO_DEAD} dead): heuristic "
        f"replay {report['heuristic_ms']:.2f} ms, profile-optimized "
        f"{report['optimized_ms']:.2f} ms -> {speedup:.1f}x speedup (bit-exact); "
        f"heavies spread over streams {report['heavy_streams']}, "
        f"{PGO_DEAD} dead nodes eliminated"
    )
    assert speedup >= min_speedup, (
        f"profile-guided speedup {speedup:.2f}x below the {min_speedup:.1f}x target"
    )
    return report


# ---------------------------------------------------------------------------
# Adaptive runtime: cold -> warmup -> converged serving loop
# ---------------------------------------------------------------------------

#: Profiled replays per adaptive-policy window.  The cold phase is
#: exactly one window: its last replay triggers the automatic swap, so
#: every converged-phase replay runs the optimized image.
ADAPTIVE_WARMUP = 4


def adaptive_report(min_speedup: float = 1.15) -> dict:
    """Measure the adaptive runtime's converged-over-cold throughput.

    The skewed-cost PGO workload is captured with the heuristic
    placement (heavies piled on one stream, dead scratch writers kept)
    and put under an :class:`~repro.runtime.AdaptivePolicy` — *nothing*
    ever calls ``optimize``/``reoptimize`` explicitly.  The serving loop
    then replays it: the **cold** window runs the heuristic image while
    the policy accumulates its profile; at the window boundary the
    policy atomically swaps in the profile-optimized image (heavies
    spread by measured-cost LPT, dead nodes eliminated), and the
    **converged** phase replays that.  Asserts exactly one automatic
    swap, the >= ``min_speedup`` converged-over-cold throughput target,
    and bit-exactness of the converged outputs against the serial
    oracle.
    """
    from repro.runtime import AdaptivePolicy

    (rows, cols), host, launches, dead = _pgo_workload()
    pool = StreamPool(host.memory, num_streams=PGO_STREAMS)
    try:
        with pool.capture() as graph:
            for program, a, out, _ in launches:
                pool.submit(program, [a, out], engine="batched")
            for program, a, scratch in dead:
                pool.submit(program, [a, scratch], engine="batched")
        out_bytes = rows * cols * 2
        for i, (_, _, out, _) in enumerate(launches):
            graph.bind(f"out{i}", out, out_bytes)

        # Serial oracle first (the kernels are out = f(a), so replays
        # are idempotent and the reference stays valid throughout).
        graph.replay(serial=True)
        want = [host.download(out, [rows, cols], float16) for _, _, out, _ in launches]

        # min_gain well above the ~10% window-to-window measurement noise
        # of 4-replay windows, far below the ~60% real skew gain: the
        # first (unconditional) swap captures the skew, hysteresis holds
        # through the noisy steady state.
        policy = AdaptivePolicy(warmup_replays=ADAPTIVE_WARMUP, min_gain=0.30)
        managed = policy.manage(graph)
        pool.profiler = Profile()

        # Cold: one full warmup window on the heuristic image.  The
        # window's last replay pays the evaluation + swap as well —
        # honest cold-phase accounting.
        start = time.perf_counter()
        for _ in range(ADAPTIVE_WARMUP):
            managed.replay()
        t_cold = (time.perf_counter() - start) / ADAPTIVE_WARMUP
        assert policy.swaps == 1, (
            f"expected exactly one automatic swap after the warmup window, "
            f"got {policy.swaps}"
        )
        assert managed.live.num_nodes == PGO_LIVE, (
            f"swap kept {managed.live.num_nodes} nodes, expected the "
            f"{PGO_LIVE} live ones"
        )

        # Converged: two more windows on the auto-swapped image (steady
        # costs: re-evaluations fire, further swaps must not).
        steps = 2 * ADAPTIVE_WARMUP
        start = time.perf_counter()
        for _ in range(steps):
            managed.replay()
        t_converged = (time.perf_counter() - start) / steps
        pool.synchronize()
        assert policy.swaps == 1, (
            f"steady costs re-swapped the graph ({policy.swaps} swaps): "
            "hysteresis failed"
        )

        got = [host.download(out, [rows, cols], float16) for _, _, out, _ in launches]
        for w, g in zip(want, got):
            assert np.array_equal(g, w), "adaptive replay diverges from serial oracle"
    finally:
        pool.shutdown()
    speedup = t_cold / t_converged
    report = {
        "cold_ms": t_cold * 1e3,
        "converged_ms": t_converged * 1e3,
        "adaptive_speedup": speedup,
        "auto_swaps": policy.swaps,
        "evaluations": policy.evaluations,
    }
    print(
        f"adaptive serving loop ({graph.num_nodes}-node skewed DAG, "
        f"{PGO_STREAMS} streams, warmup {ADAPTIVE_WARMUP}): cold "
        f"{report['cold_ms']:.2f} ms/step, converged "
        f"{report['converged_ms']:.2f} ms/step -> {speedup:.1f}x "
        f"converged-over-cold (bit-exact, {policy.swaps} automatic swap, "
        f"{policy.evaluations} evaluations, no explicit reoptimize call)"
    )
    assert speedup >= min_speedup, (
        f"adaptive converged-over-cold speedup {speedup:.2f}x below the "
        f"{min_speedup:.2f}x target"
    )
    return report


# ---------------------------------------------------------------------------
# Warm-store boot vs cold start: the persistent tuning store's payoff
# ---------------------------------------------------------------------------


def coldstart_report(min_speedup: float = 1.3) -> dict:
    """Measure warm-store startup against a cold start.

    The **cold** process is the adaptive serving loop's warmup story on
    the skewed PGO workload: heuristic capture (heavies piled on one
    stream, dead scratch writers kept), a full
    :class:`~repro.runtime.AdaptivePolicy` warmup window on that image,
    and the automatic swap at the window boundary — its
    time-to-converged is the whole window.  The cold process then
    publishes its recorded profile and live placement to an on-disk
    :class:`~repro.store.TuningStore`, exactly as a serving worker does
    on shutdown.

    The **warm** process is a fresh device image (identical uploads —
    the respawned-worker model) booting *from the store*: the loaded
    profile optimizes the capture at boot (measured-cost LPT placement,
    dead-node elimination — convergence paid for once, by the cold
    process), the stored placement re-applies when it validates, and
    the graph runs under ``manage(warm=True)``.  Its
    first window must already be converged: **zero adaptive swaps**,
    >= ``min_speedup`` faster than the cold window, and bit-exact
    against the serial oracle.  The report carries the store's
    hit/miss/publish counters.
    """
    import tempfile

    from repro.runtime import AdaptivePolicy
    from repro.store import TuningStore

    with tempfile.TemporaryDirectory() as root:
        store = TuningStore(root)

        # -- cold process: heuristic capture, warmup window, swap -----------
        (rows, cols), host, launches, dead = _pgo_workload()
        pool = StreamPool(host.memory, num_streams=PGO_STREAMS)
        try:
            with pool.capture() as graph:
                for program, a, out, _ in launches:
                    pool.submit(program, [a, out], engine="batched")
                for program, a, scratch in dead:
                    pool.submit(program, [a, scratch], engine="batched")
            out_bytes = rows * cols * 2
            for i, (_, _, out, _) in enumerate(launches):
                graph.bind(f"out{i}", out, out_bytes)
            graph.replay(serial=True)
            want = [
                host.download(out, [rows, cols], float16)
                for _, _, out, _ in launches
            ]
            policy = AdaptivePolicy(warmup_replays=ADAPTIVE_WARMUP, min_gain=0.30)
            managed = policy.manage(graph)
            pool.profiler = Profile()
            start = time.perf_counter()
            for _ in range(ADAPTIVE_WARMUP):
                managed.replay()
            pool.synchronize()
            t_cold = time.perf_counter() - start
            assert policy.swaps == 1, (
                f"cold start should swap exactly once, got {policy.swaps}"
            )
            # Shutdown publication: profile + the live (post-swap) plan.
            store.publish_profile("coldstart", pool.profiler)
            store.publish_plan(
                "coldstart", managed.live.signature, managed.live.plan()
            )
        finally:
            pool.shutdown()

        # -- warm process: fresh image boots from the store -----------------
        (rows, cols), host2, launches2, dead2 = _pgo_workload()
        pool2 = StreamPool(host2.memory, num_streams=PGO_STREAMS)
        try:
            loaded = store.load_profile("coldstart")
            assert loaded is not None, "cold process published no profile"
            with pool2.capture() as graph2:
                for program, a, out, _ in launches2:
                    pool2.submit(program, [a, out], engine="batched")
                for program, a, scratch in dead2:
                    pool2.submit(program, [a, scratch], engine="batched")
            for i, (_, _, out, _) in enumerate(launches2):
                graph2.bind(f"out{i}", out, out_bytes)
            # The stored profile optimizes the capture at boot —
            # measured-cost LPT placement and dead-node elimination,
            # paid for by the *cold* process — and the stored placement
            # (same signature: identical live node set) re-applies on
            # top when it validates.
            graph2 = graph2.optimize(loaded)
            try:
                plan = store.load_plan("coldstart", graph2.signature)
                if plan is not None:
                    graph2 = graph2.apply_plan(plan)
            except Exception:
                pass
            policy2 = AdaptivePolicy(
                warmup_replays=ADAPTIVE_WARMUP, min_gain=0.30
            )
            managed2 = policy2.manage(graph2, warm=True)
            pool2.profiler = Profile()
            start = time.perf_counter()
            for _ in range(ADAPTIVE_WARMUP):
                managed2.replay()
            pool2.synchronize()
            t_warm = time.perf_counter() - start
            assert policy2.swaps == 0, (
                f"warm boot swapped {policy2.swaps} times — it should "
                "start converged"
            )
            got = [
                host2.download(out, [rows, cols], float16)
                for _, _, out, _ in launches2
            ]
            for w, g in zip(want, got):
                assert np.array_equal(g, w), (
                    "warm-store replay diverges from serial oracle"
                )
        finally:
            pool2.shutdown()
        counters = store.counters()

    speedup = t_cold / t_warm
    report = {
        "cold_window_ms": t_cold * 1e3,
        "warm_window_ms": t_warm * 1e3,
        "coldstart_speedup": speedup,
        "cold_swaps": policy.swaps,
        "warm_swaps": policy2.swaps,
        "store_hits": counters["hits"],
        "store_misses": counters["misses"],
        "store_publishes": counters["publishes"],
    }
    print(
        f"warm-store boot (skewed {PGO_STREAMS}-stream DAG, warmup "
        f"{ADAPTIVE_WARMUP}): cold window {report['cold_window_ms']:.2f} ms "
        f"({policy.swaps} swap), warm window {report['warm_window_ms']:.2f} ms "
        f"({policy2.swaps} swaps) -> {speedup:.1f}x time-to-converged "
        f"(bit-exact; store: {counters['hits']} hits, "
        f"{counters['misses']} misses, {counters['publishes']} publishes)"
    )
    assert speedup >= min_speedup, (
        f"warm-store time-to-converged speedup {speedup:.2f}x below the "
        f"{min_speedup:.1f}x target"
    )
    return report


# ---------------------------------------------------------------------------
# Multi-process sharded serving vs the single-process simulator
# ---------------------------------------------------------------------------

#: The sharded-serving workload: an overloaded open-loop Poisson burst
#: (arrivals span milliseconds, service spans much longer — the regime
#: where sharding is the only way out) routed over a real worker pool.
SERVING_WORKERS = 4
SERVING_REQUESTS = 48
SERVING_CHUNK = 6
SERVING_OUTPUT_TOKENS = 16


def serving_report(
    min_speedup: float = 2.5,
    max_p99_s: float = 60.0,
    num_workers: int = SERVING_WORKERS,
    num_requests: int = SERVING_REQUESTS,
) -> dict:
    """Measure sharded serving against the single-process simulator.

    ``num_workers`` spawned worker processes (one kernel-in-the-loop
    :class:`~repro.llm.batching.ContinuousBatchingSimulator` each,
    rebuilt deterministically from the
    :class:`~repro.serving.WorkerSpec` recipe, JSON pipes only) serve an
    open-loop Poisson trace behind the router's admission + SLO
    scheduling; the oracle is one in-process simulator serving the
    identical trace.  The speedup gate compares **simulated** serving
    makespans (the repo's latency accounting is analytic throughout;
    wall-clock depends on host core count and is reported, not gated).
    Asserts the >= ``min_speedup`` throughput target, that every
    completed request's output digest matches the serial oracle
    bit-for-bit, that nothing was rejected or lost, and that the
    simulated p99 end-to-end latency stays under ``max_p99_s``.
    """
    from repro.serving import Router, WorkerPool, WorkerSpec, poisson_trace

    spec = WorkerSpec(
        linear_k=64, linear_n=16, linear_dtype="i6", linear_group=32,
        max_batch=8, num_streams=4,
    )
    # Overloaded open-loop arrivals: the whole trace lands in ~5 ms of
    # virtual time, far faster than any single simulator can drain it.
    trace = poisson_trace(
        num_requests,
        rate_rps=10_000.0,
        prompt_tokens=128,
        output_tokens=SERVING_OUTPUT_TOKENS,
        seed=7,
        slo_s=60.0,
    )

    # Serial oracle: one in-process simulator, warmed so its one-time
    # template compile stays out of the comparison (the workers warm
    # equivalently below).
    sim = spec.build_simulator()
    sim.run(poisson_trace(1, rate_rps=1.0, output_tokens=2, rid_base=1_000_000))
    wall_start = time.perf_counter()
    oracle = sim.run(trace)
    single_wall = time.perf_counter() - wall_start

    with WorkerPool(spec, num_workers) as pool:
        # Warm every worker with a one-request chunk each (compiles the
        # decode kernel in each process before anything is timed).
        warmup = poisson_trace(
            num_workers, rate_rps=1.0, output_tokens=2, rid_base=2_000_000
        )
        Router(pool, chunk_size=1).serve(warmup, timeout_s=120.0)
        router = Router(pool, chunk_size=SERVING_CHUNK)
        result = router.serve(trace, timeout_s=300.0)

    assert not result.rejected, f"{len(result.rejected)} requests rejected"
    assert result.num_completed == num_requests, (
        f"completed {result.num_completed} of {num_requests} requests"
    )
    oracle_digests = {r.request.rid: r.output_digest for r in oracle.results}
    for served in result.completed:
        rid = served.request.rid
        assert served.digest == oracle_digests[rid], (
            f"request {rid}: worker {served.worker} digest {served.digest} "
            f"!= oracle {oracle_digests[rid]} — sharded decode is not bit-exact"
        )

    speedup = oracle.total_time_s / result.simulated_makespan_s
    p50 = result.latency_percentile(50)
    p99 = result.latency_percentile(99)
    report = {
        "workers": num_workers,
        "single_sim_s": oracle.total_time_s,
        "pool_sim_s": result.simulated_makespan_s,
        "serving_speedup": speedup,
        "p50_s": p50,
        "p99_s": p99,
        "slo_attainment": result.slo_attainment,
        "single_wall_s": single_wall,
        "pool_wall_s": result.wall_s,
        "respawns": result.respawns,
    }
    print(
        f"sharded serving ({num_requests}-request Poisson burst, "
        f"{num_workers} workers x batch {spec.max_batch}): single-process "
        f"{oracle.total_time_s * 1e3:.1f} ms simulated, pool "
        f"{result.simulated_makespan_s * 1e3:.1f} ms -> {speedup:.1f}x "
        f"throughput (bit-exact vs oracle, 0 lost); latency p50 "
        f"{p50 * 1e3:.1f} ms p99 {p99 * 1e3:.1f} ms, SLO attainment "
        f"{result.slo_attainment:.0%}; wall {single_wall:.1f}s vs "
        f"{result.wall_s:.1f}s on {num_workers} processes"
    )
    assert speedup >= min_speedup, (
        f"sharded-serving speedup {speedup:.2f}x below the "
        f"{min_speedup:.1f}x target"
    )
    assert p99 <= max_p99_s, (
        f"simulated p99 latency {p99:.2f}s above the {max_p99_s:.1f}s gate"
    )
    assert p50 <= p99
    return report


# ---------------------------------------------------------------------------
# Quick self-checking mode (CI smoke test)
# ---------------------------------------------------------------------------


def _time_best(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def quick_report(min_speedup: float = 3.0, launches: int = 20) -> dict:
    """Measure the headline numbers and assert the speedup target."""
    seq_engine, seq_prog, seq_args = _setup_multiblock(Interpreter)
    bat_engine, bat_prog, bat_args = _setup_multiblock(BatchedExecutor)
    t_seq = _time_best(lambda: seq_engine.launch(seq_prog, seq_args))
    t_bat = _time_best(lambda: bat_engine.launch(bat_prog, bat_args))
    speedup = t_seq / t_bat

    # Repeated-launch scenario: the template is rebuilt on every call (the
    # operator pattern) but the structural cache key makes every launch
    # after the first skip lowering entirely.
    rt = Runtime()
    _, (rows, cols) = _multiblock_program(gb=4, gw=4)
    data = float16.quantize(np.random.default_rng(0).standard_normal((rows, cols)))
    args = [rt.upload(data, float16), rt.empty([rows, cols], float16)]
    for _ in range(launches):
        prog, _ = _multiblock_program(gb=4, gw=4)  # fresh build each call
        rt.launch(prog, args)
    report = {
        "sequential_ms": t_seq * 1e3,
        "batched_ms": t_bat * 1e3,
        "speedup": speedup,
        "cache_hits": rt.cache.hits,
        "cache_misses": rt.cache.misses,
        "cache_hit_rate": rt.cache.hit_rate,
    }
    print(
        f"multi-block (64 blocks): sequential {report['sequential_ms']:.2f} ms, "
        f"batched {report['batched_ms']:.2f} ms -> {speedup:.1f}x speedup"
    )
    print(
        f"repeated launches ({launches} rebuilt templates): "
        f"{rt.cache.hits} hits / {rt.cache.misses} miss "
        f"(hit rate {rt.cache.hit_rate:.0%}) — re-lowering eliminated"
    )
    assert speedup >= min_speedup, (
        f"batched engine speedup {speedup:.2f}x below the {min_speedup:.1f}x target"
    )
    assert rt.cache.misses == 1 and rt.cache.hits == launches - 1
    return report


def jit_report(min_speedup: float = 3.0) -> dict:
    """Measure the compiled tier against the batched engine on the
    quantized-matmul template family and assert the >= 3x target.

    Each template instantiation (direct and software-pipelined) is
    lowered once through the pass pipeline (const-fold -> unroll ->
    flatten) and the compiled kernel is raced against the batched
    executor on the same device image; outputs must agree byte for
    byte.  The one-time lowering cost is reported separately — it is
    what the runtime's heat threshold amortizes."""
    from repro.compiler.lower import lower_program

    report: dict = {}
    worst = float("inf")
    for label, stages in (("direct", 1), ("pipelined", 2)):
        interp, prog, args = _setup_matmul(m=32, n=16, k=64, stages=stages)
        memory = interp.memory
        batched = BatchedExecutor(memory, stats=interp.stats)
        start = time.perf_counter()
        kernel = lower_program(prog, args, memory)
        lower_ms = (time.perf_counter() - start) * 1e3

        batched.launch(prog, args)
        want = interp.download(args[-1], [32, 16], float16).copy()
        kernel.run(memory, args)
        got = interp.download(args[-1], [32, 16], float16)
        assert np.array_equal(want, got), (
            f"compiled {label} matmul diverged from the batched engine"
        )

        t_bat = _time_best(lambda: batched.launch(prog, args))
        t_jit = _time_best(lambda: kernel.run(memory, args))
        speedup = t_bat / t_jit
        worst = min(worst, speedup)
        report[label] = {
            "batched_ms": t_bat * 1e3,
            "compiled_ms": t_jit * 1e3,
            "lowering_ms": lower_ms,
            "speedup": speedup,
        }
        print(
            f"matmul template ({label}): batched {t_bat * 1e3:.2f} ms, "
            f"compiled {t_jit * 1e3:.2f} ms -> {speedup:.1f}x speedup "
            f"(lowering once: {lower_ms:.1f} ms)"
        )
    assert worst >= min_speedup, (
        f"compiled-tier speedup {worst:.2f}x below the "
        f"{min_speedup:.1f}x target"
    )
    return report


def obs_report(num_workers: int = 2, num_requests: int = 16) -> dict:
    """Validate the observability layer end to end and measure its cost.

    Part one runs a traced ``num_workers``-worker serving burst (every
    worker with the process tracer installed, JIT promoting on first
    profiled sight so compiled-tier events appear even in a short run)
    and validates the merged fleet trace: one Chrome trace object that
    survives a JSON round-trip, with one pid per process (router +
    workers), every event category the stack emits (router, worker,
    stream, graph, jit), and clock-normalized timestamps starting at
    t=0.  The unified ``metrics()`` snapshots (router contract and each
    worker's simulator contract) are validated against their frozen key
    sets, and the per-worker breakdown must account for every completed
    request.

    Part two measures tracing's *enabled* overhead on the multi-stream
    launch workload (reported, not gated: wall-clock noise in CI makes a
    tight enabled-overhead gate flaky).  The tracing-**disabled**
    overhead gate lives in the ``streams`` section: its 1.5x speedup
    floor runs with the emit-point guards present and no tracer
    installed, so a disabled-path regression fails that gate.
    """
    import json as _json

    from repro.obs import ROUTER_METRICS_KEYS, SIMULATOR_METRICS_KEYS
    from repro.obs import trace as obs_trace
    from repro.obs.trace import load_trace, summarize_trace
    from repro.serving import Router, WorkerPool, WorkerSpec, poisson_trace

    # -- traced fleet run ---------------------------------------------------
    spec = WorkerSpec(
        linear_k=64, linear_n=16, linear_dtype="i6", linear_group=32,
        max_batch=1, num_streams=2, profile=True, jit=True,
        jit_threshold_s=0.0, trace=True,
    )
    trace_requests = poisson_trace(
        num_requests, rate_rps=10_000.0, prompt_tokens=128,
        output_tokens=8, seed=11, slo_s=60.0,
    )
    obs_trace.install()
    try:
        with WorkerPool(spec, num_workers) as pool:
            router = Router(pool, chunk_size=2)
            result = router.serve(trace_requests, timeout_s=300.0)
            fleet = router.fleet_trace()
            worker_metrics = [
                pool.pull_trace(i)["metrics"] for i in range(num_workers)
            ]
    finally:
        obs_trace.uninstall()

    assert result.num_completed == num_requests, (
        f"completed {result.num_completed} of {num_requests}"
    )
    router_metrics = result.metrics()
    assert set(router_metrics) == set(ROUTER_METRICS_KEYS)
    for snapshot in worker_metrics:
        assert set(snapshot) == set(SIMULATOR_METRICS_KEYS)
    breakdown = result.per_worker()
    assert sum(row["requests"] for row in breakdown.values()) == num_requests

    # The merged trace must survive a JSON round-trip and be coherent.
    roundtrip = load_trace(_json.dumps(fleet))
    events = roundtrip["traceEvents"]
    assert events, "fleet trace is empty"
    pids = {e["pid"] for e in events}
    assert pids == set(range(num_workers + 1)), (
        f"expected pids 0..{num_workers}, got {sorted(pids)}"
    )
    cats = {e.get("cat") for e in events if e.get("ph") in ("X", "i")}
    for category in ("router", "worker", "stream", "graph", "jit"):
        assert category in cats, f"no {category!r} events in the fleet trace"
    stamps = [e["ts"] for e in events if e.get("ph") in ("X", "i")]
    assert min(stamps) >= 0.0, "clock normalization produced negative timestamps"
    summary = summarize_trace(roundtrip)

    # -- enabled-overhead measurement (streams workload) --------------------
    prog, _, mem, _, launch_args = _stream_workload(4, 8)
    pool = StreamPool(mem, num_streams=4)

    def streamed():
        for i, (a, o) in enumerate(launch_args):
            pool.submit(prog, [a, o], stream=pool.streams[i % 4])
        pool.synchronize()

    try:
        t_off = _time_best(streamed, repeats=7)
        obs_trace.install(capacity=1 << 20)
        try:
            t_on = _time_best(streamed, repeats=7)
        finally:
            obs_trace.uninstall()
    finally:
        pool.shutdown()
    overhead = t_on / t_off - 1.0

    report = {
        "workers": num_workers,
        "trace_events": len(events),
        "trace_pids": len(pids),
        "trace_categories": sorted(c for c in cats if c),
        "phases": summary["phases"],
        "router_metrics": router_metrics,
        "tracing_off_ms": t_off * 1e3,
        "tracing_on_ms": t_on * 1e3,
        "tracing_enabled_overhead": overhead,
    }
    print(
        f"observability: {num_workers}-worker traced burst -> "
        f"{len(events)} events across {len(pids)} processes "
        f"({', '.join(report['trace_categories'])}); metrics contracts "
        f"validated ({len(ROUTER_METRICS_KEYS)} router + "
        f"{len(SIMULATOR_METRICS_KEYS)} simulator keys); streams workload "
        f"{t_off * 1e3:.2f} ms untraced vs {t_on * 1e3:.2f} ms traced "
        f"({overhead:+.1%} enabled overhead; disabled-path cost is gated "
        f"by the streams section floor)"
    )
    return report


#: Quick-mode sections, in run order.  ``--section all`` runs every one.
SECTIONS = (
    "engine",
    "streams",
    "graphs",
    "pgo",
    "adaptive",
    "coldstart",
    "serving",
    "jit",
    "obs",
)


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the self-checking speedup/cache summary instead of pytest-benchmark",
    )
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument(
        "--min-stream-speedup",
        type=float,
        default=1.5,
        help="multi-stream vs serial-issue speedup floor",
    )
    parser.add_argument(
        "--min-graph-speedup",
        type=float,
        default=1.3,
        help="graph replay vs per-step eager-submission speedup floor",
    )
    parser.add_argument(
        "--min-pgo-speedup",
        type=float,
        default=1.2,
        help="profile-optimized vs heuristic-placement replay speedup floor",
    )
    parser.add_argument(
        "--min-adaptive-speedup",
        type=float,
        default=1.15,
        help="adaptive serving loop converged-over-cold throughput floor",
    )
    parser.add_argument(
        "--min-coldstart-speedup",
        type=float,
        default=1.3,
        help="warm-store boot vs cold start time-to-converged floor",
    )
    parser.add_argument(
        "--min-serving-speedup",
        type=float,
        default=2.5,
        help="sharded-serving (4 workers) vs single-process simulated "
        "throughput floor",
    )
    parser.add_argument(
        "--min-jit-speedup",
        type=float,
        default=3.0,
        help="compiled tier vs batched engine speedup floor on the "
        "matmul template family",
    )
    parser.add_argument(
        "--max-serving-p99",
        type=float,
        default=60.0,
        help="simulated p99 end-to-end latency ceiling (seconds) for the "
        "sharded-serving trace",
    )
    parser.add_argument(
        "--section",
        choices=(*SECTIONS, "all"),
        default="all",
        help="which quick checks to run (CI runs these as a matrix); "
        "an unknown value is rejected with the valid choices listed",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the per-section report dicts (plus the gate "
        "thresholds in force) as machine-readable JSON — the CI bench "
        "artifact",
    )
    args = parser.parse_args()
    if args.quick:
        sections: dict[str, dict] = {}
        if args.section in ("engine", "all"):
            sections["engine"] = quick_report(min_speedup=args.min_speedup)
        if args.section in ("streams", "all"):
            sections["streams"] = stream_report(min_speedup=args.min_stream_speedup)
        if args.section in ("graphs", "all"):
            sections["graphs"] = graph_report(min_speedup=args.min_graph_speedup)
        if args.section in ("pgo", "all"):
            sections["pgo"] = pgo_report(min_speedup=args.min_pgo_speedup)
        if args.section in ("adaptive", "all"):
            sections["adaptive"] = adaptive_report(
                min_speedup=args.min_adaptive_speedup
            )
        if args.section in ("coldstart", "all"):
            sections["coldstart"] = coldstart_report(
                min_speedup=args.min_coldstart_speedup
            )
        if args.section in ("serving", "all"):
            sections["serving"] = serving_report(
                min_speedup=args.min_serving_speedup,
                max_p99_s=args.max_serving_p99,
            )
        if args.section in ("jit", "all"):
            sections["jit"] = jit_report(min_speedup=args.min_jit_speedup)
        if args.section in ("obs", "all"):
            sections["obs"] = obs_report()
        if args.json is not None:
            import json

            payload = {
                "bench": "bench_vm_execution",
                "unix_time": time.time(),
                "section": args.section,
                "gates": {
                    "min_speedup": args.min_speedup,
                    "min_stream_speedup": args.min_stream_speedup,
                    "min_graph_speedup": args.min_graph_speedup,
                    "min_pgo_speedup": args.min_pgo_speedup,
                    "min_adaptive_speedup": args.min_adaptive_speedup,
                    "min_coldstart_speedup": args.min_coldstart_speedup,
                    "min_serving_speedup": args.min_serving_speedup,
                    "min_jit_speedup": args.min_jit_speedup,
                    "max_serving_p99": args.max_serving_p99,
                },
                "sections": sections,
            }
            with open(args.json, "w") as f:
                json.dump(payload, f, indent=2, sort_keys=True)
                f.write("\n")
            print(f"wrote machine-readable report: {args.json}")
    else:
        parser.error("use pytest for full benchmarks, or pass --quick")


if __name__ == "__main__":
    main()
