"""Shared benchmark utilities: table rendering and result capture.

Every bench regenerates one table/figure of the paper's evaluation and
prints the rows (also persisted under ``benchmarks/results/``) so that
paper-vs-measured comparisons in EXPERIMENTS.md can be refreshed by
running ``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import os
from typing import Sequence

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_table(name: str, header: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render, print and persist one figure's data table."""
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    text = f"\n=== {name} ===\n" + "\n".join(lines) + "\n"
    print(text)
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text)
    return text


def fmt(value, digits: int = 1) -> str:
    """Format a numeric cell (None -> empty)."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"
