"""Autotuning a kernel and inspecting what the compiler did.

Tunes the matmul template for a decode shape and a prefill shape of
Llama-3.3-70B, then compiles the winning decode configuration and shows
the compiler's decisions: the shared-memory plan, selected PTX-level
instructions, and the emitted CUDA.

Run:  python examples/autotune_and_inspect.py
"""

from repro.autotune import Autotuner
from repro.compiler import compile_program
from repro.dtypes import float16, uint4
from repro.kernels import quantized_matmul_program
from repro.perf import L40S, MatmulWorkload
from repro.quant import QuantScheme


def main() -> None:
    tuner = Autotuner(L40S)

    print("tuning the Llama-3.3-70B gate_up projection (n=57344, k=8192):\n")
    for label, m in (("decode (1 token) ", 1), ("decode (16 tokens)", 16), ("prefill (4096)   ", 4096)):
        result = tuner.tune(MatmulWorkload.of(m, 57344, 8192, "u4"))
        print(f"  {label}: {result.describe()}")

    # Compile the decode winner on a reduced problem (VM-friendly sizes).
    decode_cfg = tuner.tune(MatmulWorkload.of(16, 57344, 8192, "u4")).config
    print(f"\ncompiling the decode winner: {decode_cfg.describe()}")
    program = quantized_matmul_program(
        64,
        decode_cfg.block_n * 2,
        decode_cfg.block_k * 2,
        float16,
        QuantScheme(uint4, group_size=decode_cfg.block_k * 2),
        decode_cfg,
    )
    kernel = compile_program(program)

    print(f"  verification:      {kernel.verification}")
    print(f"  shared memory:     {kernel.shared_bytes} bytes "
          f"({decode_cfg.num_stages} pipeline stages)")
    print(f"  instruction mix:   {kernel.selection.histogram()}")
    print(f"  threads per block: {program.num_threads}")

    print("\n--- kernel source (header) ---")
    print("\n".join(kernel.source.splitlines()[:14]))


if __name__ == "__main__":
    main()
