"""The paper's Section-10 extensions: codebook (LCQ) quantization via
the Lookup instruction, and microscaling (MX) block formats.

Compares three 4-bit-class schemes on the same weight matrix —
uniform int4, a fitted Lloyd-Max codebook, and MXFP4 — then runs the
codebook matmul kernel (which stages the codebook in shared memory and
expands codes with ``Lookup``) on the VM.

Run:  python examples/codebook_and_mx.py
"""

import numpy as np

from repro.dtypes import dtype_from_name, float16, uint8
from repro.kernels import MatmulConfig
from repro.quant import (
    MXFP4,
    MXFP6,
    QuantScheme,
    codebook_error,
    codebook_matmul_program,
    encode_weight,
    fit_codebook,
    mx_error,
    pack_codes,
    quantization_error,
)
from repro.vm import Interpreter


def main() -> None:
    rng = np.random.default_rng(0)
    # Heavy-tailed weights, the regime where uniform grids struggle.
    w = rng.standard_normal((256, 64)) * (1 + np.abs(rng.standard_normal((256, 64))))

    print("4-bit-class quantization schemes on heavy-tailed weights:\n")
    uniform = quantization_error(w, QuantScheme(dtype_from_name("i4"), 256))
    codebook = fit_codebook(w, code_bits=4)
    cb_err = codebook_error(w, codebook)
    mx4 = mx_error(w, MXFP4)
    mx6 = mx_error(w, MXFP6)
    print(f"  uniform int4 (per-channel scale): rel RMS {uniform:.4f}")
    print(f"  codebook 4-bit (Lloyd-Max, LCQ):  rel RMS {cb_err:.4f}")
    print(f"  MXFP4 (e2m1 + e8m0 per 32):       rel RMS {mx4:.4f} "
          f"({MXFP4.bits_per_element} effective bits)")
    print(f"  MXFP6 (e3m2 + e8m0 per 32):       rel RMS {mx6:.4f} "
          f"({MXFP6.bits_per_element} effective bits)")

    # Run the codebook kernel end to end.
    m, n, k = 16, 64, 256
    cfg = MatmulConfig(16, 16, 16)
    codes = encode_weight(w, codebook)
    packed = pack_codes(codes, codebook, cfg)
    table16 = float16.quantize(codebook.values)
    a = float16.quantize(rng.standard_normal((m, k)) * 0.2)

    program = codebook_matmul_program(m, n, k, codebook, cfg)
    interp = Interpreter()
    args = [
        interp.upload(a, float16),
        interp.upload(packed, uint8),
        interp.upload(table16, float16),
        interp.alloc_output([m, n], float16),
    ]
    interp.launch(program, args)
    result = interp.download(args[-1], [m, n], float16)
    reference = a.astype(np.float64) @ table16[codes]
    err = np.max(np.abs(result - reference) / (np.abs(reference) + 0.5))
    print(f"\ncodebook matmul kernel (Lookup instruction): rel err {err:.5f}")
    assert err < 0.02
    print("codes travel through the standard transform/View pipeline;")
    print("the codebook is staged in shared memory once per thread block.")


if __name__ == "__main__":
    main()
