"""Designing a custom sub-byte floating-point format.

Tilus supports floats with *arbitrary* exponent/mantissa splits (paper
Section 7).  This example compares three different 5-bit formats —
e3m1, e2m2 and e1m3 — on a realistic weight distribution, picks the most
accurate, and runs a matmul kernel with it end to end.

Run:  python examples/custom_float_format.py
"""

import numpy as np

from repro import ops
from repro.dtypes import FloatType, float_, int_
from repro.quant import QuantScheme, quantization_error


def main() -> None:
    rng = np.random.default_rng(42)
    # Transformer weights are roughly Gaussian with outliers.
    weight = rng.standard_normal((512, 128))
    weight[rng.random(weight.shape) < 0.002] *= 8  # outliers

    print("5-bit format shoot-out on a Gaussian-with-outliers weight:\n")
    candidates = {
        "e3m1": float_(5, 3, 1),
        "e2m2": float_(5, 2, 2),
        "e1m3": float_(5, 1, 3),
        "int5": int_(5),
    }
    errors = {}
    for name, dtype in candidates.items():
        scheme = QuantScheme(dtype, group_size=128)
        errors[name] = quantization_error(weight, scheme)
        if isinstance(dtype, FloatType):
            values = dtype.representable_values()
            print(
                f"  {name}: {values.size} representable values, "
                f"max {dtype.max_value:g}, rel RMS error {errors[name]:.4f}"
            )
        else:
            print(f"  {name}: 31 uniform steps, rel RMS error {errors[name]:.4f}")

    best_name = min(errors, key=errors.get)
    best = candidates[best_name]
    print(f"\nbest 5-bit format for this distribution: {best_name}")

    # Now run an actual kernel with the winning format.
    a = rng.standard_normal((4, 512)) * 0.3
    result = ops.quantized_matmul(a, weight, weight_dtype=best, group_size=128)
    reference = ops.reference_quantized_matmul(a, weight, best, 128)
    err = np.max(np.abs(result - reference) / (np.abs(reference) + 0.5))
    print(f"kernel output matches reference within {err:.5f} relative error")
    assert err < 0.02

    # The broader point: the format is a *parameter*, not a port.
    print("\nevery one of these kernels came from the same program template;")
    print("adding a new format is one FloatType(...) away.")


if __name__ == "__main__":
    main()
