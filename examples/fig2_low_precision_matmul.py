"""Paper Figure 2, verbatim: FP16 x INT6 matmul written in the Tilus DSL.

Walks through the whole pipeline of the paper's worked example:

1. ``transform_b`` (Figure 9) rearranges the int6 weight into the
   tile-packed u8 representation — on the device, via the VM;
2. the matmul kernel loads packed bytes, reinterprets them (``View``) to
   int6 in the mma layout at zero cost, casts to f16 and accumulates
   with ``Dot``;
3. both programs are printed in the paper's surface syntax and the
   matmul is compiled to CUDA C.

Run:  python examples/fig2_low_precision_matmul.py
"""

import numpy as np

from repro.compiler import compile_program
from repro.dtypes import float16, float32, int6, uint8
from repro.lang import ProgramBuilder, pointer
from repro.layout import local, mma_m16n8k16
from repro.vm import Interpreter

M, N, K = 64, 32, 64
BM, BN, BK = 16, 8, 16
mma = mma_m16n8k16()
TILE_BYTES = BK * BN * 6 // 8  # 96 bytes of packed int6 per tile
U8_LAYOUT = local(3).spatial(32)  # 32 threads x 3 bytes = 24 bits each


def build_transform() -> "Program":
    """Figure 9: i6[K, N] -> u8[K/BK, N/BN, 96]."""
    pb = ProgramBuilder("transform_b", grid=[K // BK, N // BN])
    b_ptr = pb.param("b_ptr", pointer(int6))
    tb_ptr = pb.param("transformed_b_ptr", pointer(uint8))
    bk, bj = pb.block_indices()
    b_in = pb.view_global(b_ptr, dtype=int6, shape=[K, N])
    b_out = pb.view_global(tb_ptr, dtype=uint8, shape=[K // BK, N // BN, TILE_BYTES])
    tile = pb.load_global(b_in, layout=mma.b_layout, offset=[bk * BK, bj * BN])
    as_bytes = pb.view(tile, dtype=uint8, layout=U8_LAYOUT)
    pb.store_global(as_bytes, b_out, offset=[bk, bj, 0])
    return pb.finish()


def build_matmul() -> "Program":
    """Figure 2(a): the low-precision matmul kernel."""
    pb = ProgramBuilder("matmul", grid=[M // BM, N // BN])
    a_ptr = pb.param("a_ptr", pointer(float16))
    tb_ptr = pb.param("transformed_b_ptr", pointer(uint8))
    c_ptr = pb.param("c_ptr", pointer(float16))
    bi, bj = pb.block_indices()
    ga = pb.view_global(a_ptr, dtype=float16, shape=[M, K])
    gb = pb.view_global(tb_ptr, dtype=uint8, shape=[K // BK, N // BN, TILE_BYTES])
    gc = pb.view_global(c_ptr, dtype=float16, shape=[M, N])
    acc = pb.allocate_register(float32, layout=mma.c_layout, init=0.0)
    with pb.for_range(K // BK) as bk:
        a = pb.load_global(ga, layout=mma.a_layout, offset=[bi * BM, bk * BK])
        b = pb.load_global(gb, layout=U8_LAYOUT, offset=[bk, bj, 0])
        b1 = pb.view(b, dtype=int6, layout=mma.b_layout)   # zero cost
        b2 = pb.cast(b1, float16)                          # vectorized cast
        pb.dot(a, b2, acc, out=acc)
    out = pb.cast(acc, float16)
    pb.store_global(out, gc, offset=[bi * BM, bj * BN])
    return pb.finish()


def main() -> None:
    transform = build_transform()
    matmul = build_matmul()

    print("--- transform_b (Figure 9) ---")
    print(transform)
    print("\n--- matmul (Figure 2) ---")
    print(matmul)

    rng = np.random.default_rng(0)
    a_host = float16.quantize(rng.standard_normal((M, K)) * 0.5)
    b_host = np.clip(rng.integers(-32, 32, size=(K, N)), -32, 31)

    interp = Interpreter()
    a_dev = interp.upload(a_host, float16)
    b_dev = interp.upload(b_host, int6)
    tb_dev = interp.alloc_output([K // BK, N // BN, TILE_BYTES], uint8)
    c_dev = interp.alloc_output([M, N], float16)

    interp.launch(transform, [b_dev, tb_dev])
    interp.launch(matmul, [a_dev, tb_dev, c_dev])

    result = interp.download(c_dev, [M, N], float16)
    reference = float16.quantize(a_host.astype(np.float64) @ b_host)
    error = np.max(np.abs(result - reference) / (np.abs(reference) + 1))
    print(f"\nmax relative error vs float64 reference: {error:.6f}")
    assert error < 1e-2

    kernel = compile_program(matmul)
    print("\n--- generated CUDA (first 30 lines) ---")
    print("\n".join(kernel.source.splitlines()[:30]))
    print(f"\nselected instructions: {kernel.selection.histogram()}")


if __name__ == "__main__":
    main()
