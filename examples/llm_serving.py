"""End-to-end LLM serving: how much does arbitrary-precision buy you?

Simulates serving the paper's three models on an NVIDIA L40S with every
weight width from 8 down to 2 bits, reporting decode latency, the
accuracy-efficiency trade-off knob the paper motivates (5-7 bit widths
that only Tilus supports efficiently), and the out-of-memory boundary.

Run:  python examples/llm_serving.py
"""

from repro.dtypes import dtype_from_name, float16
from repro.llm import MODELS, ServingConfig, ServingSimulator, simulate_cell
from repro.perf import L40S


def main() -> None:
    print(f"device: {L40S.name} ({L40S.dram_bytes / 1024**3:.0f} GiB, "
          f"{L40S.mem_bandwidth / 1e9:.0f} GB/s)\n")

    for model in MODELS.values():
        print(f"=== {model.name} "
              f"({model.total_params / 1e9:.1f} B params) ===")
        baseline = simulate_cell(model, ServingConfig("vllm", float16, L40S), "decode", 1)
        base_text = (
            f"{baseline.latency_ms:.1f} ms" if baseline.ok else baseline.error
        )
        print(f"  f16 (vLLM):          decode@1 = {base_text}")

        for bits in (8, 7, 6, 5, 4, 3, 2):
            dtype = dtype_from_name(f"u{bits}")
            cfg = ServingConfig("tilus", dtype, L40S)
            cell = simulate_cell(model, cfg, "decode", 1)
            if not cell.ok:
                print(f"  u{bits} (Tilus):          decode@1 = {cell.error}")
                continue
            sim = ServingSimulator(model, cfg)
            weights_gib = sim.weight_bytes() / 1024**3
            note = ""
            if baseline.ok:
                note = f"  ({baseline.latency_ms / cell.latency_ms:.2f}x vs f16)"
            print(
                f"  u{bits} (Tilus):          decode@1 = {cell.latency_ms:6.1f} ms, "
                f"weights {weights_gib:5.1f} GiB{note}"
            )
        # Throughput at batch 16 — where Ladder's missing pipelining bites.
        t16 = simulate_cell(model, ServingConfig("tilus", dtype_from_name("u4"), L40S), "decode", 16)
        l16 = simulate_cell(model, ServingConfig("ladder", dtype_from_name("u4"), L40S), "decode", 16)
        if t16.ok and l16.ok:
            print(
                f"  u4 @ 16 tokens:      Tilus {t16.latency_ms:.1f} ms vs "
                f"Ladder {l16.latency_ms:.1f} ms "
                f"({l16.latency_ms / t16.latency_ms:.1f}x gap)"
            )
        print()

    print("Note: 5-7 bit rows are the accuracy-efficiency sweet spot the paper")
    print("motivates; no baseline system provides kernels for those widths.")


if __name__ == "__main__":
    main()
