"""Quickstart: a quantized matmul in five lines.

Quantizes a weight matrix to int6 (a bit width no standard GPU kernel
supports), transforms its layout, compiles the Tilus matmul template,
and executes it bit-accurately on the VM.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ops
from repro.dtypes import int6

rng = np.random.default_rng(0)
activations = rng.standard_normal((8, 256)) * 0.3   # [tokens, k]
weight = rng.standard_normal((256, 64))             # [k, n]

result = ops.quantized_matmul(activations, weight, weight_dtype=int6, group_size=64)
reference = ops.reference_quantized_matmul(activations, weight, int6, 64)

error = np.max(np.abs(result - reference) / (np.abs(reference) + 0.5))
print(f"output shape: {result.shape}")
print(f"max relative error vs reference: {error:.5f}")
assert error < 0.02
print("OK — int6 matmul through quantize -> transform -> compile -> VM")
