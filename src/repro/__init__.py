"""Reproduction of *Tilus: A Tile-Level GPGPU Programming Language for
Low-Precision Computation* (ASPLOS 2026).

Subpackages:
    :mod:`repro.dtypes`   — standard + arbitrary low-precision data types
    :mod:`repro.layout`   — the algebraic layout system
    :mod:`repro.ir`       — the thread-block-level VM language
    :mod:`repro.lang`     — the Python DSL (ProgramBuilder)
    :mod:`repro.compiler` — verifier, planners, selection, CUDA codegen
    :mod:`repro.vm`       — bit-accurate interpreter (GPU substitute)
    :mod:`repro.runtime`  — kernel cache, workspace, execution context
    :mod:`repro.quant`    — quantization + weight layout transforms
    :mod:`repro.kernels`  — the parameterized quantized-matmul template
    :mod:`repro.autotune` — tile-configuration tuner
    :mod:`repro.perf`     — analytical GPU model + baseline systems
    :mod:`repro.llm`      — end-to-end serving simulation
    :mod:`repro.ops`      — one-call user API
    :mod:`repro.core`     — stable re-export of the primary contribution
"""

__version__ = "0.1.0"

from repro import core  # noqa: F401  (stable public surface)
