"""Autotuning over the matmul template's tile configurations."""

from repro.autotune.tuner import (
    AutotuneResult,
    Autotuner,
    config_latency_estimate,
    enumerate_valid_configs,
)

__all__ = [
    "Autotuner",
    "AutotuneResult",
    "enumerate_valid_configs",
    "config_latency_estimate",
]
