"""Autotuner for the quantized matmul template (paper Section 9.3).

"A single virtual machine program template is implemented to support
matrix multiplication with all quantized types, taking tile sizes as
tunable hyperparameters ... around 200 configurations per operator."

The tuner enumerates the valid :class:`~repro.kernels.MatmulConfig` points
for a workload, scores each with a config-aware analytical estimate
(occupancy, wave quantization, pipelining overlap, split-k reduction
traffic) and returns the best.  Results are memoized per workload key,
mirroring the paper's compiled-kernel cache.

Three refinement tiers: :meth:`Autotuner.tune` is purely analytical,
:meth:`Autotuner.tune_measured` executes the analytical head of the
ranking, and :meth:`Autotuner.tune_profiled` closes the PGO loop — a
recorded :class:`~repro.runtime.profiling.Profile` (e.g. emitted by a
serving run) replaces fresh measurement runs for every candidate whose
specialization key was already seen, so re-tuning after real traffic
executes nothing that traffic already measured.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import AutotuneError, CompilationError
from repro.kernels.config import MatmulConfig, default_configs
from repro.perf.gpus import GpuSpec, L40S
from repro.perf.workload import MatmulWorkload

#: Kernel launch overhead used by the per-config estimate (s).
_LAUNCH = 2.8e-6


def enumerate_valid_configs(
    workload: MatmulWorkload, gpu: GpuSpec, include_split_k: bool = True
) -> list[MatmulConfig]:
    """All template configurations that can compile for this workload."""
    out: list[MatmulConfig] = []
    for base in default_configs():
        split_ks = (1, 2, 4, 8) if include_split_k else (1,)
        for sk in split_ks:
            cfg = MatmulConfig(
                base.block_m,
                base.block_n,
                base.block_k,
                base.warps_m,
                base.warps_n,
                base.num_stages,
                split_k=sk,
            )
            try:
                cfg.validate(workload.weight_dtype)
            except CompilationError:
                continue
            if workload.n % cfg.block_n or workload.k % cfg.block_k:
                continue
            if (workload.k // cfg.block_k) % sk:
                continue
            if cfg.shared_bytes(workload.act_dtype.nbits, workload.weight_dtype.nbits) > gpu.shared_mem_per_sm:
                continue
            if cfg.block_m > 2 * workload.m and cfg.block_m > 16:
                continue  # grossly oversized m tiles only waste work
            out.append(cfg)
    return out


def config_latency_estimate(
    workload: MatmulWorkload, cfg: MatmulConfig, gpu: GpuSpec
) -> float:
    """Analytical latency of one configuration (s).

    Models the effects the tuner must trade off:

    - *occupancy / wave quantization*: few blocks leave SMs idle, so the
      achieved DRAM bandwidth scales with grid utilization;
    - *split-k*: multiplies the grid (helping small-m workloads fill the
      GPU) at the cost of a partial-sum reduction pass;
    - *pipelining*: ``num_stages >= 2`` overlaps memory with compute,
      otherwise the two serialize;
    - *tile efficiency*: padding waste when the tile overshoots ``m``.
    """
    grid_m = math.ceil(workload.m / cfg.block_m)
    grid_n = workload.n // cfg.block_n
    blocks = grid_m * grid_n * cfg.split_k
    # Each SM runs a limited number of blocks concurrently; approximate
    # concurrency by shared-memory occupancy.
    smem = max(1, cfg.shared_bytes(workload.act_dtype.nbits, workload.weight_dtype.nbits))
    blocks_per_sm = max(1, min(gpu.max_blocks_per_sm, gpu.shared_mem_per_sm // smem))
    concurrent = gpu.num_sms * min(blocks_per_sm, 2)
    utilization = min(1.0, blocks / concurrent)

    padded_m = grid_m * cfg.block_m

    # DRAM traffic with tiling reuse: every column stripe re-reads the A
    # panel unless it fits in L2; every row stripe re-reads B (L2 absorbs
    # a fraction).  Split-k partials cost an extra f32 read+write pass.
    a_fits_l2 = workload.act_bytes <= gpu.l2_bytes * 0.5
    a_traffic = workload.act_bytes * (1.0 if a_fits_l2 else grid_n * 0.25)
    b_traffic = (workload.weight_bytes + workload.scale_bytes) * (
        1.0 if grid_m == 1 else 1.0 + 0.25 * (grid_m - 1)
    )
    io_bytes = a_traffic + b_traffic + workload.out_bytes * cfg.split_k
    mem = io_bytes / (gpu.mem_bandwidth * 0.92 * utilization)

    flops = 2.0 * padded_m * workload.n * workload.k
    compute = flops / (gpu.tc_fp16_flops * 0.80)
    # Per-iteration issue cost (addresses, predicates, synchronization):
    # many small tiles serialize on the instruction pipeline.
    k_iters = workload.k // (cfg.block_k * cfg.split_k)
    waves = max(1.0, blocks / concurrent)
    issue = waves * k_iters * 0.05e-6
    # Reduction pass for split-k partials.
    reduction = (
        (cfg.split_k - 1) * workload.m * workload.n * 4 * 2 / (gpu.mem_bandwidth * 0.92)
        if cfg.split_k > 1
        else 0.0
    )
    if cfg.num_stages >= 2:
        core = max(mem, compute)
    else:
        core = mem + compute
    return core + issue + reduction + _LAUNCH * cfg.split_k


@dataclass(frozen=True)
class AutotuneResult:
    """Winning configuration and its surrounding statistics."""

    config: MatmulConfig
    estimated_latency: float
    num_candidates: int

    def describe(self) -> str:
        return (
            f"{self.config.describe()} @ {self.estimated_latency * 1e6:.1f} us "
            f"(of {self.num_candidates} candidates)"
        )


class Autotuner:
    """Memoizing tuner: one search per (workload shape, dtype, gpu).

    The memo is a bounded LRU — the same discipline as the runtime's
    kernel specialization cache — so a long-lived tuner fed a stream of
    distinct workloads (a serving fleet re-tuning per shape) holds at
    most ``max_entries`` results instead of growing without bound.
    ``hits``/``misses``/``evictions`` expose the behaviour to tests and
    serving counters.
    """

    def __init__(
        self,
        gpu: GpuSpec = L40S,
        max_entries: int = 64,
        store=None,
        store_scope: str = "tuner",
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.gpu = gpu
        self.max_entries = max_entries
        self._cache: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if store is not None and isinstance(store, str):
            from repro.store import TuningStore

            store = TuningStore(store)
        #: Optional persistent tuning store: ``tune_profiled`` rankings
        #: stamped by their profile survive the process through it.
        self.store = store
        self.store_scope = store_scope

    # -- the memo ------------------------------------------------------------
    def _cache_get(self, key: tuple):
        """The memoized entry for ``key`` (refreshing recency), or None.
        Counts the hit; the miss is counted by :meth:`_cache_put` callers
        via the ``None`` return (stale ``tune_profiled`` stamps count as
        misses there, not here)."""
        entry = self._cache.get(key)
        if entry is None:
            return None
        self._cache.move_to_end(key)
        return entry

    def _cache_put(self, key: tuple, entry) -> None:
        self.misses += 1
        self._cache[key] = entry
        self._cache.move_to_end(key)
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
            self.evictions += 1

    def _key(self, workload: MatmulWorkload) -> tuple:
        return (
            workload.m,
            workload.n,
            workload.k,
            workload.weight_dtype.name,
            workload.act_dtype.name,
            self.gpu.name,
        )

    def tune(self, workload: MatmulWorkload) -> AutotuneResult:
        """Return the best configuration for ``workload`` (memoized)."""
        key = self._key(workload)
        cached = self._cache_get(key)
        if cached is not None:
            self.hits += 1
            return cached
        candidates = enumerate_valid_configs(workload, self.gpu)
        if not candidates:
            raise AutotuneError(
                f"no valid configuration for {workload.describe()} on {self.gpu}"
            )
        scored = [
            (config_latency_estimate(workload, cfg, self.gpu), cfg)
            for cfg in candidates
        ]
        scored.sort(key=lambda pair: pair[0])
        best_latency, best_cfg = scored[0]
        result = AutotuneResult(best_cfg, best_latency, len(candidates))
        self._cache_put(key, result)
        return result

    def cache_size(self) -> int:
        return len(self._cache)

    def counters(self) -> dict:
        """JSON-friendly memo counter snapshot.  ``evictions`` counts
        both LRU overflow and ``tune_profiled`` stale-stamp slots — a
        re-rank under a new profile stamp evicts the old ranking."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._cache),
        }

    # -- persistent rankings -------------------------------------------------
    def _store_load(self, key: tuple, stamp):
        """A stored ranking for (key, exact stamp) reconstructed as an
        :class:`AutotuneResult`, or None (store off / absent / corrupt /
        stale — every failure degrades to a fresh ranking)."""
        if self.store is None or stamp is None:
            return None
        from repro.errors import VMError

        try:
            payload = self.store.load_rankings(
                self.store_scope, repr(key), list(stamp)
            )
        except VMError:
            return None
        if payload is None:
            return None
        try:
            config = MatmulConfig(**payload["config"])
            return AutotuneResult(
                config,
                float(payload["estimated_latency"]),
                int(payload["num_candidates"]),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def _store_publish(self, key: tuple, stamp, result: AutotuneResult) -> None:
        if self.store is None or stamp is None:
            return
        from dataclasses import asdict

        payload = {
            "config": asdict(result.config),
            "estimated_latency": result.estimated_latency,
            "num_candidates": result.num_candidates,
        }
        self.store.publish_rankings(
            self.store_scope, repr(key), payload, list(stamp)
        )

    # -- measured tuning -----------------------------------------------------
    def _trial_configs(self, workload: MatmulWorkload, top_k: int) -> list[MatmulConfig]:
        """The analytical head of the ranking — the candidates worth the
        cost of real execution (split-k needs the runtime workspace
        reduction pass, so trials stick to single-kernel configs)."""
        candidates = enumerate_valid_configs(workload, self.gpu, include_split_k=False)
        scored = sorted(
            ((config_latency_estimate(workload, cfg, self.gpu), cfg) for cfg in candidates),
            key=lambda pair: pair[0],
        )
        trials = [cfg for _, cfg in scored[:top_k]]
        if not trials:
            raise AutotuneError(
                f"no measurable configuration for {workload.describe()} on {self.gpu}"
            )
        return trials

    def _trial_program(self, workload: MatmulWorkload, cfg: MatmulConfig):
        """Instantiate the template for one trial configuration."""
        from repro.kernels import quantized_matmul_program
        from repro.quant import QuantScheme

        scheme = QuantScheme(
            workload.weight_dtype, group_size=min(workload.group_size, workload.k)
        )
        program = quantized_matmul_program(
            workload.m, workload.n, workload.k, workload.act_dtype, scheme, cfg
        )
        return program, scheme

    def _measure_config(
        self, workload: MatmulWorkload, cfg: MatmulConfig, runtime, repeats: int, rng
    ) -> float:
        """Best-of-``repeats`` wall time of one configuration on the VM."""
        from repro.dtypes import float16, uint8
        from repro.kernels import matmul_layouts
        from repro.quant import quantize_weight, transform_weight

        program, scheme = self._trial_program(workload, cfg)
        q, scales = quantize_weight(
            rng.standard_normal((workload.k, workload.n)), scheme
        )
        lay = matmul_layouts(cfg, workload.weight_dtype)
        packed = transform_weight(q, workload.weight_dtype, lay.b_warp)
        a = workload.act_dtype.quantize(
            rng.standard_normal((workload.m, workload.k))
        )
        args = [
            runtime.upload(a, workload.act_dtype),
            runtime.upload(packed, uint8),
            runtime.upload(float16.quantize(scales), float16),
            runtime.empty([workload.m, workload.n], workload.act_dtype),
        ]
        # Untimed warmup: the first launch of a fresh configuration pays
        # the one-time lowering/compile cost (a specialization-cache
        # miss).  Folding that into the timed loop inflates the first
        # sample and, with min-of-repeats, silently biases single-repeat
        # measurements; every timed launch below hits the spec cache.
        runtime.launch(program, args)
        elapsed = math.inf
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            runtime.launch(program, args)
            elapsed = min(elapsed, time.perf_counter() - start)
        return elapsed

    def tune_measured(
        self,
        workload: MatmulWorkload,
        runtime=None,
        top_k: int = 3,
        repeats: int = 3,
    ) -> AutotuneResult:
        """Refine the analytical ranking by executing the top candidates.

        The ``top_k`` analytically best configurations are instantiated as
        real VM programs and launched ``repeats`` times each on the given
        (or a fresh) :class:`~repro.runtime.Runtime`; the fastest measured
        wall-clock wins.  Every repeat of a trial after the first is a
        specialization-cache hit — the cache key is structural, so even
        though each launch rebuilds nothing, re-tuning the same workload
        later skips lowering entirely as well.  Results are memoized per
        workload key.
        """
        import numpy as np

        from repro.runtime import Runtime

        key = self._key(workload) + ("measured",)
        cached = self._cache_get(key)
        if cached is not None:
            self.hits += 1
            return cached
        trials = self._trial_configs(workload, top_k)
        runtime = runtime if runtime is not None else Runtime()
        rng = np.random.default_rng(0)
        best_cfg, best_time = None, math.inf
        for cfg in trials:
            elapsed = self._measure_config(workload, cfg, runtime, repeats, rng)
            if elapsed < best_time:
                best_cfg, best_time = cfg, elapsed
        result = AutotuneResult(best_cfg, best_time, len(trials))
        self._cache_put(key, result)
        return result

    # -- profile-guided tuning -----------------------------------------------
    def tune_profiled(
        self,
        workload: MatmulWorkload,
        profile,
        runtime=None,
        top_k: int = 3,
        repeats: int = 3,
    ) -> AutotuneResult:
        """:meth:`tune_measured`, with recorded profiles standing in for
        fresh measurement runs.

        For each trial configuration the template is instantiated and its
        **specialization key** computed; if ``profile`` (a
        :class:`~repro.runtime.profiling.Profile`, e.g. recorded by a
        profiled serving run and loaded from JSON — or an
        :class:`~repro.runtime.adaptive.AdaptivePolicy`, whose observed
        serving profile is consulted directly) holds launches of that
        key, their mean recorded wall time is used directly and *nothing
        executes*.  Only candidates the profile has never seen fall back
        to real measurement (on the given or a lazily created runtime).
        This is the PGO hand-off: production traffic measures, the tuner
        re-ranks for free.

        Caveat on mixing sources: recorded times are *means* over the
        profiled traffic (warm and cold calls alike) while fresh
        measurement takes the best of ``repeats`` — when the head of the
        ranking mixes both, the comparison mildly favours the
        never-profiled candidates.  Record comparable traffic for every
        candidate you care about, or fall back to
        :meth:`tune_measured` for a level playing field.

        Results are memoized per workload, keyed to the profile's
        content stamp: re-tuning after the profile absorbed new traffic
        re-ranks instead of returning the stale winner, while one
        workload keeps at most one cached entry (the latest stamp
        replaces the previous — no growth under live traffic).
        """
        import numpy as np

        from repro.compiler.pipeline import specialization_key
        from repro.runtime.profiling import Profile, spec_string

        if profile is not None and not isinstance(profile, Profile):
            # An AdaptivePolicy (or anything carrying a .profile): the
            # serving loop's policy is the natural handle to pass here.
            profile = getattr(profile, "profile", profile)
        key = self._key(workload) + ("profiled",)
        stamp = profile.stamp() if profile is not None else None
        cached = self._cache_get(key)
        if cached is not None and cached[0] == stamp:
            self.hits += 1
            return cached[1]
        if cached is not None:
            # Stale stamp: the slot is replaced below.  That replacement
            # is an eviction of the old ranking, and counting it keeps
            # ``evictions`` an honest census of every discarded entry.
            self.evictions += 1
        stored = self._store_load(key, stamp)
        if stored is not None:
            self._cache_put(key, (stamp, stored))
            return stored
        trials = self._trial_configs(workload, top_k)
        rng = np.random.default_rng(0)
        best_cfg, best_time = None, math.inf
        for cfg in trials:
            program, _ = self._trial_program(workload, cfg)
            # Pointer arguments are excluded from the key, so zeros
            # stand in for the device addresses a real launch would bind.
            spec = spec_string(
                specialization_key(program, [0] * len(program.params))
            )
            elapsed = profile.spec_seconds(spec) if profile is not None else None
            if elapsed is None:
                if runtime is None:
                    from repro.runtime import Runtime

                    runtime = Runtime()
                elapsed = self._measure_config(workload, cfg, runtime, repeats, rng)
            if elapsed < best_time:
                best_cfg, best_time = cfg, elapsed
        result = AutotuneResult(best_cfg, best_time, len(trials))
        self._cache_put(key, (stamp, result))
        self._store_publish(key, stamp, result)
        return result
