"""Command-line interface: regenerate paper figures without pytest.

Usage::

    python -m repro fig10 [--batch 1]
    python -m repro fig11
    python -m repro fig12
    python -m repro fig13
    python -m repro fig14
    python -m repro headline
    python -m repro demo          # run the Figure-2 kernel on the VM
    python -m repro trace summarize <trace.json>   # per-phase/per-process
                                  # breakdown of an exported Chrome trace
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.dtypes import float16, uint2, uint4, uint8
from repro.llm import MODELS, QWEN2_5_32B, ServingConfig, simulate_cell
from repro.perf import A100, ALL_SYSTEMS, H100, L40S, MatmulWorkload, speedup_vs_cublas

_SHAPES = [(8192, 8192), (8192, 28672), (57344, 8192)]
_DTYPES = ["u8", "f6", "u4", "i4", "u2", "u1"]


def _print_table(header: list[str], rows: list[list[str]]) -> None:
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def cmd_fig10(args: argparse.Namespace) -> None:
    rows = []
    for name in ("triton", "quantllm", "ladder", "marlin", "tilus"):
        system = ALL_SYSTEMS[name]
        for n, k in _SHAPES:
            row = [system.display, f"BS{args.batch}-{n}-{k}"]
            for wname in _DTYPES:
                w = MatmulWorkload.of(args.batch, n, k, wname)
                row.append(
                    f"{speedup_vs_cublas(system, w, L40S):.1f}"
                    if system.supports(w, L40S)
                    else "-"
                )
            rows.append(row)
    _print_table(["system", "workload", *_DTYPES], rows)


def cmd_fig11(args: argparse.Namespace) -> None:
    from repro.dtypes import all_weight_dtypes

    tilus = ALL_SYSTEMS["tilus"]
    table: dict[str, dict[int, float]] = {"uint": {}, "int": {}, "float": {}}
    for dtype in all_weight_dtypes():
        kind = "float" if dtype.is_float else ("int" if dtype.is_signed else "uint")
        w = MatmulWorkload(m=16, n=57344, k=8192, weight_dtype=dtype)
        table[kind][dtype.nbits] = speedup_vs_cublas(tilus, w, L40S)
    rows = [
        [kind] + [f"{table[kind].get(b, float('nan')):.1f}" if b in table[kind] else "-" for b in range(8, 0, -1)]
        for kind in ("uint", "int", "float")
    ]
    _print_table(["kind", *[f"{b}b" for b in range(8, 0, -1)]], rows)


def cmd_fig12(args: argparse.Namespace) -> None:
    columns = [("vllm", float16), ("ladder", uint8), ("tilus", uint8),
               ("ladder", uint4), ("tilus", uint4), ("ladder", uint2), ("tilus", uint2)]
    rows = []
    for model in MODELS.values():
        for stage, tokens in (("decode", 1), ("decode", 16), ("prefill", 2048)):
            row = [model.name, f"{stage}@{tokens}"]
            for sysname, dtype in columns:
                cell = simulate_cell(model, ServingConfig(sysname, dtype, L40S), stage, tokens)
                row.append(f"{cell.latency_ms:.1f}" if cell.ok else cell.error)
            rows.append(row)
    _print_table(["model", "stage", *[f"{s}-{d.name}" for s, d in columns]], rows)


def cmd_fig13(args: argparse.Namespace) -> None:
    rows = []
    for gpu in (A100, L40S, H100):
        for stage, tokens in (("decode", 1), ("decode", 16), ("prefill", 2048)):
            row = [gpu.name, f"{stage}@{tokens}"]
            for sysname, dtype in (("vllm", float16), ("ladder", uint4), ("tilus", uint4)):
                cell = simulate_cell(QWEN2_5_32B, ServingConfig(sysname, dtype, gpu), stage, tokens)
                row.append(f"{cell.latency_ms:.0f}" if cell.ok else cell.error)
            rows.append(row)
    _print_table(["gpu", "stage", "vLLM-f16", "Ladder-u4", "Tilus-u4"], rows)


def cmd_fig14(args: argparse.Namespace) -> None:
    batches = [1, 4, 8, 16, 4096, 8192, 12288]
    curves = [("triton", "u4"), ("quantllm", "f6"), ("ladder", "u4"),
              ("tilus", "f6"), ("tilus", "u4")]
    rows = []
    for sysname, wname in curves:
        system = ALL_SYSTEMS[sysname]
        row = [f"{system.display} ({wname})"]
        for m in batches:
            w = MatmulWorkload.of(m, 57344, 8192, wname)
            row.append(
                f"{speedup_vs_cublas(system, w, L40S):.2f}"
                if system.supports(w, L40S)
                else "-"
            )
        rows.append(row)
    _print_table(["system", *[str(b) for b in batches]], rows)


def cmd_headline(args: argparse.Namespace) -> None:
    tilus = ALL_SYSTEMS["tilus"]
    rows = []
    for base, paper in (("triton", 1.75), ("ladder", 2.61), ("quantllm", 1.29), ("marlin", 1.03)):
        system = ALL_SYSTEMS[base]
        ratios = []
        for m in (1, 16):
            for n, k in _SHAPES:
                for wname in _DTYPES:
                    w = MatmulWorkload.of(m, n, k, wname)
                    if system.supports(w, L40S):
                        ratios.append(
                            system.matmul_latency(w, L40S) / tilus.matmul_latency(w, L40S)
                        )
        ours = float(np.exp(np.mean(np.log(ratios))))
        rows.append([base, f"{ours:.2f}", f"{paper:.2f}"])
    _print_table(["baseline", "ours", "paper"], rows)


def cmd_demo(args: argparse.Namespace) -> None:
    """Run the Figure-2 FP16xINT6 kernel end to end on the VM."""
    from repro import ops
    from repro.dtypes import int6

    rng = np.random.default_rng(0)
    a = rng.standard_normal((8, 256)) * 0.3
    w = rng.standard_normal((256, 64))
    out = ops.quantized_matmul(a, w, weight_dtype=int6, group_size=64)
    ref = ops.reference_quantized_matmul(a, w, int6, 64)
    err = float(np.max(np.abs(out - ref) / (np.abs(ref) + 0.5)))
    print(f"fp16 x int6 matmul on the VM: shape {out.shape}, rel err {err:.5f}")


def cmd_trace(args: argparse.Namespace) -> None:
    """Summarize an exported Chrome trace (see :mod:`repro.obs.trace`)."""
    from repro.obs.trace import load_trace, summarize_trace

    with open(args.trace) as f:
        trace = load_trace(f.read())
    summary = summarize_trace(trace)
    print(f"{args.trace}: {len(trace['traceEvents'])} events")
    print()
    _print_table(
        ["phase", "spans", "instants", "busy_ms", "mean_ms"],
        [
            [p["cat"], p["spans"], p["instants"],
             f"{p['busy_ms']:.3f}", f"{p['mean_ms']:.4f}"]
            for p in summary["phases"]
        ],
    )
    print()
    _print_table(
        ["pid", "process", "lanes", "events", "busy_ms"],
        [
            [p["pid"], p["process"], p["lanes"], p["events"], f"{p['busy_ms']:.3f}"]
            for p in summary["processes"]
        ],
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Tilus reproduction: regenerate paper figures"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p10 = sub.add_parser("fig10", help="kernel speedups vs cuBLAS f16")
    p10.add_argument("--batch", type=int, default=1, choices=[1, 16])
    p10.set_defaults(func=cmd_fig10)
    for name, func in (
        ("fig11", cmd_fig11), ("fig12", cmd_fig12), ("fig13", cmd_fig13),
        ("fig14", cmd_fig14), ("headline", cmd_headline), ("demo", cmd_demo),
    ):
        p = sub.add_parser(name)
        p.set_defaults(func=func)
    ptrace = sub.add_parser("trace", help="inspect exported traces")
    trace_sub = ptrace.add_subparsers(dest="trace_command", required=True)
    psummarize = trace_sub.add_parser(
        "summarize", help="per-phase and per-process breakdown of a Chrome trace"
    )
    psummarize.add_argument("trace", help="path to an exported trace JSON file")
    psummarize.set_defaults(func=cmd_trace)
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
