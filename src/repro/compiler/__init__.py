"""Compiler: verification, simplification, memory planning, instruction
selection, low-precision lowering and CUDA code generation."""

from repro.compiler.banks import (
    XorSwizzle,
    bank_of,
    conflict_degree,
    default_swizzle,
    recommend_swizzle,
    shared_load_conflicts,
)
from repro.compiler.codegen import cuda_type, expr_to_c, generate_cuda
from repro.compiler.dce import eliminate_dead_code
from repro.compiler.lower import (
    PASS_NAMES,
    LoweredKernel,
    LoweringBailout,
    lower_program,
)
from repro.compiler.lowprec import (
    CastRecipe,
    build_cast_recipe,
    cast_cost_per_element,
    fallback_load_plan,
    fallback_store_plan,
)
from repro.compiler.memory_planner import (
    MemoryPlan,
    plan_global_workspace,
    plan_shared_memory,
)
from repro.compiler.pipeline import (
    CompiledKernel,
    compile_program,
    program_dtype_names,
    program_fingerprint,
    specialization_key,
)
from repro.compiler.selection import (
    MemoryAccess,
    SelectionReport,
    contiguous_run_elements,
    select_copy_async,
    select_instructions,
    select_memory_access,
)
from repro.compiler.simplify import simplify_expr, simplify_program
from repro.compiler.verify import VerificationReport, verify_program

__all__ = [
    "XorSwizzle",
    "bank_of",
    "conflict_degree",
    "default_swizzle",
    "recommend_swizzle",
    "shared_load_conflicts",
    "eliminate_dead_code",
    "lower_program",
    "LoweredKernel",
    "LoweringBailout",
    "PASS_NAMES",
    "compile_program",
    "CompiledKernel",
    "program_fingerprint",
    "program_dtype_names",
    "specialization_key",
    "verify_program",
    "VerificationReport",
    "simplify_expr",
    "simplify_program",
    "plan_shared_memory",
    "plan_global_workspace",
    "MemoryPlan",
    "select_instructions",
    "select_memory_access",
    "select_copy_async",
    "contiguous_run_elements",
    "MemoryAccess",
    "SelectionReport",
    "build_cast_recipe",
    "cast_cost_per_element",
    "CastRecipe",
    "fallback_load_plan",
    "fallback_store_plan",
    "generate_cuda",
    "cuda_type",
    "expr_to_c",
]
