"""Shared-memory bank-conflict analysis and XOR swizzling.

NVIDIA shared memory is organized as 32 banks of 4 bytes.  A warp's
memory instruction serializes once when several lanes touch *different*
4-byte words in the same bank; the conflict degree is the worst-case
number of replays.  Staged mma operand tiles are the classic victim:
column accesses of a row-major f16 tile hit one bank 8-16 ways.

The standard fix is an XOR swizzle of the column group within each row
(CUTLASS/ldmatrix style): the physical placement becomes
``group ^ (row % rows_per_pattern)`` which spreads a column across all
banks while keeping rows contiguous (vector loads still work).

The VM does not model banks (it is functional), so this module is a pure
compiler analysis used by instruction selection and by the performance
model; the swizzle itself is a bijection validated by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompilationError
from repro.layout import Layout

NUM_BANKS = 32
BANK_BYTES = 4


@dataclass(frozen=True)
class XorSwizzle:
    """An XOR swizzle of a 2-D row-major tile.

    The tile's rows are split into vectors of ``vector_bytes``; vector
    ``g`` of row ``r`` is stored at vector slot ``g ^ (r % repeat)``.
    ``repeat`` is normally chosen so one pattern period covers all banks:
    ``repeat = 128 // row_bytes`` capped to the vectors per row.
    """

    vector_bytes: int = 16
    repeat: int = 8

    def apply(self, row, byte_in_row, row_bytes: int):
        """Physical byte offset within the tile for a logical position."""
        row = np.asarray(row)
        byte_in_row = np.asarray(byte_in_row)
        group = byte_in_row // self.vector_bytes
        within = byte_in_row % self.vector_bytes
        vectors_per_row = max(1, row_bytes // self.vector_bytes)
        swizzled = (group ^ (row % self.repeat)) % vectors_per_row
        return row * row_bytes + swizzled * self.vector_bytes + within

    def is_bijective(self, rows: int, row_bytes: int) -> bool:
        """The swizzle must permute the tile's bytes exactly."""
        r = np.repeat(np.arange(rows), row_bytes)
        b = np.tile(np.arange(row_bytes), rows)
        phys = self.apply(r, b, row_bytes)
        return bool(np.unique(phys).size == rows * row_bytes)


def default_swizzle(row_bytes: int) -> XorSwizzle:
    """The swizzle parameters CUTLASS would pick for a row of this size."""
    vectors_per_row = max(1, row_bytes // 16)
    return XorSwizzle(vector_bytes=16, repeat=min(8, vectors_per_row))


def bank_of(byte_addr: np.ndarray) -> np.ndarray:
    """Bank index of a shared-memory byte address."""
    return (np.asarray(byte_addr) // BANK_BYTES) % NUM_BANKS


def conflict_degree(byte_addrs: np.ndarray) -> int:
    """Worst-case replay count for one warp-wide access.

    Lanes hitting the *same 4-byte word* broadcast (no conflict); lanes
    hitting different words in the same bank serialize.
    """
    words = np.unique(np.asarray(byte_addrs) // BANK_BYTES)
    banks = words % NUM_BANKS
    if banks.size == 0:
        return 1
    return int(np.bincount(banks, minlength=NUM_BANKS).max())


def shared_load_conflicts(
    layout: Layout,
    tile_shape: tuple[int, int],
    elem_bits: int,
    vec_elems: int = 1,
    swizzle: XorSwizzle | None = None,
) -> int:
    """Worst per-issue conflict degree of a warp loading a register tile
    from a row-major (optionally swizzled) shared tile."""
    if layout.rank != 2:
        raise CompilationError("bank analysis expects 2-D tiles")
    rows, cols = tile_shape
    row_bytes = cols * elem_bits // 8
    worst = 1
    lanes = np.arange(min(32, layout.num_threads))
    for start in range(0, layout.local_size, vec_elems):
        r, c = (np.broadcast_to(x, lanes.shape) for x in layout.map_batch(lanes, np.full_like(lanes, start)))
        byte_in_row = c * elem_bits // 8
        if swizzle is not None:
            addrs = swizzle.apply(r, byte_in_row, row_bytes)
        else:
            addrs = r * row_bytes + byte_in_row
        worst = max(worst, conflict_degree(addrs))
    return worst


def recommend_swizzle(
    layout: Layout, tile_shape: tuple[int, int], elem_bits: int
) -> XorSwizzle | None:
    """Return a swizzle when it strictly reduces the conflict degree."""
    base = shared_load_conflicts(layout, tile_shape, elem_bits)
    if base <= 1:
        return None
    candidate = default_swizzle(tile_shape[1] * elem_bits // 8)
    if not candidate.is_bijective(tile_shape[0], tile_shape[1] * elem_bits // 8):
        return None
    improved = shared_load_conflicts(layout, tile_shape, elem_bits, swizzle=candidate)
    return candidate if improved < base else None
