"""CUDA C code generation (paper Section 8.1, steps 2-3).

Translates a verified Tilus program into the CUDA C a real backend (the
paper goes through Hidet IR and nvcc) would compile.  Register tensors
become per-thread arrays, thread-block instructions become unrolled
per-thread code, and instruction selection decides the PTX-level
primitives: ``cp.async`` transactions, ``ldmatrix``/vectorized ``lds``,
vectorized ``ldg``/``stg``, ``mma.sync`` tensor-core ops, and the
``PRMT``/``LOP3`` cast sequences for low-precision weights.

Because this environment has no NVIDIA toolchain, the emitted source is
validated structurally (golden tests assert the selected instructions
appear) rather than executed; functional semantics are covered by the VM.
"""

from __future__ import annotations

from repro.compiler.lowprec import build_cast_recipe
from repro.compiler.memory_planner import MemoryPlan
from repro.compiler.selection import SelectionReport
from repro.dtypes import DataType
from repro.errors import CompilationError
from repro.ir import instructions as insts
from repro.ir.expr import (
    Binary,
    CastExpr,
    Compare,
    Conditional,
    Constant,
    Expr,
    Logical,
    Unary,
    Var,
)
from repro.ir.program import Program
from repro.ir.stmt import (
    AssignStmt,
    BreakStmt,
    ContinueStmt,
    ForStmt,
    IfStmt,
    InstructionStmt,
    SeqStmt,
    Stmt,
    WhileStmt,
)
from repro.ir.types import TensorVar
from repro.layout import Layout

_CUDA_SCALAR = {
    "f16": "__half",
    "bf16": "__nv_bfloat16",
    "f32": "float",
    "f64": "double",
    "i8": "int8_t",
    "i16": "int16_t",
    "i32": "int32_t",
    "i64": "int64_t",
    "u8": "uint8_t",
    "u16": "uint16_t",
    "u32": "uint32_t",
    "u64": "uint64_t",
    "bool": "bool",
}

_VECTOR_TYPE = {128: "uint4", 64: "uint2", 32: "uint32_t", 16: "uint16_t", 8: "uint8_t"}


def cuda_type(dtype: DataType) -> str:
    """CUDA C type for a data type; sub-byte types use byte containers."""
    if dtype.is_pointer:
        return "void*" if dtype.base is None else f"{cuda_type(dtype.base)}*"
    if dtype.name in _CUDA_SCALAR:
        return _CUDA_SCALAR[dtype.name]
    if dtype.nbits <= 8:
        return "uint8_t"  # packed container for sub-byte lanes
    raise CompilationError(f"no CUDA type for {dtype}")


class CodeWriter:
    """Indented source accumulator."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, text: str = "") -> None:
        self.lines.append("    " * self.indent + text if text else "")

    def block(self) -> "_Block":
        return _Block(self)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Block:
    def __init__(self, writer: CodeWriter) -> None:
        self.writer = writer

    def __enter__(self) -> None:
        self.writer.emit("{")
        self.writer.indent += 1

    def __exit__(self, *exc) -> None:
        self.writer.indent -= 1
        self.writer.emit("}")


def expr_to_c(expr: Expr) -> str:
    """Render a scalar expression as C."""
    if isinstance(expr, Constant):
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        if isinstance(expr.value, float):
            return f"{expr.value}f"
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name.lstrip("%")
    if isinstance(expr, Binary):
        return f"({expr_to_c(expr.lhs)} {expr.op} {expr_to_c(expr.rhs)})"
    if isinstance(expr, Unary):
        return f"({expr.op}{expr_to_c(expr.operand)})"
    if isinstance(expr, Compare):
        return f"({expr_to_c(expr.lhs)} {expr.op} {expr_to_c(expr.rhs)})"
    if isinstance(expr, Logical):
        return f"({expr_to_c(expr.lhs)} {expr.op} {expr_to_c(expr.rhs)})"
    if isinstance(expr, Conditional):
        return (
            f"({expr_to_c(expr.cond)} ? {expr_to_c(expr.then)} : "
            f"{expr_to_c(expr.otherwise)})"
        )
    if isinstance(expr, CastExpr):
        return f"(({cuda_type(expr.dtype)}){expr_to_c(expr.operand)})"
    raise CompilationError(f"cannot render {type(expr).__name__} as C")


def _layout_coord_exprs(layout: Layout, local_index: int) -> list[str]:
    """C expressions for the logical coordinates of local element
    ``local_index`` of the calling thread (variable ``tid``).

    The unified representation turns directly into integer arithmetic:
    each spatial mode contributes ``(tid / stride) % extent`` scaled by the
    mode's logical weight; local modes contribute compile-time constants.
    """
    # Strides of spatial modes within the thread index.
    spatial_strides: dict[int, int] = {}
    acc = 1
    for mode in reversed(layout.spatial_modes):
        spatial_strides[mode] = acc
        acc *= layout.mode_shape[mode]
    # Local mode values for this element.
    local_values: dict[int, int] = {}
    rem = local_index
    for mode in reversed(layout.local_modes):
        extent = layout.mode_shape[mode]
        local_values[mode] = rem % extent
        rem //= extent
    coords: list[str] = []
    for group in layout._dim_modes:
        logical = [m for m in group if m not in layout.replicated_modes]
        terms: list[str] = []
        weight = 1
        const_part = 0
        # Build weights right-to-left (least significant mode last).
        weights: dict[int, int] = {}
        for mode in reversed(logical):
            weights[mode] = weight
            weight *= layout.mode_shape[mode]
        for mode in logical:
            extent = layout.mode_shape[mode]
            w = weights[mode]
            if mode in local_values:
                const_part += local_values[mode] * w
            else:
                stride = spatial_strides[mode]
                term = f"tid / {stride} % {extent}" if stride > 1 else f"tid % {extent}"
                terms.append(f"({term}) * {w}" if w > 1 else f"({term})")
        if const_part or not terms:
            terms.append(str(const_part))
        coords.append(" + ".join(terms))
    return coords


class CudaCodegen:
    """Emits one ``__global__`` kernel for a Tilus program."""

    def __init__(
        self,
        program: Program,
        shared_plan: MemoryPlan,
        selection: SelectionReport,
    ) -> None:
        self.program = program
        self.shared_plan = shared_plan
        self.selection = selection
        self.w = CodeWriter()
        self._reg_names: dict[TensorVar, str] = {}
        self._global_views: dict[TensorVar, str] = {}

    # -- naming ------------------------------------------------------------
    def _reg(self, tensor: TensorVar) -> str:
        if tensor not in self._reg_names:
            self._reg_names[tensor] = tensor.name.lstrip("%")
        return self._reg_names[tensor]

    # -- top level -----------------------------------------------------------
    def generate(self) -> str:
        p = self.program
        self.w.emit("#include <cuda_fp16.h>")
        self.w.emit("#include <cuda_bf16.h>")
        self.w.emit("#include <cstdint>")
        self.w.emit()
        params = ", ".join(f"{cuda_type(q.dtype)} {q.name}" for q in p.params)
        self.w.emit(f"// Tilus program '{p.name}', {p.num_threads} threads per block")
        self.w.emit(
            f"extern \"C\" __global__ void __launch_bounds__({p.num_threads}) "
            f"{p.name}({params})"
        )
        with self.w.block():
            if self.shared_plan.total_bytes:
                self.w.emit(
                    f"extern __shared__ uint8_t smem[];  "
                    f"// {self.shared_plan.total_bytes} bytes planned"
                )
            self.w.emit("const int tid = threadIdx.x;")
            self.w.emit("const int lane = tid % 32; (void)lane;")
            self.w.emit("const int warp = tid / 32; (void)warp;")
            self._emit_stmt(p.body)
        return self.w.source()

    # -- statements -------------------------------------------------------------
    def _emit_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, SeqStmt):
            for child in stmt.body:
                self._emit_stmt(child)
        elif isinstance(stmt, InstructionStmt):
            self._emit_instruction(stmt.instruction)
        elif isinstance(stmt, AssignStmt):
            self.w.emit(
                f"{cuda_type(stmt.var.dtype)} {stmt.var.name} = {expr_to_c(stmt.value)};"
            )
        elif isinstance(stmt, IfStmt):
            self.w.emit(f"if ({expr_to_c(stmt.cond)})")
            with self.w.block():
                self._emit_stmt(stmt.then_body)
            if stmt.else_body is not None and stmt.else_body.body:
                self.w.emit("else")
                with self.w.block():
                    self._emit_stmt(stmt.else_body)
        elif isinstance(stmt, ForStmt):
            if stmt.unroll:
                self.w.emit("#pragma unroll")
            var = stmt.var.name
            self.w.emit(
                f"for (int {var} = 0; {var} < {expr_to_c(stmt.extent)}; ++{var})"
            )
            with self.w.block():
                self._emit_stmt(stmt.body)
        elif isinstance(stmt, WhileStmt):
            self.w.emit(f"while ({expr_to_c(stmt.cond)})")
            with self.w.block():
                self._emit_stmt(stmt.body)
        elif isinstance(stmt, BreakStmt):
            self.w.emit("break;")
        elif isinstance(stmt, ContinueStmt):
            self.w.emit("continue;")

    # -- instructions -------------------------------------------------------------
    def _emit_instruction(self, inst: insts.Instruction) -> None:
        handler = getattr(self, f"_emit_{type(inst).__name__}", None)
        if handler is None:
            self.w.emit(f"// <unhandled {type(inst).__name__}>")
            return
        handler(inst)

    def _emit_BlockIndices(self, inst: insts.BlockIndices) -> None:
        axes = ["blockIdx.x", "blockIdx.y", "blockIdx.z"]
        if len(inst.out_vars) > 3:
            raise CompilationError("grids above rank 3 need linearization")
        for var, axis in zip(inst.out_vars, axes):
            self.w.emit(f"const int {var.name} = {axis};")

    def _emit_ViewGlobal(self, inst: insts.ViewGlobal) -> None:
        name = self._reg(inst.out)
        ctype = cuda_type(inst.out.ttype.dtype)
        self._global_views[inst.out] = name
        self.w.emit(
            f"{ctype}* {name} = ({ctype}*)({expr_to_c(inst.ptr)});  "
            f"// global view {inst.out.ttype}"
        )

    def _declare_register(self, tensor: TensorVar) -> None:
        """Declare the per-thread array backing a register tensor."""
        layout = tensor.ttype.layout
        name = self._reg(tensor)
        count = layout.local_size
        if tensor.ttype.dtype.is_subbyte:
            nbytes = (count * tensor.ttype.dtype.nbits + 7) // 8
            self.w.emit(
                f"uint8_t {name}[{nbytes}];  // {count} x {tensor.ttype.dtype} packed"
            )
        else:
            self.w.emit(f"{cuda_type(tensor.ttype.dtype)} {name}[{count}];")

    def _emit_AllocateRegister(self, inst: insts.AllocateRegister) -> None:
        tensor = inst.out
        layout = tensor.ttype.layout
        name = self._reg(tensor)
        ctype = cuda_type(tensor.ttype.dtype)
        count = layout.local_size
        self._declare_register(tensor)
        if inst.init is not None:
            self.w.emit("#pragma unroll")
            self.w.emit(f"for (int _i = 0; _i < {count}; ++_i) {name}[_i] = "
                        f"({ctype}){inst.init};")

    def _emit_AllocateShared(self, inst: insts.AllocateShared) -> None:
        tensor = inst.out
        name = self._reg(tensor)
        ctype = cuda_type(tensor.ttype.dtype)
        offset = self.shared_plan.offset_of(tensor)
        self.w.emit(
            f"{ctype}* {name} = ({ctype}*)(smem + {offset});  "
            f"// shared {tensor.ttype}, planned at +{offset}"
        )

    def _emit_AllocateGlobal(self, inst: insts.AllocateGlobal) -> None:
        name = self._reg(inst.out)
        ctype = cuda_type(inst.out.ttype.dtype)
        self.w.emit(
            f"{ctype}* {name} = ({ctype}*)__tilus_workspace;  "
            f"// runtime-provided workspace slice"
        )

    def _emit_FreeShared(self, inst: insts.FreeShared) -> None:
        self.w.emit(f"// shared {inst.tensor.name} released for reuse")

    # loads/stores -----------------------------------------------------------------
    def _strides(self, shape) -> list[str]:
        strides: list[str] = []
        acc: str | int = 1
        for extent in reversed(list(shape)):
            strides.append(str(acc))
            if isinstance(extent, Expr):
                acc = f"({expr_to_c(extent)} * {acc})"
            else:
                acc = int(extent) * int(acc) if isinstance(acc, int) else f"({extent} * {acc})"
        strides.reverse()
        return strides

    def _emit_transfer(
        self,
        inst,
        tensor: TensorVar,
        reg: TensorVar,
        is_load: bool,
        shared: bool,
    ) -> None:
        layout = reg.ttype.layout
        access = self.selection.of(inst)
        elem_bits = tensor.ttype.dtype.nbits
        vec_elems = max(1, (access.vector_bits // elem_bits)) if access else 1
        name = self._reg(reg)
        mem = self._reg(tensor)
        shape = tensor.ttype.shape
        strides = self._strides(shape)
        offset = list(getattr(inst, "offset", ()))
        pad = len(shape) - layout.rank
        masked = getattr(inst, "masked", False)
        broadcast = getattr(inst, "broadcast_dims", frozenset())
        if is_load:
            self._declare_register(reg)
        self.w.emit(
            f"// {'load' if is_load else 'store'} via {access.instruction if access else 'scalar'}"
            f" ({access.issues_per_thread if access else layout.local_size} issues/thread)"
        )
        with self.w.block():
            vtype = _VECTOR_TYPE.get(access.vector_bits if access else elem_bits, "uint8_t")
            for start in range(0, layout.local_size, vec_elems):
                coords = _layout_coord_exprs(layout, start)
                addr_terms: list[str] = []
                guards: list[str] = []
                for dim in range(len(shape)):
                    if dim < pad:
                        base = expr_to_c(offset[dim]) if offset else "0"
                        coord = base
                    else:
                        lcoord = coords[dim - pad]
                        if (dim in broadcast) or not offset:
                            coord = expr_to_c(offset[dim]) if offset else lcoord
                        else:
                            coord = f"({expr_to_c(offset[dim])} + {lcoord})"
                    addr_terms.append(
                        coord if strides[dim] == "1" else f"({coord}) * {strides[dim]}"
                    )
                    if masked and not isinstance(shape[dim], Expr):
                        guards.append(f"({coord}) < {shape[dim]}")
                addr = " + ".join(addr_terms)
                lhs = f"*reinterpret_cast<{vtype}*>(&{name}[{start}])"
                rhs = f"*reinterpret_cast<const {vtype}*>(&{mem}[{addr}])"
                if not is_load:
                    lhs, rhs = rhs.replace("const ", ""), lhs
                if guards:
                    guard = " && ".join(guards)
                    if is_load:
                        self.w.emit(f"{lhs} = ({guard}) ? {rhs} : {vtype}{{}};")
                    else:
                        self.w.emit(f"if ({guard}) {lhs} = {rhs};")
                else:
                    self.w.emit(f"{lhs} = {rhs};")

    def _emit_LoadGlobal(self, inst: insts.LoadGlobal) -> None:
        self._emit_transfer(inst, inst.src, inst.out, is_load=True, shared=False)

    def _emit_LoadShared(self, inst: insts.LoadShared) -> None:
        access = self.selection.of(inst)
        if access and access.instruction == "ldmatrix":
            name = self._reg(inst.out)
            self._declare_register(inst.out)
            self.w.emit(f"// ldmatrix fill of {name}")
            with self.w.block():
                for issue in range(access.issues_per_thread):
                    self.w.emit(
                        'asm volatile("ldmatrix.sync.aligned.m8n8.x4.shared.b16 '
                        f'{{%0,%1,%2,%3}}, [%4];" : "=r"(*(uint32_t*)&{name}[{issue * 8}]),'
                        f' "=r"(*(uint32_t*)&{name}[{issue * 8 + 2}]),'
                        f' "=r"(*(uint32_t*)&{name}[{issue * 8 + 4}]),'
                        f' "=r"(*(uint32_t*)&{name}[{issue * 8 + 6}])'
                        f' : "r"(__smem_addr));'
                    )
            return
        self._emit_transfer(inst, inst.src, inst.out, is_load=True, shared=True)

    def _emit_StoreGlobal(self, inst: insts.StoreGlobal) -> None:
        self._emit_transfer(inst, inst.dst, inst.src, is_load=False, shared=False)

    def _emit_StoreShared(self, inst: insts.StoreShared) -> None:
        self._emit_transfer(inst, inst.dst, inst.src, is_load=False, shared=True)

    def _emit_CopyAsync(self, inst: insts.CopyAsync) -> None:
        access = self.selection.of(inst)
        shape = inst.copy_shape()
        total_bytes = 1
        for extent in shape:
            total_bytes *= extent
        total_bytes = total_bytes * inst.src.ttype.dtype.nbits // 8
        per_txn = access.vector_bits // 8 if access else 16
        dst = self._reg(inst.dst)
        src = self._reg(inst.src)
        self.w.emit(
            f"// {access.instruction if access else 'cp.async'}: {total_bytes} B "
            f"global->shared, {per_txn} B per transaction"
        )
        with self.w.block():
            self.w.emit(
                f"for (int _o = tid * {per_txn}; _o < {total_bytes}; "
                f"_o += {self.program.num_threads * per_txn})"
            )
            with self.w.block():
                self.w.emit(
                    'asm volatile("cp.async.cg.shared.global [%0], [%1], '
                    f'{per_txn};" :: "r"(__cvta_generic_to_shared({dst}) + _o), '
                    f'"l"((const char*)({src}) + _o));'
                )

    def _emit_CopyAsyncCommitGroup(self, inst) -> None:
        self.w.emit('asm volatile("cp.async.commit_group;");')

    def _emit_CopyAsyncWaitGroup(self, inst: insts.CopyAsyncWaitGroup) -> None:
        self.w.emit(f'asm volatile("cp.async.wait_group {max(inst.n, 0)};");')

    # computation --------------------------------------------------------------
    def _emit_ElementwiseBinary(self, inst: insts.ElementwiseBinary) -> None:
        a, out = self._reg(inst.a), self._reg(inst.out)
        count = inst.out.ttype.layout.local_size
        ctype = cuda_type(inst.out.ttype.dtype)
        if isinstance(inst.b, TensorVar):
            b_expr = f"{self._reg(inst.b)}[_i]"
        else:
            b_expr = f"({ctype})({expr_to_c(inst.b)})"
        self.w.emit(f"{ctype} {out}[{count}];")
        self.w.emit("#pragma unroll")
        self.w.emit(
            f"for (int _i = 0; _i < {count}; ++_i) "
            f"{out}[_i] = {a}[_i] {inst.op} {b_expr};"
        )

    def _emit_Neg(self, inst: insts.Neg) -> None:
        a, out = self._reg(inst.a), self._reg(inst.out)
        count = inst.out.ttype.layout.local_size
        ctype = cuda_type(inst.out.ttype.dtype)
        self.w.emit(f"{ctype} {out}[{count}];")
        self.w.emit("#pragma unroll")
        self.w.emit(f"for (int _i = 0; _i < {count}; ++_i) {out}[_i] = -{a}[_i];")

    def _emit_Cast(self, inst: insts.Cast) -> None:
        src_t = inst.a.ttype.dtype
        dst_t = inst.dtype
        a, out = self._reg(inst.a), self._reg(inst.out)
        count = inst.out.ttype.layout.local_size
        ctype = cuda_type(dst_t)
        self.w.emit(f"{ctype} {out}[{count}];")
        if src_t.is_subbyte and dst_t.nbits == 16 and dst_t.is_float:
            recipe = build_cast_recipe(src_t, dst_t)
            self.w.emit(
                f"// vectorized {src_t} -> {dst_t} cast: "
                f"{recipe.ops_per_out_reg} ops per 2 lanes "
                f"({', '.join(sorted(recipe.mnemonic_histogram()))})"
            )
            with self.w.block():
                self.w.emit(f"uint32_t _packed, _lanes;")
                for pair in range(0, count, 2):
                    byte0 = pair * src_t.nbits // 8
                    self.w.emit(f"_packed = *(const uint32_t*)&{a}[{byte0}];")
                    for op in recipe.ops:
                        self._emit_cast_op(op, pair, out)
        else:
            self.w.emit("#pragma unroll")
            self.w.emit(
                f"for (int _i = 0; _i < {count}; ++_i) "
                f"{out}[_i] = ({ctype}){a}[_i];"
            )

    def _emit_cast_op(self, op, pair: int, out: str) -> None:
        if op.opcode == "prmt":
            self.w.emit(
                f'asm("prmt.b32 %0, %1, 0, 0x5410;" : "=r"(_lanes) : "r"(_packed));'
                f"  // {op.comment}"
            )
        elif op.opcode == "lop3":
            self.w.emit(
                f'asm("lop3.b32 %0, %1, %2, %3, 0xEA;" : "=r"(_lanes) : '
                f'"r"(_lanes), "n"(0x03FF03FF), "n"(0x64006400));  // {op.comment}'
            )
        elif op.opcode in ("shr", "shl"):
            self.w.emit(f"_lanes = _lanes {'>>' if op.opcode == 'shr' else '<<'} 1;"
                        f"  // {op.comment}")
        elif op.opcode in ("sub", "fma"):
            self.w.emit(
                f"*(half2*)&{out}[{pair}] = __hsub2(*(half2*)&_lanes, "
                f"__float2half2_rn(1024.0f));  // {op.comment}"
            )
        elif op.opcode == "and":
            self.w.emit(f"_lanes &= 0x80008000u;  // {op.comment}")
        elif op.opcode == "or":
            self.w.emit(f"_lanes |= _packed;  // {op.comment}")
        else:
            self.w.emit(f"// {op.opcode}: {op.comment}")

    def _emit_ReduceSum(self, inst: insts.ReduceSum) -> None:
        a, out = self._reg(inst.a), self._reg(inst.out)
        in_layout = inst.a.ttype.layout
        out_count = inst.out.ttype.layout.local_size
        per_thread = in_layout.local_size
        ctype = cuda_type(inst.out.ttype.dtype)
        self._declare_register(inst.out)
        self.w.emit(
            f"// reduce-sum over axis {inst.axis}: thread-local accumulate, "
            f"then butterfly shuffle across the warp"
        )
        with self.w.block():
            self.w.emit(f"{ctype} _partial = ({ctype})0;")
            self.w.emit("#pragma unroll")
            self.w.emit(f"for (int _i = 0; _i < {per_thread}; ++_i) _partial += {a}[_i];")
            self.w.emit("#pragma unroll")
            self.w.emit("for (int _w = 16; _w > 0; _w /= 2)")
            with self.w.block():
                self.w.emit(
                    '_partial += __shfl_xor_sync(0xffffffff, _partial, _w);'
                )
            self.w.emit("#pragma unroll")
            self.w.emit(f"for (int _i = 0; _i < {out_count}; ++_i) {out}[_i] = _partial;")

    def _emit_Lookup(self, inst: insts.Lookup) -> None:
        codes, table, out = self._reg(inst.codes), self._reg(inst.table), self._reg(inst.out)
        count = inst.out.ttype.layout.local_size
        nbits = inst.codes.ttype.dtype.nbits
        self._declare_register(inst.out)
        self.w.emit(f"// codebook lookup: {count} x {nbits}-bit codes")
        self.w.emit("#pragma unroll")
        with self.w.block():
            self.w.emit(f"for (int _i = 0; _i < {count}; ++_i)")
            with self.w.block():
                if nbits in (8, 16, 32):
                    self.w.emit(f"{out}[_i] = {table}[{codes}[_i]];")
                else:
                    self.w.emit(
                        f"const int _bit = _i * {nbits};"
                    )
                    self.w.emit(
                        f"const unsigned _code = (*(const uint32_t*)&{codes}"
                        f"[_bit / 8] >> (_bit % 8)) & {(1 << nbits) - 1}u;"
                    )
                    self.w.emit(f"{out}[_i] = {table}[_code];")

    def _emit_View(self, inst: insts.View) -> None:
        a, out = self._reg(inst.a), self._reg(inst.out)
        out_t = inst.out.ttype
        ctype = (
            "uint8_t" if out_t.dtype.is_subbyte else cuda_type(out_t.dtype)
        )
        self.w.emit(
            f"{ctype}* {out} = ({ctype}*){a};  // zero-cost register "
            f"reinterpretation to {out_t.dtype} {out_t.layout.short_repr()}"
        )

    def _emit_Dot(self, inst: insts.Dot) -> None:
        a, b, c = self._reg(inst.a), self._reg(inst.b), self._reg(inst.c)
        out = self._reg(inst.out)
        la = inst.a.ttype.layout
        lb = inst.b.ttype.layout
        m, k = la.shape
        _, n = lb.shape
        # Warp-level repetition counts over one m16n8k16 mma.
        warps = max(1, la.num_threads // 32)
        frags = (m * n * k) // (16 * 8 * 16) // warps
        if inst.out is not inst.c:
            count = inst.out.ttype.layout.local_size
            ctype = cuda_type(inst.out.ttype.dtype)
            self.w.emit(f"{ctype} {out}[{count}];")
            self.w.emit("#pragma unroll")
            self.w.emit(f"for (int _i = 0; _i < {count}; ++_i) {out}[_i] = {c}[_i];")
        self.w.emit(f"// {frags} x mma.sync per warp: {m}x{n}x{k} tile")
        self.w.emit("#pragma unroll")
        self.w.emit(f"for (int _f = 0; _f < {frags}; ++_f)")
        with self.w.block():
            self.w.emit(
                'asm volatile("mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32 '
                '{%0,%1,%2,%3}, {%4,%5,%6,%7}, {%8,%9}, {%0,%1,%2,%3};"'
            )
            self.w.emit(
                f'    : "+f"({out}[_f*4+0]), "+f"({out}[_f*4+1]), '
                f'"+f"({out}[_f*4+2]), "+f"({out}[_f*4+3])'
            )
            self.w.emit(
                f'    : "r"(*(const uint32_t*)&{a}[_f*8]), '
                f'"r"(*(const uint32_t*)&{a}[_f*8+2]), '
                f'"r"(*(const uint32_t*)&{a}[_f*8+4]), '
                f'"r"(*(const uint32_t*)&{a}[_f*8+6]),'
            )
            self.w.emit(
                f'      "r"(*(const uint32_t*)&{b}[_f*4]), '
                f'"r"(*(const uint32_t*)&{b}[_f*4+2]));'
            )

    # misc ---------------------------------------------------------------------
    def _emit_Synchronize(self, inst) -> None:
        self.w.emit("__syncthreads();")

    def _emit_Exit(self, inst) -> None:
        self.w.emit("return;")

    def _emit_PrintTensor(self, inst: insts.PrintTensor) -> None:
        self.w.emit(f'// debug print of {inst.tensor.name} elided in release codegen')


def generate_cuda(
    program: Program, shared_plan: MemoryPlan, selection: SelectionReport
) -> str:
    """Generate CUDA C source for a program."""
    return CudaCodegen(program, shared_plan, selection).generate()
