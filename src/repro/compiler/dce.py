"""Dead code elimination (part of Section 8's "eliminating redundancies").

An instruction is live when it has an observable effect (stores, copies,
synchronization, debug output) or when its output tensor feeds a live
instruction — computed as a fixpoint so chains and loop-carried uses are
handled.  Dead instructions (e.g. a loaded-then-unused tile left over
from template specialization) are removed from the statement tree.
"""

from __future__ import annotations

from repro.ir import instructions as insts
from repro.ir.program import Program
from repro.ir.stmt import (
    ForStmt,
    IfStmt,
    InstructionStmt,
    SeqStmt,
    Stmt,
    WhileStmt,
)
from repro.ir.types import TensorVar

#: Instructions whose execution is observable regardless of outputs.
_EFFECTFUL = (
    insts.StoreGlobal,
    insts.StoreShared,
    insts.CopyAsync,
    insts.CopyAsyncCommitGroup,
    insts.CopyAsyncWaitGroup,
    insts.Synchronize,
    insts.Exit,
    insts.PrintTensor,
    insts.BlockIndices,
    insts.FreeShared,
    insts.ViewGlobal,
    insts.AllocateShared,
    insts.AllocateGlobal,
)


def eliminate_dead_code(program: Program) -> int:
    """Remove dead instructions in place; returns how many were removed."""
    all_instructions = list(program.body.instructions())
    live: set[int] = set()
    live_tensors: set[TensorVar] = set()

    changed = True
    while changed:
        changed = False
        for inst in all_instructions:
            if id(inst) in live:
                continue
            output = inst.output
            is_live = isinstance(inst, _EFFECTFUL) or (
                output is not None and output in live_tensors
            )
            # In-place updates (out aliases an input) of live tensors are
            # live: the accumulator pattern Dot(a, b, acc, out=acc).
            if not is_live and output is not None:
                is_live = any(t is output for t in inst.inputs())
                is_live = is_live and output in live_tensors
            if is_live:
                live.add(id(inst))
                for tensor in inst.inputs():
                    if tensor not in live_tensors:
                        live_tensors.add(tensor)
                        changed = True
                if output is not None and output not in live_tensors:
                    live_tensors.add(output)
                    changed = True
                changed = True if id(inst) in live and changed else changed

    removed = _filter_stmt(program.body, live)
    return removed


def _filter_stmt(stmt: Stmt, live: set[int]) -> int:
    removed = 0
    if isinstance(stmt, SeqStmt):
        kept = []
        for child in stmt.body:
            if isinstance(child, InstructionStmt) and id(child.instruction) not in live:
                removed += 1
                continue
            removed += _filter_stmt(child, live)
            kept.append(child)
        stmt.body[:] = kept
    elif isinstance(stmt, IfStmt):
        removed += _filter_stmt(stmt.then_body, live)
        if stmt.else_body is not None:
            removed += _filter_stmt(stmt.else_body, live)
    elif isinstance(stmt, (ForStmt, WhileStmt)):
        removed += _filter_stmt(stmt.body, live)
    return removed
