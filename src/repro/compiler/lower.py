"""Progressive lowering of specialized programs to straight-line numpy.

The batched engine (:mod:`repro.vm.batched`) executes all thread blocks in
lockstep but still walks the statement tree and re-derives index math on
every launch.  Once a kernel is *specialized* — its fingerprint and
const-bound scalar arguments pinned by
:func:`repro.compiler.pipeline.specialization_key` — everything except the
pointer arguments and the tensor *data* is a compile-time constant: grid
coordinates, divergence masks, loop trip counts, tile indices, shared-memory
addresses and every ``ExecutionStats`` delta.

This module exploits that with a three-pass pipeline (the xdsl-style
progressive dialect lowering named in the ROADMAP):

1. **const-fold** (:class:`SpecializeConstants`): bind const scalars, grid
   coordinates and symbolic (affine) pointer parameters into a concrete
   compile-time environment.
2. **unroll** (:class:`UnrollAndTrace`): symbolically execute the batched
   engine's statement walk — loops unroll, ``if``/``while`` masks fold to
   concrete block sets — emitting one vectorized numpy statement per
   surviving instruction, with all index/mask/shift arrays precomputed.
3. **flatten** (:class:`FlattenToSource`): assemble the trace into a flat
   Python function, ``compile()`` it, and wrap it as a
   :class:`LoweredKernel`.

Bit-exactness contract: the emitted code performs the *same numpy
operations in the same order* as the batched engine, calling the shared
codecs (``dtype.to_bits``/``from_bits``) and
:func:`repro.vm.values.apply_elementwise`; compile-time scalar folding goes
through the real :func:`repro.vm.batched.batched_evaluate`.  Registers are
carried as ``(B, T, L)`` uint64 *pattern* arrays — a bijective regrouping of
the batched engine's bit-plane representation, converted only where a
``View`` regroups bit widths.

Anything the trace cannot prove flat raises :class:`LoweringBailout` and
the caller falls back to the batched engine: ``AllocateGlobal``,
``PrintTensor``, non-affine pointer arithmetic, pointer-dependent control
flow, and any VMError that mirrored compile-time logic raises
deterministically (out-of-bounds indices, shared-memory exhaustion, view
mismatches) — the fallback then reproduces the identical runtime error.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.compiler.pipeline import specialization_key
from repro.errors import IRError, VMError
from repro.ir import instructions as insts
from repro.ir.expr import Binary, CastExpr, Expr, Var
from repro.obs import trace as obs_trace
from repro.ir.program import Program
from repro.ir.stmt import (
    AssignStmt,
    BreakStmt,
    ContinueStmt,
    ForStmt,
    IfStmt,
    InstructionStmt,
    SeqStmt,
    Stmt,
    WhileStmt,
)
from repro.ir.types import TensorVar
from repro.vm.batched import _as_mask, batched_evaluate
from repro.vm.dispatch import (
    bounds_mask,
    decompose_linear,
    layout_tile_coords,
    pad_tile_indices,
)
from repro.vm.interp import ExecutionStats
from repro.vm.memory import GlobalMemory
from repro.vm.values import apply_elementwise

__all__ = [
    "LoweredKernel",
    "LoweringBailout",
    "PASS_NAMES",
    "lower_program",
]

#: The pass pipeline, in application order.
PASS_NAMES = ("const-fold", "unroll", "flatten")

#: Unrolled-trace budget: statement-walk steps before lowering gives up.
#: Generous for every template family in the harness; a backstop against
#: data-independent-but-huge loops producing megabytes of source.
_TRACE_STEP_LIMIT = 100_000

#: Emitted-statement budget (lines of generated source).
_TRACE_LINE_LIMIT = 25_000


class LoweringBailout(Exception):
    """Lowering cannot flatten this program; run it on the batched engine."""


# ---------------------------------------------------------------------------
# Runtime helpers injected into every generated kernel's namespace.
#
# These mirror the corresponding BatchedView / BatchedRegisterValue code
# paths line for line (same loop order, same dtypes, same error strings) so
# the compiled tier stays bit-exact with the interpreted tiers.
# ---------------------------------------------------------------------------


def _dec(dt, p):
    """Patterns (B, T, L) uint64 -> decoded values, via the shared codec."""
    return dt.from_bits(p.reshape(-1)).reshape(p.shape)


def _enc(dt, v):
    """Values (B, T, L) -> patterns uint64, via the shared codec."""
    return np.asarray(dt.to_bits(v.reshape(-1)), dtype=np.uint64).reshape(v.shape)


def _gb(buf, byte_addr, nbytes, msg):
    """Byte-aligned gather: assemble little-endian patterns from bytes."""
    out = np.zeros(byte_addr.shape, dtype=np.uint64)
    try:
        for k in range(nbytes):
            out |= buf[byte_addr + k].astype(np.uint64) << np.uint64(8 * k)
    except IndexError as exc:
        raise VMError(msg.format(exc)) from exc
    return out


def _gsb(buf, byte_addr, shift, nbits, msg):
    """Sub-byte gather: 8-byte window read + shift/mask (generic path)."""
    window = np.zeros(byte_addr.shape, dtype=np.uint64)
    try:
        for k in range(8):
            window |= buf[byte_addr + k].astype(np.uint64) << np.uint64(8 * k)
    except IndexError as exc:
        raise VMError(msg.format(exc)) from exc
    return (window >> shift) & np.uint64((1 << nbits) - 1)


def _scb(buf, byte_addr, pat, nbytes, msg):
    """Byte-aligned scatter: per-byte fancy assignment, block-major order."""
    try:
        for k in range(nbytes):
            buf[byte_addr + k] = (
                (pat >> np.uint64(8 * k)) & np.uint64(0xFF)
            ).astype(np.uint8)
    except IndexError as exc:
        raise VMError(msg.format(exc)) from exc


def _ssb(buf, byte_idx, bit_in_byte, val_u, msg):
    """Sub-byte scatter: unbuffered clear+set of pre-deduplicated bits."""
    try:
        np.bitwise_and.at(buf, byte_idx, ~(np.uint8(1) << bit_in_byte))
        np.bitwise_or.at(buf, byte_idx, val_u << bit_in_byte)
    except IndexError as exc:
        raise VMError(msg.format(exc)) from exc


def _vg(base, size_bits, limit, msg_neg, msg_exc):
    """ViewGlobal bounds checks on a runtime (B,) bit-base array."""
    end = base + size_bits
    if bool((base < 0).any()):
        raise VMError(msg_neg.format(int(base.min())))
    over = end > limit
    if bool(over.any()):
        raise VMError(msg_exc.format(int(base[over][0]), int(end.max())))


def _lk(act, extent, msg):
    """Lookup-code bounds check over active blocks' codes."""
    if act.size and (int(act.min()) < 0 or int(act.max()) >= extent):
        raise VMError(msg.format(int(act.max())))


def _tolog(values, shape, ix):
    """Register (B, T, L) values -> logical (B,) + layout.shape tensor."""
    out = np.zeros(shape, dtype=values.dtype)
    out[ix] = values.reshape(shape[0], -1)
    return out


def _viewp(p, old_nbits, new_nbits, new_l):
    """Regroup patterns under a new element width (register View)."""
    nb, t, l = p.shape
    bit_idx = np.arange(old_nbits, dtype=np.uint64)
    bits = ((p[..., None] >> bit_idx) & np.uint64(1)).astype(np.uint8)
    grouped = bits.reshape(nb, t, new_l, new_nbits).astype(np.uint64)
    weights = np.uint64(1) << np.arange(new_nbits, dtype=np.uint64)
    return (grouped * weights).sum(axis=3, dtype=np.uint64)


_HELPERS = {
    "np": np,
    "VMError": VMError,
    "_ew": apply_elementwise,
    "_dec": _dec,
    "_enc": _enc,
    "_gb": _gb,
    "_gsb": _gsb,
    "_scb": _scb,
    "_ssb": _ssb,
    "_vg": _vg,
    "_lk": _lk,
    "_tolog": _tolog,
    "_viewp": _viewp,
}


# ---------------------------------------------------------------------------
# Compile-time value domain
# ---------------------------------------------------------------------------


class _Affine:
    """A scalar affine in the runtime pointer parameters.

    ``value = sum(ptr[i] * coeffs[i]) + conc`` where each coefficient and
    the concrete part are Python/numpy ints or (B,) int64 arrays.
    """

    __slots__ = ("coeffs", "conc")

    def __init__(self, coeffs: dict, conc) -> None:
        self.coeffs = coeffs
        self.conc = conc

    def add(self, other: "_Affine") -> "_Affine":
        coeffs = dict(self.coeffs)
        for idx, c in other.coeffs.items():
            coeffs[idx] = coeffs[idx] + c if idx in coeffs else c
        return _Affine(coeffs, self.conc + other.conc)

    def neg(self) -> "_Affine":
        return _Affine({i: -c for i, c in self.coeffs.items()}, -self.conc)

    def scale(self, factor) -> "_Affine":
        return _Affine(
            {i: c * factor for i, c in self.coeffs.items()}, self.conc * factor
        )

    def is_concrete(self) -> bool:
        return all(not np.any(c) for c in self.coeffs.values())


def _as_affine(value) -> _Affine:
    if isinstance(value, _Affine):
        return value
    return _Affine({}, value)


def _affine_where(active: np.ndarray, new, old) -> object:
    """Per-block merge of two scalar values, either of which may be affine."""
    a, b = _as_affine(new), _as_affine(old)
    coeffs = {}
    for idx in set(a.coeffs) | set(b.coeffs):
        coeffs[idx] = np.where(active, a.coeffs.get(idx, 0), b.coeffs.get(idx, 0))
    merged = _Affine(coeffs, np.where(active, a.conc, b.conc))
    if merged.is_concrete():
        return merged.conc
    return merged


@dataclass
class _Reg:
    """Compile-time register descriptor: runtime name holds (B, T, L) u64."""

    dtype: object
    layout: object
    name: str


@dataclass
class _View:
    """Compile-time tensor-view descriptor.

    ``coeffs``/``conc_bits`` describe the per-block bit base as an affine
    form over runtime pointer slots (all arrays are (B,) int64, already
    masked by the creating instruction's active set and scaled to bits).
    ``name``/``byte_name`` are the runtime variables holding the bit and
    byte base arrays (constants for pointer-free views).
    """

    buf: str  # "mem" or "sm"
    dtype: object
    shape: tuple
    coeffs: dict  # ptr slot -> (B,) int64 bit coefficients
    conc_bits: np.ndarray  # (B,) int64
    name: str
    byte_name: str
    buflen: int

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def is_concrete(self) -> bool:
        return all(not np.any(c) for c in self.coeffs.values())

    def oob_msg(self) -> str:
        return (
            f"batched tensor view [{self.dtype}{list(self.shape)}] addresses "
            f"bytes outside its buffer ({self.buflen} bytes): {{}}"
        )


# ---------------------------------------------------------------------------
# Source emission
# ---------------------------------------------------------------------------


class _Emitter:
    """Accumulates generated statements and the constant pool."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.consts: dict[str, object] = {}
        self._const_keys: dict = {}
        self._n = 0

    def tmp(self) -> str:
        name = f"t{self._n}"
        self._n += 1
        return name

    def emit(self, line: str) -> None:
        if len(self.lines) >= _TRACE_LINE_LIMIT:
            raise LoweringBailout(
                f"generated source exceeds {_TRACE_LINE_LIMIT} statements"
            )
        self.lines.append(line)

    def const(self, obj) -> str:
        key = self._const_key(obj)
        if key is not None and key in self._const_keys:
            return self._const_keys[key]
        name = f"C{len(self.consts)}"
        if isinstance(obj, np.ndarray):
            obj = np.ascontiguousarray(obj)
            obj.setflags(write=False)
        self.consts[name] = obj
        if key is not None:
            self._const_keys[key] = name
        return name

    @staticmethod
    def _const_key(obj):
        if isinstance(obj, np.ndarray):
            return ("a", obj.dtype.str, obj.shape, hashlib.sha1(obj.tobytes()).digest())
        if isinstance(obj, str):
            return ("s", obj)
        if isinstance(obj, (int, float, bool)):
            return ("n", type(obj).__name__, obj)
        # dtype objects, tuples of arrays, etc: dedupe by identity.
        return ("i", id(obj))


def _lit(value) -> str:
    """Embed a compile-time scalar as a source literal."""
    if isinstance(value, (bool, np.bool_)):
        return repr(bool(value))
    if isinstance(value, (int, np.integer)):
        return repr(int(value))
    if isinstance(value, (float, np.floating)):
        return repr(float(value))
    raise LoweringBailout(f"cannot embed scalar of type {type(value).__name__}")


# ---------------------------------------------------------------------------
# Pass 1: const-fold / specialize
# ---------------------------------------------------------------------------


@dataclass
class _LoweringState:
    program: Program
    memory: GlobalMemory
    shared_capacity: int
    spec: tuple
    grid: tuple
    nblocks: int
    coords: tuple
    env: dict
    ptr_slots: dict  # param index -> ptrs[] slot
    ptr_indices: tuple
    emitter: _Emitter = field(default_factory=_Emitter)


class SpecializeConstants:
    """Pass 1: bind const scalars, grid coords and symbolic pointers."""

    name = PASS_NAMES[0]

    @staticmethod
    def run(program: Program, args: Sequence, memory: GlobalMemory,
            shared_capacity: int) -> _LoweringState:
        if len(args) != len(program.params):
            raise LoweringBailout(
                f"{program.name} expects {len(program.params)} args, got {len(args)}"
            )
        ptr_params = {p for p in program.params if p.dtype.is_pointer}
        for extent in program.grid:
            if isinstance(extent, Expr):
                for node in extent.walk():
                    if isinstance(node, Var) and node in ptr_params:
                        raise LoweringBailout(
                            "grid size depends on a pointer parameter"
                        )
        try:
            grid = tuple(int(g) for g in program.grid_size(args))
        except (IRError, VMError, TypeError, ValueError) as exc:
            raise LoweringBailout(f"cannot evaluate launch grid: {exc}") from exc
        nblocks = int(np.prod(grid)) if grid else 1
        coords = tuple(decompose_linear(tuple(grid)))
        env: dict = {}
        ptr_slots: dict = {}
        ptr_indices = []
        for i, (p, a) in enumerate(zip(program.params, args)):
            if p.dtype.is_pointer:
                slot = len(ptr_indices)
                ptr_slots[i] = slot
                ptr_indices.append(i)
                env[p] = _Affine({i: 1}, 0)
            elif p.dtype.is_float:
                env[p] = float(a)
            else:
                env[p] = int(a)
        return _LoweringState(
            program=program,
            memory=memory,
            shared_capacity=shared_capacity,
            spec=specialization_key(program, args),
            grid=grid,
            nblocks=nblocks,
            coords=coords,
            env=env,
            ptr_slots=ptr_slots,
            ptr_indices=tuple(ptr_indices),
        )


# ---------------------------------------------------------------------------
# Pass 2: unroll and trace
# ---------------------------------------------------------------------------


class UnrollAndTrace:
    """Pass 2: symbolic lockstep execution emitting the flat trace."""

    name = PASS_NAMES[1]

    @staticmethod
    def run(state: _LoweringState) -> "_Tracer":
        tracer = _Tracer(state)
        try:
            tracer.trace()
        except (VMError, IRError) as exc:
            # Mirrored compile-time logic raised an error the batched engine
            # would raise deterministically at runtime; the fallback engine
            # reproduces it, so lowering just declines.
            raise LoweringBailout(f"deterministic runtime error: {exc}") from exc
        return tracer


_STAT_FIELDS = (
    "blocks_run",
    "instructions",
    "global_bits_loaded",
    "global_bits_stored",
    "shared_bits_loaded",
    "shared_bits_stored",
    "copy_async_issued",
    "dot_ops",
    "synchronizations",
)


class _Tracer:
    """Runs the batched engine's statement walk at compile time.

    Scalars, masks and addresses are concrete; registers and views are
    symbolic SSA names bound to runtime arrays.  Every instruction handler
    is a compile-time mirror of the corresponding ``@BATCHED.register``
    handler in :mod:`repro.vm.batched`.
    """

    def __init__(self, state: _LoweringState) -> None:
        self.st = state
        self.em = state.emitter
        self.env = state.env
        self.nblocks = state.nblocks
        self.exited = np.zeros(state.nblocks, dtype=bool)
        self.break_stack: list[np.ndarray] = []
        self.tally = {f: 0 for f in _STAT_FIELDS}
        self.shared_next = np.zeros(state.nblocks, dtype=np.int64)
        self.shared_used = False
        self.pending_copy = 0
        self.committed: list[int] = []
        self.steps = 0
        self._dec_cache: dict[tuple, str] = {}
        self._handlers: dict[type, Callable] = {
            insts.BlockIndices: self._h_block_indices,
            insts.ViewGlobal: self._h_view_global,
            insts.AllocateRegister: self._h_allocate_register,
            insts.AllocateShared: self._h_allocate_shared,
            insts.FreeShared: self._h_free_shared,
            insts.LoadGlobal: self._h_load_global,
            insts.LoadShared: self._h_load_shared,
            insts.StoreGlobal: self._h_store_global,
            insts.StoreShared: self._h_store_shared,
            insts.CopyAsync: self._h_copy_async,
            insts.CopyAsyncCommitGroup: self._h_copy_commit,
            insts.CopyAsyncWaitGroup: self._h_copy_wait,
            insts.ElementwiseBinary: self._h_binary,
            insts.Neg: self._h_neg,
            insts.Cast: self._h_cast,
            insts.ReduceSum: self._h_reduce_sum,
            insts.Lookup: self._h_lookup,
            insts.View: self._h_view,
            insts.Dot: self._h_dot,
            insts.Synchronize: self._h_synchronize,
            insts.Exit: self._h_exit,
        }

    # -- entry --------------------------------------------------------------
    def trace(self) -> None:
        self.tally["blocks_run"] += self.nblocks
        active = np.ones(self.nblocks, dtype=bool)
        self._run_stmt(self.st.program.body, active)

    # -- scalar evaluation --------------------------------------------------
    def _has_ptr(self, expr: Expr) -> bool:
        for node in expr.walk():
            if isinstance(node, Var) and isinstance(self.env.get(node), _Affine):
                return True
        return False

    def _peval(self, expr: Expr, active):
        """Evaluate a scalar expression: concrete via the real batched
        evaluator, pointer-touching via the affine grammar."""
        if not self._has_ptr(expr):
            return batched_evaluate(expr, self.env, active)
        if isinstance(expr, Var):
            return self.env[expr]
        if isinstance(expr, CastExpr) and not expr.dtype.is_float:
            inner = self._peval(expr.operand, active)
            if isinstance(inner, _Affine):
                return inner
        if isinstance(expr, Binary):
            a = self._peval(expr.lhs, active)
            b = self._peval(expr.rhs, active)
            if expr.op == "+":
                return _as_affine(a).add(_as_affine(b))
            if expr.op == "-":
                return _as_affine(a).add(_as_affine(b).neg())
            if expr.op == "*":
                if isinstance(a, _Affine) and not isinstance(b, _Affine):
                    return a.scale(b)
                if isinstance(b, _Affine) and not isinstance(a, _Affine):
                    return b.scale(a)
        raise LoweringBailout(
            f"non-affine pointer arithmetic in {type(expr).__name__}"
        )

    def _peval_concrete(self, expr: Expr, active):
        value = self._peval(expr, active)
        if isinstance(value, _Affine):
            if value.is_concrete():
                return value.conc
            raise LoweringBailout("pointer-valued scalar where a number is needed")
        return value

    # -- statement walk (mirrors BatchedExecutor._run_stmt) -----------------
    def _run_stmt(self, stmt: Stmt, active: np.ndarray) -> np.ndarray:
        self.steps += 1
        if self.steps > _TRACE_STEP_LIMIT:
            raise LoweringBailout(
                f"unrolled trace exceeds {_TRACE_STEP_LIMIT} steps"
            )
        if isinstance(stmt, SeqStmt):
            live = active
            for child in stmt.body:
                if not live.any():
                    break
                live = self._run_stmt(child, live)
            return live
        if isinstance(stmt, InstructionStmt):
            inst = stmt.instruction
            handler = self._handlers.get(type(inst))
            if handler is None:
                raise LoweringBailout(
                    f"instruction {type(inst).__name__} cannot be lowered"
                )
            self.tally["instructions"] += int(active.sum())
            handler(inst, active)
            return active & ~self.exited
        if isinstance(stmt, AssignStmt):
            value = self._peval(stmt.value, active)
            self._bind_scalar(stmt.var, value, active)
            return active
        if isinstance(stmt, IfStmt):
            cond = self._peval_concrete(stmt.cond, active)
            if not isinstance(cond, np.ndarray):
                if cond:
                    return self._run_stmt(stmt.then_body, active)
                if stmt.else_body is not None:
                    return self._run_stmt(stmt.else_body, active)
                return active
            cmask = _as_mask(cond, self.nblocks)
            then_mask = active & cmask
            else_mask = active & ~cmask
            then_live = (
                self._run_stmt(stmt.then_body, then_mask)
                if then_mask.any()
                else then_mask
            )
            else_live = (
                self._run_stmt(stmt.else_body, else_mask)
                if stmt.else_body is not None and else_mask.any()
                else else_mask
            )
            return then_live | else_live
        if isinstance(stmt, ForStmt):
            extent = self._peval_concrete(stmt.extent, active)
            if isinstance(extent, np.ndarray):
                extent = extent.astype(np.int64)
            else:
                extent = int(extent)
            broken = np.zeros(self.nblocks, dtype=bool)
            self.break_stack.append(broken)
            i = 0
            while True:
                iter_active = active & ~self.exited & ~broken & (i < extent)
                if not iter_active.any():
                    break
                self._bind_scalar(stmt.var, i, iter_active)
                self._run_stmt(stmt.body, iter_active)
                i += 1
            self.break_stack.pop()
            return active & ~self.exited
        if isinstance(stmt, WhileStmt):
            broken = np.zeros(self.nblocks, dtype=bool)
            done = np.zeros(self.nblocks, dtype=bool)
            self.break_stack.append(broken)
            while True:
                base = active & ~self.exited & ~broken & ~done
                if not base.any():
                    break
                cmask = _as_mask(self._peval_concrete(stmt.cond, base), self.nblocks)
                done |= base & ~cmask
                iter_active = base & cmask
                if not iter_active.any():
                    break
                self._run_stmt(stmt.body, iter_active)
            self.break_stack.pop()
            return active & ~self.exited
        if isinstance(stmt, BreakStmt):
            if not self.break_stack:
                raise VMError("break outside of a loop")
            self.break_stack[-1] |= active
            return np.zeros_like(active)
        if isinstance(stmt, ContinueStmt):
            return np.zeros_like(active)
        raise LoweringBailout(f"unknown statement {type(stmt).__name__}")

    # -- environment merging ------------------------------------------------
    def _bind_scalar(self, var: Var, value, active: np.ndarray) -> None:
        if bool(active.all()):
            self.env[var] = value
            return
        old = self.env.get(var)
        if old is None:
            self.env[var] = value
            return
        if isinstance(value, _Affine) or isinstance(old, _Affine):
            self.env[var] = _affine_where(active, value, old)
        else:
            self.env[var] = np.where(active, value, old)

    def _bind_tensor(self, var: TensorVar, value, active: np.ndarray) -> None:
        if bool(active.all()):
            self.env[var] = value
            return
        old = self.env.get(var)
        if old is None:
            self.env[var] = value
            return
        act = self.em.const(active)
        if isinstance(value, _Reg) and isinstance(old, _Reg):
            new_w = value.layout.local_size * value.dtype.nbits
            old_w = old.layout.local_size * old.dtype.nbits
            if (
                value.layout.num_threads != old.layout.num_threads
                or new_w != old_w
            ):
                raise LoweringBailout("divergent register merge with mismatched bits")
            old_name = old.name
            if old.dtype.nbits != value.dtype.nbits:
                old_name = self.em.tmp()
                self.em.emit(
                    f"{old_name} = _viewp({old.name}, {old.dtype.nbits}, "
                    f"{value.dtype.nbits}, {value.layout.local_size})"
                )
            name = self.em.tmp()
            self.em.emit(
                f"{name} = np.where({act}[:, None, None], {value.name}, {old_name})"
            )
            self.env[var] = _Reg(value.dtype, value.layout, name)
            return
        if isinstance(value, _View) and isinstance(old, _View):
            if value.buf != old.buf:
                raise VMError("cannot merge views over different buffers")
            coeffs = {}
            for idx in set(value.coeffs) | set(old.coeffs):
                zero = np.zeros(self.nblocks, dtype=np.int64)
                coeffs[idx] = np.where(
                    active, value.coeffs.get(idx, zero), old.coeffs.get(idx, zero)
                )
            conc = np.where(active, value.conc_bits, old.conc_bits)
            name = self.em.tmp()
            self.em.emit(f"{name} = np.where({act}, {value.name}, {old.name})")
            byte_name = self.em.tmp()
            self.em.emit(f"{byte_name} = {name} // 8")
            self.env[var] = _View(
                buf=value.buf,
                dtype=value.dtype,
                shape=value.shape,
                coeffs=coeffs,
                conc_bits=conc,
                name=name,
                byte_name=byte_name,
                buflen=value.buflen,
            )
            return
        raise LoweringBailout("divergent merge of incompatible tensor kinds")

    def _lookup_tensor(self, var: TensorVar):
        value = self.env.get(var)
        if value is None:
            raise VMError(f"tensor {var.name} used before definition")
        return value

    # -- register plumbing --------------------------------------------------
    def _dtype_const(self, dtype) -> str:
        return self.em.const(dtype)

    def _decode(self, reg: _Reg) -> str:
        key = (reg.name, id(reg.dtype))
        cached = self._dec_cache.get(key)
        if cached is not None:
            return cached
        name = self.em.tmp()
        self.em.emit(f"{name} = _dec({self._dtype_const(reg.dtype)}, {reg.name})")
        self._dec_cache[key] = name
        return name

    def _encode(self, dtype, layout, values_expr: str) -> _Reg:
        name = self.em.tmp()
        self.em.emit(f"{name} = _enc({self._dtype_const(dtype)}, {values_expr})")
        return _Reg(dtype, layout, name)

    def _logical_ix(self, layout) -> str:
        """Constant fancy-index tuple ``(bidx,) + coords`` for a layout."""
        coords = layout_tile_coords(layout)
        bidx = np.arange(self.nblocks, dtype=np.int64)[:, None]
        ix = (bidx,) + tuple(c[None, :] for c in coords)
        return self.em.const(ix)

    def _to_logical(self, reg: _Reg) -> tuple[str, tuple]:
        values = self._decode(reg)
        shape = (self.nblocks,) + reg.layout.shape
        name = self.em.tmp()
        self.em.emit(
            f"{name} = _tolog({values}, {shape!r}, {self._logical_ix(reg.layout)})"
        )
        return name, shape

    def _from_logical(self, dtype, layout, tensor_expr: str,
                      tensor_shape: tuple) -> _Reg:
        if tuple(tensor_shape[1:]) != tuple(layout.shape):
            raise VMError(
                f"logical shape {tuple(tensor_shape[1:])} != layout shape {layout.shape}"
            )
        shape3 = (self.nblocks, layout.num_threads, layout.local_size)
        expr = (
            f"{tensor_expr}[{self._logical_ix(layout)}].reshape({shape3!r})"
        )
        return self._encode(dtype, layout, expr)

    # -- view addressing ----------------------------------------------------
    def _linear_indices(self, view: _View, indices: list) -> np.ndarray:
        if len(indices) != len(view.shape):
            raise VMError(
                f"rank mismatch: {len(indices)} indices for shape {list(view.shape)}"
            )
        linear = np.zeros_like(np.asarray(indices[0], dtype=np.int64))
        for idx, extent in zip(indices, view.shape):
            idx = np.asarray(idx, dtype=np.int64)
            if idx.size and (idx.min() < 0 or idx.max() >= extent):
                raise VMError(
                    f"index out of bounds: [{idx.min()}, {idx.max()}] not within "
                    f"[0, {extent}) for tensor {view.dtype}{list(view.shape)}"
                )
            linear = linear * extent + idx
        return linear

    def _emit_gather(self, view: _View, linear: np.ndarray) -> str:
        """Gather patterns at compile-time linear indices; returns a runtime
        name holding a uint64 array of ``linear.shape``."""
        nbits = view.dtype.nbits
        msg = self.em.const(view.oob_msg())
        out = self.em.tmp()
        if nbits % 8 == 0:
            off = (linear * nbits) // 8
            if view.is_concrete():
                addr = self.em.const(view.conc_bits[:, None] // 8 + off)
            else:
                addr = self.em.tmp()
                self.em.emit(
                    f"{addr} = {view.byte_name}[:, None] + {self.em.const(off)}"
                )
            self.em.emit(f"{out} = _gb({view.buf}, {addr}, {nbits // 8}, {msg})")
        else:
            byte_off = (linear * nbits) // 8
            shift = ((linear * nbits) % 8).astype(np.uint64)
            if view.is_concrete():
                addr = self.em.const(view.conc_bits[:, None] // 8 + byte_off)
            else:
                addr = self.em.tmp()
                self.em.emit(
                    f"{addr} = {view.byte_name}[:, None] + {self.em.const(byte_off)}"
                )
            self.em.emit(
                f"{out} = _gsb({view.buf}, {addr}, {self.em.const(shift)}, "
                f"{nbits}, {msg})"
            )
        return out

    def _emit_scatter(self, view: _View, indices: list, patterns_name: str,
                      select: np.ndarray) -> None:
        """Scatter runtime patterns (named (B, T, L) or (B, n) array) at
        compile-time indices under a concrete select mask."""
        shape2d = np.broadcast(
            np.asarray(indices[0]), np.empty((self.nblocks, 1))
        ).shape
        select = np.broadcast_to(select, shape2d)
        if not select.any():
            return
        idx_flat = [
            np.broadcast_to(np.asarray(i, dtype=np.int64), shape2d)[select]
            for i in indices
        ]
        rows = np.broadcast_to(
            np.arange(self.nblocks, dtype=np.int64)[:, None], shape2d
        )[select]
        linear = self._linear_indices(view, idx_flat)
        nbits = view.dtype.nbits
        msg = self.em.const(view.oob_msg())
        pf = self.em.tmp()
        if bool(select.all()):
            self.em.emit(f"{pf} = {patterns_name}.reshape(-1)")
        else:
            self.em.emit(
                f"{pf} = {patterns_name}.reshape({shape2d!r})"
                f"[{self.em.const(select)}]"
            )
        conc_flat = view.conc_bits[rows]
        if nbits % 8 == 0:
            byte_off = conc_flat // 8 + (linear * nbits) // 8
            if view.is_concrete():
                addr = self.em.const(byte_off)
            else:
                addr = self.em.tmp()
                terms = [
                    f"p{self.st.ptr_slots[idx]} * {self.em.const(c[rows] // 8)}"
                    for idx, c in view.coeffs.items()
                    if np.any(c)
                ]
                rhs = " + ".join(terms + [self.em.const(byte_off)])
                self.em.emit(f"{addr} = {rhs}")
            self.em.emit(
                f"_scb({view.buf}, {addr}, {pf}, {nbits // 8}, {msg})"
            )
            return
        # Sub-byte scatter: precompute the last-writer dedup from the
        # concrete part of the bit positions.  Valid when every pointer
        # coefficient is uniform across the selected rows (the runtime
        # pointer then shifts all positions equally, preserving equality
        # classes and sorted order).
        shift_terms = []
        for idx, c in view.coeffs.items():
            sel_c = c[rows]
            if not np.any(sel_c):
                continue
            if sel_c.size and (sel_c.min() != sel_c.max()):
                raise LoweringBailout(
                    "sub-byte scatter through a block-varying pointer base"
                )
            shift_terms.append((idx, int(sel_c[0])))
        offsets = np.arange(nbits, dtype=np.int64)
        bit_addr_conc = conc_flat + linear * nbits
        pos = (bit_addr_conc[:, None] + offsets).reshape(-1)
        rev = pos[::-1]
        _, first_in_rev = np.unique(rev, return_index=True)
        keep = pos.shape[0] - 1 - first_in_rev
        pos_u = pos[keep]
        byte_conc = pos_u // 8
        bit_in_byte = (pos_u % 8).astype(np.uint8)
        bv = self.em.tmp()
        self.em.emit(
            f"{bv} = (({pf}[:, None] >> {self.em.const(offsets.astype(np.uint64))})"
            f" & np.uint64(1)).astype(np.uint8).reshape(-1)"
        )
        vu = self.em.tmp()
        self.em.emit(f"{vu} = {bv}[{self.em.const(keep)}]")
        if shift_terms:
            parts = [
                f"p{self.st.ptr_slots[idx]} * {coeff // 8}"
                for idx, coeff in shift_terms
            ]
            addr = self.em.tmp()
            self.em.emit(
                f"{addr} = {' + '.join(parts)} + {self.em.const(byte_conc)}"
            )
        else:
            addr = self.em.const(byte_conc)
        self.em.emit(
            f"_ssb({view.buf}, {addr}, {self.em.const(bit_in_byte)}, {vu}, {msg})"
        )

    def _tile_indices(self, layout, offsets, active, broadcast_dims=frozenset()):
        coords = layout_tile_coords(layout)
        origin = []
        for o in offsets:
            value = self._peval_concrete(o, active)
            arr = np.asarray(value, dtype=np.int64)
            if arr.ndim == 0:
                col = np.full((self.nblocks, 1), int(arr), dtype=np.int64)
            else:
                col = arr.reshape(self.nblocks, 1)
            origin.append(col)
        return pad_tile_indices(coords, origin, broadcast_dims)

    # -- instruction handlers (compile-time mirrors of vm/batched.py) -------
    def _h_block_indices(self, inst: insts.BlockIndices, active) -> None:
        if len(inst.out_vars) != len(self.st.coords):
            raise VMError(
                f"BlockIndices unpacks {len(inst.out_vars)} values but the grid "
                f"has rank {len(self.st.coords)}"
            )
        for var, arr in zip(inst.out_vars, self.st.coords):
            self.env[var] = arr

    def _h_view_global(self, inst: insts.ViewGlobal, active) -> None:
        ptr = self._peval(inst.ptr, active)
        ttype = inst.out.ttype
        shape = []
        for s in ttype.shape:
            if hasattr(s, "dtype"):
                v = self._peval_concrete(s, active)
                if isinstance(v, np.ndarray):
                    uniq = np.unique(v[active]) if active.any() else np.unique(v)
                    if uniq.size > 1:
                        raise VMError(
                            "batched engine requires uniform global view shapes; "
                            f"got extents {uniq.tolist()} across blocks"
                        )
                    v = int(uniq[0]) if uniq.size else 0
                shape.append(int(v))
            else:
                shape.append(int(s))
        shape = tuple(shape)
        aff = _as_affine(ptr)
        nb = self.nblocks
        coeffs = {}
        for idx, c in aff.coeffs.items():
            arr = np.broadcast_to(np.asarray(c, dtype=np.int64), (nb,))
            coeffs[idx] = np.where(active, arr, 0) * 8
        conc_arr = np.broadcast_to(np.asarray(aff.conc, dtype=np.int64), (nb,))
        conc_bits = np.where(active, conc_arr, 0) * 8
        size = int(np.prod(shape)) if shape else 1
        buflen = len(self.st.memory.buffer)
        limit = (buflen - 8) * 8
        size_bits = size * ttype.dtype.nbits
        msg_neg = (
            f"tensor view [{ttype.dtype}{list(shape)}] starts before the "
            f"buffer: bit offset {{}} is negative"
        )
        msg_exc = (
            f"tensor view [{ttype.dtype}{list(shape)}] at bit offset "
            f"{{}} exceeds its buffer: needs {{}} bits, buffer has {limit}"
        )
        concrete = all(not np.any(c) for c in coeffs.values())
        if concrete:
            base = conc_bits
            end = base + size_bits
            if bool((base < 0).any()):
                raise VMError(msg_neg.format(int(base.min())))
            if bool((end > limit).any()):
                raise VMError(msg_exc.format(int(base[end > limit][0]), int(end.max())))
            name = self.em.const(base)
            byte_name = self.em.const(base // 8)
        else:
            terms = [
                f"p{self.st.ptr_slots[idx]} * {self.em.const(c)}"
                for idx, c in coeffs.items()
                if np.any(c)
            ]
            name = self.em.tmp()
            self.em.emit(
                f"{name} = {' + '.join(terms)} + {self.em.const(conc_bits)}"
            )
            self.em.emit(
                f"_vg({name}, {size_bits}, {limit}, "
                f"{self.em.const(msg_neg)}, {self.em.const(msg_exc)})"
            )
            byte_name = self.em.tmp()
            self.em.emit(f"{byte_name} = {name} // 8")
        view = _View(
            buf="mem",
            dtype=ttype.dtype,
            shape=shape,
            coeffs=coeffs,
            conc_bits=conc_bits,
            name=name,
            byte_name=byte_name,
            buflen=buflen,
        )
        self._bind_tensor(inst.out, view, active)

    def _h_allocate_register(self, inst: insts.AllocateRegister, active) -> None:
        ttype = inst.out.ttype
        layout, dtype = ttype.layout, ttype.dtype
        shape3 = (self.nblocks, layout.num_threads, layout.local_size)
        if inst.init is not None:
            values = np.full(shape3, inst.init)
            patterns = np.asarray(
                dtype.to_bits(values.reshape(-1)), dtype=np.uint64
            ).reshape(shape3)
        else:
            patterns = np.zeros(shape3, dtype=np.uint64)
        reg = _Reg(dtype, layout, self.em.const(patterns))
        self._bind_tensor(inst.out, reg, active)

    def _h_allocate_shared(self, inst: insts.AllocateShared, active) -> None:
        ttype = inst.out.ttype
        shape = ttype.static_shape()
        if shape is None:
            raise VMError("shared tensors require static shapes")
        nbytes = (int(np.prod(shape)) * ttype.dtype.nbits + 7) // 8
        capacity = self.st.shared_capacity
        aligned = (int(nbytes) + 15) // 16 * 16
        addr = self.shared_next.copy()
        grown = self.shared_next + aligned
        if bool((active & (grown > capacity)).any()):
            free = capacity - int(self.shared_next[active].max())
            raise VMError(
                f"shared memory exhausted: requested {nbytes} B, "
                f"{free} B free of {capacity} B"
            )
        self.shared_next = np.where(active, grown, self.shared_next)
        self.shared_used = True
        row_bytes = capacity + 8
        row_base_bits = np.arange(self.nblocks, dtype=np.int64) * row_bytes * 8
        base_bits = row_base_bits + addr * 8
        view = _View(
            buf="sm",
            dtype=ttype.dtype,
            shape=tuple(shape),
            coeffs={},
            conc_bits=base_bits,
            name=self.em.const(base_bits),
            byte_name=self.em.const(base_bits // 8),
            buflen=self.nblocks * row_bytes,
        )
        self._bind_tensor(inst.out, view, active)

    def _h_free_shared(self, inst: insts.FreeShared, active) -> None:
        self.env.pop(inst.tensor, None)

    # transfer --------------------------------------------------------------
    def _load(self, inst, active, shared: bool) -> None:
        src = self._lookup_tensor(inst.src)
        if not isinstance(src, _View):
            raise LoweringBailout("load source is not a memory view")
        layout = inst.out.ttype.layout
        indices = self._tile_indices(
            layout, inst.offset, active, inst.broadcast_dims
        )
        nbits = src.dtype.nbits
        if getattr(inst, "masked", False):
            valid = bounds_mask(indices, src.shape)
            clipped = [
                np.clip(i, 0, e - 1) for i, e in zip(indices, src.shape)
            ]
            linear = self._linear_indices(src, clipped)
            raw = self._emit_gather(src, linear)
            pat = self.em.tmp()
            if bool(valid.all()):
                self.em.emit(f"{pat} = {raw}")
            else:
                self.em.emit(
                    f"{pat} = np.where({self.em.const(valid)}, {raw}, np.uint64(0))"
                )
        else:
            where = np.broadcast_to(active[:, None], (self.nblocks, indices[0].shape[-1]))
            neutral = [np.where(where, i, 0) for i in indices]
            linear = self._linear_indices(src, neutral)
            pat = self._emit_gather(src, linear)
        shape3 = (self.nblocks, layout.num_threads, layout.local_size)
        shaped = self.em.tmp()
        self.em.emit(f"{shaped} = {pat}.reshape({shape3!r})")
        count = int(active.sum())
        key = "shared_bits_loaded" if shared else "global_bits_loaded"
        self.tally[key] += layout.size * nbits * count
        reg = _Reg(inst.out.ttype.dtype, layout, shaped)
        self._bind_tensor(inst.out, reg, active)

    def _h_load_global(self, inst: insts.LoadGlobal, active) -> None:
        self._load(inst, active, shared=False)

    def _h_load_shared(self, inst: insts.LoadShared, active) -> None:
        self._load(inst, active, shared=True)

    def _h_store_global(self, inst: insts.StoreGlobal, active) -> None:
        value = self._lookup_tensor(inst.src)
        dst = self._lookup_tensor(inst.dst)
        if not isinstance(value, _Reg) or not isinstance(dst, _View):
            raise LoweringBailout("store operands are not register/view")
        indices = self._tile_indices(value.layout, inst.offset, active)
        n = value.layout.num_threads * value.layout.local_size
        select = np.broadcast_to(active[:, None], (self.nblocks, n))
        if inst.masked:
            valid = bounds_mask(indices, dst.shape)
            select = select & valid
            counted = int((active & valid.any(axis=1)).sum())
        else:
            counted = int(active.sum())
        self._emit_scatter(dst, indices, value.name, select)
        self.tally["global_bits_stored"] += (
            value.layout.size * dst.dtype.nbits * counted
        )

    def _h_store_shared(self, inst: insts.StoreShared, active) -> None:
        value = self._lookup_tensor(inst.src)
        dst = self._lookup_tensor(inst.dst)
        if not isinstance(value, _Reg) or not isinstance(dst, _View):
            raise LoweringBailout("store operands are not register/view")
        indices = self._tile_indices(value.layout, inst.offset, active)
        n = value.layout.num_threads * value.layout.local_size
        select = np.broadcast_to(active[:, None], (self.nblocks, n))
        self._emit_scatter(dst, indices, value.name, select)
        self.tally["shared_bits_stored"] += (
            value.layout.size * dst.dtype.nbits * int(active.sum())
        )

    def _h_copy_async(self, inst: insts.CopyAsync, active) -> None:
        src = self._lookup_tensor(inst.src)
        dst = self._lookup_tensor(inst.dst)
        if not isinstance(src, _View) or not isinstance(dst, _View):
            raise LoweringBailout("copy_async operands are not views")
        shape = inst.copy_shape()
        size = int(np.prod(shape))
        idx = decompose_linear(tuple(shape))
        src_origin = []
        for o in inst.src_offset:
            v = np.asarray(self._peval_concrete(o, active), dtype=np.int64)
            src_origin.append(
                np.full((self.nblocks, 1), int(v), dtype=np.int64)
                if v.ndim == 0
                else v.reshape(self.nblocks, 1)
            )
        dst_origin = []
        for o in inst.dst_offset:
            v = np.asarray(self._peval_concrete(o, active), dtype=np.int64)
            dst_origin.append(
                np.full((self.nblocks, 1), int(v), dtype=np.int64)
                if v.ndim == 0
                else v.reshape(self.nblocks, 1)
            )
        zero = np.zeros(size, dtype=np.int64)
        src_full = [zero] * (len(src_origin) - len(idx)) + idx
        dst_full = [zero] * (len(dst_origin) - len(idx)) + idx
        src_idx = [f[None, :] + o for f, o in zip(src_full, src_origin)]
        dst_idx = [f[None, :] + o for f, o in zip(dst_full, dst_origin)]
        valid = bounds_mask(src_idx, src.shape)
        clipped = [np.clip(i, 0, e - 1) for i, e in zip(src_idx, src.shape)]
        linear = self._linear_indices(src, clipped)
        raw = self._emit_gather(src, linear)
        pat = self.em.tmp()
        if bool(valid.all()):
            self.em.emit(f"{pat} = {raw}")
        else:
            self.em.emit(
                f"{pat} = np.where({self.em.const(valid)}, {raw}, np.uint64(0))"
            )
        select = np.broadcast_to(active[:, None], (self.nblocks, size))
        self._emit_scatter(dst, dst_idx, pat, select)
        count = int(active.sum())
        self.pending_copy += 1
        self.tally["copy_async_issued"] += count
        self.tally["global_bits_loaded"] += size * src.dtype.nbits * count

    def _h_copy_commit(self, inst, active) -> None:
        self.committed.append(self.pending_copy)
        self.pending_copy = 0

    def _h_copy_wait(self, inst: insts.CopyAsyncWaitGroup, active) -> None:
        while len(self.committed) > inst.n:
            self.committed.pop(0)

    # computation -----------------------------------------------------------
    def _h_binary(self, inst: insts.ElementwiseBinary, active) -> None:
        a = self._lookup_tensor(inst.a)
        if not isinstance(a, _Reg):
            raise LoweringBailout("binary operand is not a register")
        av = self._decode(a)
        if isinstance(inst.b, TensorVar):
            b = self._lookup_tensor(inst.b)
            if not isinstance(b, _Reg):
                raise LoweringBailout("binary operand is not a register")
            if b.layout.num_threads != a.layout.num_threads or (
                b.layout.local_size != a.layout.local_size
            ):
                raise VMError("elementwise operands must have matching layouts")
            b_expr = self._decode(b)
        else:
            value = self._peval_concrete(inst.b, active)
            if isinstance(value, np.ndarray):
                b_expr = f"{self.em.const(value)}.reshape(-1, 1, 1)"
            else:
                b_expr = _lit(value)
        res = self.em.tmp()
        self.em.emit(
            f"{res} = _ew({self._dtype_const(a.dtype)}, {inst.op!r}, {av}, {b_expr})"
        )
        self._bind_tensor(inst.out, self._encode(a.dtype, a.layout, res), active)

    def _h_neg(self, inst: insts.Neg, active) -> None:
        a = self._lookup_tensor(inst.a)
        if not isinstance(a, _Reg):
            raise LoweringBailout("neg operand is not a register")
        av = self._decode(a)
        self._bind_tensor(
            inst.out, self._encode(a.dtype, a.layout, f"-{av}"), active
        )

    def _h_cast(self, inst: insts.Cast, active) -> None:
        a = self._lookup_tensor(inst.a)
        if not isinstance(a, _Reg):
            raise LoweringBailout("cast operand is not a register")
        av = self._decode(a)
        if inst.dtype.is_integer and a.dtype.is_float:
            truncated = self.em.tmp()
            self.em.emit(f"{truncated} = np.trunc({av})")
            av = truncated
        self._bind_tensor(
            inst.out, self._encode(inst.dtype, a.layout, av), active
        )

    def _h_reduce_sum(self, inst: insts.ReduceSum, active) -> None:
        value = self._lookup_tensor(inst.a)
        if not isinstance(value, _Reg):
            raise LoweringBailout("reduce operand is not a register")
        logical, lshape = self._to_logical(value)
        reduced = self.em.tmp()
        self.em.emit(
            f"{reduced} = {logical}.sum(axis={inst.axis + 1}, keepdims=True)"
        )
        rshape = tuple(
            1 if d == inst.axis + 1 else e for d, e in enumerate(lshape)
        )
        out_t = inst.out.ttype
        reg = self._from_logical(out_t.dtype, out_t.layout, reduced, rshape)
        self._bind_tensor(inst.out, reg, active)

    def _h_lookup(self, inst: insts.Lookup, active) -> None:
        codes = self._lookup_tensor(inst.codes)
        table = self._lookup_tensor(inst.table)
        if not isinstance(codes, _Reg):
            raise LoweringBailout("lookup codes are not a register")
        cv = self._decode(codes)
        flat = self.em.tmp()
        self.em.emit(f"{flat} = {cv}.astype(np.int64).reshape({self.nblocks}, -1)")
        safe = self.em.tmp()
        if bool(active.all()):
            self.em.emit(f"{safe} = {flat}")
        else:
            self.em.emit(
                f"{safe} = np.where({self.em.const(active)}[:, None], {flat}, 0)"
            )
        act_rows = self.em.const(active)
        if isinstance(table, _Reg):
            logical, lshape = self._to_logical(table)
            extent = lshape[1]
            msg = self.em.const(f"lookup code {{}} exceeds table of {extent}")
            self.em.emit(f"_lk({safe}[{act_rows}], {extent}, {msg})")
            bidx = self.em.const(np.arange(self.nblocks, dtype=np.int64)[:, None])
            values = self.em.tmp()
            self.em.emit(
                f"{values} = {logical}[{bidx}, np.clip({safe}, 0, {extent - 1})]"
            )
        elif isinstance(table, _View):
            extent = table.shape[0]
            msg = self.em.const(f"lookup code {{}} exceeds table of {extent}")
            self.em.emit(f"_lk({safe}[{act_rows}], {extent}, {msg})")
            nbits = table.dtype.nbits
            oob = self.em.const(table.oob_msg())
            if table.is_concrete():
                base_expr = f"{self.em.const(table.conc_bits // 8)}[:, None]"
            else:
                base_expr = f"{table.byte_name}[:, None]"
            raw = self.em.tmp()
            if nbits % 8 == 0:
                self.em.emit(
                    f"{raw} = _gb({table.buf}, {base_expr} + {safe} * {nbits // 8}, "
                    f"{nbits // 8}, {oob})"
                )
            else:
                ba = self.em.tmp()
                sh = self.em.tmp()
                self.em.emit(f"{ba} = {base_expr} + ({safe} * {nbits}) // 8")
                self.em.emit(f"{sh} = (({safe} * {nbits}) % 8).astype(np.uint64)")
                self.em.emit(
                    f"{raw} = _gsb({table.buf}, {ba}, {sh}, {nbits}, {oob})"
                )
            values = self.em.tmp()
            self.em.emit(
                f"{values} = {self._dtype_const(table.dtype)}"
                f".from_bits({raw}.reshape(-1)).reshape({raw}.shape)"
            )
        else:
            raise LoweringBailout("lookup table is neither register nor view")
        out_t = inst.out.ttype
        shape3 = (
            self.nblocks,
            out_t.layout.num_threads,
            out_t.layout.local_size,
        )
        reg = self._encode(
            out_t.dtype, out_t.layout, f"{values}.reshape({shape3!r})"
        )
        self._bind_tensor(inst.out, reg, active)

    def _h_view(self, inst: insts.View, active) -> None:
        a = self._lookup_tensor(inst.a)
        if not isinstance(a, _Reg):
            raise LoweringBailout("view operand is not a register")
        out_t = inst.out.ttype
        if out_t.layout.num_threads != a.layout.num_threads:
            raise VMError(
                f"view: thread count {a.layout.num_threads} -> "
                f"{out_t.layout.num_threads} mismatch"
            )
        if out_t.layout.local_size * out_t.dtype.nbits != (
            a.layout.local_size * a.dtype.nbits
        ):
            raise VMError(
                f"view: bits-per-thread mismatch: "
                f"{a.layout.local_size * a.dtype.nbits} -> "
                f"{out_t.layout.local_size * out_t.dtype.nbits}"
            )
        if out_t.dtype.nbits == a.dtype.nbits:
            reg = _Reg(out_t.dtype, out_t.layout, a.name)
        else:
            name = self.em.tmp()
            self.em.emit(
                f"{name} = _viewp({a.name}, {a.dtype.nbits}, "
                f"{out_t.dtype.nbits}, {out_t.layout.local_size})"
            )
            reg = _Reg(out_t.dtype, out_t.layout, name)
        self._bind_tensor(inst.out, reg, active)

    def _h_dot(self, inst: insts.Dot, active) -> None:
        a = self._lookup_tensor(inst.a)
        b = self._lookup_tensor(inst.b)
        c = self._lookup_tensor(inst.c)
        if not all(isinstance(x, _Reg) for x in (a, b, c)):
            raise LoweringBailout("dot operands are not registers")
        al, ashape = self._to_logical(a)
        bl, bshape = self._to_logical(b)
        cl, _ = self._to_logical(c)
        res = self.em.tmp()
        self.em.emit(
            f"{res} = {al}.astype(np.float64) @ {bl}.astype(np.float64) + {cl}"
        )
        rshape = (self.nblocks, ashape[1], bshape[2])
        out_t = inst.out.ttype
        reg = self._from_logical(out_t.dtype, out_t.layout, res, rshape)
        self._bind_tensor(inst.out, reg, active)
        self.tally["dot_ops"] += (
            ashape[1] * ashape[2] * bshape[2] * int(active.sum())
        )

    # misc ------------------------------------------------------------------
    def _h_synchronize(self, inst, active) -> None:
        self.tally["synchronizations"] += int(active.sum())

    def _h_exit(self, inst, active) -> None:
        self.exited |= active


# ---------------------------------------------------------------------------
# Pass 3: flatten to source
# ---------------------------------------------------------------------------


@dataclass
class LoweredKernel:
    """A specialized program compiled to a flat numpy function.

    ``run`` executes on the memory the kernel was lowered against (buffer
    length is baked into bounds checks and error strings).
    """

    program_name: str
    spec: tuple
    grid: tuple
    nblocks: int
    ptr_indices: tuple
    source: str
    passes: tuple
    buffer_len: int
    shared_used: bool
    num_consts: int
    num_params: int
    _fn: Callable = field(repr=False, default=None)
    #: The constant pool the source closes over (C0, C1, ...).  Carried
    #: so the tuning store can persist a kernel as source + consts and
    #: rehydrate it in a fresh process without re-running the passes.
    consts: dict = field(repr=False, default=None)

    def run(self, memory: GlobalMemory, args: Sequence,
            stats: Optional[ExecutionStats] = None) -> ExecutionStats:
        if len(args) != self.num_params:
            raise VMError(
                f"{self.program_name} expects {self.num_params} args, got {len(args)}"
            )
        if len(memory.buffer) != self.buffer_len:
            raise VMError(
                f"compiled kernel for {self.program_name} was lowered against a "
                f"{self.buffer_len}-byte buffer, got {len(memory.buffer)} bytes"
            )
        if stats is None:
            stats = ExecutionStats()
        ptrs = [int(args[i]) for i in self.ptr_indices]
        self._fn(memory.buffer, ptrs, stats)
        return stats


class FlattenToSource:
    """Pass 3: assemble, ``compile()`` and wrap the trace."""

    name = PASS_NAMES[2]

    @staticmethod
    def run(state: _LoweringState, tracer: _Tracer) -> LoweredKernel:
        em = state.emitter
        body: list[str] = []
        for slot in range(len(state.ptr_indices)):
            body.append(f"p{slot} = ptrs[{slot}]")
        if tracer.shared_used:
            row_bytes = state.shared_capacity + 8
            body.append(
                f"sm = np.zeros({state.nblocks * row_bytes}, dtype=np.uint8)"
            )
        body.extend(em.lines)
        for fname in _STAT_FIELDS:
            delta = tracer.tally[fname]
            if delta:
                body.append(f"stats.{fname} += {delta}")
        if not body:
            body.append("pass")
        source = "def _jit_kernel(mem, ptrs, stats):\n" + "\n".join(
            "    " + line for line in body
        )
        code = compile(source, f"<jit:{state.program.name}>", "exec")
        namespace = dict(_HELPERS)
        namespace.update(em.consts)
        exec(code, namespace)  # noqa: S102 - the source is generated above
        return LoweredKernel(
            program_name=state.program.name,
            spec=state.spec,
            grid=state.grid,
            nblocks=state.nblocks,
            ptr_indices=state.ptr_indices,
            source=source,
            passes=PASS_NAMES,
            buffer_len=len(state.memory.buffer),
            shared_used=tracer.shared_used,
            num_consts=len(em.consts),
            num_params=len(state.program.params),
            _fn=namespace["_jit_kernel"],
            consts=dict(em.consts),
        )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def lower_program(
    program: Program,
    args: Sequence,
    memory: GlobalMemory,
    shared_capacity: int = 228 * 1024,
) -> LoweredKernel:
    """Lower a specialized launch to a :class:`LoweredKernel`.

    ``args`` provides the const-bound scalars (baked in, canonicalized the
    same way :func:`specialization_key` canonicalizes them) and is used to
    evaluate the launch grid; pointer arguments are *not* baked — the
    compiled kernel is reusable for any launch with the same specialization
    key.  Raises :class:`LoweringBailout` when the program cannot be
    flattened; callers fall back to the batched engine.
    """
    recorder = obs_trace.ACTIVE
    start = recorder.now() if recorder is not None else 0.0
    state = SpecializeConstants.run(program, args, memory, shared_capacity)
    tracer = UnrollAndTrace.run(state)
    kernel = FlattenToSource.run(state, tracer)
    if recorder is not None:
        recorder.complete(
            f"jit.lower:{program.name}",
            "jit",
            obs_trace.HOST_TID,
            start,
            recorder.now() - start,
        )
    return kernel
