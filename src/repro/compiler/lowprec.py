"""Low-precision lowering (paper Sections 7.1, 7.2 and 8.1 step 3).

Two artifacts are produced here:

1. **Cast recipes** — the vectorized register-only instruction sequences
   that convert packed low-precision lanes to f16/bf16, built from ``PRMT``
   (byte permute), ``LOP3`` (3-input logic) and shifts.  Each recipe knows
   its instruction count per 32-bit register of output, which both the
   code generator and the performance model consume.
2. **Fallback bit access plans** — for a low-precision element at a given
   index within a packed byte array, the AND/SHIFT/OR sequence of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dtypes import DataType
from repro.errors import CompilationError
from repro.utils.bits import bit_mask


@dataclass(frozen=True)
class CastOp:
    """One abstract machine op in a cast recipe."""

    opcode: str   # prmt | lop3 | shr | shl | and | or | sub | fma | cvt | mov
    comment: str = ""


@dataclass
class CastRecipe:
    """Register-only conversion of packed low-precision lanes to f16.

    ``ops_per_out_reg`` is the cost unit: instructions needed to produce
    one 32-bit register holding two f16 results.
    """

    src: str
    dst: str
    ops: list[CastOp] = field(default_factory=list)

    @property
    def ops_per_out_reg(self) -> int:
        return len(self.ops)

    def mnemonic_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for op in self.ops:
            hist[op.opcode] = hist.get(op.opcode, 0) + 1
        return hist


def _uint_to_f16_recipe(nbits: int) -> list[CastOp]:
    """Unsigned integers: align each lane, mask, then or-in the f16
    exponent of 1024 and subtract — the classic ``(x | 0x6400) - 1024``
    trick done two lanes at a time with LOP3."""
    ops: list[CastOp] = []
    if nbits not in (1, 2, 3, 4, 5, 6, 7, 8):
        raise CompilationError(f"no u{nbits} -> f16 recipe")
    if nbits > 4:
        # Lanes straddle nibbles: byte-select with PRMT first.
        ops.append(CastOp("prmt", f"gather the bytes holding two u{nbits} lanes"))
    ops.append(CastOp("shr", "align lane pair to bit offsets 0 and 16"))
    ops.append(
        CastOp("lop3", f"(x & mask({nbits})) | 0x64006400: mask and set exponent")
    )
    ops.append(CastOp("sub", "f16x2 subtract 0x6400 (1024.0) to remove bias"))
    return ops


def _int_to_f16_recipe(nbits: int) -> list[CastOp]:
    """Signed integers add a sign-extension step before the uint path."""
    ops = [CastOp("shl", "move sign bit of each lane to the lane top")]
    ops += [CastOp("shr", "arithmetic shift right: sign extend within lane")]
    ops += _uint_to_f16_recipe(nbits)[:-1]
    ops.append(CastOp("sub", "f16x2 subtract bias including sign offset"))
    return ops


def _float_to_f16_recipe(exponent_bits: int, mantissa_bits: int) -> list[CastOp]:
    """Sub-byte floats: shift sign/exp/man into f16 positions, then scale
    by 2^(15 - bias_src) with one f16x2 multiply (exponent rebias)."""
    ops = [CastOp("prmt", "gather bytes of two float lanes")]
    ops.append(CastOp("shr", "align lanes"))
    ops.append(CastOp("and", "isolate sign bits"))
    ops.append(CastOp("shl", f"move exp+man ({exponent_bits}+{mantissa_bits} bits) to f16 field"))
    ops.append(CastOp("lop3", "merge sign | exponent-mantissa"))
    ops.append(CastOp("fma", "multiply by 2^(15-bias): exponent rebias"))
    return ops


def build_cast_recipe(src: DataType, dst: DataType) -> CastRecipe:
    """Cast recipe from a low-precision type to a 16-bit activation type."""
    if dst.nbits != 16 or not dst.is_float:
        raise CompilationError(f"vectorized cast targets 16-bit floats, got {dst}")
    if src.is_float:
        from repro.dtypes.floats import FloatType

        if not isinstance(src, FloatType):
            raise CompilationError(f"{src} is not a parameterized float")
        ops = _float_to_f16_recipe(src.exponent_bits, src.mantissa_bits)
    elif src.is_signed:
        ops = _int_to_f16_recipe(src.nbits)
    else:
        ops = _uint_to_f16_recipe(src.nbits)
    return CastRecipe(src=src.name, dst=dst.name, ops=ops)


@dataclass(frozen=True)
class BitAccessStep:
    """One bitwise operation of the fallback access path (Figure 8)."""

    op: str        # "and" | "shr" | "shl" | "or"
    operand: int   # mask or shift amount
    byte_index: int


def fallback_load_plan(nbits: int, element_index: int) -> list[BitAccessStep]:
    """AND/SHIFT/OR plan to load element ``element_index`` from a packed
    byte array (paper Figure 8(b))."""
    bit_offset = element_index * nbits
    steps: list[BitAccessStep] = []
    taken = 0
    while taken < nbits:
        byte_idx = (bit_offset + taken) // 8
        bit_in_byte = (bit_offset + taken) % 8
        take = min(8 - bit_in_byte, nbits - taken)
        steps.append(BitAccessStep("and", bit_mask(take) << bit_in_byte, byte_idx))
        if bit_in_byte:
            steps.append(BitAccessStep("shr", bit_in_byte, byte_idx))
        if taken:
            steps.append(BitAccessStep("shl", taken, byte_idx))
        # Merge this part into the (zero-initialized) result register.
        steps.append(BitAccessStep("or", 0, byte_idx))
        taken += take
    return steps


def fallback_store_plan(nbits: int, element_index: int) -> list[BitAccessStep]:
    """Mask/insert plan to store an element (paper Figure 8(c))."""
    bit_offset = element_index * nbits
    steps: list[BitAccessStep] = []
    written = 0
    while written < nbits:
        byte_idx = (bit_offset + written) // 8
        bit_in_byte = (bit_offset + written) % 8
        put = min(8 - bit_in_byte, nbits - written)
        steps.append(
            BitAccessStep("and", (~(bit_mask(put) << bit_in_byte)) & 0xFF, byte_idx)
        )
        steps.append(BitAccessStep("or", 0, byte_idx))
        written += put
    return steps


def cast_cost_per_element(src: DataType, dst: DataType) -> float:
    """Instructions per element for the vectorized cast (two lanes per
    32-bit register => half the recipe length per element)."""
    recipe = build_cast_recipe(src, dst)
    return recipe.ops_per_out_reg / 2.0
