"""Shared-memory and global-workspace planning (paper Section 8.1, step 1).

Kernels may allocate shared tensors multiple times on demand; the planner
assigns each allocation a byte offset within the kernel's single shared
region, reusing space freed by :class:`~repro.ir.instructions.FreeShared`,
and computes the total shared size the launch must request.  The same
first-fit algorithm plans the global workspace used by
``AllocateGlobal``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompilationError
from repro.ir import instructions as insts
from repro.ir.program import Program
from repro.ir.types import TensorVar

_SMEM_ALIGN = 16


@dataclass
class MemoryPlan:
    """Result of planning one memory space."""

    offsets: dict[TensorVar, int] = field(default_factory=dict)
    total_bytes: int = 0

    def offset_of(self, tensor: TensorVar) -> int:
        if tensor not in self.offsets:
            raise CompilationError(f"tensor {tensor.name} was never planned")
        return self.offsets[tensor]


class _FirstFit:
    """First-fit free-list allocator over a growable byte span."""

    def __init__(self, align: int) -> None:
        self.align = align
        self.free: list[tuple[int, int]] = []  # (offset, size), sorted
        self.high_water = 0

    def alloc(self, size: int) -> int:
        size = (size + self.align - 1) // self.align * self.align
        for idx, (offset, span) in enumerate(self.free):
            if span >= size:
                if span == size:
                    self.free.pop(idx)
                else:
                    self.free[idx] = (offset + size, span - size)
                return offset
        offset = self.high_water
        self.high_water += size
        return offset

    def release(self, offset: int, size: int) -> None:
        size = (size + self.align - 1) // self.align * self.align
        self.free.append((offset, size))
        self.free.sort()
        # Coalesce adjacent spans.
        merged: list[tuple[int, int]] = []
        for off, span in self.free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + span)
            else:
                merged.append((off, span))
        self.free = merged


def plan_shared_memory(program: Program, capacity_bytes: int | None = None) -> MemoryPlan:
    """Assign offsets to every shared allocation in program order.

    The walk is linear over the instruction stream: an allocation inside a
    loop reuses the same offset every iteration (allocations are hoisted in
    real codegen), which the linear walk models by planning each
    ``AllocateShared`` instruction once.
    """
    plan = MemoryPlan()
    allocator = _FirstFit(_SMEM_ALIGN)
    sizes: dict[TensorVar, int] = {}
    for inst in program.body.instructions():
        if isinstance(inst, insts.AllocateShared):
            tensor = inst.out
            if tensor in plan.offsets:
                continue  # same static allocation revisited (loop body)
            nbytes = tensor.ttype.storage_bytes()
            plan.offsets[tensor] = allocator.alloc(nbytes)
            sizes[tensor] = nbytes
        elif isinstance(inst, insts.FreeShared):
            tensor = inst.tensor
            if tensor in plan.offsets:
                allocator.release(plan.offsets[tensor], sizes[tensor])
    plan.total_bytes = allocator.high_water
    if capacity_bytes is not None and plan.total_bytes > capacity_bytes:
        raise CompilationError(
            f"program needs {plan.total_bytes} B of shared memory but the "
            f"device provides {capacity_bytes} B"
        )
    return plan


def plan_global_workspace(program: Program) -> MemoryPlan:
    """Plan the runtime workspace consumed by ``AllocateGlobal``."""
    plan = MemoryPlan()
    allocator = _FirstFit(256)
    for inst in program.body.instructions():
        if isinstance(inst, insts.AllocateGlobal):
            tensor = inst.out
            if tensor in plan.offsets:
                continue
            plan.offsets[tensor] = allocator.alloc(tensor.ttype.storage_bytes())
    plan.total_bytes = allocator.high_water
    return plan
