"""The compilation pipeline (paper Section 8.1).

Steps: verify → simplify → memory planning → instruction selection →
code generation.  The result bundles everything a runtime needs: the
(still-interpretable) program, the generated CUDA source, the shared-
memory size to request at launch, and the selection report the
performance model reads.

The module also defines the **kernel specialization key**: a structural
program fingerprint combined with the launch's const-bound scalar
parameters and the program's data-type set.  The runtime's specialization
cache (:class:`repro.runtime.runtime.SpecializationCache`) keys compiled
kernels on it, so *structurally identical* programs — e.g. the same
template re-instantiated for every call of an operator — skip re-lowering
entirely instead of matching only on object identity.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from repro.compiler.codegen import generate_cuda
from repro.compiler.dce import eliminate_dead_code
from repro.compiler.memory_planner import (
    MemoryPlan,
    plan_global_workspace,
    plan_shared_memory,
)
from repro.compiler.selection import SelectionReport, select_instructions
from repro.compiler.simplify import simplify_program
from repro.compiler.verify import VerificationReport, verify_program
from repro.ir import instructions as insts
from repro.ir.expr import Expr, Var
from repro.ir.program import Program
from repro.ir.stmt import (
    AssignStmt,
    BreakStmt,
    ContinueStmt,
    ForStmt,
    IfStmt,
    InstructionStmt,
    SeqStmt,
    Stmt,
    WhileStmt,
)
from repro.ir.types import TensorVar


@dataclass
class CompiledKernel:
    """A fully compiled Tilus kernel."""

    program: Program
    source: str
    shared_plan: MemoryPlan
    workspace_plan: MemoryPlan
    selection: SelectionReport
    verification: VerificationReport

    @property
    def shared_bytes(self) -> int:
        return self.shared_plan.total_bytes

    @property
    def workspace_bytes(self) -> int:
        return self.workspace_plan.total_bytes

    @property
    def name(self) -> str:
        return self.program.name


# ---------------------------------------------------------------------------
# Structural fingerprinting and specialization keys
# ---------------------------------------------------------------------------

#: Memo attribute for the per-program fingerprint.  Compiler passes mutate
#: programs in place, so the fingerprint is pinned the first time it is
#: requested (always before compilation on the launch path).
_FINGERPRINT_ATTR = "_specialization_fingerprint"
_LAYOUT_FP_ATTR = "_layout_fingerprint"


#: Fallback layout-token cache for layouts that reject attribute
#: memoization (slotted or frozen classes).  Keyed by ``id(layout)``
#: with the layout itself stored alongside as a **liveness guard**: the
#: strong reference keeps the object alive while its entry exists, so a
#: recycled id can never alias a dead layout's token — and an identity
#: check (`is`) on lookup makes the guarantee explicit.  LRU-bounded so
#: unbounded distinct layouts cannot leak.
_LAYOUT_TOKEN_FALLBACK: "OrderedDict[int, tuple[object, str]]" = OrderedDict()
_LAYOUT_TOKEN_FALLBACK_MAX = 1024


def _layout_token(layout) -> str:
    """Canonical token for a layout: a hash of its dense mapping table.

    ``short_repr`` is not injective (different thread mappings can share
    shapes and counts), so the token hashes the full (thread, local) →
    index table instead.

    The token is memoized on the layout object; layouts that refuse
    ``setattr`` (slotted/frozen classes) fall back to an id-keyed
    module-level LRU instead of silently re-hashing the full table on
    every specialization lookup.
    """
    if layout is None:
        return "linear"
    cached = getattr(layout, _LAYOUT_FP_ATTR, None)
    if cached is not None:
        return cached
    entry = _LAYOUT_TOKEN_FALLBACK.get(id(layout))
    if entry is not None and entry[0] is layout:
        _LAYOUT_TOKEN_FALLBACK.move_to_end(id(layout))
        return entry[1]
    table = layout.table()
    token = hashlib.sha256(
        repr(table.shape).encode() + table.astype("int64").tobytes()
    ).hexdigest()[:16]
    try:
        setattr(layout, _LAYOUT_FP_ATTR, token)
    except AttributeError:
        _LAYOUT_TOKEN_FALLBACK[id(layout)] = (layout, token)
        _LAYOUT_TOKEN_FALLBACK.move_to_end(id(layout))
        while len(_LAYOUT_TOKEN_FALLBACK) > _LAYOUT_TOKEN_FALLBACK_MAX:
            _LAYOUT_TOKEN_FALLBACK.popitem(last=False)
    return token


class _VarNormalizer:
    """Assigns stable, binding-aware identifiers to variables.

    Variables are compared by object identity (every ``Var`` carries a
    process-global uid), so two *different* variables that happen to share
    a surface name — e.g. a parameter named ``b1`` and a builder-generated
    block-index var also named ``b1`` — normalize to different tokens,
    while every reference to the same variable normalizes identically.
    First-appearance ordering makes the tokens reproducible across
    independent builds of the same program.
    """

    def __init__(self) -> None:
        self._ids: dict = {}

    def token(self, var) -> str:
        norm = self._ids.get(var)
        if norm is None:
            norm = len(self._ids)
            self._ids[var] = norm
        return f"{var.name}#{norm}"


def _tensor_token(var: TensorVar, norm: _VarNormalizer) -> str:
    t = var.ttype
    return (
        f"{norm.token(var)}:{t.scope}:{t.dtype.name}:"
        f"[{','.join(_value_token(s, norm) for s in t.shape)}]:{_layout_token(t.layout)}"
    )


def _expr_token(expr: Expr, norm: _VarNormalizer) -> str:
    if isinstance(expr, TensorVar):
        return _tensor_token(expr, norm)
    if isinstance(expr, Var):
        return norm.token(expr)
    children = ",".join(_expr_token(c, norm) for c in expr.children())
    if children:
        op = getattr(expr, "op", getattr(expr, "dtype", ""))
        return f"{type(expr).__name__}[{op}]({children})"
    # Constant: the dtype is semantically meaningful (it drives generated
    # C types), so it is part of the token, not just the value.
    return f"{expr!r}:{expr.dtype.name}"


def _value_token(value, norm: _VarNormalizer) -> str:
    if isinstance(value, TensorVar):
        return _tensor_token(value, norm)
    if isinstance(value, Expr):
        return _expr_token(value, norm)
    if isinstance(value, frozenset):
        return f"{{{','.join(str(v) for v in sorted(value))}}}"
    if isinstance(value, (tuple, list)):
        return f"({','.join(_value_token(v, norm) for v in value)})"
    if hasattr(value, "name") and hasattr(value, "nbits"):  # DataType
        return value.name
    return repr(value)


def _instruction_tokens(inst: insts.Instruction, norm: _VarNormalizer) -> str:
    fields = ",".join(
        f"{k}={_value_token(v, norm)}" for k, v in sorted(vars(inst).items())
    )
    return f"{type(inst).__name__}({fields})"


def _stmt_tokens(stmt: Stmt, out: list[str], depth: int, norm: _VarNormalizer) -> None:
    pad = "." * depth
    if isinstance(stmt, SeqStmt):
        for child in stmt.body:
            _stmt_tokens(child, out, depth, norm)
    elif isinstance(stmt, InstructionStmt):
        out.append(pad + _instruction_tokens(stmt.instruction, norm))
    elif isinstance(stmt, AssignStmt):
        out.append(
            pad
            + f"assign {norm.token(stmt.var)}:{stmt.var.dtype.name}"
            + f"={_expr_token(stmt.value, norm)}"
        )
    elif isinstance(stmt, IfStmt):
        out.append(pad + f"if {_expr_token(stmt.cond, norm)}")
        _stmt_tokens(stmt.then_body, out, depth + 1, norm)
        if stmt.else_body is not None:
            out.append(pad + "else")
            _stmt_tokens(stmt.else_body, out, depth + 1, norm)
    elif isinstance(stmt, ForStmt):
        out.append(
            pad
            + f"for {norm.token(stmt.var)} in {_expr_token(stmt.extent, norm)} "
            + f"unroll={stmt.unroll} stages={stmt.pipeline_stages}"
        )
        _stmt_tokens(stmt.body, out, depth + 1, norm)
    elif isinstance(stmt, WhileStmt):
        out.append(pad + f"while {_expr_token(stmt.cond, norm)}")
        _stmt_tokens(stmt.body, out, depth + 1, norm)
    elif isinstance(stmt, BreakStmt):
        out.append(pad + "break")
    elif isinstance(stmt, ContinueStmt):
        out.append(pad + "continue")
    else:
        out.append(pad + f"<{type(stmt).__name__}>")


_DTYPE_NAMES_ATTR = "_specialization_dtype_names"


def program_dtype_names(program: Program) -> tuple[str, ...]:
    """Sorted names of every data type the program touches (memoized —
    this sits on the per-launch hot path)."""
    cached = program.__dict__.get(_DTYPE_NAMES_ATTR)
    if cached is not None:
        return cached
    names = {p.dtype.name for p in program.params}
    for inst in program.body.instructions():
        out = inst.output
        if out is not None:
            names.add(out.ttype.dtype.name)
        for operand in inst.inputs():
            names.add(operand.ttype.dtype.name)
    result = tuple(sorted(names))
    program.__dict__[_DTYPE_NAMES_ATTR] = result
    return result


def program_fingerprint(program: Program) -> str:
    """Structural hash of a program (memoized on the program object).

    Two independently built but identical programs get equal fingerprints;
    any semantically meaningful difference — an offset expression, a mask
    flag, a layout's thread mapping, broadcast dimensions, ``num_threads``
    — changes the hash.  Compiler passes mutate programs in place, so the
    value is pinned on first request (the launch path always fingerprints
    before compiling).
    """
    cached = program.__dict__.get(_FINGERPRINT_ATTR)
    if cached is not None:
        return cached
    norm = _VarNormalizer()
    tokens = [
        f"program {program.name} threads={program.num_threads}",
        f"params=({','.join(f'{norm.token(p)}:{p.dtype.name}' for p in program.params)})",
        f"grid=({','.join(_expr_token(g, norm) for g in program.grid)})",
    ]
    _stmt_tokens(program.body, tokens, 0, norm)
    digest = hashlib.sha256("\n".join(tokens).encode()).hexdigest()
    program.__dict__[_FINGERPRINT_ATTR] = digest
    return digest


def specialization_key(program: Program, args: Sequence = ()) -> tuple:
    """Cache key for a compiled kernel launch.

    ``(program hash, const-bound scalar params, dtype set)`` — pointer
    arguments are excluded (the kernel is address-agnostic), while scalar
    arguments are treated as specialization constants.

    The last two components are deliberately conservative: today's
    pipeline lowers identically for every scalar value (so same-program /
    different-const entries hold structurally equal kernels, bounded by
    the cache's LRU limit), and the dtype set is implied by the program
    hash — both are kept explicit so the key already has the shape a
    const-folding or dtype-specializing pass will need, without another
    cache migration.
    """
    const_params = tuple(
        (p.name, float(a) if p.dtype.is_float else int(a))
        for p, a in zip(program.params, args)
        if not p.dtype.is_pointer
    )
    return (program_fingerprint(program), const_params, program_dtype_names(program))


def compile_program(
    program: Program, shared_capacity: int | None = None
) -> CompiledKernel:
    """Run the full pipeline on ``program``."""
    verification = verify_program(program)
    simplify_program(program)
    eliminate_dead_code(program)
    shared_plan = plan_shared_memory(program, shared_capacity)
    workspace_plan = plan_global_workspace(program)
    selection = select_instructions(program)
    source = generate_cuda(program, shared_plan, selection)
    return CompiledKernel(
        program=program,
        source=source,
        shared_plan=shared_plan,
        workspace_plan=workspace_plan,
        selection=selection,
        verification=verification,
    )
