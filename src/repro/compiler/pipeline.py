"""The compilation pipeline (paper Section 8.1).

Steps: verify → simplify → memory planning → instruction selection →
code generation.  The result bundles everything a runtime needs: the
(still-interpretable) program, the generated CUDA source, the shared-
memory size to request at launch, and the selection report the
performance model reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.codegen import generate_cuda
from repro.compiler.dce import eliminate_dead_code
from repro.compiler.memory_planner import (
    MemoryPlan,
    plan_global_workspace,
    plan_shared_memory,
)
from repro.compiler.selection import SelectionReport, select_instructions
from repro.compiler.simplify import simplify_program
from repro.compiler.verify import VerificationReport, verify_program
from repro.ir.program import Program


@dataclass
class CompiledKernel:
    """A fully compiled Tilus kernel."""

    program: Program
    source: str
    shared_plan: MemoryPlan
    workspace_plan: MemoryPlan
    selection: SelectionReport
    verification: VerificationReport

    @property
    def shared_bytes(self) -> int:
        return self.shared_plan.total_bytes

    @property
    def workspace_bytes(self) -> int:
        return self.workspace_plan.total_bytes

    @property
    def name(self) -> str:
        return self.program.name


def compile_program(
    program: Program, shared_capacity: int | None = None
) -> CompiledKernel:
    """Run the full pipeline on ``program``."""
    verification = verify_program(program)
    simplify_program(program)
    eliminate_dead_code(program)
    shared_plan = plan_shared_memory(program, shared_capacity)
    workspace_plan = plan_global_workspace(program)
    selection = select_instructions(program)
    source = generate_cuda(program, shared_plan, selection)
    return CompiledKernel(
        program=program,
        source=source,
        shared_plan=shared_plan,
        workspace_plan=workspace_plan,
        selection=selection,
        verification=verification,
    )
