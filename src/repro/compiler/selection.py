"""Instruction selection and automatic vectorization (paper Section 8.1,
step 2).

For every tensor-transfer instruction we choose the most efficient
hardware instruction available:

- shared→register loads use ``ldmatrix`` when the register layout is
  divisible by ``spatial(8, 4).repeat(1, 4)`` (16-bit elements), else
  vectorized ``lds`` (``lds128``/``lds64``/...),
- global→register loads use vectorized ``ldg`` (``ldg128``/...),
- global→shared copies use ``cp.async`` with 16/8/4-byte transactions,
- register→memory stores use vectorized ``sts``/``stg``.

The vector width is the largest power-of-two run of *contiguous* memory
addresses each thread covers with consecutive local elements, capped at
128 bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ir import instructions as insts
from repro.ir.expr import Constant
from repro.ir.program import Program
from repro.ir.types import TensorVar
from repro.layout import Layout, supports_ldmatrix
from repro.utils.indexmath import prod


@dataclass(frozen=True)
class MemoryAccess:
    """One selected memory instruction."""

    instruction: str        # e.g. "ldg128", "ldmatrix", "cp.async.v4"
    vector_bits: int        # bits moved per thread per issue
    issues_per_thread: int  # instruction count per thread
    coalesced: bool         # whether a warp's accesses coalesce


def contiguous_run_elements(layout: Layout, tensor_shape: tuple[int, ...]) -> int:
    """Longest run ``v`` such that local elements ``i .. i+v-1`` of every
    thread sit at consecutive row-major addresses (for every aligned i)."""
    if layout.local_size == 1:
        return 1
    strides = []
    acc = 1
    for extent in reversed(tensor_shape):
        strides.append(acc)
        acc *= extent
    strides.reverse()
    t = np.repeat(np.arange(layout.num_threads), layout.local_size)
    i = np.tile(np.arange(layout.local_size), layout.num_threads)
    coords = layout.map_batch(t, i)
    # Trailing dims of the tensor correspond to the layout's dims.
    offset = len(tensor_shape) - layout.rank
    linear = np.zeros(t.shape, dtype=np.int64)
    for dim in range(layout.rank):
        linear += np.broadcast_to(coords[dim], t.shape) * strides[offset + dim]
    linear = linear.reshape(layout.num_threads, layout.local_size)
    run = 1
    candidate = 2
    while candidate <= layout.local_size and layout.local_size % candidate == 0:
        ok = True
        for start in range(0, layout.local_size, candidate):
            block = linear[:, start : start + candidate]
            if not np.array_equal(block, block[:, :1] + np.arange(candidate)):
                ok = False
                break
            if (block[:, 0] % candidate).any():
                ok = False
                break
        if not ok:
            break
        run = candidate
        candidate *= 2
    return run


def _warp_coalesced(layout: Layout, tensor_shape: tuple[int, ...], elem_bits: int, run: int) -> bool:
    """Do the 32 threads of a warp touch one contiguous 128-byte segment
    per issue?  (Approximate: thread 0..31's first elements contiguous.)"""
    strides = []
    acc = 1
    for extent in reversed(tensor_shape):
        strides.append(acc)
        acc *= extent
    strides.reverse()
    threads = np.arange(min(32, layout.num_threads))
    coords = layout.map_batch(threads, np.zeros_like(threads))
    offset = len(tensor_shape) - layout.rank
    linear = np.zeros(threads.shape, dtype=np.int64)
    for dim in range(layout.rank):
        linear += np.broadcast_to(coords[dim], threads.shape) * strides[offset + dim]
    span = (linear.max() - linear.min() + run) * elem_bits // 8
    return bool(span <= 128 * max(1, (run * elem_bits) // 32))


def select_memory_access(
    kind: str,
    layout: Layout,
    tensor_shape: tuple[int, ...],
    elem_bits: int,
    from_shared: bool = False,
) -> MemoryAccess:
    """Choose the hardware instruction for one transfer.

    ``kind`` is "load" or "store"; ``from_shared`` selects the
    shared-memory instruction family and enables ``ldmatrix``.
    """
    run = contiguous_run_elements(layout, tensor_shape)
    vec_bits = run * elem_bits
    while vec_bits > 128:
        run //= 2
        vec_bits = run * elem_bits
    # Round down to a hardware width.
    for width in (128, 64, 32, 16, 8):
        if vec_bits >= width:
            vec_bits = width
            break
    else:
        vec_bits = 8
    issues = max(1, (layout.local_size * elem_bits) // vec_bits)
    coalesced = _warp_coalesced(layout, tensor_shape, elem_bits, run)

    if from_shared and kind == "load":
        if elem_bits == 16 and layout.rank == 2 and supports_ldmatrix(layout):
            n_matrices = layout.size * elem_bits // (8 * 8 * 16)
            return MemoryAccess(
                "ldmatrix", 128, max(1, n_matrices // 4), True
            )
        return MemoryAccess(f"lds{vec_bits}", vec_bits, issues, coalesced)
    if from_shared and kind == "store":
        return MemoryAccess(f"sts{vec_bits}", vec_bits, issues, coalesced)
    if kind == "load":
        return MemoryAccess(f"ldg{vec_bits}", vec_bits, issues, coalesced)
    return MemoryAccess(f"stg{vec_bits}", vec_bits, issues, coalesced)


def select_copy_async(shape: tuple[int, ...], elem_bits: int) -> MemoryAccess:
    """``cp.async`` vector width: 16, 8 or 4 bytes per transaction."""
    total_bytes = prod(shape) * elem_bits // 8
    for nbytes, name in ((16, "cp.async.v4"), (8, "cp.async.v2"), (4, "cp.async.v1")):
        if total_bytes % nbytes == 0:
            return MemoryAccess(name, nbytes * 8, max(1, total_bytes // nbytes), True)
    return MemoryAccess("cp.async.v1", 32, max(1, total_bytes // 4), False)


@dataclass
class SelectionReport:
    """Instruction selection results for a whole program, keyed by the
    instruction object identity."""

    accesses: dict[int, MemoryAccess]

    def of(self, inst: insts.Instruction) -> MemoryAccess | None:
        return self.accesses.get(id(inst))

    def histogram(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for access in self.accesses.values():
            counts[access.instruction] = counts.get(access.instruction, 0) + 1
        return counts


def _static_shape_of(tensor: TensorVar) -> tuple[int, ...]:
    static = tensor.ttype.static_shape()
    if static is not None:
        return static
    # Parameter-dependent global views: assume large extents; only the
    # trailing-dim contiguity matters, which shape magnitudes don't change.
    return tuple(
        int(s.value) if isinstance(s, Constant) else 1 << 20 for s in tensor.ttype.shape
    )


def select_instructions(program: Program) -> SelectionReport:
    """Run selection over every transfer instruction of ``program``."""
    accesses: dict[int, MemoryAccess] = {}
    for inst in program.body.instructions():
        if isinstance(inst, insts.LoadGlobal):
            layout = inst.out.ttype.layout
            accesses[id(inst)] = select_memory_access(
                "load", layout, _static_shape_of(inst.src), inst.src.ttype.dtype.nbits
            )
        elif isinstance(inst, insts.LoadShared):
            layout = inst.out.ttype.layout
            accesses[id(inst)] = select_memory_access(
                "load",
                layout,
                _static_shape_of(inst.src),
                inst.src.ttype.dtype.nbits,
                from_shared=True,
            )
        elif isinstance(inst, insts.StoreGlobal):
            layout = inst.src.ttype.layout
            accesses[id(inst)] = select_memory_access(
                "store", layout, _static_shape_of(inst.dst), inst.dst.ttype.dtype.nbits
            )
        elif isinstance(inst, insts.StoreShared):
            layout = inst.src.ttype.layout
            accesses[id(inst)] = select_memory_access(
                "store",
                layout,
                _static_shape_of(inst.dst),
                inst.dst.ttype.dtype.nbits,
                from_shared=True,
            )
        elif isinstance(inst, insts.CopyAsync):
            accesses[id(inst)] = select_copy_async(
                inst.copy_shape(), inst.src.ttype.dtype.nbits
            )
    return SelectionReport(accesses)
