"""Scalar expression simplification (paper Section 8: "optimization passes
refine the IR by eliminating redundancies and simplifying arithmetic
expressions").

Rules implemented:
    constant folding, ``x + 0``, ``x - 0``, ``x * 0``, ``x * 1``,
    ``x / 1``, ``x % 1``, ``0 / x``, double negation, and folding of
    nested constant multiplies/adds like ``(x * 4) * 2``.
"""

from __future__ import annotations

from repro.ir import instructions as insts
from repro.ir.evaluator import evaluate
from repro.ir.expr import (
    Binary,
    CastExpr,
    Compare,
    Conditional,
    Constant,
    Expr,
    Logical,
    Unary,
    Var,
)
from repro.ir.program import Program
from repro.ir.stmt import (
    AssignStmt,
    ForStmt,
    IfStmt,
    InstructionStmt,
    SeqStmt,
    Stmt,
    WhileStmt,
)


def _const(expr: Expr):
    return expr.value if isinstance(expr, Constant) else None


def simplify_expr(expr: Expr) -> Expr:
    """Return a simplified (possibly identical) expression."""
    if isinstance(expr, (Constant, Var)):
        return expr
    if isinstance(expr, Binary):
        lhs = simplify_expr(expr.lhs)
        rhs = simplify_expr(expr.rhs)
        lc, rc = _const(lhs), _const(rhs)
        if lc is not None and rc is not None:
            return Constant(evaluate(Binary(expr.op, lhs, rhs)), expr.dtype)
        op = expr.op
        if op == "+":
            if lc == 0:
                return rhs
            if rc == 0:
                return lhs
            # (x + c1) + c2 -> x + (c1 + c2)
            if rc is not None and isinstance(lhs, Binary) and lhs.op == "+":
                inner_c = _const(lhs.rhs)
                if inner_c is not None:
                    return simplify_expr(Binary("+", lhs.lhs, Constant(inner_c + rc)))
        elif op == "-":
            if rc == 0:
                return lhs
        elif op == "*":
            if lc == 0 or rc == 0:
                return Constant(0, expr.dtype)
            if lc == 1:
                return rhs
            if rc == 1:
                return lhs
            # (x * c1) * c2 -> x * (c1 * c2)
            if rc is not None and isinstance(lhs, Binary) and lhs.op == "*":
                inner_c = _const(lhs.rhs)
                if inner_c is not None:
                    return simplify_expr(Binary("*", lhs.lhs, Constant(inner_c * rc)))
        elif op == "/":
            if rc == 1:
                return lhs
            if lc == 0:
                return Constant(0, expr.dtype)
        elif op == "%":
            if rc == 1:
                return Constant(0, expr.dtype)
        return Binary(op, lhs, rhs)
    if isinstance(expr, Unary):
        operand = simplify_expr(expr.operand)
        if isinstance(operand, Constant):
            return Constant(evaluate(Unary(expr.op, operand)), expr.dtype)
        if expr.op == "-" and isinstance(operand, Unary) and operand.op == "-":
            return operand.operand
        return Unary(expr.op, operand)
    if isinstance(expr, Compare):
        lhs, rhs = simplify_expr(expr.lhs), simplify_expr(expr.rhs)
        if _const(lhs) is not None and _const(rhs) is not None:
            return Constant(bool(evaluate(Compare(expr.op, lhs, rhs))))
        return Compare(expr.op, lhs, rhs)
    if isinstance(expr, Logical):
        lhs, rhs = simplify_expr(expr.lhs), simplify_expr(expr.rhs)
        lc = _const(lhs)
        if lc is not None:
            if expr.op == "&&":
                return rhs if lc else Constant(False)
            return Constant(True) if lc else rhs
        return Logical(expr.op, lhs, rhs)
    if isinstance(expr, Conditional):
        cond = simplify_expr(expr.cond)
        then = simplify_expr(expr.then)
        other = simplify_expr(expr.otherwise)
        cc = _const(cond)
        if cc is not None:
            return then if cc else other
        return Conditional(cond, then, other)
    if isinstance(expr, CastExpr):
        operand = simplify_expr(expr.operand)
        if isinstance(operand, Constant):
            value = evaluate(CastExpr(operand, expr.dtype))
            return Constant(value, expr.dtype)
        return CastExpr(operand, expr.dtype)
    return expr


def _simplify_instruction(inst: insts.Instruction) -> None:
    """Simplify expressions held inside an instruction, in place."""
    for attr in ("offset", "src_offset", "dst_offset"):
        offsets = getattr(inst, attr, None)
        if offsets is not None:
            setattr(inst, attr, tuple(simplify_expr(o) for o in offsets))
    if isinstance(inst, insts.ViewGlobal):
        inst.ptr = simplify_expr(inst.ptr)
    if isinstance(inst, insts.ElementwiseBinary) and isinstance(inst.b, Expr):
        inst.b = simplify_expr(inst.b)


def simplify_program(program: Program) -> Program:
    """Simplify all scalar expressions in a program, in place; returns it."""
    _simplify_stmt(program.body)
    return program


def _simplify_stmt(stmt: Stmt) -> None:
    if isinstance(stmt, SeqStmt):
        for child in stmt.body:
            _simplify_stmt(child)
    elif isinstance(stmt, AssignStmt):
        stmt.value = simplify_expr(stmt.value)
    elif isinstance(stmt, IfStmt):
        stmt.cond = simplify_expr(stmt.cond)
        _simplify_stmt(stmt.then_body)
        if stmt.else_body is not None:
            _simplify_stmt(stmt.else_body)
    elif isinstance(stmt, ForStmt):
        stmt.extent = simplify_expr(stmt.extent)
        _simplify_stmt(stmt.body)
    elif isinstance(stmt, WhileStmt):
        stmt.cond = simplify_expr(stmt.cond)
        _simplify_stmt(stmt.body)
    elif isinstance(stmt, InstructionStmt):
        _simplify_instruction(stmt.instruction)
