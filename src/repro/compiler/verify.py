"""Program verifier: static checks before code generation.

Catches the classes of error that would otherwise surface as miscompiled
kernels: use-before-definition, layout/thread-count mismatches, invalid
register reinterpretation (``View``), incompatible ``Dot`` operand
layouts, and rank errors in memory operations.
"""

from __future__ import annotations

from repro.errors import TypeCheckError
from repro.ir import instructions as insts
from repro.ir.expr import Expr, Var
from repro.ir.program import Program
from repro.ir.scope import MemoryScope
from repro.ir.stmt import (
    AssignStmt,
    ForStmt,
    IfStmt,
    InstructionStmt,
    SeqStmt,
    Stmt,
    WhileStmt,
)
from repro.ir.types import TensorVar


class VerificationReport:
    """Collected statistics about a verified program."""

    def __init__(self) -> None:
        self.num_instructions = 0
        self.num_register_tensors = 0
        self.num_shared_tensors = 0
        self.max_register_bits_per_thread = 0

    def __repr__(self) -> str:
        return (
            f"VerificationReport(insts={self.num_instructions}, "
            f"regs={self.num_register_tensors}, shared={self.num_shared_tensors}, "
            f"max_reg_bits={self.max_register_bits_per_thread})"
        )


def verify_program(program: Program) -> VerificationReport:
    """Verify ``program``; raises :class:`TypeCheckError` on the first
    violation and returns statistics on success."""
    report = VerificationReport()
    defined: set[Var] = set(program.params)
    _verify_stmt(program.body, program, defined, report)
    return report


def _check_expr_defined(expr: Expr, defined: set[Var], context: str) -> None:
    for node in expr.walk():
        if isinstance(node, Var) and not isinstance(node, TensorVar):
            if node not in defined:
                raise TypeCheckError(
                    f"{context}: scalar variable {node.name!r} used before definition"
                )


def _verify_stmt(stmt: Stmt, program: Program, defined: set[Var], report: VerificationReport) -> None:
    if isinstance(stmt, SeqStmt):
        for child in stmt.body:
            _verify_stmt(child, program, defined, report)
    elif isinstance(stmt, AssignStmt):
        _check_expr_defined(stmt.value, defined, "assignment")
        defined.add(stmt.var)
    elif isinstance(stmt, IfStmt):
        _check_expr_defined(stmt.cond, defined, "if condition")
        # Conservative: names defined inside a branch stay visible (the VM
        # uses one flat environment), so verify branches against a copy and
        # merge.
        then_defs = set(defined)
        _verify_stmt(stmt.then_body, program, then_defs, report)
        else_defs = set(defined)
        if stmt.else_body is not None:
            _verify_stmt(stmt.else_body, program, else_defs, report)
        defined |= then_defs & else_defs
    elif isinstance(stmt, ForStmt):
        _check_expr_defined(stmt.extent, defined, "for extent")
        defined.add(stmt.var)
        _verify_stmt(stmt.body, program, defined, report)
    elif isinstance(stmt, WhileStmt):
        _check_expr_defined(stmt.cond, defined, "while condition")
        _verify_stmt(stmt.body, program, defined, report)
    elif isinstance(stmt, InstructionStmt):
        report.num_instructions += 1
        _verify_instruction(stmt.instruction, program, defined, report)


def _verify_instruction(
    inst: insts.Instruction, program: Program, defined: set[Var], report: VerificationReport
) -> None:
    name = type(inst).__name__
    for expr in inst.scalar_operands():
        _check_expr_defined(expr, defined, name)
    for operand in inst.inputs():
        if operand not in defined:
            raise TypeCheckError(f"{name}: tensor {operand.name} used before definition")

    # Register layouts must match the block's thread count exactly or use a
    # subset (one warp of several, for transform-style programs).
    def check_layout(tensor: TensorVar) -> None:
        if tensor.ttype.scope == MemoryScope.REGISTER:
            threads = tensor.ttype.layout.num_threads
            if threads > program.num_threads:
                raise TypeCheckError(
                    f"{name}: layout needs {threads} threads, block has "
                    f"{program.num_threads}"
                )

    if isinstance(inst, insts.BlockIndices):
        if len(inst.out_vars) != program.grid_rank:
            raise TypeCheckError(
                f"BlockIndices unpacks {len(inst.out_vars)} values for a rank-"
                f"{program.grid_rank} grid"
            )
        defined.update(inst.out_vars)
        return

    if isinstance(inst, insts.View):
        src_t, dst_t = inst.a.ttype, inst.out.ttype
        if src_t.layout.num_threads != dst_t.layout.num_threads:
            raise TypeCheckError("View: thread count changed")
        src_bits = src_t.layout.local_size * src_t.dtype.nbits
        dst_bits = dst_t.layout.local_size * dst_t.dtype.nbits
        if src_bits != dst_bits:
            raise TypeCheckError(
                f"View: bits per thread changed ({src_bits} -> {dst_bits})"
            )

    if isinstance(inst, insts.Dot):
        a_t, b_t, c_t = inst.a.ttype, inst.b.ttype, inst.c.ttype
        m, ka = a_t.layout.shape
        kb, n = b_t.layout.shape
        if ka != kb:
            raise TypeCheckError(f"Dot: inner dimensions differ ({ka} vs {kb})")
        if (m, n) != tuple(c_t.layout.shape):
            raise TypeCheckError("Dot: accumulator shape mismatch")
        if not (a_t.dtype.is_float or a_t.dtype.nbits >= 8):
            raise TypeCheckError(
                f"Dot: operand A must be a standard type, got {a_t.dtype} "
                f"(cast low-precision weights before Dot)"
            )

    if isinstance(inst, (insts.ElementwiseBinary,)):
        if isinstance(inst.b, TensorVar):
            la, lb = inst.a.ttype.layout, inst.b.ttype.layout
            if (la.num_threads, la.local_size) != (lb.num_threads, lb.local_size):
                raise TypeCheckError(
                    "elementwise operands must agree on threads and locals"
                )

    if isinstance(inst, insts.AllocateRegister):
        report.num_register_tensors += 1
        bits = inst.out.ttype.bits_per_thread()
        report.max_register_bits_per_thread = max(
            report.max_register_bits_per_thread, bits
        )
    if isinstance(inst, insts.AllocateShared):
        report.num_shared_tensors += 1

    output = inst.output
    if output is not None:
        check_layout(output)
        defined.add(output)
