"""The paper's primary contribution, re-exported as one stable surface:

- the algebraic layout system (Section 4-5),
- the thread-block-level language and its Python DSL (Section 6),
- arbitrary low-precision data types (Section 7),
- the compiler pipeline (Section 8).
"""

from repro.compiler import CompiledKernel, compile_program, verify_program
from repro.dtypes import (
    DataType,
    all_weight_dtypes,
    dtype_from_name,
    float_,
    int_,
    uint,
)
from repro.ir import Program
from repro.kernels import (
    MatmulConfig,
    make_transform_program,
    quantized_matmul_program,
)
from repro.lang import ProgramBuilder, pointer
from repro.layout import (
    Layout,
    column_local,
    column_spatial,
    local,
    replicate,
    spatial,
)
from repro.runtime import Runtime
from repro.vm import Interpreter

__all__ = [
    "Layout",
    "local",
    "spatial",
    "column_local",
    "column_spatial",
    "replicate",
    "DataType",
    "uint",
    "int_",
    "float_",
    "dtype_from_name",
    "all_weight_dtypes",
    "ProgramBuilder",
    "pointer",
    "Program",
    "compile_program",
    "verify_program",
    "CompiledKernel",
    "MatmulConfig",
    "quantized_matmul_program",
    "make_transform_program",
    "Interpreter",
    "Runtime",
]
