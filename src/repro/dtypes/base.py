"""Core data type abstraction.

Every Tilus value has a :class:`DataType` describing its width in bits and
its value semantics.  A data type is a *codec*: it converts between numeric
values (held as float64 / int64 numpy arrays while inside the virtual
machine) and raw bit patterns (held as uint64).  Keeping the two directions
explicit is what makes bit-exact register reinterpretation (``View``)
possible in the VM.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import DataTypeError


class DataType(ABC):
    """Abstract base for all Tilus data types.

    Attributes:
        name: canonical short name, e.g. ``f16``, ``i6``, ``u4``, ``f6e3m2``.
        nbits: storage width in bits (1..64).
    """

    def __init__(self, name: str, nbits: int) -> None:
        if not 1 <= nbits <= 64:
            raise DataTypeError(f"data type width must be in [1, 64], got {nbits}")
        self.name = name
        self.nbits = nbits

    # -- classification ---------------------------------------------------
    @property
    def is_integer(self) -> bool:
        """True for signed and unsigned integer types."""
        return False

    @property
    def is_signed(self) -> bool:
        """True for signed integers and all floats."""
        return False

    @property
    def is_float(self) -> bool:
        """True for floating-point types."""
        return False

    @property
    def is_pointer(self) -> bool:
        """True for pointer types."""
        return False

    @property
    def is_subbyte(self) -> bool:
        """True when the type is narrower than one byte."""
        return self.nbits < 8

    @property
    def is_standard(self) -> bool:
        """True for hardware-native widths (8/16/32/64 bits)."""
        return self.nbits in (8, 16, 32, 64)

    @property
    def nbytes(self) -> int:
        """Storage size rounded up to whole bytes."""
        return (self.nbits + 7) // 8

    # -- codec -------------------------------------------------------------
    @abstractmethod
    def to_bits(self, values: np.ndarray) -> np.ndarray:
        """Encode numeric values into uint64 bit patterns (with rounding
        and saturation as the type defines)."""

    @abstractmethod
    def from_bits(self, bits: np.ndarray) -> np.ndarray:
        """Decode uint64 bit patterns into numeric values (float64 for
        floats, int64 for integers)."""

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round-trip values through this type's representable set."""
        return self.from_bits(self.to_bits(values))

    # -- ranges ------------------------------------------------------------
    @property
    @abstractmethod
    def min_value(self) -> float:
        """Smallest representable value."""

    @property
    @abstractmethod
    def max_value(self) -> float:
        """Largest representable value."""

    def numpy_dtype(self) -> np.dtype:
        """Closest numpy dtype for *computation* with decoded values."""
        return np.dtype(np.float64) if self.is_float else np.dtype(np.int64)

    # -- identity ----------------------------------------------------------
    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DataType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("DataType", self.name))

    def short_name(self) -> str:
        return self.name


class PointerType(DataType):
    """A 64-bit pointer to elements of ``base`` (``void`` when None).

    Pointers are opaque integers inside the VM: they index into the global
    memory byte array.
    """

    def __init__(self, base: DataType | None = None) -> None:
        base_name = base.name if base is not None else "void"
        super().__init__(name=f"{base_name}*", nbits=64)
        self.base = base

    @property
    def is_pointer(self) -> bool:
        return True

    def to_bits(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.uint64)

    def from_bits(self, bits: np.ndarray) -> np.ndarray:
        return np.asarray(bits, dtype=np.uint64).astype(np.int64)

    @property
    def min_value(self) -> float:
        return 0

    @property
    def max_value(self) -> float:
        return float(2**64 - 1)


def void_pointer() -> PointerType:
    """The generic ``void*`` pointer type."""
    return PointerType(None)
