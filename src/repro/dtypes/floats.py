"""Floating-point data types, standard and arbitrary low-precision.

A :class:`FloatType` is parameterized by its exponent width ``e`` and
mantissa width ``m`` (plus one sign bit), giving ``nbits = 1 + e + m``.
The bias is ``2**(e-1) - 1``.  Subnormals are supported.  For widths
below 16 bits we follow the "fn" (finite-number) convention used by FP8
e4m3 and the FP6 formats of QuantLLM: the all-ones exponent encodes
ordinary values rather than inf/nan, and out-of-range casts saturate.

This module also defines the standard IEEE types (float16/32/64),
bfloat16 and tfloat32 — the activation types of the paper — so that the
entire type system flows through one codec interface.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DataType
from repro.errors import DataTypeError


class FloatType(DataType):
    """Sign + ``exponent_bits`` + ``mantissa_bits`` floating-point format.

    Decoding of a pattern ``(s, E, M)``::

        E == 0:  value = (-1)^s * M * 2^(1 - bias - m)          (subnormal)
        E  > 0:  value = (-1)^s * (1 + M / 2^m) * 2^(E - bias)  (normal)

    Encoding rounds to nearest-even and saturates at ``max_value``.
    """

    def __init__(self, exponent_bits: int, mantissa_bits: int, name: str | None = None) -> None:
        if exponent_bits < 1:
            raise DataTypeError("float types need at least one exponent bit")
        if mantissa_bits < 0:
            raise DataTypeError("mantissa width cannot be negative")
        if exponent_bits > 11 or mantissa_bits > 52:
            raise DataTypeError("exponent/mantissa too wide to emulate via float64")
        nbits = 1 + exponent_bits + mantissa_bits
        if name is None:
            name = f"f{nbits}e{exponent_bits}m{mantissa_bits}"
        super().__init__(name=name, nbits=nbits)
        self.exponent_bits = exponent_bits
        self.mantissa_bits = mantissa_bits
        self.bias = (1 << (exponent_bits - 1)) - 1

    @property
    def is_float(self) -> bool:
        return True

    @property
    def is_signed(self) -> bool:
        return True

    @property
    def max_exponent(self) -> int:
        """Largest biased exponent (used for ordinary values: fn convention)."""
        return (1 << self.exponent_bits) - 1

    @property
    def max_value(self) -> float:
        m = self.mantissa_bits
        return float((2.0 - 2.0 ** (-m) if m else 1.0) * 2.0 ** (self.max_exponent - self.bias))

    @property
    def min_value(self) -> float:
        return -self.max_value

    @property
    def smallest_subnormal(self) -> float:
        return float(2.0 ** (1 - self.bias - self.mantissa_bits))

    @property
    def smallest_normal(self) -> float:
        return float(2.0 ** (1 - self.bias))

    def to_bits(self, values: np.ndarray) -> np.ndarray:
        x = np.asarray(values, dtype=np.float64)
        sign = (np.signbit(x)).astype(np.uint64)
        a = np.abs(x)
        a = np.where(np.isnan(a), 0.0, np.minimum(a, self.max_value))
        m = self.mantissa_bits
        # Scale of the subnormal grid; quantize everything below the first
        # normal binade onto it.
        sub_scale = 2.0 ** (1 - self.bias - m)
        frac, exp2 = np.frexp(a)  # a = frac * 2**exp2, frac in [0.5, 1)
        unbiased = exp2 - 1
        biased = unbiased + self.bias
        # Zero must use the subnormal grid (frexp reports exponent 0 for it,
        # which would otherwise land in a normal binade).
        is_sub = (biased <= 0) | (a == 0)
        # Subnormal (and zero) path: round onto the fixed grid.  A value that
        # rounds up to 2**m lands exactly on the first normal pattern because
        # patterns are contiguous across the subnormal/normal boundary.
        sub_q = np.rint(a / sub_scale).astype(np.uint64)
        # Normal path.
        with np.errstate(divide="ignore", invalid="ignore"):
            mant = np.where(a > 0, a / np.exp2(unbiased.astype(np.float64)) - 1.0, 0.0)
        mant_q = np.rint(mant * (1 << m)).astype(np.int64)
        biased_adj = biased.astype(np.int64)
        overflow = mant_q == (1 << m)
        mant_q = np.where(overflow, 0, mant_q)
        biased_adj = np.where(overflow, biased_adj + 1, biased_adj)
        too_big = biased_adj > self.max_exponent
        max_mant = (1 << m) - 1
        mant_q = np.where(too_big, max_mant, mant_q)
        biased_adj = np.where(too_big, self.max_exponent, biased_adj)
        normal_pattern = (biased_adj.astype(np.uint64) << np.uint64(m)) | mant_q.astype(np.uint64)
        pattern = np.where(is_sub, sub_q, normal_pattern)
        return (sign << np.uint64(self.nbits - 1)) | pattern

    def from_bits(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint64)
        m = self.mantissa_bits
        e = self.exponent_bits
        mant = (bits & np.uint64((1 << m) - 1 if m else 0)).astype(np.float64)
        exp = ((bits >> np.uint64(m)) & np.uint64((1 << e) - 1)).astype(np.int64)
        sign = ((bits >> np.uint64(self.nbits - 1)) & np.uint64(1)).astype(np.float64)
        sub = mant * 2.0 ** (1 - self.bias - m)
        normal = (1.0 + mant / (1 << m)) * np.exp2((exp - self.bias).astype(np.float64))
        mag = np.where(exp == 0, sub, normal)
        return np.where(sign > 0, -mag, mag)

    def representable_values(self) -> np.ndarray:
        """All distinct representable values, sorted (small widths only)."""
        if self.nbits > 16:
            raise DataTypeError("representable_values only supported up to 16 bits")
        patterns = np.arange(1 << self.nbits, dtype=np.uint64)
        return np.unique(self.from_bits(patterns))


class _NumpyFloat(DataType):
    """Standard float backed directly by a numpy dtype (f16/f32/f64)."""

    def __init__(self, name: str, np_dtype: np.dtype, uint_dtype: np.dtype) -> None:
        super().__init__(name=name, nbits=np.dtype(np_dtype).itemsize * 8)
        self._np_dtype = np.dtype(np_dtype)
        self._uint_dtype = np.dtype(uint_dtype)

    @property
    def is_float(self) -> bool:
        return True

    @property
    def is_signed(self) -> bool:
        return True

    @property
    def max_value(self) -> float:
        return float(np.finfo(self._np_dtype).max)

    @property
    def min_value(self) -> float:
        return float(np.finfo(self._np_dtype).min)

    def to_bits(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=self._np_dtype)
        return arr.view(self._uint_dtype).astype(np.uint64)

    def from_bits(self, bits: np.ndarray) -> np.ndarray:
        raw = np.asarray(bits, dtype=np.uint64).astype(self._uint_dtype)
        return raw.view(self._np_dtype).astype(np.float64)


class BFloat16Type(DataType):
    """bfloat16: float32 truncated to the top 16 bits (round-to-nearest-even)."""

    def __init__(self) -> None:
        super().__init__(name="bf16", nbits=16)

    @property
    def is_float(self) -> bool:
        return True

    @property
    def is_signed(self) -> bool:
        return True

    @property
    def max_value(self) -> float:
        return float(np.uint32(0x7F7F0000).view(np.float32))

    @property
    def min_value(self) -> float:
        return -self.max_value

    def to_bits(self, values: np.ndarray) -> np.ndarray:
        f32 = np.asarray(values, dtype=np.float32).view(np.uint32)
        # Round to nearest even on the truncated 16 low bits.
        rounding = np.uint32(0x7FFF) + ((f32 >> np.uint32(16)) & np.uint32(1))
        return ((f32 + rounding) >> np.uint32(16)).astype(np.uint64)

    def from_bits(self, bits: np.ndarray) -> np.ndarray:
        raw = (np.asarray(bits, dtype=np.uint64).astype(np.uint32)) << np.uint32(16)
        return raw.view(np.float32).astype(np.float64)


class TFloat32Type(DataType):
    """tfloat32: 1+8+10 significant bits stored in a 32-bit container."""

    def __init__(self) -> None:
        super().__init__(name="tf32", nbits=32)

    @property
    def is_float(self) -> bool:
        return True

    @property
    def is_signed(self) -> bool:
        return True

    @property
    def max_value(self) -> float:
        return float(np.finfo(np.float32).max)

    @property
    def min_value(self) -> float:
        return float(np.finfo(np.float32).min)

    def to_bits(self, values: np.ndarray) -> np.ndarray:
        f32 = np.asarray(values, dtype=np.float32).view(np.uint32)
        # Keep 10 mantissa bits: round-to-nearest-even on the dropped 13.
        rounding = np.uint32(0xFFF) + ((f32 >> np.uint32(13)) & np.uint32(1))
        return (((f32 + rounding) & np.uint32(0xFFFFE000))).astype(np.uint64)

    def from_bits(self, bits: np.ndarray) -> np.ndarray:
        raw = np.asarray(bits, dtype=np.uint64).astype(np.uint32)
        return raw.view(np.float32).astype(np.float64)


float16 = _NumpyFloat("f16", np.float16, np.uint16)
float32 = _NumpyFloat("f32", np.float32, np.uint32)
float64 = _NumpyFloat("f64", np.float64, np.uint64)
bfloat16 = BFloat16Type()
tfloat32 = TFloat32Type()
