"""Integer data types with arbitrary bit widths (1..64).

Signed integers use two's complement within their declared width, so e.g.
``int6`` covers [-32, 31] and the bit pattern ``0b111111`` decodes to -1.
Encoding clamps (saturates) out-of-range values, which is the standard
behaviour for quantized weights.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import DataType
from repro.errors import DataTypeError


class IntType(DataType):
    """Signed two's complement integer of ``nbits`` (2..64) bits."""

    def __init__(self, nbits: int) -> None:
        if nbits < 2:
            raise DataTypeError("signed integers need at least 2 bits (sign + value)")
        super().__init__(name=f"i{nbits}", nbits=nbits)

    @property
    def is_integer(self) -> bool:
        return True

    @property
    def is_signed(self) -> bool:
        return True

    @property
    def min_value(self) -> int:
        return -(1 << (self.nbits - 1))

    @property
    def max_value(self) -> int:
        return (1 << (self.nbits - 1)) - 1

    def to_bits(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.dtype.kind == "f":
            values = np.rint(values)
        clipped = np.clip(values.astype(np.int64), self.min_value, self.max_value)
        mask = np.uint64((1 << self.nbits) - 1) if self.nbits < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
        return clipped.astype(np.uint64) & mask

    def from_bits(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint64)
        raw = bits.astype(np.int64)
        if self.nbits < 64:
            sign_bit = np.int64(1) << (self.nbits - 1)
            raw = (raw & ((np.int64(1) << self.nbits) - 1))
            raw = np.where(raw & sign_bit, raw - (np.int64(1) << self.nbits), raw)
        return raw


class UIntType(DataType):
    """Unsigned integer of ``nbits`` (1..64) bits."""

    def __init__(self, nbits: int) -> None:
        super().__init__(name=f"u{nbits}", nbits=nbits)

    @property
    def is_integer(self) -> bool:
        return True

    @property
    def min_value(self) -> int:
        return 0

    @property
    def max_value(self) -> int:
        return (1 << self.nbits) - 1

    def to_bits(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.dtype.kind == "f":
            values = np.rint(values)
        clipped = np.clip(values.astype(np.int64), self.min_value, self.max_value)
        return clipped.astype(np.uint64)

    def from_bits(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint64)
        if self.nbits < 64:
            bits = bits & np.uint64((1 << self.nbits) - 1)
        return bits.astype(np.int64)


class BoolType(UIntType):
    """A 1-bit boolean, stored like ``uint1``."""

    def __init__(self) -> None:
        super().__init__(nbits=1)
        self.name = "bool"
