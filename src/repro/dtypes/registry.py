"""Registry and naming for data types.

Canonical names follow the paper's shorthand: ``u4`` is uint4, ``i6`` is
int6, ``f16`` is float16, ``f6e3m2`` is a 6-bit float with 3 exponent and
2 mantissa bits.  :func:`dtype_from_name` parses any of these plus the long
aliases (``uint4``, ``int6``, ``float16``, ``float6_e3m2``).

The *representative* exponent/mantissa splits for the bare ``float3`` ..
``float8`` names match Section 9.3 of the paper: e1m1, e2m1, e2m2, e3m2,
e3m3, e4m3.
"""

from __future__ import annotations

import re

from repro.dtypes.base import DataType, PointerType, void_pointer
from repro.dtypes.floats import (
    BFloat16Type,
    FloatType,
    TFloat32Type,
    bfloat16,
    float16,
    float32,
    float64,
    tfloat32,
)
from repro.dtypes.integers import BoolType, IntType, UIntType
from repro.errors import DataTypeError

# Representative exponent/mantissa distributions per total width (paper 9.3).
REPRESENTATIVE_FLOAT_SPLITS: dict[int, tuple[int, int]] = {
    3: (1, 1),
    4: (2, 1),
    5: (2, 2),
    6: (3, 2),
    7: (3, 3),
    8: (4, 3),
}

_CACHE: dict[str, DataType] = {}


def _cached(dt: DataType) -> DataType:
    return _CACHE.setdefault(dt.name, dt)


def uint(nbits: int) -> UIntType:
    """The unsigned integer type of the given width (1..64)."""
    return _cached(UIntType(nbits))  # type: ignore[return-value]


def int_(nbits: int) -> IntType:
    """The signed integer type of the given width (2..64)."""
    return _cached(IntType(nbits))  # type: ignore[return-value]


def float_(nbits: int, exponent_bits: int | None = None, mantissa_bits: int | None = None) -> DataType:
    """A floating-point type of the given total width.

    With no split given, standard widths map to IEEE/bfloat-style types and
    sub-byte widths use the representative splits of the paper.
    """
    if exponent_bits is None and mantissa_bits is None:
        if nbits == 16:
            return float16
        if nbits == 32:
            return float32
        if nbits == 64:
            return float64
        if nbits in REPRESENTATIVE_FLOAT_SPLITS:
            exponent_bits, mantissa_bits = REPRESENTATIVE_FLOAT_SPLITS[nbits]
        else:
            raise DataTypeError(f"no representative float split for {nbits} bits")
    if exponent_bits is None or mantissa_bits is None:
        raise DataTypeError("both exponent_bits and mantissa_bits must be given")
    if 1 + exponent_bits + mantissa_bits != nbits:
        raise DataTypeError(
            f"1 + {exponent_bits} + {mantissa_bits} != {nbits} (sign+exp+man must equal width)"
        )
    return _cached(FloatType(exponent_bits, mantissa_bits))


_NAME_RE_FLOAT_EM = re.compile(r"^f(?:loat)?(\d+)_?e(\d+)m(\d+)$")
_NAME_RE_FLOAT = re.compile(r"^f(?:loat)?(\d+)$")
_NAME_RE_UINT = re.compile(r"^u(?:int)?(\d+)$")
_NAME_RE_INT = re.compile(r"^i(?:nt)?(\d+)$")


def dtype_from_name(name: str) -> DataType:
    """Parse a data type from its canonical or long name.

    >>> dtype_from_name("u4").nbits
    4
    >>> dtype_from_name("float6_e3m2").name
    'f6e3m2'
    """
    name = name.strip()
    if name.endswith("*"):
        base = name[:-1]
        return PointerType(None) if base == "void" else PointerType(dtype_from_name(base))
    if name in ("bf16", "bfloat16"):
        return bfloat16
    if name in ("tf32", "tfloat32"):
        return tfloat32
    if name == "bool":
        return _cached(BoolType())
    match = _NAME_RE_FLOAT_EM.match(name)
    if match:
        total, e, m = (int(g) for g in match.groups())
        return float_(total, e, m)
    match = _NAME_RE_FLOAT.match(name)
    if match:
        return float_(int(match.group(1)))
    match = _NAME_RE_UINT.match(name)
    if match:
        return uint(int(match.group(1)))
    match = _NAME_RE_INT.match(name)
    if match:
        return int_(int(match.group(1)))
    raise DataTypeError(f"unknown data type name: {name!r}")


def all_weight_dtypes() -> list[DataType]:
    """The full quantized-weight spectrum evaluated in paper Figure 11."""
    types: list[DataType] = [uint(b) for b in range(1, 9)]
    types += [int_(b) for b in range(2, 9)]
    types += [float_(b) for b in range(3, 9)]
    return types


# Convenient singletons (paper shorthand).
uint1, uint2, uint3, uint4 = uint(1), uint(2), uint(3), uint(4)
uint5, uint6, uint7, uint8 = uint(5), uint(6), uint(7), uint(8)
uint16, uint32, uint64 = uint(16), uint(32), uint(64)
int2, int3, int4, int5 = int_(2), int_(3), int_(4), int_(5)
int6, int7, int8 = int_(6), int_(7), int_(8)
int16, int32, int64 = int_(16), int_(32), int_(64)
float3, float4, float5 = float_(3), float_(4), float_(5)
float6, float7, float8 = float_(6), float_(7), float_(8)
f6e3m2 = float_(6, 3, 2)
f8e4m3 = float_(8, 4, 3)
f8e5m2 = float_(8, 5, 2)

__all__ = [
    "dtype_from_name",
    "uint",
    "int_",
    "float_",
    "all_weight_dtypes",
    "REPRESENTATIVE_FLOAT_SPLITS",
    "float16",
    "float32",
    "float64",
    "bfloat16",
    "tfloat32",
    "void_pointer",
]
