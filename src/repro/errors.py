"""Exception hierarchy for the Tilus reproduction.

All library-raised errors derive from :class:`TilusError` so that callers can
catch everything from this package with a single ``except`` clause while still
being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class TilusError(Exception):
    """Base class for all errors raised by this library."""


class DataTypeError(TilusError):
    """Raised for invalid data type definitions or conversions."""


class LayoutError(TilusError):
    """Raised when a layout is malformed or an algebraic operation fails.

    Examples include composing layouts with mismatched ranks or dividing a
    layout by a non-divisor.
    """


class IRError(TilusError):
    """Raised when an IR node is constructed or combined incorrectly."""


class TypeCheckError(IRError):
    """Raised by the program verifier when a Tilus program is ill-typed."""


class CompilationError(TilusError):
    """Raised when a compiler pass cannot lower or optimize a program."""


class VMError(TilusError):
    """Raised by the virtual machine during interpretation."""


class OutOfMemoryError(VMError):
    """Raised when a simulated allocation exceeds device DRAM capacity.

    Mirrors the OOM cells in Figures 12 and 13 of the paper.
    """


class UnsupportedKernelError(TilusError):
    """Raised when a baseline system does not support a requested kernel.

    Mirrors the missing bars (unsupported data types) and the ERR cell
    (Ladder on Hopper) in the paper's evaluation.
    """


class AutotuneError(TilusError):
    """Raised when autotuning fails to find any valid configuration."""
