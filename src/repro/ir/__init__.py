"""Tilus intermediate representation: types, expressions, statements,
thread-block-level instructions and programs (paper Section 6)."""

from repro.ir import instructions
from repro.ir.evaluator import evaluate, try_const
from repro.ir.expr import (
    Binary,
    CastExpr,
    Compare,
    Conditional,
    Constant,
    Expr,
    Logical,
    Unary,
    Var,
    cast,
    where,
    wrap,
)
from repro.ir.printer import format_instruction, format_program
from repro.ir.program import Parameter, Program
from repro.ir.scope import GLOBAL, REGISTER, SHARED, MemoryScope
from repro.ir.stmt import (
    AssignStmt,
    BreakStmt,
    ContinueStmt,
    ForStmt,
    IfStmt,
    InstructionStmt,
    SeqStmt,
    Stmt,
    WhileStmt,
)
from repro.ir.types import (
    TensorType,
    TensorVar,
    global_tensor,
    register_tensor,
    shared_tensor,
)

__all__ = [
    "instructions",
    "Expr",
    "Var",
    "Constant",
    "Binary",
    "Unary",
    "Compare",
    "Logical",
    "Conditional",
    "CastExpr",
    "wrap",
    "where",
    "cast",
    "evaluate",
    "try_const",
    "MemoryScope",
    "REGISTER",
    "SHARED",
    "GLOBAL",
    "TensorType",
    "TensorVar",
    "register_tensor",
    "shared_tensor",
    "global_tensor",
    "Stmt",
    "SeqStmt",
    "InstructionStmt",
    "AssignStmt",
    "IfStmt",
    "ForStmt",
    "WhileStmt",
    "BreakStmt",
    "ContinueStmt",
    "Parameter",
    "Program",
    "format_program",
    "format_instruction",
]
