"""Scalar expression evaluation.

Used by the virtual machine (with a live environment), by the grid-size
computation at launch, and by the constant-folding pass (with an empty
environment, raising on free variables).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import IRError, VMError
from repro.ir.expr import (
    Binary,
    CastExpr,
    Compare,
    Conditional,
    Constant,
    Expr,
    Logical,
    Unary,
    Var,
)


def evaluate(expr: Expr, env: Mapping[Var, object] | None = None):
    """Evaluate ``expr`` under ``env`` (Var -> Python value).

    Integer division and modulo follow C semantics (truncation toward
    zero) because the generated CUDA code uses C operators; this matters
    for negative operands.
    """
    env = env or {}
    return _eval(expr, env)


def _c_div(a, b):
    if isinstance(a, float) or isinstance(b, float):
        return a / b
    if b == 0:
        raise VMError("division by zero in scalar expression")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a, b):
    if isinstance(a, float) or isinstance(b, float):
        return float(np.fmod(a, b))
    if b == 0:
        raise VMError("modulo by zero in scalar expression")
    return a - _c_div(a, b) * b


def _eval(expr: Expr, env: Mapping[Var, object]):
    if isinstance(expr, Constant):
        return expr.value
    if isinstance(expr, Var):
        if expr not in env:
            raise IRError(f"unbound variable {expr.name!r} during evaluation")
        return env[expr]
    if isinstance(expr, Binary):
        a = _eval(expr.lhs, env)
        b = _eval(expr.rhs, env)
        op = expr.op
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return _c_div(a, b)
        if op == "%":
            return _c_mod(a, b)
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<":
            return a << b
        if op == ">>":
            return a >> b
        raise IRError(f"unknown binary op {op!r}")
    if isinstance(expr, Unary):
        a = _eval(expr.operand, env)
        if expr.op == "-":
            return -a
        if expr.op == "~":
            return ~a
        if expr.op == "!":
            return not a
        raise IRError(f"unknown unary op {expr.op!r}")
    if isinstance(expr, Compare):
        a = _eval(expr.lhs, env)
        b = _eval(expr.rhs, env)
        op = expr.op
        if op == "==":
            return a == b
        if op == "!=":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        raise IRError(f"unknown comparison {op!r}")
    if isinstance(expr, Logical):
        a = _eval(expr.lhs, env)
        if expr.op == "&&":
            return bool(a) and bool(_eval(expr.rhs, env))
        if expr.op == "||":
            return bool(a) or bool(_eval(expr.rhs, env))
        raise IRError(f"unknown logical op {expr.op!r}")
    if isinstance(expr, Conditional):
        return _eval(expr.then, env) if _eval(expr.cond, env) else _eval(expr.otherwise, env)
    if isinstance(expr, CastExpr):
        value = _eval(expr.operand, env)
        if expr.dtype.is_float:
            return float(value)
        return int(value)
    raise IRError(f"cannot evaluate expression node {type(expr).__name__}")


def try_const(expr: Expr):
    """Return the constant value of ``expr`` or None when it has free vars."""
    try:
        return evaluate(expr, {})
    except IRError:
        return None
