"""Scalar expression tree of the Tilus IR.

Expressions appear in grid shapes, tensor offsets, loop bounds and branch
conditions (paper Figure 7).  They are deliberately small: scalar
arithmetic, comparisons, logic, and a ternary conditional.  Tensor
computation happens through instructions, not expressions.

Python operator overloading lets programs read naturally::

    offset = bi * BM + i
    cond   = (k < K) & (bi != 0)
"""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np

from repro.dtypes import DataType, PointerType, dtype_from_name, float32, int32, int64
from repro.dtypes.integers import BoolType
from repro.errors import IRError

_bool = BoolType()

ExprLike = Union["Expr", int, float, bool]


def _promote(a: DataType, b: DataType) -> DataType:
    """Type promotion for binary arithmetic.

    Pointer arithmetic keeps the pointer type; otherwise float beats
    integer, wider beats narrower, and signed beats unsigned on a tie.
    """
    if a == b:
        return a
    if a.is_pointer:
        return a
    if b.is_pointer:
        return b
    if a.is_float != b.is_float:
        return a if a.is_float else b
    if a.nbits != b.nbits:
        return a if a.nbits > b.nbits else b
    return a if a.is_signed else b


class Expr:
    """Base class of all scalar expressions."""

    dtype: DataType

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return Binary("+", self, wrap(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Binary("+", wrap(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return Binary("-", self, wrap(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return Binary("-", wrap(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return Binary("*", self, wrap(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Binary("*", wrap(other), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return Binary("/", self, wrap(other))

    def __rfloordiv__(self, other: ExprLike) -> "Expr":
        return Binary("/", wrap(other), self)

    def __truediv__(self, other: ExprLike) -> "Expr":
        return Binary("/", self, wrap(other))

    def __rtruediv__(self, other: ExprLike) -> "Expr":
        return Binary("/", wrap(other), self)

    def __mod__(self, other: ExprLike) -> "Expr":
        return Binary("%", self, wrap(other))

    def __rmod__(self, other: ExprLike) -> "Expr":
        return Binary("%", wrap(other), self)

    def __neg__(self) -> "Expr":
        return Unary("-", self)

    # -- bitwise ----------------------------------------------------------
    def __and__(self, other: ExprLike) -> "Expr":
        return Binary("&", self, wrap(other))

    def __or__(self, other: ExprLike) -> "Expr":
        return Binary("|", self, wrap(other))

    def __xor__(self, other: ExprLike) -> "Expr":
        return Binary("^", self, wrap(other))

    def __lshift__(self, other: ExprLike) -> "Expr":
        return Binary("<<", self, wrap(other))

    def __rshift__(self, other: ExprLike) -> "Expr":
        return Binary(">>", self, wrap(other))

    def __invert__(self) -> "Expr":
        return Unary("~", self)

    # -- comparisons --------------------------------------------------------
    def __lt__(self, other: ExprLike) -> "Expr":
        return Compare("<", self, wrap(other))

    def __le__(self, other: ExprLike) -> "Expr":
        return Compare("<=", self, wrap(other))

    def __gt__(self, other: ExprLike) -> "Expr":
        return Compare(">", self, wrap(other))

    def __ge__(self, other: ExprLike) -> "Expr":
        return Compare(">=", self, wrap(other))

    def equals(self, other: ExprLike) -> "Expr":
        """Element equality (``==`` is reserved for structural identity)."""
        return Compare("==", self, wrap(other))

    def not_equals(self, other: ExprLike) -> "Expr":
        return Compare("!=", self, wrap(other))

    def logical_and(self, other: ExprLike) -> "Expr":
        return Logical("&&", self, wrap(other))

    def logical_or(self, other: ExprLike) -> "Expr":
        return Logical("||", self, wrap(other))

    def logical_not(self) -> "Expr":
        return Unary("!", self)

    # -- traversal ----------------------------------------------------------
    def children(self) -> Iterator["Expr"]:
        """Direct sub-expressions."""
        return iter(())

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()


class Var(Expr):
    """A named scalar (or pointer) variable."""

    _counter = 0

    def __init__(self, name: str, dtype: DataType | str) -> None:
        self.name = name
        self.dtype = dtype_from_name(dtype) if isinstance(dtype, str) else dtype
        Var._counter += 1
        self.uid = Var._counter

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(("Var", self.uid))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.uid == self.uid


class Constant(Expr):
    """A literal scalar."""

    def __init__(self, value: int | float | bool, dtype: DataType | None = None) -> None:
        if dtype is None:
            if isinstance(value, bool):
                dtype = _bool
            elif isinstance(value, (int, np.integer)):
                dtype = int32 if -(2**31) <= int(value) < 2**31 else int64
            elif isinstance(value, (float, np.floating)):
                dtype = float32
            else:
                raise IRError(f"cannot infer constant type for {value!r}")
        self.value = value
        self.dtype = dtype

    def __repr__(self) -> str:
        return str(self.value)


class Binary(Expr):
    """Binary arithmetic or bitwise operation."""

    OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>")

    def __init__(self, op: str, lhs: Expr, rhs: Expr) -> None:
        if op not in self.OPS:
            raise IRError(f"unknown binary op {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self.dtype = _promote(lhs.dtype, rhs.dtype)

    def children(self) -> Iterator[Expr]:
        yield self.lhs
        yield self.rhs

    def __repr__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


class Unary(Expr):
    """Unary operation: negate, bitwise not, logical not."""

    OPS = ("-", "~", "!")

    def __init__(self, op: str, operand: Expr) -> None:
        if op not in self.OPS:
            raise IRError(f"unknown unary op {op!r}")
        self.op = op
        self.operand = operand
        self.dtype = _bool if op == "!" else operand.dtype

    def children(self) -> Iterator[Expr]:
        yield self.operand

    def __repr__(self) -> str:
        return f"({self.op}{self.operand})"


class Compare(Expr):
    """Comparison, yielding bool."""

    OPS = ("==", "!=", "<", ">", "<=", ">=")

    def __init__(self, op: str, lhs: Expr, rhs: Expr) -> None:
        if op not in self.OPS:
            raise IRError(f"unknown comparison op {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self.dtype = _bool

    def children(self) -> Iterator[Expr]:
        yield self.lhs
        yield self.rhs

    def __repr__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


class Logical(Expr):
    """Short-circuit logical operation, yielding bool."""

    OPS = ("&&", "||")

    def __init__(self, op: str, lhs: Expr, rhs: Expr) -> None:
        if op not in self.OPS:
            raise IRError(f"unknown logical op {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self.dtype = _bool

    def children(self) -> Iterator[Expr]:
        yield self.lhs
        yield self.rhs

    def __repr__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


class Conditional(Expr):
    """Ternary ``then if cond else otherwise`` expression."""

    def __init__(self, cond: Expr, then: Expr, otherwise: Expr) -> None:
        self.cond = cond
        self.then = then
        self.otherwise = otherwise
        self.dtype = _promote(then.dtype, otherwise.dtype)

    def children(self) -> Iterator[Expr]:
        yield self.cond
        yield self.then
        yield self.otherwise

    def __repr__(self) -> str:
        return f"({self.then} if {self.cond} else {self.otherwise})"


class CastExpr(Expr):
    """Scalar cast between data types."""

    def __init__(self, operand: Expr, dtype: DataType) -> None:
        self.operand = operand
        self.dtype = dtype

    def children(self) -> Iterator[Expr]:
        yield self.operand

    def __repr__(self) -> str:
        return f"{self.dtype}({self.operand})"


def wrap(value: ExprLike) -> Expr:
    """Coerce a Python literal into a :class:`Constant` (identity on Expr)."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (bool, int, float, np.integer, np.floating)):
        if isinstance(value, (np.integer,)):
            value = int(value)
        if isinstance(value, (np.floating,)):
            value = float(value)
        return Constant(value)
    raise IRError(f"cannot use {value!r} as an expression")


def where(cond: ExprLike, then: ExprLike, otherwise: ExprLike) -> Expr:
    """Functional ternary helper."""
    return Conditional(wrap(cond), wrap(then), wrap(otherwise))


def cast(value: ExprLike, dtype: DataType | str) -> Expr:
    """Scalar cast helper."""
    dtype = dtype_from_name(dtype) if isinstance(dtype, str) else dtype
    return CastExpr(wrap(value), dtype)
