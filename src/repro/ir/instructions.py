"""The thread-block-level instruction set (paper Table 1).

Every instruction describes an operation applied by the whole thread block:
allocating tensors in a memory scope, moving tiles between scopes, or
computing on register tensors.  Instructions that produce a register tensor
carry their result in ``output`` (a :class:`TensorVar`); the in-place
variants of the paper are expressed by passing an existing tensor var as
``output``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.dtypes import DataType
from repro.errors import IRError
from repro.ir.expr import Expr, wrap
from repro.ir.types import TensorVar


class Instruction:
    """Base class of all thread-block-level instructions."""

    #: Mnemonic used by the printer; subclasses override.
    mnemonic = "instruction"

    def inputs(self) -> list[TensorVar]:
        """Tensor operands read by this instruction."""
        return []

    def scalar_operands(self) -> list[Expr]:
        """Scalar expressions consumed (offsets, sizes, conditions)."""
        return []

    @property
    def output(self) -> Optional[TensorVar]:
        """Tensor produced (None for pure effects)."""
        return None

    def __repr__(self) -> str:
        from repro.ir.printer import format_instruction

        return format_instruction(self)


def _offsets(offset: Optional[Sequence]) -> tuple[Expr, ...]:
    if offset is None:
        return ()
    return tuple(wrap(o) for o in offset)


# ---------------------------------------------------------------------------
# Debug and control
# ---------------------------------------------------------------------------


class PrintTensor(Instruction):
    """Print a tensor to standard output (debugging aid)."""

    mnemonic = "Print"

    def __init__(self, tensor: TensorVar, message: str = "") -> None:
        self.tensor = tensor
        self.message = message

    def inputs(self) -> list[TensorVar]:
        return [self.tensor]


class Synchronize(Instruction):
    """Barrier: all preceding instructions complete before any following."""

    mnemonic = "Synchronize"


class Exit(Instruction):
    """Terminate the thread block."""

    mnemonic = "Exit"


# ---------------------------------------------------------------------------
# Register tensor computation
# ---------------------------------------------------------------------------


class ElementwiseBinary(Instruction):
    """Elementwise Add/Sub/Mul/Div/Mod on register tensors.

    The right operand may be a register tensor with the same layout or a
    scalar expression (broadcast).
    """

    OPS = ("+", "-", "*", "/", "%")
    mnemonic = "Binary"

    def __init__(self, op: str, a: TensorVar, b, out: TensorVar) -> None:
        if op not in self.OPS:
            raise IRError(f"unknown elementwise op {op!r}")
        self.op = op
        self.a = a
        self.b = b if isinstance(b, TensorVar) else wrap(b)
        self.out = out

    def inputs(self) -> list[TensorVar]:
        tensors = [self.a]
        if isinstance(self.b, TensorVar):
            tensors.append(self.b)
        return tensors

    def scalar_operands(self) -> list[Expr]:
        return [] if isinstance(self.b, TensorVar) else [self.b]

    @property
    def output(self) -> TensorVar:
        return self.out


class Neg(Instruction):
    """Elementwise negation."""

    mnemonic = "Neg"

    def __init__(self, a: TensorVar, out: TensorVar) -> None:
        self.a = a
        self.out = out

    def inputs(self) -> list[TensorVar]:
        return [self.a]

    @property
    def output(self) -> TensorVar:
        return self.out


class Cast(Instruction):
    """Convert element values to another data type, keeping the layout.

    This is a *value* conversion (with rounding/saturation); contrast with
    :class:`View`, which reinterprets bits.
    """

    mnemonic = "Cast"

    def __init__(self, a: TensorVar, dtype: DataType, out: TensorVar) -> None:
        self.a = a
        self.dtype = dtype
        self.out = out

    def inputs(self) -> list[TensorVar]:
        return [self.a]

    @property
    def output(self) -> TensorVar:
        return self.out


class View(Instruction):
    """Reinterpret a register tensor with another dtype/layout at no cost.

    Validity rule (paper Figure 2(c)): the source and destination must have
    the same number of threads and the same number of *bits per thread*.
    Each thread's local bytes are reread under the new element width.
    """

    mnemonic = "View"

    def __init__(self, a: TensorVar, out: TensorVar) -> None:
        self.a = a
        self.out = out

    def inputs(self) -> list[TensorVar]:
        return [self.a]

    @property
    def output(self) -> TensorVar:
        return self.out


class Dot(Instruction):
    """Tile matrix-multiply-accumulate: ``out = dot(a, b) + c``.

    Operand layouts must match a tensor-core configuration (validated by the
    verifier); the VM computes the product exactly.
    """

    mnemonic = "Dot"

    def __init__(self, a: TensorVar, b: TensorVar, c: TensorVar, out: TensorVar) -> None:
        self.a = a
        self.b = b
        self.c = c
        self.out = out

    def inputs(self) -> list[TensorVar]:
        return [self.a, self.b, self.c]

    @property
    def output(self) -> TensorVar:
        return self.out


class ReduceSum(Instruction):
    """Block-level reduction: sum a register tensor over one axis.

    The output is a register tensor whose shape has extent 1 along
    ``axis``; elements reduced across threads go through (conceptually)
    warp shuffles / shared memory, which the VM models as an exact sum.
    Used by GEMV-style decode kernels and normalization epilogues.
    """

    mnemonic = "ReduceSum"

    def __init__(self, a: TensorVar, axis: int, out: TensorVar) -> None:
        self.a = a
        self.axis = int(axis)
        self.out = out

    def inputs(self) -> list[TensorVar]:
        return [self.a]

    @property
    def output(self) -> TensorVar:
        return self.out


class Lookup(Instruction):
    """Codebook lookup: ``out[i] = table[codes[i]]``.

    The extension the paper names for codebook quantization (LCQ,
    Section 10): weights are stored as small integer codes and expanded
    through a per-tensor codebook held in shared memory or registers.
    ``codes`` is an integer register tensor; ``table`` is a 1-D tensor
    whose extent is at least ``2**codes.dtype.nbits``.
    """

    mnemonic = "Lookup"

    def __init__(self, codes: TensorVar, table: TensorVar, out: TensorVar) -> None:
        self.codes = codes
        self.table = table
        self.out = out

    def inputs(self) -> list[TensorVar]:
        return [self.codes, self.table]

    @property
    def output(self) -> TensorVar:
        return self.out


# ---------------------------------------------------------------------------
# Tensor transfer
# ---------------------------------------------------------------------------


class LoadGlobal(Instruction):
    """Load a register tile from a global tensor at ``offset``.

    ``broadcast_dims`` marks tensor dimensions along which every tile
    element reads the row selected by the offset alone (the tile coordinate
    is ignored) — used to load scale vectors shared by a whole tile.
    """

    mnemonic = "LoadGlobal"

    def __init__(
        self,
        src: TensorVar,
        offset: Sequence,
        out: TensorVar,
        broadcast_dims: frozenset[int] = frozenset(),
        masked: bool = False,
    ) -> None:
        self.src = src
        self.offset = _offsets(offset)
        self.out = out
        self.broadcast_dims = frozenset(broadcast_dims)
        #: With masking, out-of-bounds elements read as zero (predicated
        #: loads for boundary tiles).
        self.masked = masked

    def inputs(self) -> list[TensorVar]:
        return [self.src]

    def scalar_operands(self) -> list[Expr]:
        return list(self.offset)

    @property
    def output(self) -> TensorVar:
        return self.out


class LoadShared(Instruction):
    """Load a register tile from a shared tensor at ``offset``."""

    mnemonic = "LoadShared"

    def __init__(
        self,
        src: TensorVar,
        offset: Sequence,
        out: TensorVar,
        broadcast_dims: frozenset[int] = frozenset(),
    ) -> None:
        self.src = src
        self.offset = _offsets(offset)
        self.out = out
        self.broadcast_dims = frozenset(broadcast_dims)

    def inputs(self) -> list[TensorVar]:
        return [self.src]

    def scalar_operands(self) -> list[Expr]:
        return list(self.offset)

    @property
    def output(self) -> TensorVar:
        return self.out


class StoreGlobal(Instruction):
    """Store a register tile into a global tensor at ``offset``.

    With ``masked`` set, out-of-bounds elements are dropped (predicated
    stores for boundary tiles).
    """

    mnemonic = "StoreGlobal"

    def __init__(
        self, src: TensorVar, dst: TensorVar, offset: Sequence, masked: bool = False
    ) -> None:
        self.src = src
        self.dst = dst
        self.offset = _offsets(offset)
        self.masked = masked

    def inputs(self) -> list[TensorVar]:
        return [self.src, self.dst]

    def scalar_operands(self) -> list[Expr]:
        return list(self.offset)


class StoreShared(Instruction):
    """Store a register tile into a shared tensor at ``offset``."""

    mnemonic = "StoreShared"

    def __init__(self, src: TensorVar, dst: TensorVar, offset: Sequence) -> None:
        self.src = src
        self.dst = dst
        self.offset = _offsets(offset)

    def inputs(self) -> list[TensorVar]:
        return [self.src, self.dst]

    def scalar_operands(self) -> list[Expr]:
        return list(self.offset)


class CopyAsync(Instruction):
    """Issue an asynchronous global→shared copy (``cp.async``).

    Copies a ``shape``-sized region from ``src`` (global, starting at
    ``src_offset``) into ``dst`` (shared, starting at ``dst_offset``).
    When ``shape`` is None the destination's full shape is copied.
    Completion is observed through :class:`CopyAsyncWaitGroup` followed by
    :class:`Synchronize`.
    """

    mnemonic = "CopyAsync"

    def __init__(
        self,
        dst: TensorVar,
        src: TensorVar,
        src_offset: Sequence,
        dst_offset: Optional[Sequence] = None,
        shape: Optional[Sequence[int]] = None,
    ) -> None:
        self.dst = dst
        self.src = src
        self.src_offset = _offsets(src_offset)
        self.dst_offset = _offsets(
            dst_offset if dst_offset is not None else [0] * dst.ttype.rank
        )
        self.shape = tuple(int(s) for s in shape) if shape is not None else None

    def inputs(self) -> list[TensorVar]:
        return [self.src, self.dst]

    def scalar_operands(self) -> list[Expr]:
        return list(self.src_offset) + list(self.dst_offset)

    def copy_shape(self) -> tuple[int, ...]:
        """The copied region's shape (defaults to the destination shape)."""
        if self.shape is not None:
            return self.shape
        static = self.dst.ttype.static_shape()
        if static is None:
            raise IRError("CopyAsync destination must have a static shape")
        return static


class CopyAsyncCommitGroup(Instruction):
    """Commit all outstanding ``CopyAsync`` operations as one group."""

    mnemonic = "CopyAsyncCommitGroup"


class CopyAsyncWaitGroup(Instruction):
    """Wait until at most ``n`` committed copy groups remain in flight."""

    mnemonic = "CopyAsyncWaitGroup"

    def __init__(self, n: int) -> None:
        self.n = int(n)


# ---------------------------------------------------------------------------
# Tensor creation
# ---------------------------------------------------------------------------


class AllocateRegister(Instruction):
    """Allocate a register tensor, optionally initialized to a constant."""

    mnemonic = "AllocateRegister"

    def __init__(self, out: TensorVar, init: Optional[float] = None) -> None:
        self.out = out
        self.init = init

    @property
    def output(self) -> TensorVar:
        return self.out


class AllocateShared(Instruction):
    """Allocate a shared-memory tensor."""

    mnemonic = "AllocateShared"

    def __init__(self, out: TensorVar) -> None:
        self.out = out

    @property
    def output(self) -> TensorVar:
        return self.out


class AllocateGlobal(Instruction):
    """Allocate a tensor in the runtime-managed global workspace."""

    mnemonic = "AllocateGlobal"

    def __init__(self, out: TensorVar) -> None:
        self.out = out

    @property
    def output(self) -> TensorVar:
        return self.out


class FreeShared(Instruction):
    """Release a shared tensor so its bytes can be reused by the planner."""

    mnemonic = "FreeShared"

    def __init__(self, tensor: TensorVar) -> None:
        self.tensor = tensor

    def inputs(self) -> list[TensorVar]:
        return [self.tensor]


class ViewGlobal(Instruction):
    """Create a global tensor view over a raw pointer parameter."""

    mnemonic = "ViewGlobal"

    def __init__(self, ptr: Expr, out: TensorVar) -> None:
        self.ptr = ptr
        self.out = out

    def scalar_operands(self) -> list[Expr]:
        return [self.ptr]

    @property
    def output(self) -> TensorVar:
        return self.out


# ---------------------------------------------------------------------------
# Indexing
# ---------------------------------------------------------------------------


class BlockIndices(Instruction):
    """Bind the thread-block indices in the launch grid to scalar vars."""

    mnemonic = "BlockIndices"

    def __init__(self, out_vars: Sequence) -> None:
        self.out_vars = list(out_vars)
