"""Textual pretty-printer for Tilus programs.

The output mirrors the paper's surface syntax (Figure 2): a ``def`` header
with the grid in angle brackets, followed by an indented body of
control-flow statements and instructions.
"""

from __future__ import annotations

from repro.ir import instructions as insts
from repro.ir.program import Program
from repro.ir.stmt import (
    AssignStmt,
    BreakStmt,
    ContinueStmt,
    ForStmt,
    IfStmt,
    InstructionStmt,
    SeqStmt,
    Stmt,
    WhileStmt,
)


def format_instruction(inst: insts.Instruction) -> str:
    """One-line rendering of a single instruction."""
    name = inst.mnemonic
    if isinstance(inst, insts.ElementwiseBinary):
        op_names = {"+": "Add", "-": "Sub", "*": "Mul", "/": "Div", "%": "Mod"}
        return f"{inst.out} = {op_names[inst.op]}({inst.a}, {inst.b})"
    if isinstance(inst, insts.Neg):
        return f"{inst.out} = Neg({inst.a})"
    if isinstance(inst, insts.Cast):
        return f"{inst.out} = Cast({inst.a}, dtype={inst.dtype})"
    if isinstance(inst, insts.View):
        out_t = inst.out.ttype
        layout = out_t.layout.short_repr() if out_t.layout else "linear"
        return f"{inst.out} = View({inst.a}, dtype={out_t.dtype}, layout={layout})"
    if isinstance(inst, insts.Dot):
        return f"{inst.out} = Dot({inst.a}, {inst.b}, {inst.c})"
    if isinstance(inst, insts.Lookup):
        return f"{inst.out} = Lookup({inst.codes}, table={inst.table})"
    if isinstance(inst, insts.LoadGlobal):
        off = ", ".join(str(o) for o in inst.offset)
        return f"{inst.out} = LoadGlobal({inst.src}, offset=[{off}])"
    if isinstance(inst, insts.LoadShared):
        off = ", ".join(str(o) for o in inst.offset)
        return f"{inst.out} = LoadShared({inst.src}, offset=[{off}])"
    if isinstance(inst, insts.StoreGlobal):
        off = ", ".join(str(o) for o in inst.offset)
        return f"StoreGlobal({inst.src}, {inst.dst}, offset=[{off}])"
    if isinstance(inst, insts.StoreShared):
        off = ", ".join(str(o) for o in inst.offset)
        return f"StoreShared({inst.src}, {inst.dst}, offset=[{off}])"
    if isinstance(inst, insts.CopyAsync):
        src_off = ", ".join(str(o) for o in inst.src_offset)
        dst_off = ", ".join(str(o) for o in inst.dst_offset)
        shape = f", shape={list(inst.shape)}" if inst.shape is not None else ""
        return (
            f"CopyAsync({inst.dst}[{dst_off}], {inst.src}[{src_off}]{shape})"
        )
    if isinstance(inst, insts.CopyAsyncWaitGroup):
        return f"CopyAsyncWaitGroup({inst.n})"
    if isinstance(inst, insts.AllocateRegister):
        init = f", init={inst.init}" if inst.init is not None else ""
        return f"{inst.out} = AllocateRegister({inst.out.ttype}{init})"
    if isinstance(inst, (insts.AllocateShared, insts.AllocateGlobal)):
        return f"{inst.out} = {name}({inst.out.ttype})"
    if isinstance(inst, insts.FreeShared):
        return f"FreeShared({inst.tensor})"
    if isinstance(inst, insts.ViewGlobal):
        return f"{inst.out} = ViewGlobal({inst.ptr}, type={inst.out.ttype})"
    if isinstance(inst, insts.BlockIndices):
        names = ", ".join(str(v) for v in inst.out_vars)
        return f"{names} = BlockIndices()"
    if isinstance(inst, insts.PrintTensor):
        return f"Print({inst.tensor})"
    return f"{name}()"


def _format_stmt(stmt: Stmt, indent: int, lines: list[str]) -> None:
    pad = "    " * indent
    if isinstance(stmt, SeqStmt):
        for child in stmt.body:
            _format_stmt(child, indent, lines)
    elif isinstance(stmt, InstructionStmt):
        lines.append(pad + format_instruction(stmt.instruction))
    elif isinstance(stmt, AssignStmt):
        lines.append(pad + f"{stmt.var} = {stmt.value}")
    elif isinstance(stmt, IfStmt):
        lines.append(pad + f"if {stmt.cond}:")
        _format_stmt(stmt.then_body, indent + 1, lines)
        if stmt.else_body is not None and stmt.else_body.body:
            lines.append(pad + "else:")
            _format_stmt(stmt.else_body, indent + 1, lines)
    elif isinstance(stmt, ForStmt):
        hints = []
        if stmt.unroll:
            hints.append("unroll")
        if stmt.pipeline_stages > 1:
            hints.append(f"pipeline={stmt.pipeline_stages}")
        suffix = f"  # {', '.join(hints)}" if hints else ""
        lines.append(pad + f"for {stmt.var} in range({stmt.extent}):{suffix}")
        _format_stmt(stmt.body, indent + 1, lines)
    elif isinstance(stmt, WhileStmt):
        lines.append(pad + f"while {stmt.cond}:")
        _format_stmt(stmt.body, indent + 1, lines)
    elif isinstance(stmt, BreakStmt):
        lines.append(pad + "break")
    elif isinstance(stmt, ContinueStmt):
        lines.append(pad + "continue")
    else:
        lines.append(pad + f"<{type(stmt).__name__}>")


def format_program(program: Program) -> str:
    """Render a whole program in the paper's surface syntax."""
    grid = ", ".join(str(g) for g in program.grid)
    params = ", ".join(f"{p.dtype} {p.name}" for p in program.params)
    lines = [f"def {program.name}<{grid}>({params}):  # threads={program.num_threads}"]
    _format_stmt(program.body, 1, lines)
    if len(lines) == 1:
        lines.append("    pass")
    return "\n".join(lines)
