"""Tilus program: name, grid shape, parameters, body (paper Figure 7)."""

from __future__ import annotations

from typing import Sequence

from repro.dtypes import DataType
from repro.errors import IRError
from repro.ir.expr import Constant, Expr, Var, wrap
from repro.ir.stmt import SeqStmt


class Parameter(Var):
    """A kernel parameter (scalar or pointer)."""

    def __init__(self, name: str, dtype: DataType) -> None:
        super().__init__(name, dtype)


class Program:
    """A complete Tilus VM program.

    The grid shape is a list of expressions over the parameters (or
    constants); its dimensions determine how many thread blocks are
    launched.  ``num_threads`` is the block size every register layout in
    the body must respect (one or more warps).
    """

    def __init__(
        self,
        name: str,
        grid: Sequence,
        params: Sequence[Parameter],
        body: SeqStmt,
        num_threads: int = 32,
    ) -> None:
        if not name.isidentifier():
            raise IRError(f"program name {name!r} is not a valid identifier")
        if num_threads <= 0 or num_threads % 32 != 0:
            raise IRError(f"num_threads must be a positive multiple of 32, got {num_threads}")
        self.name = name
        self.grid: tuple[Expr, ...] = tuple(wrap(g) for g in grid)
        self.params: tuple[Parameter, ...] = tuple(params)
        self.body = body
        self.num_threads = num_threads

    @property
    def grid_rank(self) -> int:
        return len(self.grid)

    def static_grid(self) -> tuple[int, ...] | None:
        """Grid shape as ints when constant, else None (runtime-determined)."""
        out = []
        for g in self.grid:
            if isinstance(g, Constant):
                out.append(int(g.value))
            else:
                return None
        return tuple(out)

    def grid_size(self, args: Sequence | None = None) -> tuple[int, ...]:
        """Evaluate the grid shape, substituting launch arguments."""
        from repro.ir.evaluator import evaluate

        env = {}
        if args is not None:
            if len(args) != len(self.params):
                raise IRError(
                    f"{self.name} expects {len(self.params)} arguments, got {len(args)}"
                )
            env = {p: a for p, a in zip(self.params, args)}
        return tuple(int(evaluate(g, env)) for g in self.grid)

    def __repr__(self) -> str:
        from repro.ir.printer import format_program

        return format_program(self)
