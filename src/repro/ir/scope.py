"""Memory scopes of the hierarchical memory space (paper Section 6.1)."""

from __future__ import annotations

from enum import Enum


class MemoryScope(Enum):
    """Where a tensor lives in the GPU memory hierarchy."""

    REGISTER = "register"
    SHARED = "shared"
    GLOBAL = "global"

    def __str__(self) -> str:
        return self.value

    @property
    def is_on_chip(self) -> bool:
        """Registers and shared memory are on-chip."""
        return self in (MemoryScope.REGISTER, MemoryScope.SHARED)


REGISTER = MemoryScope.REGISTER
SHARED = MemoryScope.SHARED
GLOBAL = MemoryScope.GLOBAL
