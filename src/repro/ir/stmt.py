"""Control-flow statements of the Tilus IR (paper Figure 7).

The VM keeps high-level control structures — ``if``/``for``/``while`` with
``break``/``continue`` — instead of abstracting them into jumps, to stay
readable for human developers.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.ir.expr import Expr, Var
from repro.ir.instructions import Instruction


class Stmt:
    """Base class of statements."""

    def walk(self) -> Iterator["Stmt"]:
        """Pre-order traversal over nested statements."""
        yield self

    def instructions(self) -> Iterator[Instruction]:
        """All instructions reachable from this statement."""
        for stmt in self.walk():
            if isinstance(stmt, InstructionStmt):
                yield stmt.instruction


class SeqStmt(Stmt):
    """A sequence of statements executed in order."""

    def __init__(self, body: Sequence[Stmt] = ()) -> None:
        self.body: list[Stmt] = list(body)

    def append(self, stmt: Stmt) -> None:
        self.body.append(stmt)

    def walk(self) -> Iterator[Stmt]:
        yield self
        for stmt in self.body:
            yield from stmt.walk()


class InstructionStmt(Stmt):
    """A single thread-block-level instruction used as a statement."""

    def __init__(self, instruction: Instruction) -> None:
        self.instruction = instruction


class AssignStmt(Stmt):
    """Scalar assignment ``var = value``."""

    def __init__(self, var: Var, value: Expr) -> None:
        self.var = var
        self.value = value


class IfStmt(Stmt):
    """``if cond: then else: otherwise``."""

    def __init__(self, cond: Expr, then_body: SeqStmt, else_body: Optional[SeqStmt] = None) -> None:
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body

    def walk(self) -> Iterator[Stmt]:
        yield self
        yield from self.then_body.walk()
        if self.else_body is not None:
            yield from self.else_body.walk()


class ForStmt(Stmt):
    """Range-based loop ``for var in range(extent): body``.

    ``unroll`` is an optimization hint consumed by code generation;
    ``pipeline_stages > 1`` marks the loop for software pipelining.
    """

    def __init__(
        self,
        var: Var,
        extent: Expr,
        body: SeqStmt,
        unroll: bool = False,
        pipeline_stages: int = 1,
    ) -> None:
        self.var = var
        self.extent = extent
        self.body = body
        self.unroll = unroll
        self.pipeline_stages = pipeline_stages

    def walk(self) -> Iterator[Stmt]:
        yield self
        yield from self.body.walk()


class WhileStmt(Stmt):
    """``while cond: body``."""

    def __init__(self, cond: Expr, body: SeqStmt) -> None:
        self.cond = cond
        self.body = body

    def walk(self) -> Iterator[Stmt]:
        yield self
        yield from self.body.walk()


class BreakStmt(Stmt):
    """Break out of the innermost loop."""


class ContinueStmt(Stmt):
    """Continue with the next iteration of the innermost loop."""
