"""Tensor types of the Tilus IR (paper Section 6.1).

A :class:`TensorType` records element data type, shape, memory scope and —
for register tensors — the distributed :class:`~repro.layout.Layout`.
Global and shared tensors use linear (strided row-major) addressing; their
optional layout is reserved for swizzled shared-memory mappings.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.dtypes import DataType
from repro.errors import IRError
from repro.ir.expr import Expr, Var, wrap
from repro.ir.scope import MemoryScope
from repro.layout import Layout
from repro.utils.indexmath import prod


class TensorType:
    """Type of a Tilus tensor variable."""

    def __init__(
        self,
        scope: MemoryScope,
        dtype: DataType,
        shape: Sequence,
        layout: Optional[Layout] = None,
    ) -> None:
        self.scope = scope
        self.dtype = dtype
        # Shapes may contain expressions (e.g. parameter-dependent global
        # views); register/shared tensors must have constant shapes.
        self.shape: tuple = tuple(shape)
        self.layout = layout
        if scope == MemoryScope.REGISTER:
            if layout is None:
                raise IRError("register tensors require a layout")
            static = self.static_shape()
            if static is None:
                raise IRError("register tensors require a constant shape")
            if tuple(layout.shape) != tuple(static):
                raise IRError(
                    f"layout shape {list(layout.shape)} does not match tensor "
                    f"shape {list(static)}"
                )

    def static_shape(self) -> Optional[tuple[int, ...]]:
        """The shape as ints when fully constant, else None."""
        out = []
        for extent in self.shape:
            if isinstance(extent, Expr):
                from repro.ir.expr import Constant

                if isinstance(extent, Constant):
                    out.append(int(extent.value))
                else:
                    return None
            else:
                out.append(int(extent))
        return tuple(out)

    @property
    def rank(self) -> int:
        return len(self.shape)

    def num_elements(self) -> int:
        static = self.static_shape()
        if static is None:
            raise IRError("tensor shape is not static")
        return prod(static)

    def storage_bits(self) -> int:
        """Total storage in bits (compact sub-byte packing)."""
        return self.num_elements() * self.dtype.nbits

    def storage_bytes(self) -> int:
        return (self.storage_bits() + 7) // 8

    def bits_per_thread(self) -> int:
        """Register tensors only: bits held by each thread.

        This is the quantity that must match for a valid ``View``
        reinterpretation (paper Figure 2(c))."""
        if self.scope != MemoryScope.REGISTER or self.layout is None:
            raise IRError("bits_per_thread is defined for register tensors only")
        return self.layout.local_size * self.dtype.nbits

    def __repr__(self) -> str:
        dims = ", ".join(str(s) for s in self.shape)
        layout_part = f", layout={self.layout.short_repr()}" if self.layout else ""
        return f"{self.dtype}[{dims}]@{self.scope}{layout_part}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TensorType):
            return NotImplemented
        return (
            self.scope == other.scope
            and self.dtype == other.dtype
            and self.static_shape() == other.static_shape()
            and self.layout == other.layout
        )

    def __hash__(self) -> int:
        return hash((self.scope, self.dtype, self.static_shape()))


class TensorVar(Var):
    """A variable holding a tensor; its dtype is the *element* type and its
    full type (shape/scope/layout) lives in ``.ttype``."""

    def __init__(self, name: str, ttype: TensorType) -> None:
        super().__init__(name, ttype.dtype)
        self.ttype = ttype

    def __repr__(self) -> str:
        return self.name


def register_tensor(dtype: DataType, layout: Layout) -> TensorType:
    """Shorthand for a register tensor type whose shape comes from its layout."""
    return TensorType(MemoryScope.REGISTER, dtype, layout.shape, layout)


def shared_tensor(dtype: DataType, shape: Sequence[int], layout: Optional[Layout] = None) -> TensorType:
    return TensorType(MemoryScope.SHARED, dtype, shape, layout)


def global_tensor(dtype: DataType, shape: Sequence, layout: Optional[Layout] = None) -> TensorType:
    return TensorType(MemoryScope.GLOBAL, dtype, shape, layout)
