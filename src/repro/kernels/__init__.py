"""Kernel library: the parameterized quantized matmul template and the
weight transformation program."""

from repro.kernels.config import MatmulConfig, default_configs
from repro.kernels.elementwise import (
    binary_program,
    dequantize_program,
    scale_bias_program,
)
from repro.kernels.gemv import quantized_gemv_program
from repro.kernels.layouts import MatmulLayouts, matmul_layouts
from repro.kernels.matmul import matmul_reference, quantized_matmul_program
from repro.kernels.splitk import (
    splitk_partial_program,
    splitk_reduce_program,
    splitk_slice_program,
)
from repro.kernels.transform import make_transform_program

__all__ = [
    "MatmulConfig",
    "default_configs",
    "MatmulLayouts",
    "matmul_layouts",
    "quantized_matmul_program",
    "matmul_reference",
    "make_transform_program",
    "quantized_gemv_program",
    "dequantize_program",
    "binary_program",
    "scale_bias_program",
    "splitk_partial_program",
    "splitk_reduce_program",
    "splitk_slice_program",
]
