"""Kernel hyperparameters: the tunable tile configuration.

The paper generates *all* quantized matmul kernels from one VM program
template parameterized by tile sizes (Section 9.2, "a single parameterized
Tilus program template").  :class:`MatmulConfig` is that parameter vector.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtypes import DataType
from repro.errors import CompilationError
from repro.layout import WARP_SIZE, MmaConfig, mma_m16n8k16


@dataclass(frozen=True)
class MatmulConfig:
    """Tile sizes and scheduling knobs for the quantized matmul template.

    Attributes:
        block_m/block_n/block_k: thread-block tile sizes.
        warps_m/warps_n: warp grid within the block (warps = warps_m * warps_n).
        num_stages: software pipelining depth; 1 disables shared-memory
            staging (registers are loaded straight from global memory as in
            paper Figure 2), >= 2 enables ``cp.async`` multi-buffering.
        split_k: k-dimension parallelization factor (Stream-K style); each
            of the ``split_k`` block groups reduces a K/split_k slice and
            partial results are combined through the global workspace.
    """

    block_m: int = 16
    block_n: int = 8
    block_k: int = 16
    warps_m: int = 1
    warps_n: int = 1
    num_stages: int = 1
    split_k: int = 1

    @property
    def num_warps(self) -> int:
        return self.warps_m * self.warps_n

    @property
    def num_threads(self) -> int:
        return self.num_warps * WARP_SIZE

    @property
    def warp_n(self) -> int:
        """Columns owned by one warp."""
        return self.block_n // self.warps_n

    @property
    def warp_m(self) -> int:
        """Rows owned by one warp."""
        return self.block_m // self.warps_m

    def mma(self) -> MmaConfig:
        return mma_m16n8k16()

    def validate(self, weight_dtype: DataType) -> None:
        """Raise :class:`CompilationError` when the config cannot express a
        valid kernel for the given weight type."""
        mma = self.mma()
        if self.block_m % (self.warps_m * mma.m) != 0:
            raise CompilationError(
                f"block_m={self.block_m} must be a multiple of warps_m*{mma.m}"
            )
        if self.block_n % (self.warps_n * mma.n) != 0:
            raise CompilationError(
                f"block_n={self.block_n} must be a multiple of warps_n*{mma.n}"
            )
        if self.block_k % mma.k != 0:
            raise CompilationError(f"block_k={self.block_k} must be a multiple of {mma.k}")
        if self.num_stages < 1:
            raise CompilationError("num_stages must be >= 1")
        if self.split_k < 1:
            raise CompilationError("split_k must be >= 1")
        # The weight fragment of each thread must be byte-aligned for the
        # u8 reinterpretation (paper Section 7.2).
        rk = self.block_k // mma.k
        rn = self.warp_n // mma.n
        locals_per_thread = rk * rn * mma.b_layout.local_size
        bits = locals_per_thread * weight_dtype.nbits
        if bits % 8 != 0:
            raise CompilationError(
                f"weight tile holds {bits} bits per thread for {weight_dtype}; "
                f"pick block_k/block_n so bits-per-thread is byte-aligned"
            )

    def shared_bytes(self, act_bits: int, weight_bits: int) -> int:
        """Shared-memory footprint of the staged pipeline (bytes)."""
        if self.num_stages < 2:
            return 0
        a_bytes = self.block_m * self.block_k * act_bits // 8
        b_bytes = self.block_k * self.block_n * weight_bits // 8
        return self.num_stages * (a_bytes + b_bytes)

    def describe(self) -> str:
        return (
            f"BM{self.block_m}xBN{self.block_n}xBK{self.block_k}"
            f"_w{self.warps_m}x{self.warps_n}_s{self.num_stages}_k{self.split_k}"
        )


def default_configs() -> list[MatmulConfig]:
    """The tuning space: ~200 configurations per operator (paper 9.3)."""
    configs = []
    for bm in (16, 32, 64, 128):
        for bn in (8, 16, 32, 64, 128):
            for bk in (16, 32, 64):
                for wm, wn in ((1, 1), (2, 1), (1, 2), (2, 2), (4, 1), (2, 4)):
                    for stages in (1, 2, 3):
                        cfg = MatmulConfig(bm, bn, bk, wm, wn, stages)
                        if bm % (wm * 16) or bn % (wn * 8) or cfg.num_warps > 8:
                            continue
                        configs.append(cfg)
    return configs
