"""Elementwise kernel library.

The paper notes Tilus "supports all kernels supported by Triton in
principle" (Section 9.1); this module provides the common non-matmul
kernels an LLM serving stack needs, built on the same DSL:

- :func:`dequantize_program` — expand a transformed low-precision weight
  back into a dense f16 matrix (useful for debugging and for prefill
  paths that prefer a dense GEMM),
- :func:`binary_program` — elementwise add/sub/mul/div of two tensors,
- :func:`scale_bias_program` — ``y = x * scale + bias`` row-wise
  (the affine epilogue of normalization layers).
"""

from __future__ import annotations

from repro.dtypes import DataType, float16, uint8
from repro.errors import CompilationError
from repro.ir.program import Program
from repro.kernels.config import MatmulConfig
from repro.kernels.layouts import matmul_layouts
from repro.lang import ProgramBuilder, pointer
from repro.layout import local, spatial
from repro.utils.indexmath import ceil_div


def dequantize_program(
    k: int,
    n: int,
    weight_dtype: DataType,
    cfg: MatmulConfig,
    act_dtype: DataType = float16,
    zero_point: int = 0,
) -> Program:
    """Expand a tile-transformed weight into a dense ``act_dtype[k, n]``.

    Parameters: ``b_ptr`` (packed u8), ``scales_ptr`` (act), ``out_ptr``.
    One warp handles one (block_k, warp_n) tile — the exact inverse of
    the transform program, plus scaling.
    """
    cfg.validate(weight_dtype)
    bk, bnw = cfg.block_k, cfg.warp_n
    if k % bk or n % bnw:
        raise CompilationError(f"{k}x{n} must tile by ({bk}, {bnw})")
    lay = matmul_layouts(cfg, weight_dtype)
    from repro.quant.packing import byte_view_layout

    view_layout = byte_view_layout(lay.b_warp, weight_dtype.nbits)
    group = k  # per-channel scales for this utility kernel

    pb = ProgramBuilder("dequantize", grid=[k // bk, n // bnw], num_threads=32)
    b_ptr = pb.param("b_ptr", pointer(uint8))
    s_ptr = pb.param("scales_ptr", pointer(act_dtype))
    o_ptr = pb.param("out_ptr", pointer(act_dtype))
    tk, tj = pb.block_indices()
    gb = pb.view_global(b_ptr, dtype=uint8, shape=[k // bk, n // bnw, lay.b_tile_bytes])
    gs = pb.view_global(s_ptr, dtype=act_dtype, shape=[1, n])
    go = pb.view_global(o_ptr, dtype=act_dtype, shape=[k, n])
    raw = pb.load_global(gb, layout=view_layout, offset=[tk, tj, 0])
    codes = pb.view(raw, dtype=weight_dtype, layout=lay.b_warp)
    values = pb.cast(codes, act_dtype)
    if zero_point:
        values = pb.sub(values, float(zero_point))
    sc = pb.load_global(gs, layout=lay.b_warp, offset=[0, tj * bnw], broadcast_dims=[0])
    values = pb.mul(values, sc)
    pb.store_global(values, go, offset=[tk * bk, tj * bnw])
    return pb.finish()


def binary_program(
    op: str,
    rows: int,
    cols: int,
    dtype: DataType = float16,
    tile: int = 8,
) -> Program:
    """Elementwise ``c = a <op> b`` over two ``dtype[rows, cols]`` tensors."""
    if op not in ("+", "-", "*", "/"):
        raise CompilationError(f"unsupported elementwise op {op!r}")
    if cols % 4:
        raise CompilationError("cols must be a multiple of 4")
    layout = spatial(8, 4) if cols == 4 else spatial(8, 4).local(1, cols // 4)
    grid_rows = ceil_div(rows, 8)

    pb = ProgramBuilder("elementwise", grid=[grid_rows], num_threads=32)
    a_ptr = pb.param("a_ptr", pointer(dtype))
    b_ptr = pb.param("b_ptr", pointer(dtype))
    c_ptr = pb.param("c_ptr", pointer(dtype))
    (bi,) = pb.block_indices()
    ga = pb.view_global(a_ptr, dtype=dtype, shape=[rows, cols])
    gb = pb.view_global(b_ptr, dtype=dtype, shape=[rows, cols])
    gc = pb.view_global(c_ptr, dtype=dtype, shape=[rows, cols])
    a = pb.load_global(ga, layout=layout, offset=[bi * 8, 0], masked=True)
    b = pb.load_global(gb, layout=layout, offset=[bi * 8, 0], masked=True)
    c = pb._binary(op, a, b)
    pb.store_global(c, gc, offset=[bi * 8, 0], masked=True)
    return pb.finish()


def scale_bias_program(
    rows: int,
    cols: int,
    dtype: DataType = float16,
) -> Program:
    """Row-broadcast affine transform: ``y[i, j] = x[i, j] * s[j] + b[j]``."""
    if cols % 4:
        raise CompilationError("cols must be a multiple of 4")
    layout = spatial(8, 4) if cols == 4 else spatial(8, 4).local(1, cols // 4)
    grid_rows = ceil_div(rows, 8)

    pb = ProgramBuilder("scale_bias", grid=[grid_rows], num_threads=32)
    x_ptr = pb.param("x_ptr", pointer(dtype))
    s_ptr = pb.param("scale_ptr", pointer(dtype))
    b_ptr = pb.param("bias_ptr", pointer(dtype))
    y_ptr = pb.param("y_ptr", pointer(dtype))
    (bi,) = pb.block_indices()
    gx = pb.view_global(x_ptr, dtype=dtype, shape=[rows, cols])
    gs = pb.view_global(s_ptr, dtype=dtype, shape=[1, cols])
    gb = pb.view_global(b_ptr, dtype=dtype, shape=[1, cols])
    gy = pb.view_global(y_ptr, dtype=dtype, shape=[rows, cols])
    x = pb.load_global(gx, layout=layout, offset=[bi * 8, 0], masked=True)
    s = pb.load_global(gs, layout=layout, offset=[0, 0], broadcast_dims=[0])
    b = pb.load_global(gb, layout=layout, offset=[0, 0], broadcast_dims=[0])
    y = pb.mul(x, s)
    y = pb.add(y, b)
    pb.store_global(y, gy, offset=[bi * 8, 0], masked=True)
    return pb.finish()
