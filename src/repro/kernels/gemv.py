"""Quantized GEMV: the single-token decode kernel on SIMT cores.

The paper notes that for small batch sizes the bottleneck is weight
loading "for computation on SIMT or Tensor Cores" (Section 9.2).  This
kernel is the SIMT variant for ``m = 1``: no mma, just elementwise
multiply and a block-level :class:`~repro.ir.instructions.ReduceSum`
over the k axis.  It consumes the *same* transformed weight format as
the tensor-core template, so one packed tensor serves both paths.
"""

from __future__ import annotations

from repro.dtypes import DataType, float16, float32, uint8
from repro.errors import CompilationError
from repro.ir.program import Program
from repro.kernels.config import MatmulConfig
from repro.kernels.layouts import matmul_layouts
from repro.lang import ProgramBuilder, pointer
from repro.layout import spatial
from repro.layout.core import replicate
from repro.quant.packing import byte_view_layout
from repro.quant.scheme import QuantScheme


def quantized_gemv_program(
    n: int,
    k: int,
    act_dtype: DataType,
    scheme: QuantScheme,
    cfg: MatmulConfig,
) -> Program:
    """Build ``y[1, n] = x[1, k] @ dequant(B[k, n])`` for one warp/block.

    Parameters: ``x_ptr`` (act), ``b_ptr`` (transformed u8, same layout
    as the matmul template), ``scales_ptr`` (act), ``y_ptr`` (act).
    """
    weight_dtype = scheme.dtype
    cfg.validate(weight_dtype)
    if cfg.num_warps != 1:
        raise CompilationError("the GEMV kernel is single-warp (one warp per block)")
    bk, bn = cfg.block_k, cfg.warp_n
    if n % bn or k % bk:
        raise CompilationError(f"n={n}, k={k} must tile by ({bn}, {bk})")
    group = min(scheme.group_size, k)
    if group % bk:
        raise CompilationError(f"group_size={group} must be a multiple of block_k={bk}")
    lay = matmul_layouts(cfg, weight_dtype)
    view_layout = byte_view_layout(lay.b_warp, weight_dtype.nbits)
    n_ktiles = k // bk
    # Reduced (1, bn) accumulator: each output column lives in the same
    # threads that computed its partials, replicated across the rest.
    out_layout = replicate(32 // min(32, bn), rank=2).compose(spatial(1, min(32, bn)))
    if out_layout.shape != (1, bn):
        raise CompilationError(f"unsupported warp_n={bn} for the GEMV reduction")

    pb = ProgramBuilder("quantized_gemv", grid=[n // bn], num_threads=32)
    x_ptr = pb.param("x_ptr", pointer(act_dtype))
    b_ptr = pb.param("b_ptr", pointer(uint8))
    s_ptr = pb.param("scales_ptr", pointer(act_dtype))
    y_ptr = pb.param("y_ptr", pointer(act_dtype))

    (bj,) = pb.block_indices()
    gx = pb.view_global(x_ptr, dtype=act_dtype, shape=[k, 1])
    gb = pb.view_global(b_ptr, dtype=uint8, shape=[n_ktiles, n // bn, lay.b_tile_bytes])
    gs = pb.view_global(s_ptr, dtype=act_dtype, shape=[k // group, n])
    gy = pb.view_global(y_ptr, dtype=act_dtype, shape=[1, n])

    acc = pb.allocate_register(float32, layout=out_layout, init=0.0)
    with pb.for_range(n_ktiles) as kt:
        braw = pb.load_global(gb, layout=view_layout, offset=[kt, bj, 0])
        b_lp = pb.view(braw, dtype=weight_dtype, layout=lay.b_warp)
        b_act = pb.cast(b_lp, act_dtype)
        if scheme.zero_point:
            b_act = pb.sub(b_act, float(scheme.zero_point))
        sc = pb.load_global(
            gs, layout=lay.b_warp, offset=[kt * bk // group, bj * bn], broadcast_dims=[0]
        )
        b_deq = pb.mul(b_act, sc)
        # x broadcast along the n axis of the weight tile: element (kk, nn)
        # reads x[kt*bk + kk] regardless of nn.
        x_tile = pb.load_global(
            gx, layout=lay.b_warp, offset=[kt * bk, 0], broadcast_dims=[1]
        )
        prod = pb.mul(b_deq, x_tile)
        prod32 = pb.cast(prod, float32)
        partial = pb.reduce_sum(prod32, axis=0, layout=out_layout)
        pb.add(acc, partial, out=acc)
    out = pb.cast(acc, act_dtype)
    pb.store_global(out, gy, offset=[0, bj * bn])
    return pb.finish()
