"""Block-level operand layouts for the matmul template.

These compose the warp grid, per-warp repetition, and the mma fragment
layouts into full thread-block layouts, including the replication needed
when several warps share an operand fragment:

- A (activations): warp **rows** own disjoint row slices, warp **columns**
  replicate the fragment.
- B (weights): warp **columns** own disjoint column slices, warp **rows**
  replicate.
- C (accumulator): every warp owns a disjoint sub-tile (bijective).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtypes import DataType
from repro.kernels.config import MatmulConfig
from repro.layout import Layout, local, spatial
from repro.layout.core import replicate
from repro.quant.packing import byte_view_layout, tile_bytes


@dataclass(frozen=True)
class MatmulLayouts:
    """All register layouts used by one instantiation of the template."""

    a: Layout          # (block_m, block_k), replicated across warp columns
    b: Layout          # (block_k, block_n), replicated across warp rows
    c: Layout          # (block_m, block_n), bijective
    b_warp: Layout     # per-warp weight fragment (block_k, warp_n), 32 threads
    b_bytes: Layout    # 1-D uint8 view of the block's packed weight tile
    b_tile_bytes: int  # packed bytes of one per-warp weight tile


def matmul_layouts(cfg: MatmulConfig, weight_dtype: DataType) -> MatmulLayouts:
    """Derive the operand layouts for a configuration."""
    mma = cfg.mma()
    wm, wn = cfg.warps_m, cfg.warps_n
    rm = cfg.block_m // (wm * mma.m)
    rn = cfg.warp_n // mma.n
    rk = cfg.block_k // mma.k

    a = (
        spatial(wm, 1)
        .compose(replicate(wn, rank=2))
        .compose(local(rm, rk))
        .compose(mma.a_layout)
    )
    b_warp = local(rk, rn).compose(mma.b_layout)
    b = replicate(wm, rank=2).compose(spatial(1, wn)).compose(b_warp)
    c = spatial(wm, wn).compose(local(rm, rn)).compose(mma.c_layout)

    warp_bytes = tile_bytes(b_warp, weight_dtype.nbits)
    b_bytes = (
        replicate(wm, rank=1)
        .compose(spatial(wn))
        .compose(byte_view_layout(b_warp, weight_dtype.nbits))
    )
    return MatmulLayouts(
        a=a, b=b, c=c, b_warp=b_warp, b_bytes=b_bytes, b_tile_bytes=warp_bytes
    )
