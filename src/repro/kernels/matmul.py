"""The quantized matmul program template (paper Figure 2 + Section 7.2).

One template generates every kernel in the evaluation:

- arbitrary weight types (uint1..8, int2..8, float3..8) via the
  transform/load/``View``/``Cast`` pipeline of Figure 2,
- group-wise dequantization scales (sub-channel granularity),
- optional ``cp.async`` software pipelining with ``num_stages`` staging
  buffers (Figure 1(c)),
- multi-warp thread blocks with operand replication.

The weight matrix must be pre-transformed with
:func:`repro.kernels.transform.make_transform_program` (device) or
:func:`repro.quant.transform_weight` (host) for the same configuration.
"""

from __future__ import annotations

from repro.dtypes import DataType, float32, uint8
from repro.errors import CompilationError
from repro.ir.program import Program
from repro.kernels.config import MatmulConfig
from repro.kernels.layouts import MatmulLayouts, matmul_layouts
from repro.lang import ProgramBuilder, pointer
from repro.quant.scheme import QuantScheme
from repro.utils.indexmath import ceil_div


def quantized_matmul_program(
    m: int,
    n: int,
    k: int,
    act_dtype: DataType,
    scheme: QuantScheme,
    cfg: MatmulConfig,
) -> Program:
    """Build ``C[m,n] = A[m,k] @ dequant(B[k,n])`` for one configuration.

    Parameters of the produced program, in order:
        ``a_ptr`` (act), ``b_ptr`` (transformed u8), ``scales_ptr`` (act),
        ``c_ptr`` (act).
    """
    weight_dtype = scheme.dtype
    cfg.validate(weight_dtype)
    bm, bn, bk = cfg.block_m, cfg.block_n, cfg.block_k
    if n % bn != 0 or k % bk != 0:
        raise CompilationError(
            f"n={n} and k={k} must be multiples of block_n={bn}, block_k={bk} "
            f"(weights are pre-transformed at tile granularity)"
        )
    group = min(scheme.group_size, k)
    if group % bk != 0:
        raise CompilationError(
            f"group_size={group} must be a multiple of block_k={bk}"
        )
    lay = matmul_layouts(cfg, weight_dtype)
    block_bytes = cfg.warps_n * lay.b_tile_bytes
    n_ktiles = k // bk
    grid_m = ceil_div(m, bm)

    pb = ProgramBuilder(
        "quantized_matmul", grid=[grid_m, n // bn], num_threads=cfg.num_threads
    )
    a_ptr = pb.param("a_ptr", pointer(act_dtype))
    b_ptr = pb.param("b_ptr", pointer(uint8))
    s_ptr = pb.param("scales_ptr", pointer(act_dtype))
    c_ptr = pb.param("c_ptr", pointer(act_dtype))

    bi, bj = pb.block_indices()
    ga = pb.view_global(a_ptr, dtype=act_dtype, shape=[m, k])
    gb = pb.view_global(b_ptr, dtype=uint8, shape=[n_ktiles, n // bn, block_bytes])
    gs = pb.view_global(s_ptr, dtype=act_dtype, shape=[k // group, n])
    gc = pb.view_global(c_ptr, dtype=act_dtype, shape=[m, n])

    acc = pb.allocate_register(float32, layout=lay.c, init=0.0)
    zero_point = scheme.zero_point

    def compute_tile(a_tile, braw, kt) -> None:
        """Shared tail of both pipelines: view, cast, dequantize, dot."""
        b_lp = pb.view(braw, dtype=weight_dtype, layout=lay.b)
        b_act = pb.cast(b_lp, act_dtype)
        if zero_point:
            b_act = pb.sub(b_act, float(zero_point))
        sc = pb.load_global(
            gs,
            layout=lay.b,
            offset=[kt * bk // group, bj * bn],
            broadcast_dims=[0],
        )
        b_deq = pb.mul(b_act, sc)
        pb.dot(a_tile, b_deq, acc, out=acc)

    if cfg.num_stages == 1:
        # Direct pipeline (paper Figure 2): global -> registers.
        with pb.for_range(n_ktiles) as kt:
            a_tile = pb.load_global(
                ga, layout=lay.a, offset=[bi * bm, kt * bk], masked=True
            )
            braw = pb.load_global(gb, layout=lay.b_bytes, offset=[kt, bj, 0])
            compute_tile(a_tile, braw, kt)
    else:
        # Software-pipelined path (paper Figure 1(c)): cp.async staging.
        stages = cfg.num_stages
        sa = pb.allocate_shared(act_dtype, [stages, bm, bk])
        sb = pb.allocate_shared(uint8, [stages, block_bytes])
        for s in range(min(stages - 1, n_ktiles)):  # prologue (unrolled)
            pb.copy_async(
                sa, ga, src_offset=[bi * bm, s * bk], dst_offset=[s, 0, 0], shape=[bm, bk]
            )
            pb.copy_async(
                sb, gb, src_offset=[s, bj, 0], dst_offset=[s, 0], shape=[block_bytes]
            )
            pb.copy_async_commit_group()
        with pb.for_range(n_ktiles, pipeline_stages=stages) as kt:
            pb.copy_async_wait_group(stages - 2)
            pb.synchronize()
            a_tile = pb.load_shared(sa, layout=lay.a, offset=[kt % stages, 0, 0])
            braw = pb.load_shared(sb, layout=lay.b_bytes, offset=[kt % stages, 0])
            nxt = kt + (stages - 1)
            with pb.if_then(nxt < n_ktiles):
                pb.copy_async(
                    sa,
                    ga,
                    src_offset=[bi * bm, nxt * bk],
                    dst_offset=[nxt % stages, 0, 0],
                    shape=[bm, bk],
                )
                pb.copy_async(
                    sb,
                    gb,
                    src_offset=[nxt, bj, 0],
                    dst_offset=[nxt % stages, 0],
                    shape=[block_bytes],
                )
            pb.copy_async_commit_group()
            compute_tile(a_tile, braw, kt)
            pb.synchronize()

    out = pb.cast(acc, act_dtype)
    pb.store_global(out, gc, offset=[bi * bm, bj * bn], masked=True)
    return pb.finish()


def matmul_reference(a, b_dequant):
    """Float64 reference for testing: plain matrix product."""
    import numpy as np

    return np.asarray(a, dtype=np.float64) @ np.asarray(b_dequant, dtype=np.float64)
