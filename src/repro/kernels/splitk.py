"""Split-k (Stream-K style) matmul: k-dimension parallelization.

The decode optimization the paper calls out as missing from Ladder
(Section 9.4): for tall-skinny products (m small, n·k large) the regular
grid cannot fill the GPU, so the reduction dimension is partitioned into
``split_k`` slices computed by independent thread blocks.  Partial sums
land in an f32 workspace; a second small kernel reduces them into the
output.

The partial/reduce pair is functionally deterministic (the reduce sums
slices in ascending order); on real hardware the same structure runs
with inter-block parallelism.  :func:`splitk_slice_program` splits the
partial computation into one launch per slice so the multi-stream
runtime (:mod:`repro.runtime.streams`) can issue the slices concurrently
on distinct streams.
"""

from __future__ import annotations

from repro.dtypes import DataType, float16, float32, uint8
from repro.errors import CompilationError
from repro.ir.program import Program
from repro.kernels.config import MatmulConfig
from repro.kernels.layouts import matmul_layouts
from repro.lang import ProgramBuilder, pointer
from repro.layout import spatial
from repro.quant.scheme import QuantScheme
from repro.utils.indexmath import ceil_div


def splitk_partial_program(
    m: int,
    n: int,
    k: int,
    act_dtype: DataType,
    scheme: QuantScheme,
    cfg: MatmulConfig,
) -> Program:
    """Grid ``[m/BM, n/BN, split_k]``; slice ``s`` reduces k-range
    ``[s*K/split_k, (s+1)*K/split_k)`` into ``partials[s, m, n]`` (f32).

    Parameters: ``a_ptr``, ``b_ptr`` (transformed u8), ``scales_ptr``,
    ``partials_ptr`` (f32 workspace of shape [split_k, m, n]).
    """
    weight_dtype = scheme.dtype
    cfg.validate(weight_dtype)
    sk = cfg.split_k
    bm, bn, bk = cfg.block_m, cfg.block_n, cfg.block_k
    if sk < 2:
        raise CompilationError("splitk_partial_program needs split_k >= 2")
    if n % bn or k % bk or (k // bk) % sk:
        raise CompilationError(
            f"n={n}, k={k} must tile by ({bn}, {bk}) with k-tiles divisible by {sk}"
        )
    group = min(scheme.group_size, k)
    if group % bk != 0:
        raise CompilationError(f"group_size={group} must be a multiple of block_k={bk}")
    lay = matmul_layouts(cfg, weight_dtype)
    block_bytes = cfg.warps_n * lay.b_tile_bytes
    tiles_per_slice = (k // bk) // sk
    grid_m = ceil_div(m, bm)

    pb = ProgramBuilder(
        "splitk_partial", grid=[grid_m, n // bn, sk], num_threads=cfg.num_threads
    )
    a_ptr = pb.param("a_ptr", pointer(act_dtype))
    b_ptr = pb.param("b_ptr", pointer(uint8))
    s_ptr = pb.param("scales_ptr", pointer(act_dtype))
    p_ptr = pb.param("partials_ptr", pointer(float32))

    bi, bj, bs = pb.block_indices()
    ga = pb.view_global(a_ptr, dtype=act_dtype, shape=[m, k])
    gb = pb.view_global(b_ptr, dtype=uint8, shape=[k // bk, n // bn, block_bytes])
    gs = pb.view_global(s_ptr, dtype=act_dtype, shape=[k // group, n])
    gp = pb.view_global(p_ptr, dtype=float32, shape=[sk, m, n])

    acc = pb.allocate_register(float32, layout=lay.c, init=0.0)
    base = pb.assign("i32", bs * tiles_per_slice, hint="base")
    with pb.for_range(tiles_per_slice) as t:
        kt = pb.assign("i32", base + t, hint="kt")
        a_tile = pb.load_global(ga, layout=lay.a, offset=[bi * bm, kt * bk], masked=True)
        braw = pb.load_global(gb, layout=lay.b_bytes, offset=[kt, bj, 0])
        b_lp = pb.view(braw, dtype=weight_dtype, layout=lay.b)
        b_act = pb.cast(b_lp, act_dtype)
        if scheme.zero_point:
            b_act = pb.sub(b_act, float(scheme.zero_point))
        sc = pb.load_global(
            gs, layout=lay.b, offset=[kt * bk // group, bj * bn], broadcast_dims=[0]
        )
        b_deq = pb.mul(b_act, sc)
        pb.dot(a_tile, b_deq, acc, out=acc)
    pb.store_global(acc, gp, offset=[bs, bi * bm, bj * bn], masked=True)
    return pb.finish()


def splitk_slice_program(
    m: int,
    n: int,
    k: int,
    act_dtype: DataType,
    scheme: QuantScheme,
    cfg: MatmulConfig,
) -> Program:
    """One split-k slice as its *own launch*, for multi-stream issue.

    Unlike :func:`splitk_partial_program` (whose grid carries the whole
    split dimension), this program covers a single k-slice on grid
    ``[m/BM, n/BN]``; the slice is selected by two runtime arguments:

    - ``partial_ptr`` — the f32 ``[m, n]`` slab for *this* slice (the
      caller offsets the workspace base by ``s * m * n * 4`` bytes), and
    - ``k0`` — the slice's first k-tile, ``s * (k / bk / split_k)``.

    Because each slice writes a disjoint workspace slab, the runtime's
    hazard tracker lets all ``split_k`` launches run concurrently on
    distinct streams; the reduce kernel, which reads the whole workspace,
    is ordered after every slice automatically.  One program object
    serves every slice, so the specialization cache compiles it once.
    """
    weight_dtype = scheme.dtype
    cfg.validate(weight_dtype)
    sk = cfg.split_k
    bm, bn, bk = cfg.block_m, cfg.block_n, cfg.block_k
    if sk < 2:
        raise CompilationError("splitk_slice_program needs split_k >= 2")
    if n % bn or k % bk or (k // bk) % sk:
        raise CompilationError(
            f"n={n}, k={k} must tile by ({bn}, {bk}) with k-tiles divisible by {sk}"
        )
    group = min(scheme.group_size, k)
    if group % bk != 0:
        raise CompilationError(f"group_size={group} must be a multiple of block_k={bk}")
    lay = matmul_layouts(cfg, weight_dtype)
    block_bytes = cfg.warps_n * lay.b_tile_bytes
    tiles_per_slice = (k // bk) // sk
    grid_m = ceil_div(m, bm)

    pb = ProgramBuilder(
        "splitk_slice", grid=[grid_m, n // bn], num_threads=cfg.num_threads
    )
    a_ptr = pb.param("a_ptr", pointer(act_dtype))
    b_ptr = pb.param("b_ptr", pointer(uint8))
    s_ptr = pb.param("scales_ptr", pointer(act_dtype))
    p_ptr = pb.param("partial_ptr", pointer(float32))
    k0 = pb.param("k0", "i32")

    bi, bj = pb.block_indices()
    ga = pb.view_global(a_ptr, dtype=act_dtype, shape=[m, k])
    gb = pb.view_global(b_ptr, dtype=uint8, shape=[k // bk, n // bn, block_bytes])
    gs = pb.view_global(s_ptr, dtype=act_dtype, shape=[k // group, n])
    gp = pb.view_global(p_ptr, dtype=float32, shape=[m, n])

    acc = pb.allocate_register(float32, layout=lay.c, init=0.0)
    with pb.for_range(tiles_per_slice) as t:
        kt = pb.assign("i32", k0 + t, hint="kt")
        a_tile = pb.load_global(ga, layout=lay.a, offset=[bi * bm, kt * bk], masked=True)
        braw = pb.load_global(gb, layout=lay.b_bytes, offset=[kt, bj, 0])
        b_lp = pb.view(braw, dtype=weight_dtype, layout=lay.b)
        b_act = pb.cast(b_lp, act_dtype)
        if scheme.zero_point:
            b_act = pb.sub(b_act, float(scheme.zero_point))
        sc = pb.load_global(
            gs, layout=lay.b, offset=[kt * bk // group, bj * bn], broadcast_dims=[0]
        )
        b_deq = pb.mul(b_act, sc)
        pb.dot(a_tile, b_deq, acc, out=acc)
    pb.store_global(acc, gp, offset=[bi * bm, bj * bn], masked=True)
    return pb.finish()


def splitk_reduce_program(
    m: int,
    n: int,
    split_k: int,
    act_dtype: DataType = float16,
    tile_n: int = 32,
) -> Program:
    """Sum the f32 partials over the split dimension and cast to the
    activation type: ``c[i, j] = sum_s partials[s, i, j]``."""
    if split_k < 2:
        raise CompilationError("reduce needs split_k >= 2")
    if tile_n % 4:
        raise CompilationError("tile_n must be a multiple of 4")
    layout = spatial(8, 4) if tile_n == 4 else spatial(8, 4).local(1, tile_n // 4)

    pb = ProgramBuilder(
        "splitk_reduce", grid=[ceil_div(m, 8), ceil_div(n, tile_n)], num_threads=32
    )
    p_ptr = pb.param("partials_ptr", pointer(float32))
    c_ptr = pb.param("c_ptr", pointer(act_dtype))
    bi, bj = pb.block_indices()
    gp = pb.view_global(p_ptr, dtype=float32, shape=[split_k, m, n])
    gc = pb.view_global(c_ptr, dtype=act_dtype, shape=[m, n])
    acc = pb.allocate_register(float32, layout=layout, init=0.0)
    with pb.for_range(split_k) as s:
        part = pb.load_global(
            gp, layout=layout, offset=[s, bi * 8, bj * tile_n], masked=True
        )
        pb.add(acc, part, out=acc)
    out = pb.cast(acc, act_dtype)
    pb.store_global(out, gc, offset=[bi * 8, bj * tile_n], masked=True)
    return pb.finish()
