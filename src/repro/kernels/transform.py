"""The weight layout transformation program (paper Figure 9).

Rearranges a row-major low-precision weight matrix ``B[k, n]`` into the
tile-transformed byte representation the matmul template loads with plain
vectorized instructions.  One thread block (one warp) handles one
``(block_k, warp_n)`` tile: it loads the tile in the mma register layout,
reinterprets it as uint8 via ``View`` — the zero-cost step — and stores the
bytes contiguously.
"""

from __future__ import annotations

from repro.dtypes import DataType, uint8
from repro.errors import CompilationError
from repro.ir.program import Program
from repro.kernels.config import MatmulConfig
from repro.kernels.layouts import matmul_layouts
from repro.lang import ProgramBuilder, pointer
from repro.quant.packing import byte_view_layout


def make_transform_program(
    k: int, n: int, weight_dtype: DataType, cfg: MatmulConfig
) -> Program:
    """Build the device-side ``transform_b`` program for a configuration."""
    cfg.validate(weight_dtype)
    bk = cfg.block_k
    bnw = cfg.warp_n
    if k % bk or n % bnw:
        raise CompilationError(
            f"weight {k}x{n} is not tiled by block_k={bk} x warp_n={bnw}"
        )
    lay = matmul_layouts(cfg, weight_dtype)
    view_layout = byte_view_layout(lay.b_warp, weight_dtype.nbits)
    tile_nbytes = lay.b_tile_bytes

    pb = ProgramBuilder("transform_b", grid=[k // bk, n // bnw], num_threads=32)
    b_ptr = pb.param("b_ptr", pointer(weight_dtype))
    tb_ptr = pb.param("transformed_b_ptr", pointer(uint8))
    tk, tj = pb.block_indices()
    b_in = pb.view_global(b_ptr, dtype=weight_dtype, shape=[k, n])
    b_out = pb.view_global(tb_ptr, dtype=uint8, shape=[k // bk, n // bnw, tile_nbytes])
    tile = pb.load_global(b_in, layout=lay.b_warp, offset=[tk * bk, tj * bnw])
    as_bytes = pb.view(tile, dtype=uint8, layout=view_layout)
    pb.store_global(as_bytes, b_out, offset=[tk, tj, 0])
    return pb.finish()
