"""The Tilus domain-specific language: Python-embedded program builder."""

from repro.lang.builder import ProgramBuilder, pointer

__all__ = ["ProgramBuilder", "pointer"]
