"""The Tilus DSL: build VM programs in Python (paper Section 8).

:class:`ProgramBuilder` provides one method per instruction in Table 1 and
context managers for control flow, so a Tilus program reads nearly
identically to the paper's Figure 2::

    pb = ProgramBuilder("matmul", grid=[M // BM, N // BN])
    a_ptr = pb.param("a_ptr", pointer(f16))
    ...
    bi, bj = pb.block_indices()
    ga = pb.view_global(a_ptr, dtype=f16, shape=[M, K])
    acc = pb.allocate_register(f32, layout=c_layout, init=0.0)
    with pb.for_range(K // BK) as bk:
        a = pb.load_global(ga, layout=a_layout, offset=[bi * BM, bk * BK])
        ...
    program = pb.finish()

Build-time checks catch the errors the paper's verifier would: ``View``
reinterpretations must preserve threads and bits-per-thread, ``Dot``
operands must agree on shapes and layouts, register operands of an
elementwise op must share a layout.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Sequence

from repro.dtypes import DataType, PointerType, dtype_from_name
from repro.errors import IRError, TypeCheckError
from repro.ir import instructions as insts
from repro.ir.expr import Expr, Var, wrap
from repro.ir.program import Parameter, Program
from repro.ir.scope import MemoryScope
from repro.ir.stmt import (
    AssignStmt,
    BreakStmt,
    ContinueStmt,
    ForStmt,
    IfStmt,
    InstructionStmt,
    SeqStmt,
    WhileStmt,
)
from repro.ir.types import TensorType, TensorVar
from repro.layout import Layout
from repro.dtypes import int32


def pointer(base: DataType | str | None = None) -> PointerType:
    """Pointer type helper: ``pointer(f16)`` or ``pointer()`` for void*."""
    if base is None:
        return PointerType(None)
    if isinstance(base, str):
        base = dtype_from_name(base)
    return PointerType(base)


def _as_dtype(dtype: DataType | str) -> DataType:
    return dtype_from_name(dtype) if isinstance(dtype, str) else dtype


class ProgramBuilder:
    """Imperative builder producing a :class:`~repro.ir.Program`."""

    def __init__(self, name: str, grid: Sequence, num_threads: int = 32) -> None:
        self._name = name
        self._grid = list(grid)
        self._num_threads = num_threads
        self._params: list[Parameter] = []
        self._root = SeqStmt()
        self._stack: list[SeqStmt] = [self._root]
        self._tensor_counter = 0
        self._scalar_counter = 0
        self._finished = False

    # -- naming --------------------------------------------------------------
    def _fresh_tensor(self, ttype: TensorType, hint: str = "t") -> TensorVar:
        self._tensor_counter += 1
        return TensorVar(f"%{hint}{self._tensor_counter}", ttype)

    def _fresh_scalar(self, dtype: DataType, hint: str = "v") -> Var:
        self._scalar_counter += 1
        return Var(f"{hint}{self._scalar_counter}", dtype)

    def _emit(self, instruction: insts.Instruction) -> None:
        if self._finished:
            raise IRError("cannot emit into a finished program")
        self._stack[-1].append(InstructionStmt(instruction))

    # -- program structure ----------------------------------------------------
    def param(self, name: str, dtype: DataType | str) -> Parameter:
        """Declare a kernel parameter (must precede body construction)."""
        p = Parameter(name, _as_dtype(dtype))
        self._params.append(p)
        return p

    def finish(self) -> Program:
        """Seal the builder and return the program."""
        self._finished = True
        if len(self._stack) != 1:
            raise IRError("unclosed control-flow block at finish()")
        return Program(
            self._name, self._grid, self._params, self._root, self._num_threads
        )

    # -- control flow -----------------------------------------------------------
    @contextmanager
    def for_range(self, extent, unroll: bool = False, pipeline_stages: int = 1):
        """Counted loop; yields the loop variable."""
        var = self._fresh_scalar(int32, hint="i")
        body = SeqStmt()
        self._stack[-1].append(
            ForStmt(var, wrap(extent), body, unroll=unroll, pipeline_stages=pipeline_stages)
        )
        self._stack.append(body)
        try:
            yield var
        finally:
            self._stack.pop()

    @contextmanager
    def if_then(self, cond):
        """``if cond:`` block."""
        stmt = IfStmt(wrap(cond), SeqStmt(), None)
        self._stack[-1].append(stmt)
        self._stack.append(stmt.then_body)
        try:
            yield
        finally:
            self._stack.pop()

    @contextmanager
    def otherwise(self):
        """``else:`` block attached to the immediately preceding if."""
        seq = self._stack[-1]
        if not seq.body or not isinstance(seq.body[-1], IfStmt):
            raise IRError("otherwise() must directly follow an if_then() block")
        if_stmt = seq.body[-1]
        if if_stmt.else_body is not None:
            raise IRError("this if already has an else block")
        if_stmt.else_body = SeqStmt()
        self._stack.append(if_stmt.else_body)
        try:
            yield
        finally:
            self._stack.pop()

    @contextmanager
    def while_loop(self, cond):
        """``while cond:`` block."""
        stmt = WhileStmt(wrap(cond), SeqStmt())
        self._stack[-1].append(stmt)
        self._stack.append(stmt.body)
        try:
            yield
        finally:
            self._stack.pop()

    def break_(self) -> None:
        self._stack[-1].append(BreakStmt())

    def continue_(self) -> None:
        self._stack[-1].append(ContinueStmt())

    def assign(self, dtype: DataType | str, value, hint: str = "v") -> Var:
        """Bind a scalar expression to a fresh variable."""
        var = self._fresh_scalar(_as_dtype(dtype), hint=hint)
        self._stack[-1].append(AssignStmt(var, wrap(value)))
        return var

    # -- indexing -------------------------------------------------------------
    def block_indices(self) -> tuple[Var, ...]:
        """Bind the thread-block indices (one var per grid dimension)."""
        out_vars = tuple(self._fresh_scalar(int32, hint="b") for _ in self._grid)
        self._emit(insts.BlockIndices(out_vars))
        return out_vars

    # -- tensor creation ---------------------------------------------------------
    def view_global(
        self,
        ptr: Expr,
        dtype: DataType | str,
        shape: Sequence,
    ) -> TensorVar:
        """Create a global tensor view over a pointer parameter."""
        dtype = _as_dtype(dtype)
        if not ptr.dtype.is_pointer:
            raise TypeCheckError(f"view_global needs a pointer, got {ptr.dtype}")
        ttype = TensorType(MemoryScope.GLOBAL, dtype, shape)
        out = self._fresh_tensor(ttype, hint="g")
        self._emit(insts.ViewGlobal(ptr, out))
        return out

    def allocate_register(
        self,
        dtype: DataType | str,
        layout: Layout,
        init: Optional[float] = None,
    ) -> TensorVar:
        """Allocate a register tensor with the given layout."""
        dtype = _as_dtype(dtype)
        self._check_threads(layout)
        ttype = TensorType(MemoryScope.REGISTER, dtype, layout.shape, layout)
        out = self._fresh_tensor(ttype, hint="r")
        self._emit(insts.AllocateRegister(out, init=init))
        return out

    def allocate_shared(
        self,
        dtype: DataType | str,
        shape: Sequence[int],
    ) -> TensorVar:
        """Allocate a shared-memory tensor (row-major linear addressing)."""
        ttype = TensorType(MemoryScope.SHARED, _as_dtype(dtype), shape)
        out = self._fresh_tensor(ttype, hint="s")
        self._emit(insts.AllocateShared(out))
        return out

    def free_shared(self, tensor: TensorVar) -> None:
        """Release a shared tensor for reuse by the memory planner."""
        self._check_scope(tensor, MemoryScope.SHARED, "free_shared")
        self._emit(insts.FreeShared(tensor))

    def allocate_global(
        self,
        dtype: DataType | str,
        shape: Sequence[int],
    ) -> TensorVar:
        """Allocate a tensor in the runtime's global workspace."""
        ttype = TensorType(MemoryScope.GLOBAL, _as_dtype(dtype), shape)
        out = self._fresh_tensor(ttype, hint="w")
        self._emit(insts.AllocateGlobal(out))
        return out

    # -- transfer ----------------------------------------------------------------
    def load_global(
        self,
        src: TensorVar,
        layout: Layout,
        offset: Sequence,
        broadcast_dims: Sequence[int] = (),
        masked: bool = False,
    ) -> TensorVar:
        """Load a register tile from global memory.

        ``broadcast_dims`` lists tensor dimensions along which the whole
        tile reads the single row selected by the offset (e.g. a scale
        vector shared by every row of the tile).  ``masked`` makes
        out-of-bounds elements read as zero (boundary tiles).
        """
        self._check_scope(src, MemoryScope.GLOBAL, "load_global")
        self._check_threads(layout)
        self._check_offset(src, offset)
        ttype = TensorType(MemoryScope.REGISTER, src.ttype.dtype, layout.shape, layout)
        out = self._fresh_tensor(ttype, hint="r")
        self._emit(insts.LoadGlobal(src, offset, out, frozenset(broadcast_dims), masked))
        return out

    def load_shared(
        self,
        src: TensorVar,
        layout: Layout,
        offset: Sequence | None = None,
        broadcast_dims: Sequence[int] = (),
    ) -> TensorVar:
        """Load a register tile from shared memory."""
        self._check_scope(src, MemoryScope.SHARED, "load_shared")
        self._check_threads(layout)
        offset = offset if offset is not None else [0] * src.ttype.rank
        self._check_offset(src, offset)
        ttype = TensorType(MemoryScope.REGISTER, src.ttype.dtype, layout.shape, layout)
        out = self._fresh_tensor(ttype, hint="r")
        self._emit(insts.LoadShared(src, offset, out, frozenset(broadcast_dims)))
        return out

    def store_global(
        self, src: TensorVar, dst: TensorVar, offset: Sequence, masked: bool = False
    ) -> None:
        """Store a register tile into global memory (``masked`` drops
        out-of-bounds elements)."""
        self._check_scope(src, MemoryScope.REGISTER, "store_global")
        self._check_scope(dst, MemoryScope.GLOBAL, "store_global")
        self._check_offset(dst, offset)
        self._emit(insts.StoreGlobal(src, dst, offset, masked))

    def store_shared(self, src: TensorVar, dst: TensorVar, offset: Sequence | None = None) -> None:
        """Store a register tile into shared memory."""
        self._check_scope(src, MemoryScope.REGISTER, "store_shared")
        self._check_scope(dst, MemoryScope.SHARED, "store_shared")
        offset = offset if offset is not None else [0] * dst.ttype.rank
        self._check_offset(dst, offset)
        self._emit(insts.StoreShared(src, dst, offset))

    def copy_async(
        self,
        dst: TensorVar,
        src: TensorVar,
        src_offset: Sequence,
        dst_offset: Sequence | None = None,
        shape: Sequence[int] | None = None,
    ) -> None:
        """Asynchronous global→shared tile copy (``cp.async``).

        ``shape`` selects a sub-region (defaults to the destination shape);
        ``dst_offset`` places it inside the shared tensor — together these
        express multi-stage staging buffers for software pipelining.
        """
        self._check_scope(dst, MemoryScope.SHARED, "copy_async")
        self._check_scope(src, MemoryScope.GLOBAL, "copy_async")
        if dst.ttype.dtype != src.ttype.dtype:
            raise TypeCheckError(
                f"copy_async dtype mismatch: {src.ttype.dtype} -> {dst.ttype.dtype}"
            )
        self._check_offset(src, src_offset)
        if dst_offset is not None:
            self._check_offset(dst, dst_offset)
        self._emit(insts.CopyAsync(dst, src, src_offset, dst_offset, shape))

    def copy_async_commit_group(self) -> None:
        self._emit(insts.CopyAsyncCommitGroup())

    def copy_async_wait_group(self, n: int) -> None:
        self._emit(insts.CopyAsyncWaitGroup(n))

    # -- computation -----------------------------------------------------------
    def _binary(self, op: str, a: TensorVar, b, out: Optional[TensorVar] = None) -> TensorVar:
        """Elementwise op; pass ``out`` for the in-place variant of Table 1
        (required for loop-carried accumulators, since the DSL traces the
        loop body once)."""
        self._check_scope(a, MemoryScope.REGISTER, "elementwise op")
        if isinstance(b, TensorVar):
            self._check_scope(b, MemoryScope.REGISTER, "elementwise op")
            if a.ttype.layout != b.ttype.layout and not a.ttype.layout.equivalent(b.ttype.layout):
                raise TypeCheckError(
                    f"elementwise operands must share a layout: "
                    f"{a.ttype.layout.short_repr()} vs {b.ttype.layout.short_repr()}"
                )
        if out is None:
            ttype = TensorType(
                MemoryScope.REGISTER, a.ttype.dtype, a.ttype.shape, a.ttype.layout
            )
            out = self._fresh_tensor(ttype, hint="r")
        elif out.ttype.layout != a.ttype.layout or out.ttype.dtype != a.ttype.dtype:
            raise TypeCheckError("in-place output must match the input's type/layout")
        self._emit(insts.ElementwiseBinary(op, a, b, out))
        return out

    def add(self, a: TensorVar, b, out: Optional[TensorVar] = None) -> TensorVar:
        return self._binary("+", a, b, out)

    def sub(self, a: TensorVar, b, out: Optional[TensorVar] = None) -> TensorVar:
        return self._binary("-", a, b, out)

    def mul(self, a: TensorVar, b, out: Optional[TensorVar] = None) -> TensorVar:
        return self._binary("*", a, b, out)

    def div(self, a: TensorVar, b, out: Optional[TensorVar] = None) -> TensorVar:
        return self._binary("/", a, b, out)

    def mod(self, a: TensorVar, b, out: Optional[TensorVar] = None) -> TensorVar:
        return self._binary("%", a, b, out)

    def neg(self, a: TensorVar) -> TensorVar:
        self._check_scope(a, MemoryScope.REGISTER, "neg")
        ttype = TensorType(MemoryScope.REGISTER, a.ttype.dtype, a.ttype.shape, a.ttype.layout)
        out = self._fresh_tensor(ttype, hint="r")
        self._emit(insts.Neg(a, out))
        return out

    def cast(self, a: TensorVar, dtype: DataType | str) -> TensorVar:
        """Value-convert a register tensor to another dtype (layout kept)."""
        dtype = _as_dtype(dtype)
        self._check_scope(a, MemoryScope.REGISTER, "cast")
        ttype = TensorType(MemoryScope.REGISTER, dtype, a.ttype.shape, a.ttype.layout)
        out = self._fresh_tensor(ttype, hint="r")
        self._emit(insts.Cast(a, dtype, out))
        return out

    def reduce_sum(self, a: TensorVar, axis: int, layout: Layout) -> TensorVar:
        """Sum ``a`` over ``axis``; the result (extent 1 on that axis)
        uses ``layout``, which typically replicates the reduced values
        across the threads that contributed them."""
        self._check_scope(a, MemoryScope.REGISTER, "reduce_sum")
        if not 0 <= axis < a.ttype.rank:
            raise TypeCheckError(f"reduce axis {axis} out of range for rank {a.ttype.rank}")
        expected = tuple(
            1 if d == axis else e for d, e in enumerate(a.ttype.layout.shape)
        )
        if tuple(layout.shape) != expected:
            raise TypeCheckError(
                f"reduce_sum output layout shape {list(layout.shape)} must be "
                f"{list(expected)}"
            )
        self._check_threads(layout)
        ttype = TensorType(MemoryScope.REGISTER, a.ttype.dtype, layout.shape, layout)
        out = self._fresh_tensor(ttype, hint="r")
        self._emit(insts.ReduceSum(a, axis, out))
        return out

    def lookup(self, codes: TensorVar, table: TensorVar, dtype: DataType | str | None = None) -> TensorVar:
        """Codebook expansion: ``out[i] = table[codes[i]]`` (LCQ-style
        quantization).  The output keeps the codes' layout and takes the
        table's element type unless ``dtype`` overrides it."""
        self._check_scope(codes, MemoryScope.REGISTER, "lookup")
        if not codes.ttype.dtype.is_integer or codes.ttype.dtype.is_signed:
            raise TypeCheckError(
                f"lookup codes must be unsigned integers, got {codes.ttype.dtype}"
            )
        if table.ttype.rank != 1:
            raise TypeCheckError("lookup table must be one-dimensional")
        table_extent = table.ttype.static_shape()
        if table_extent is not None and table_extent[0] < (1 << codes.ttype.dtype.nbits):
            raise TypeCheckError(
                f"table of {table_extent[0]} entries cannot cover "
                f"{codes.ttype.dtype} codes"
            )
        out_dtype = _as_dtype(dtype) if dtype is not None else table.ttype.dtype
        ttype = TensorType(
            MemoryScope.REGISTER, out_dtype, codes.ttype.shape, codes.ttype.layout
        )
        out = self._fresh_tensor(ttype, hint="r")
        self._emit(insts.Lookup(codes, table, out))
        return out

    def view(self, a: TensorVar, dtype: DataType | str, layout: Layout) -> TensorVar:
        """Bit-reinterpret a register tensor (paper Figure 2(c)).

        Requires equal thread counts and equal bits per thread.
        """
        dtype = _as_dtype(dtype)
        self._check_scope(a, MemoryScope.REGISTER, "view")
        src_layout = a.ttype.layout
        if layout.num_threads != src_layout.num_threads:
            raise TypeCheckError(
                f"view: thread count mismatch ({src_layout.num_threads} -> "
                f"{layout.num_threads})"
            )
        src_bits = src_layout.local_size * a.ttype.dtype.nbits
        dst_bits = layout.local_size * dtype.nbits
        if src_bits != dst_bits:
            raise TypeCheckError(
                f"view: bits-per-thread mismatch ({src_bits} -> {dst_bits}); "
                f"{src_layout.local_size} x {a.ttype.dtype} vs "
                f"{layout.local_size} x {dtype}"
            )
        ttype = TensorType(MemoryScope.REGISTER, dtype, layout.shape, layout)
        out = self._fresh_tensor(ttype, hint="r")
        self._emit(insts.View(a, out))
        return out

    def dot(
        self,
        a: TensorVar,
        b: TensorVar,
        c: TensorVar,
        out: Optional[TensorVar] = None,
    ) -> TensorVar:
        """Matrix-multiply-accumulate ``out = dot(a, b) + c``."""
        for operand in (a, b, c):
            self._check_scope(operand, MemoryScope.REGISTER, "dot")
        m, ka = a.ttype.layout.shape
        kb, n = b.ttype.layout.shape
        mc, nc = c.ttype.layout.shape
        if ka != kb or (m, n) != (mc, nc):
            raise TypeCheckError(
                f"dot shape mismatch: a={m}x{ka}, b={kb}x{n}, c={mc}x{nc}"
            )
        if out is None:
            ttype = TensorType(
                MemoryScope.REGISTER, c.ttype.dtype, c.ttype.shape, c.ttype.layout
            )
            out = self._fresh_tensor(ttype, hint="acc")
        self._emit(insts.Dot(a, b, c, out))
        return out

    # -- misc -------------------------------------------------------------------
    def print_tensor(self, tensor: TensorVar, message: str = "") -> None:
        self._emit(insts.PrintTensor(tensor, message))

    def synchronize(self) -> None:
        self._emit(insts.Synchronize())

    def exit(self) -> None:
        self._emit(insts.Exit())

    # -- checks ------------------------------------------------------------------
    def _check_scope(self, tensor: TensorVar, scope: MemoryScope, what: str) -> None:
        if not isinstance(tensor, TensorVar):
            raise TypeCheckError(f"{what}: expected a tensor variable, got {tensor!r}")
        if tensor.ttype.scope != scope:
            raise TypeCheckError(
                f"{what}: expected a {scope} tensor, got {tensor.ttype.scope}"
            )

    def _check_threads(self, layout: Layout) -> None:
        if layout.num_threads > self._num_threads:
            raise TypeCheckError(
                f"layout uses {layout.num_threads} threads but the block has "
                f"{self._num_threads}"
            )

    def _check_offset(self, tensor: TensorVar, offset: Sequence) -> None:
        if len(offset) != tensor.ttype.rank:
            raise TypeCheckError(
                f"offset rank {len(offset)} does not match tensor rank "
                f"{tensor.ttype.rank}"
            )
