"""The algebraic layout system (paper Sections 4 and 5).

A *layout* describes how the elements of a register tile are distributed
across the threads of a thread block: it is a bijection

    ``f(t, i) -> logical index``

from (thread index, local element index) pairs onto the tile's logical
index space.

Layouts are built from two parameterized primitives — :func:`local` and
:func:`spatial` (plus their column-major variants) — and combined with the
Kronecker product (written ``a * b`` or, fluently, ``a.spatial(...)``).
Internally every layout uses the *unified representation* of Section 5:

    - ``shape``: the tile shape,
    - ``mode_shape``: the extents of the sub-dimensions ("modes") each
      dimension is split into,
    - ``spatial_modes``: mode indices assigned to threads, most-significant
      first,
    - ``local_modes``: mode indices assigned to per-thread storage,
      most-significant first.

This representation is closed under the Kronecker product, which is what
makes layout algebra compositional.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import LayoutError
from repro.utils.indexmath import prod, ravel_index, unravel_index


class Layout:
    """A distributed register-tile layout in unified representation."""

    def __init__(
        self,
        shape: Sequence[int],
        mode_shape: Sequence[int],
        spatial_modes: Sequence[int],
        local_modes: Sequence[int],
        replicated_modes: Sequence[int] = (),
    ) -> None:
        self.shape: tuple[int, ...] = tuple(int(s) for s in shape)
        self.mode_shape: tuple[int, ...] = tuple(int(s) for s in mode_shape)
        self.spatial_modes: tuple[int, ...] = tuple(int(m) for m in spatial_modes)
        self.local_modes: tuple[int, ...] = tuple(int(m) for m in local_modes)
        #: Modes whose index bits select a *replica* rather than a logical
        #: position: every value of a replicated mode maps to the same
        #: element.  Used for multi-warp operand sharing.
        self.replicated_modes: frozenset[int] = frozenset(int(m) for m in replicated_modes)
        self._dim_modes = self._group_modes()
        self._validate()

    # -- construction helpers ---------------------------------------------
    def _group_modes(self) -> tuple[tuple[int, ...], ...]:
        """Assign consecutive modes to dimensions so that the extents of each
        dimension's non-replicated modes multiply to the dimension extent.
        Replicated modes contribute factor 1 and attach to the dimension
        being factored when they are encountered."""
        groups: list[tuple[int, ...]] = []
        mode = 0
        n_modes = len(self.mode_shape)
        for dim, extent in enumerate(self.shape):
            group: list[int] = []
            acc = 1
            while acc < extent or (
                mode < n_modes and mode in self.replicated_modes
            ):
                if mode >= n_modes:
                    raise LayoutError(
                        f"mode_shape {list(self.mode_shape)} does not factor shape "
                        f"{list(self.shape)} at dimension {dim}"
                    )
                group.append(mode)
                if mode not in self.replicated_modes:
                    acc *= self.mode_shape[mode]
                mode += 1
            if acc != extent:
                raise LayoutError(
                    f"modes {group} of extents "
                    f"{[self.mode_shape[g] for g in group]} overshoot dimension "
                    f"{dim} of extent {extent}"
                )
            groups.append(group)
        # Trailing replicated modes attach to the last dimension.
        while mode < n_modes and mode in self.replicated_modes:
            groups[-1].append(mode)
            mode += 1
        if mode != n_modes:
            raise LayoutError(
                f"mode_shape {list(self.mode_shape)} has {n_modes - mode} "
                f"unused trailing modes for shape {list(self.shape)}"
            )
        return tuple(tuple(g) for g in groups)

    def _validate(self) -> None:
        n_modes = len(self.mode_shape)
        seen = sorted(self.spatial_modes + self.local_modes)
        if seen != list(range(n_modes)):
            raise LayoutError(
                f"spatial_modes {list(self.spatial_modes)} + local_modes "
                f"{list(self.local_modes)} must partition modes 0..{n_modes - 1}"
            )
        if any(extent <= 0 for extent in self.shape):
            raise LayoutError(f"shape must be positive, got {list(self.shape)}")
        if not self.replicated_modes.issubset(self.spatial_modes):
            raise LayoutError("replicated modes must be spatial modes")

    # -- basic properties ---------------------------------------------------
    @property
    def rank(self) -> int:
        """Number of tile dimensions."""
        return len(self.shape)

    @property
    def num_threads(self) -> int:
        """Number of threads the tile is distributed over."""
        return prod(self.mode_shape[m] for m in self.spatial_modes)

    @property
    def local_size(self) -> int:
        """Number of elements stored by each thread."""
        return prod(self.mode_shape[m] for m in self.local_modes)

    @property
    def size(self) -> int:
        """Total number of tile elements."""
        return prod(self.shape)

    @property
    def spatial_shape(self) -> tuple[int, ...]:
        return tuple(self.mode_shape[m] for m in self.spatial_modes)

    @property
    def local_shape(self) -> tuple[int, ...]:
        return tuple(self.mode_shape[m] for m in self.local_modes)

    # -- the layout function ------------------------------------------------
    def map(self, thread: int, local: int) -> tuple[int, ...]:
        """Forward layout function ``f(t, i) -> logical index``."""
        return tuple(int(v) for v in self.map_batch(np.asarray(thread), np.asarray(local)))

    def map_batch(self, threads, locals_):
        """Vectorized forward map; inputs broadcast together.

        Returns a list of ``rank`` arrays, one per logical dimension.
        """
        threads = np.asarray(threads)
        locals_ = np.asarray(locals_)
        mode_index: list = [None] * len(self.mode_shape)
        for mode, value in zip(self.spatial_modes, unravel_index(threads, self.spatial_shape)):
            mode_index[mode] = value
        for mode, value in zip(self.local_modes, unravel_index(locals_, self.local_shape)):
            mode_index[mode] = value
        out = []
        for group in self._dim_modes:
            logical = [m for m in group if m not in self.replicated_modes]
            out.append(
                ravel_index(
                    [mode_index[m] for m in logical],
                    [self.mode_shape[m] for m in logical],
                )
                if logical
                else np.zeros_like(threads)
            )
        return out

    def locate(self, index: Sequence[int]) -> tuple[int, int]:
        """Inverse layout function: logical index -> ``(thread, local)``.

        This is the split-distribute-merge procedure of paper Figure 6.
        """
        if len(index) != self.rank:
            raise LayoutError(f"index {list(index)} has wrong rank for shape {list(self.shape)}")
        t, i = self.locate_batch([np.asarray(v) for v in index])
        return int(t), int(i)

    def locate_batch(self, index: Sequence):
        """Vectorized inverse map; ``index`` is one array per dimension."""
        mode_index: list = [None] * len(self.mode_shape)
        for dim, group in enumerate(self._dim_modes):
            logical = [m for m in group if m not in self.replicated_modes]
            parts = unravel_index(np.asarray(index[dim]), [self.mode_shape[m] for m in logical])
            for mode, value in zip(logical, parts):
                mode_index[mode] = value
            for mode in group:
                if mode in self.replicated_modes:
                    mode_index[mode] = np.zeros_like(np.asarray(index[dim]))
        zero = np.zeros_like(np.asarray(index[0]) if self.rank else 0)
        thread = ravel_index(
            [mode_index[m] if mode_index[m] is not None else zero for m in self.spatial_modes],
            self.spatial_shape,
        ) if self.spatial_modes else zero
        local = ravel_index(
            [mode_index[m] if mode_index[m] is not None else zero for m in self.local_modes],
            self.local_shape,
        ) if self.local_modes else zero
        return thread, local

    # -- algebra --------------------------------------------------------------
    def compose(self, other: "Layout") -> "Layout":
        """Kronecker product ``self ⊗ other`` (paper Section 4.2).

        ``h(t, i) = f(t // Tg, i // Ng) * Sg + g(t % Tg, i % Ng)``.
        """
        if self.rank != other.rank:
            raise LayoutError(
                f"cannot compose layouts of rank {self.rank} and {other.rank}"
            )
        shape = tuple(a * b for a, b in zip(self.shape, other.shape))
        # Interleave per-dimension modes: self's modes (more significant)
        # followed by other's modes, renumbering into the merged mode list.
        new_extents: list[int] = []
        self_remap: dict[int, int] = {}
        other_remap: dict[int, int] = {}
        for dim in range(self.rank):
            for mode in self._dim_modes[dim]:
                self_remap[mode] = len(new_extents)
                new_extents.append(self.mode_shape[mode])
            for mode in other._dim_modes[dim]:
                other_remap[mode] = len(new_extents)
                new_extents.append(other.mode_shape[mode])
        spatial = [self_remap[m] for m in self.spatial_modes] + [
            other_remap[m] for m in other.spatial_modes
        ]
        local = [self_remap[m] for m in self.local_modes] + [
            other_remap[m] for m in other.local_modes
        ]
        replicated = [self_remap[m] for m in self.replicated_modes] + [
            other_remap[m] for m in other.replicated_modes
        ]
        return Layout(shape, new_extents, spatial, local, replicated)

    def __mul__(self, other: "Layout") -> "Layout":
        return self.compose(other)

    def divide(self, divisor: "Layout") -> "Layout":
        """Right division: find ``f`` with ``f ⊗ divisor == self``.

        Works structurally on canonicalized layouts; raises
        :class:`LayoutError` when the divisor is not a structural suffix.
        """
        from repro.layout.ops import divide as _divide

        return _divide(self, divisor)

    def is_divisible_by(self, divisor: "Layout") -> bool:
        """Functional divisibility test (used by instruction selection)."""
        from repro.layout.ops import is_divisible

        return is_divisible(self, divisor)

    def canonical(self) -> "Layout":
        """Drop unit modes and merge mergeable adjacent modes."""
        from repro.layout.ops import canonicalize

        return canonicalize(self)

    # -- fluent composition helpers (paper surface syntax) --------------------
    def local(self, *extents: int) -> "Layout":
        """Compose with a row-major local primitive on the right."""
        return self.compose(local(*extents))

    def spatial(self, *extents: int) -> "Layout":
        """Compose with a row-major spatial primitive on the right."""
        return self.compose(spatial(*extents))

    def column_local(self, *extents: int) -> "Layout":
        """Compose with a column-major local primitive on the right."""
        return self.compose(column_local(*extents))

    def column_spatial(self, *extents: int) -> "Layout":
        """Compose with a column-major spatial primitive on the right."""
        return self.compose(column_spatial(*extents))

    # `repeat` is the Graphene/CUTLASS-flavoured alias the paper uses in
    # Section 8 ("spatial(8, 4).repeat(1, 4)").
    repeat = local
    column_repeat = column_local

    def replicate(self, *extents: int) -> "Layout":
        """Compose with a replication primitive on the right."""
        return self.compose(replicate(*extents, rank=self.rank))

    # -- comparisons and views -------------------------------------------------
    def table(self) -> np.ndarray:
        """Dense mapping table of shape (num_threads, local_size, rank)."""
        t = np.repeat(np.arange(self.num_threads), self.local_size)
        i = np.tile(np.arange(self.local_size), self.num_threads)
        cols = self.map_batch(t, i)
        return np.stack([np.broadcast_to(c, t.shape) for c in cols], axis=-1).reshape(
            self.num_threads, self.local_size, self.rank
        )

    def equivalent(self, other: "Layout") -> bool:
        """Functional equality: same shape and identical mapping tables."""
        return (
            self.shape == other.shape
            and self.num_threads == other.num_threads
            and self.local_size == other.local_size
            and bool(np.array_equal(self.table(), other.table()))
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return (
            self.shape == other.shape
            and self.mode_shape == other.mode_shape
            and self.spatial_modes == other.spatial_modes
            and self.local_modes == other.local_modes
            and self.replicated_modes == other.replicated_modes
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.shape,
                self.mode_shape,
                self.spatial_modes,
                self.local_modes,
                self.replicated_modes,
            )
        )

    def is_bijective(self) -> bool:
        """True when (t, i) pairs cover every logical index exactly once."""
        if self.num_threads * self.local_size != self.size:
            return False
        table = self.table().reshape(-1, self.rank)
        linear = np.ravel_multi_index(tuple(table.T), self.shape)
        return bool(np.unique(linear).size == self.size)

    def threads_and_locals(self) -> Iterator[tuple[int, int]]:
        """Iterate all (thread, local) pairs in row-major order."""
        for t in range(self.num_threads):
            for i in range(self.local_size):
                yield t, i

    def __repr__(self) -> str:
        repl = (
            f", replicated_modes={sorted(self.replicated_modes)}"
            if self.replicated_modes
            else ""
        )
        return (
            f"Layout(shape={list(self.shape)}, mode_shape={list(self.mode_shape)}, "
            f"spatial_modes={list(self.spatial_modes)}, local_modes={list(self.local_modes)}"
            f"{repl})"
        )

    def short_repr(self) -> str:
        """A compact display, e.g. ``{16x8, threads=32, locals=4}``."""
        dims = "x".join(str(s) for s in self.shape)
        return f"{{{dims}, threads={self.num_threads}, locals={self.local_size}}}"


def _primitive(extents: Sequence[int], kind: str, column: bool) -> Layout:
    extents = tuple(int(e) for e in extents)
    if not extents:
        raise LayoutError("a primitive layout needs at least one dimension")
    if any(e <= 0 for e in extents):
        raise LayoutError(f"primitive extents must be positive, got {list(extents)}")
    modes = list(range(len(extents)))
    order = list(reversed(modes)) if column else modes
    # Drop unit dims from the assignment order — they carry no index bits —
    # while keeping them in the shape/mode structure for rank bookkeeping.
    order = [m for m in order if extents[m] > 1]
    spatial_modes = order if kind == "spatial" else []
    local_modes = order if kind == "local" else []
    # Unit modes must still be assigned somewhere to partition the mode set.
    mode_shape = [e for e in extents if e > 1]
    remap = {}
    next_id = 0
    for m in modes:
        if extents[m] > 1:
            remap[m] = next_id
            next_id += 1
    spatial_modes = [remap[m] for m in spatial_modes]
    local_modes = [remap[m] for m in local_modes]
    shape = extents
    return Layout(shape, mode_shape, spatial_modes, local_modes)


def local(*extents: int) -> Layout:
    """Row-major local layout: all elements in one thread (paper Fig. 4)."""
    return _primitive(extents, "local", column=False)


def spatial(*extents: int) -> Layout:
    """Row-major spatial layout: one element per thread (paper Fig. 4)."""
    return _primitive(extents, "spatial", column=False)


def column_local(*extents: int) -> Layout:
    """Column-major local layout (first dimension varies fastest)."""
    return _primitive(extents, "local", column=True)


def column_spatial(*extents: int) -> Layout:
    """Column-major spatial layout (first dimension varies fastest)."""
    return _primitive(extents, "spatial", column=True)


# Aliases matching the paper's occasional naming.
repeat = local
column_repeat = column_local


def replicate(*extents: int, rank: int | None = None) -> Layout:
    """A replication layout: ``prod(extents)`` threads all hold the *same*
    (single) element of a unit-shaped tile.

    Composing ``replicate(n)`` into a layout makes ``n`` thread groups share
    one operand copy — how multi-warp kernels share A/B fragments across
    warps.  ``rank`` pads the unit shape so the primitive composes with a
    layout of that rank.
    """
    extents = tuple(int(e) for e in extents)
    if any(e <= 0 for e in extents):
        raise LayoutError(f"replicate extents must be positive, got {list(extents)}")
    rank = rank if rank is not None else len(extents)
    shape = (1,) * rank
    mode_shape = [e for e in extents if e > 1]
    modes = list(range(len(mode_shape)))
    return Layout(shape, mode_shape, spatial_modes=modes, local_modes=[], replicated_modes=modes)


def flat_local(size: int) -> Layout:
    """1-D local layout of the given size."""
    return local(size)


def flat_spatial(size: int) -> Layout:
    """1-D spatial layout of the given size."""
    return spatial(size)


def row_major_register_layout(shape: Sequence[int], num_threads: int) -> Layout:
    """A simple default layout: distribute the last dimensions over threads.

    Used when the programmer does not specify a layout for
    ``AllocateRegister``; it splits the flattened tile row-major into
    ``num_threads`` spatial slots, each holding a contiguous local run.
    """
    total = prod(shape)
    if total % num_threads != 0:
        raise LayoutError(
            f"cannot evenly distribute {total} elements over {num_threads} threads"
        )
    per_thread = total // num_threads
    flat = spatial(num_threads).local(per_thread)
    if len(shape) == 1:
        return flat
    # Fold the flat distribution back onto the requested shape when the
    # factorization is clean; otherwise distribute over the leading dims.
    lead = prod(shape[:-1])
    last = shape[-1]
    if per_thread <= last and last % per_thread == 0 and lead * (last // per_thread) == num_threads:
        ones = [1] * (len(shape) - 1)
        return spatial(*shape[:-1], last // per_thread).local(*ones, per_thread)
    raise LayoutError(
        f"no default layout for shape {list(shape)} over {num_threads} threads; "
        "specify one explicitly"
    )
