"""Layouts mandated by tensor-core (mma) and ldmatrix instructions.

These are the concrete layouts from the paper:

- Figure 3 / Section 4.2: operand A of ``mma.m16n8k8`` is
  ``local(2, 1).spatial(8, 4).local(1, 2)``.
- Figure 2: the FP16×INT6 matmul uses ``mma.m16n8k16`` with
  A ``column_local(2, 2).spatial(8, 4).local(1, 2)``,
  B ``local(2, 1).column_spatial(4, 8).local(2, 1)`` and accumulator
  C/D ``local(2, 1).spatial(8, 4).local(1, 2)``.
- Section 8: ``ldmatrix`` accepts register layouts divisible by
  ``spatial(8, 4).repeat(1, 4)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LayoutError
from repro.layout.core import Layout, column_local, column_spatial, local, spatial
from repro.layout.ops import is_divisible

WARP_SIZE = 32


@dataclass(frozen=True)
class MmaConfig:
    """Shape and operand layouts of one tensor-core mma instruction."""

    name: str
    m: int
    n: int
    k: int
    a_layout: Layout
    b_layout: Layout
    c_layout: Layout

    def __post_init__(self) -> None:
        if self.a_layout.shape != (self.m, self.k):
            raise LayoutError(f"{self.name}: A layout shape mismatch")
        if self.b_layout.shape != (self.k, self.n):
            raise LayoutError(f"{self.name}: B layout shape mismatch")
        if self.c_layout.shape != (self.m, self.n):
            raise LayoutError(f"{self.name}: C layout shape mismatch")
        for operand in (self.a_layout, self.b_layout, self.c_layout):
            if operand.num_threads != WARP_SIZE:
                raise LayoutError(f"{self.name}: operands must span one warp")


def mma_m16n8k8() -> MmaConfig:
    """``mma.m16n8k8.f32.f16.f16.f32`` (paper Figure 3)."""
    return MmaConfig(
        name="mma.m16n8k8",
        m=16,
        n=8,
        k=8,
        a_layout=local(2, 1).spatial(8, 4).local(1, 2),
        b_layout=column_spatial(4, 8).column_local(2, 1),
        c_layout=local(2, 1).spatial(8, 4).local(1, 2),
    )


def mma_m16n8k16() -> MmaConfig:
    """``mma.m16n8k16.f32.f16.f16.f32`` (paper Figure 2)."""
    return MmaConfig(
        name="mma.m16n8k16",
        m=16,
        n=8,
        k=16,
        a_layout=column_local(2, 2).spatial(8, 4).local(1, 2),
        b_layout=local(2, 1).column_spatial(4, 8).local(2, 1),
        c_layout=local(2, 1).spatial(8, 4).local(1, 2),
    )


MMA_CONFIGS: dict[str, MmaConfig] = {
    cfg.name: cfg for cfg in (mma_m16n8k8(), mma_m16n8k16())
}


def ldmatrix_unit_layout() -> Layout:
    """The divisibility unit for ``ldmatrix`` (Section 8 step 2)."""
    return spatial(8, 4).repeat(1, 4)


def ldmatrix_m8n8_layout() -> Layout:
    """One 8x8 ``ldmatrix`` fragment: 32 threads, two b16 lanes each."""
    return spatial(8, 4).repeat(1, 2)


def supports_ldmatrix(layout: Layout) -> bool:
    """True when the register layout can be filled with ``ldmatrix``.

    A layout qualifies when it is divisible by the paired unit of
    Section 8 (``spatial(8, 4).repeat(1, 4)``) or by a single 8x8
    fragment (``spatial(8, 4).repeat(1, 2)``), which covers the mma
    operand layouts loaded with ``ldmatrix.x2``/``.x4``.
    """
    if layout.rank != 2:
        return False
    return is_divisible(layout, ldmatrix_unit_layout()) or is_divisible(
        layout, ldmatrix_m8n8_layout()
    )


def dot_operand_layouts(bm: int, bn: int, bk: int, mma: MmaConfig | None = None) -> tuple[Layout, Layout, Layout]:
    """Operand layouts for a (bm, bn, bk) tile built by replicating one mma.

    The tile is covered by a grid of mma instructions; the register layout
    is ``local(grid) ⊗ mma_operand``, the standard warp-tiling construction.
    """
    mma = mma or mma_m16n8k16()
    if bm % mma.m or bn % mma.n or bk % mma.k:
        raise LayoutError(
            f"tile ({bm}, {bn}, {bk}) is not a multiple of {mma.name} "
            f"({mma.m}, {mma.n}, {mma.k})"
        )
    rm, rn, rk = bm // mma.m, bn // mma.n, bk // mma.k
    a = local(rm, rk).compose(mma.a_layout)
    b = local(rk, rn).compose(mma.b_layout)
    c = local(rm, rn).compose(mma.c_layout)
    return a, b, c
