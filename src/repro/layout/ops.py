"""Algebraic operations on layouts: canonicalization and division.

Division is the inverse of the Kronecker product: ``divide(h, g)`` returns
``f`` such that ``f ⊗ g == h``.  The paper uses division to decide when a
register layout is compatible with a hardware instruction (e.g. ``ldmatrix``
requires the layout to be divisible by ``spatial(8, 4).repeat(1, 4)``,
Section 8 step 2).

Two flavours are provided:

- :func:`divide` — structural division.  It aligns mode boundaries by
  splitting modes, then peels the divisor's modes off the least-significant
  end of the dividend.  It returns the quotient as a :class:`Layout`.
- :func:`is_divisible` — functional divisibility.  It checks whether *any*
  quotient exists by verifying the Kronecker identity pointwise.  This is
  the complete test used by instruction selection.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LayoutError
from repro.layout.core import Layout
from repro.utils.indexmath import prod


def canonicalize(layout: Layout) -> Layout:
    """Drop unit modes and merge mergeable adjacent modes.

    Two modes merge when they are adjacent (most-significant first) both in
    their dimension's factorization and in the same spatial/local
    assignment list; the merged mode has the product extent.  The result is
    functionally identical to the input.
    """
    mode_shape = list(layout.mode_shape)
    spatial = list(layout.spatial_modes)
    local = list(layout.local_modes)
    replicated = set(layout.replicated_modes)
    dim_groups = [list(g) for g in layout._dim_modes]

    # Step 1: drop unit modes.
    keep = [m for m, e in enumerate(mode_shape) if e > 1]
    remap = {m: k for k, m in enumerate(keep)}
    mode_shape = [mode_shape[m] for m in keep]
    spatial = [remap[m] for m in spatial if m in remap]
    local = [remap[m] for m in local if m in remap]
    replicated = {remap[m] for m in replicated if m in remap}
    dim_groups = [[remap[m] for m in g if m in remap] for g in dim_groups]

    # Step 2: merge adjacent modes until fixpoint (same assignment list,
    # same replication flag).
    def try_merge() -> bool:
        for group in dim_groups:
            for a, b in zip(group, group[1:]):
                if (a in replicated) != (b in replicated):
                    continue
                for lst in (spatial, local):
                    if a in lst and b in lst:
                        pa, pb = lst.index(a), lst.index(b)
                        if pb == pa + 1:
                            _merge_modes(a, b)
                            return True
        return False

    def _merge_modes(a: int, b: int) -> None:
        mode_shape[a] *= mode_shape[b]
        del mode_shape[b]

        def fix(lst: list[int]) -> list[int]:
            out = []
            for m in lst:
                if m == b:
                    continue
                out.append(m - 1 if m > b else m)
            return out

        spatial[:] = fix(spatial)
        local[:] = fix(local)
        replicated_fixed = {m - 1 if m > b else m for m in replicated if m != b}
        replicated.clear()
        replicated.update(replicated_fixed)
        for g in dim_groups:
            g[:] = fix(g)

    while try_merge():
        pass

    flat_modes = [m for g in dim_groups for m in g]
    # Renumber modes into dimension order (required by the constructor).
    order = {m: k for k, m in enumerate(flat_modes)}
    return Layout(
        layout.shape,
        [mode_shape[m] for m in flat_modes],
        [order[m] for m in spatial],
        [order[m] for m in local],
        [order[m] for m in replicated],
    )


def _split_align(layout: Layout, divisor: Layout) -> tuple[list[int], list[int], list[int], list[list[int]], dict[int, int]]:
    """Split ``layout``'s modes so the divisor's per-dim modes align with a
    least-significant suffix.  Returns the adjusted mode structure and the
    mapping from divisor modes to layout modes."""
    mode_shape = list(layout.mode_shape)
    spatial = list(layout.spatial_modes)
    local = list(layout.local_modes)
    dim_groups = [list(g) for g in layout._dim_modes]
    match: dict[int, int] = {}  # divisor mode -> layout mode

    def split_mode(mode: int, lo_extent: int) -> int:
        """Split ``mode`` into (hi, lo=lo_extent); returns the lo mode id."""
        hi_extent = mode_shape[mode] // lo_extent
        mode_shape[mode] = hi_extent
        lo = len(mode_shape)
        mode_shape.append(lo_extent)
        for lst in (spatial, local):
            if mode in lst:
                lst.insert(lst.index(mode) + 1, lo)
        for g in dim_groups:
            if mode in g:
                g.insert(g.index(mode) + 1, lo)
        return lo

    for dim in range(layout.rank):
        gmodes = list(divisor._dim_modes[dim])
        consumed = 0  # how many layout modes at the tail are matched
        for gmode in reversed(gmodes):
            need = divisor.mode_shape[gmode]
            if need == 1:
                continue
            group = dim_groups[dim]
            pos = len(group) - 1 - consumed
            if pos < 0:
                raise LayoutError(f"dimension {dim}: divisor has more modes than dividend")
            hmode = group[pos]
            have = mode_shape[hmode]
            if have == need:
                match[gmode] = hmode
            elif have % need == 0 and have > need:
                match[gmode] = split_mode(hmode, need)
            else:
                raise LayoutError(
                    f"dimension {dim}: cannot align divisor mode extent {need} "
                    f"with dividend mode extent {have}"
                )
            consumed += 1
    return mode_shape, spatial, local, dim_groups, match


def divide(layout: Layout, divisor: Layout) -> Layout:
    """Structural right division: return ``f`` with ``f ⊗ divisor == layout``.

    Raises :class:`LayoutError` when the division does not exist
    structurally.  The result is verified functionally before returning.
    """
    if layout.rank != divisor.rank:
        raise LayoutError(
            f"rank mismatch: {layout.rank} vs {divisor.rank} in layout division"
        )
    if layout.replicated_modes or divisor.replicated_modes:
        raise LayoutError(
            "structural division of replicated layouts is not supported; "
            "use is_divisible for a functional check"
        )
    for dim in range(layout.rank):
        if layout.shape[dim] % divisor.shape[dim] != 0:
            raise LayoutError(
                f"shape {list(layout.shape)} not divisible by {list(divisor.shape)}"
            )
    layout = canonicalize(layout)
    divisor_c = canonicalize(divisor)
    mode_shape, spatial, local, dim_groups, match = _split_align(layout, divisor_c)

    matched = set(match.values())
    # The matched modes must occupy the least-significant tail of the
    # spatial and local lists, in the divisor's own order.
    want_spatial_tail = [match[m] for m in divisor_c.spatial_modes]
    want_local_tail = [match[m] for m in divisor_c.local_modes]
    if spatial[len(spatial) - len(want_spatial_tail):] != want_spatial_tail:
        raise LayoutError("divisor spatial modes are not a least-significant suffix")
    if local[len(local) - len(want_local_tail):] != want_local_tail:
        raise LayoutError("divisor local modes are not a least-significant suffix")

    quot_shape = [a // b for a, b in zip(layout.shape, divisor_c.shape)]
    quot_groups = [[m for m in g if m not in matched] for g in dim_groups]
    flat = [m for g in quot_groups for m in g]
    order = {m: k for k, m in enumerate(flat)}
    quotient = Layout(
        quot_shape,
        [mode_shape[m] for m in flat],
        [order[m] for m in spatial if m not in matched],
        [order[m] for m in local if m not in matched],
    )
    if not quotient.compose(divisor).equivalent(layout):
        raise LayoutError("structural division produced an inconsistent quotient")
    return quotient


def is_divisible(layout: Layout, divisor: Layout) -> bool:
    """Functional divisibility: does any ``f`` with ``f ⊗ divisor == layout``
    exist?  Complete (unlike structural division) and used by instruction
    selection to test e.g. ``ldmatrix`` compatibility."""
    if layout.rank != divisor.rank:
        return False
    tg, ng = divisor.num_threads, divisor.local_size
    if tg == 0 or ng == 0:
        return False
    if layout.num_threads % tg or layout.local_size % ng:
        return False
    if any(a % b for a, b in zip(layout.shape, divisor.shape)):
        return False
    t = np.repeat(np.arange(layout.num_threads), layout.local_size)
    i = np.tile(np.arange(layout.local_size), layout.num_threads)
    h_cols = layout.map_batch(t, i)
    g_cols = divisor.map_batch(t % tg, i % ng)
    # Candidate quotient values read off the aligned sub-grid.
    hi_cols = layout.map_batch((t // tg) * tg, (i // ng) * ng)
    sg = divisor.shape
    for dim in range(layout.rank):
        recomposed = (np.asarray(hi_cols[dim]) // sg[dim]) * sg[dim] + np.asarray(g_cols[dim])
        if not np.array_equal(np.broadcast_to(recomposed, t.shape), np.broadcast_to(h_cols[dim], t.shape)):
            return False
    return True


def left_divide(layout: Layout, divisor: Layout) -> Layout:
    """Left division: return ``f`` with ``divisor ⊗ f == layout``."""
    if layout.rank != divisor.rank:
        raise LayoutError("rank mismatch in left division")
    if layout.replicated_modes or divisor.replicated_modes:
        raise LayoutError(
            "structural division of replicated layouts is not supported; "
            "use is_divisible for a functional check"
        )
    quot_shape = []
    for dim in range(layout.rank):
        if layout.shape[dim] % divisor.shape[dim] != 0:
            raise LayoutError("shape not divisible in left division")
        quot_shape.append(layout.shape[dim] // divisor.shape[dim])
    # Mirror of divide(): peel divisor modes off the most-significant end.
    layout_c = canonicalize(layout)
    divisor_c = canonicalize(divisor)
    mode_shape = list(layout_c.mode_shape)
    spatial = list(layout_c.spatial_modes)
    local = list(layout_c.local_modes)
    dim_groups = [list(g) for g in layout_c._dim_modes]
    match: dict[int, int] = {}

    def split_mode(mode: int, hi_extent: int) -> int:
        lo_extent = mode_shape[mode] // hi_extent
        mode_shape[mode] = lo_extent
        hi = len(mode_shape)
        mode_shape.append(hi_extent)
        for lst in (spatial, local):
            if mode in lst:
                lst.insert(lst.index(mode), hi)
        for g in dim_groups:
            if mode in g:
                g.insert(g.index(mode), hi)
        return hi

    for dim in range(layout_c.rank):
        consumed = 0
        for gmode in divisor_c._dim_modes[dim]:
            need = divisor_c.mode_shape[gmode]
            if need == 1:
                continue
            group = dim_groups[dim]
            if consumed >= len(group):
                raise LayoutError("divisor has more modes than dividend (left division)")
            hmode = group[consumed]
            have = mode_shape[hmode]
            if have == need:
                match[gmode] = hmode
            elif have % need == 0 and have > need:
                match[gmode] = split_mode(hmode, need)
                # The freshly created hi mode sits at position `consumed`.
            else:
                raise LayoutError("cannot align modes in left division")
            consumed += 1

    matched = set(match.values())
    want_spatial_head = [match[m] for m in divisor_c.spatial_modes]
    want_local_head = [match[m] for m in divisor_c.local_modes]
    if spatial[: len(want_spatial_head)] != want_spatial_head:
        raise LayoutError("divisor spatial modes are not a most-significant prefix")
    if local[: len(want_local_head)] != want_local_head:
        raise LayoutError("divisor local modes are not a most-significant prefix")

    quot_groups = [[m for m in g if m not in matched] for g in dim_groups]
    flat = [m for g in quot_groups for m in g]
    order = {m: k for k, m in enumerate(flat)}
    quotient = Layout(
        quot_shape,
        [mode_shape[m] for m in flat],
        [order[m] for m in spatial if m not in matched],
        [order[m] for m in local if m not in matched],
    )
    if not divisor.compose(quotient).equivalent(layout):
        raise LayoutError("structural left division produced an inconsistent quotient")
    return quotient


def concat_layouts(a: Layout, b: Layout) -> Layout:
    """Treat two layouts over disjoint dimension sets as one layout whose
    shape is the concatenation (used internally for multi-tile staging)."""
    shape = a.shape + b.shape
    mode_shape = list(a.mode_shape) + list(b.mode_shape)
    offset = len(a.mode_shape)
    spatial = list(a.spatial_modes) + [m + offset for m in b.spatial_modes]
    local = list(a.local_modes) + [m + offset for m in b.local_modes]
    return Layout(shape, mode_shape, spatial, local)


def expand_unit_dims(layout: Layout, rank: int, axes: list[int] | None = None) -> Layout:
    """Insert size-1 dimensions so the layout reaches the requested rank."""
    if layout.rank > rank:
        raise LayoutError("cannot expand to a smaller rank")
    missing = rank - layout.rank
    if axes is None:
        axes = list(range(missing))
    shape = list(layout.shape)
    for axis in sorted(axes):
        shape.insert(axis, 1)
    return Layout(shape, layout.mode_shape, layout.spatial_modes, layout.local_modes)


def num_distinct_elements(layout: Layout) -> int:
    """Number of distinct logical indices covered (≤ size; < size when the
    layout replicates elements across threads)."""
    table = layout.table().reshape(-1, layout.rank)
    linear = np.ravel_multi_index(tuple(table.T), layout.shape)
    return int(np.unique(linear).size)
