"""LLM serving simulation: model configs and the end-to-end engine."""

from repro.llm.batching import (
    ContinuousBatchingSimulator,
    Request,
    RequestResult,
    TraceResult,
    uniform_trace,
)
from repro.llm.engine import (
    PER_LAYER_OVERHEAD,
    STEP_OVERHEAD,
    ServingConfig,
    ServingSimulator,
    StageResult,
    simulate_cell,
)
from repro.llm.models import (
    GEMMA2_9B,
    LLAMA3_70B,
    MODELS,
    QWEN2_5_32B,
    LinearShape,
    ModelConfig,
)

__all__ = [
    "ContinuousBatchingSimulator",
    "Request",
    "RequestResult",
    "TraceResult",
    "uniform_trace",
    "ModelConfig",
    "LinearShape",
    "MODELS",
    "GEMMA2_9B",
    "QWEN2_5_32B",
    "LLAMA3_70B",
    "ServingConfig",
    "ServingSimulator",
    "StageResult",
    "simulate_cell",
    "PER_LAYER_OVERHEAD",
    "STEP_OVERHEAD",
]
