"""Continuous batching simulation (paper Section 9.4: "Contiguous
batching [29, 63] was used to efficiently batch multiple decode
requests").

A discrete-event simulator of an Orca/vLLM-style serving loop: requests
arrive with prompt/output lengths, prefills are admitted one per step,
and all in-flight requests decode together (one token per request per
step, ``m = batch``).  Step latencies come from the serving simulator,
so the kernel-level differences between systems (Tilus vs Ladder vs f16)
propagate into throughput and latency percentiles.

Kernel-in-the-loop mode: pass a ``decode_linear``
(:class:`~repro.ops.QuantizedLinear`) and every simulated decode step
*actually executes* one quantized-linear kernel per in-flight request on
the VM, each request issued on its own stream of the operator runtime's
pool — the concurrent decode/prefill kernel execution pattern the serving
loop produces on real hardware.  Per-request output buffers are private,
so the hazard tracker lets all of a step's decode kernels overlap; the
step barrier is ``pool.synchronize()``.  Latency accounting stays
analytical (the VM is functional, not a timing model).

Because the decode loop re-submits an *identical* launch DAG every step,
the kernel-in-the-loop path **graph-captures** it (``use_graphs``, on by
default): the first step at each batch size records the per-request
launches as an :class:`~repro.runtime.graphs.ExecutionGraph`, and every
later step replays the frozen DAG — rebinding each slot's activation and
output buffers when the in-flight set changes — skipping per-launch
scheduling, hazard analysis, and coalescing decisions entirely.

With ``profile=True`` the run records a reusable per-node
:class:`~repro.runtime.profiling.Profile` of every decode kernel
(attached to the returned :class:`TraceResult` and saveable as JSON):
the measured costs feed ``graph.optimize`` for profile-guided stream
re-balancing and ``Autotuner.tune_profiled`` for measurement-free
re-tuning — serving traffic becomes the profile the optimizer consumes.

``adaptive=True`` closes that loop **online**: decode graphs come under
:class:`~repro.runtime.adaptive.AdaptivePolicy` management — after the
policy's warmup window of profiled steps each live graph is atomically
swapped for its profile-optimized image, with no explicit
``reoptimize()`` call anywhere — and *new* batch sizes capture
profile-guided (``capture(profile=...)``): the costs earlier graphs
measured pick stream placement, stream count and engine choice at
capture time.  ``TraceResult.auto_reoptimizations`` counts the swaps.
"""

from __future__ import annotations

import hashlib
import math

from dataclasses import dataclass, field

from repro.llm.engine import ServingConfig, ServingSimulator
from repro.llm.models import ModelConfig


def _percentile(values: list[float], p: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 when empty)."""
    if not values:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class Request:
    """One serving request.

    ``rid`` identifies the request across process boundaries (the
    sharded-serving router matches worker results and oracle outputs by
    it); a non-negative ``rid`` also seeds the request's decode
    activations deterministically, so kernel-in-the-loop outputs are
    reproducible — and comparable bit-for-bit — wherever the request
    executes.  ``priority`` (higher serves first) and ``slo_s`` (the
    end-to-end latency target; ``inf`` = best-effort) feed the router's
    SLO-aware scheduling; both are ignored by the single-process
    simulator, which serves strictly by arrival.
    """

    arrival_s: float
    prompt_tokens: int
    output_tokens: int
    rid: int = -1
    priority: int = 0
    slo_s: float = math.inf

    @property
    def deadline_s(self) -> float:
        """Absolute completion deadline (``inf`` for best-effort)."""
        return self.arrival_s + self.slo_s


@dataclass
class RequestResult:
    """Per-request outcome."""

    request: Request
    first_token_s: float = 0.0   # time-to-first-token (absolute)
    finished_s: float = 0.0
    #: Hex digest of the request's final decode output buffer, recorded
    #: when kernel-in-the-loop decode ran for it; None otherwise.  The
    #: digest is a pure function of ``rid`` and the decode weights, so a
    #: router can check a worker's outputs bit-for-bit against a serial
    #: oracle without shipping the tensors.
    output_digest: str | None = None

    @property
    def slo_met(self) -> bool:
        return self.latency_s <= self.request.slo_s

    @property
    def ttft_s(self) -> float:
        return self.first_token_s - self.request.arrival_s

    @property
    def latency_s(self) -> float:
        return self.finished_s - self.request.arrival_s


@dataclass
class TraceResult:
    """Aggregate outcome of one trace."""

    results: list[RequestResult] = field(default_factory=list)
    total_time_s: float = 0.0
    total_tokens: int = 0
    #: Kernel-in-the-loop counters (zero in purely analytical runs).
    kernel_launches: int = 0
    max_concurrent_streams: int = 0
    #: Execution-graph counters: decode steps that recorded a fresh graph
    #: vs. steps that replayed one (captures + replays = decode steps).
    graph_captures: int = 0
    graph_replays: int = 0
    #: Per-node execution profile of the decode kernels (a
    #: :class:`~repro.runtime.profiling.Profile`), populated when the
    #: simulator was created with ``profile=True``; None otherwise.
    profile: object | None = None
    #: Automatic live-graph swaps the adaptive policy performed during
    #: this trace (``adaptive=True``); zero otherwise.
    auto_reoptimizations: int = 0
    #: Compiled-tier counters (``jit=True``): hot specializations the JIT
    #: lowered to straight-line compiled kernels during this trace, and
    #: how many decode executions ran through them.  Zero otherwise.
    jit_compiled: int = 0
    jit_promotions: int = 0

    @property
    def throughput_tokens_per_s(self) -> float:
        return self.total_tokens / self.total_time_s if self.total_time_s else 0.0

    def mean_ttft_s(self) -> float:
        """Mean time-to-first-token; 0.0 on an empty trace (a router's
        per-worker sub-trace can legitimately serve no requests, same as
        :attr:`throughput_tokens_per_s`)."""
        if not self.results:
            return 0.0
        return sum(r.ttft_s for r in self.results) / len(self.results)

    def mean_latency_s(self) -> float:
        """Mean end-to-end latency; 0.0 on an empty trace."""
        if not self.results:
            return 0.0
        return sum(r.latency_s for r in self.results) / len(self.results)

    def ttft_percentile(self, p: float) -> float:
        """Nearest-rank ``p``-th percentile TTFT (0 <= p <= 100);
        0.0 on an empty trace."""
        return _percentile([r.ttft_s for r in self.results], p)

    def latency_percentile(self, p: float) -> float:
        """Nearest-rank ``p``-th percentile end-to-end latency;
        0.0 on an empty trace."""
        return _percentile([r.latency_s for r in self.results], p)


@dataclass
class _Inflight:
    request: Request
    result: RequestResult
    remaining: int
    context: int
    #: Device buffers for kernel-in-the-loop decode (None when analytical).
    act_addr: int | None = None
    out_addr: int | None = None


class ContinuousBatchingSimulator:
    """Serves a request trace with continuous batching.

    ``decode_linear`` switches on kernel-in-the-loop decode (see module
    docstring): each in-flight request's per-step quantized linear is
    launched asynchronously on a distinct stream of the operator
    runtime's pool (``num_streams`` wide, capped by ``max_batch``;
    ``num_streams=0`` issues the kernels synchronously instead).
    ``use_graphs`` captures one execution graph per batch size and
    replays it every step, rebinding per-request buffers as the
    in-flight set changes; set it False to eager-submit every step.
    ``profile=True`` records every decode kernel into a reusable
    :class:`~repro.runtime.profiling.Profile` on ``TraceResult.profile``.
    ``adaptive`` (True, or an
    :class:`~repro.runtime.adaptive.AdaptivePolicy` for knob control)
    puts the decode graphs under online auto-reoptimization and makes
    new batch sizes capture profile-guided; swaps are counted on
    ``TraceResult.auto_reoptimizations``.
    ``jit=True`` attaches the operator runtime's compiled tier
    (:meth:`~repro.runtime.runtime.Runtime.enable_jit`): the decode
    kernel's specialization accumulates profiled heat and, once hot,
    executes as a flattened compiled kernel instead of re-entering the
    interpreter every step — bit-exact, counted on
    ``TraceResult.jit_compiled`` / ``jit_promotions``.
    """

    def __init__(
        self,
        model: ModelConfig,
        config: ServingConfig,
        max_batch: int = 16,
        decode_linear=None,
        num_streams: int = 4,
        use_graphs: bool = True,
        profile: bool = False,
        adaptive=False,
        jit: bool = False,
        jit_threshold_s: float | None = None,
        store=None,
        store_scope: str = "serving",
    ) -> None:
        self.model = model
        self.config = config
        self.max_batch = max_batch
        self.engine = ServingSimulator(model, config)
        self.decode_linear = decode_linear
        self.num_streams = min(num_streams, max_batch)
        self.use_graphs = use_graphs
        #: Record per-node execution profiles of the decode kernels onto
        #: the operator runtime (``TraceResult.profile`` carries them).
        self.profile = profile
        #: The adaptive policy managing the decode graphs, or None.  One
        #: policy per simulator: graphs are cached across runs, so their
        #: management must be too.
        if adaptive:
            if not use_graphs:
                raise ValueError(
                    "adaptive=True requires use_graphs=True: the policy "
                    "manages captured decode graphs, and eager per-step "
                    "submission has nothing to swap"
                )
            from repro.runtime.adaptive import AdaptivePolicy

            self._policy = (
                adaptive
                if isinstance(adaptive, AdaptivePolicy)
                else AdaptivePolicy(warmup_replays=4, min_gain=0.05)
            )
        else:
            self._policy = None
        #: Whether the compiled tier is attached to the operator runtime.
        self._jit = bool(jit) and decode_linear is not None
        if self._jit:
            decode_linear.runtime.enable_jit(threshold_s=jit_threshold_s)
        #: One captured decode-step graph per batch size, with the
        #: binding layout it was captured against.
        self._graphs: dict = {}
        #: Persistent tuning store (see :mod:`repro.store`), or None.
        #: A warm boot loads the previous generation's profile and JIT
        #: state here; :meth:`publish_store` writes this generation's
        #: back.  Every load failure degrades to a cold boot.
        self._store_scope = store_scope
        self._warm_profile = None
        #: Profiles accumulated across this simulator's runs, merged for
        #: publication (each run installs a fresh per-trace profile).
        self._store_profile = None
        if store is not None:
            from repro.store import TuningStore

            if not isinstance(store, TuningStore):
                store = TuningStore(store)
        self._store = store
        if self._store is not None and decode_linear is not None:
            self._warm_boot(decode_linear.runtime)

    def _warm_boot(self, runtime) -> None:
        """Spend the store's persisted state: the stored profile arms
        profile-guided capture (zero-swap convergence) and stored JIT
        heat/kernels pre-promote the decode specialization.  Corrupt
        entries are swallowed — the boot proceeds cold."""
        from repro.errors import VMError

        runtime.store = self._store
        try:
            self._warm_profile = self._store.load_profile(self._store_scope)
        except VMError:
            self._warm_profile = None
        if self._jit:
            try:
                payload = self._store.load_jit(self._store_scope)
            except VMError:
                payload = None
            if payload is not None:
                heat = {
                    spec: seconds
                    for spec, seconds in payload["heat"].items()
                    if isinstance(spec, str)
                    and isinstance(seconds, (int, float))
                    and not isinstance(seconds, bool)
                }
                runtime.jit.preheat(heat)
                runtime.jit.stage_kernels(payload["kernels"])

    def metrics(self) -> dict:
        """One flat snapshot of the simulator's counters under the
        frozen dot-namespaced contract
        (:data:`repro.obs.metrics.SIMULATOR_METRICS_KEYS`): the
        kernel-in-the-loop runtime's full ``runtime.*``/``jit.*``/
        ``adaptive.*`` snapshot (zeros when decode runs analytically,
        with no kernel in the loop) plus the ``batching.*`` graph
        census.  This is what workers ship on ``pull_trace`` next to
        their event buffers."""
        from repro.obs.metrics import (
            RUNTIME_METRICS_KEYS,
            SIMULATOR_METRICS_KEYS,
            validate_metrics,
            zero_metrics,
        )

        if self.decode_linear is not None:
            snapshot = self.decode_linear.runtime.metrics()
        else:
            snapshot = zero_metrics(RUNTIME_METRICS_KEYS)
        snapshot.update({
            "batching.graphs_captured": len(self._graphs),
            "batching.max_batch": self.max_batch,
            "batching.num_streams": self.num_streams,
        })
        return validate_metrics(
            snapshot, SIMULATOR_METRICS_KEYS, "ContinuousBatchingSimulator"
        )

    def run(self, requests: list[Request]) -> TraceResult:
        """Simulate until every request finishes."""
        pending = sorted(requests, key=lambda r: r.arrival_s)
        inflight: list[_Inflight] = []
        outcome = TraceResult()
        # The adaptive policy is fed by profiled replays, and JIT
        # promotion is driven by profiled heat, so both run profiled
        # even when the caller did not ask to keep the profile
        # (outcome.profile stays None unless profile=True).
        profiling = (
            self.profile
            or self._policy is not None
            or self._jit
            or self._store is not None
        ) and self.decode_linear is not None
        if profiling:
            # Fresh profile per run so the trace's records are its own
            # (a caller-enabled profiler must not bleed in), restored on
            # exit so caller profiling survives the trace unchanged.
            from repro.runtime.profiling import Profile

            runtime = self.decode_linear.runtime
            prior = runtime.disable_profiling()
            fresh = runtime.enable_profiling(Profile())
            if self.profile:
                outcome.profile = fresh
        swaps_before = self._policy.swaps if self._policy is not None else 0
        jit = self.decode_linear.runtime.jit if self._jit else None
        compiled_before = jit.compiled if jit is not None else 0
        promotions_before = jit.promotions if jit is not None else 0
        try:
            return self._run_loop(pending, inflight, outcome)
        finally:
            if self._policy is not None:
                outcome.auto_reoptimizations = self._policy.swaps - swaps_before
            if jit is not None:
                outcome.jit_compiled = jit.compiled - compiled_before
                outcome.jit_promotions = jit.promotions - promotions_before
            if profiling:
                recorded = runtime.disable_profiling()
                if self._store is not None and recorded is not None:
                    if self._store_profile is None:
                        self._store_profile = Profile()
                    self._store_profile.merge(recorded)
                if prior is not None:
                    runtime.enable_profiling(prior)

    def _run_loop(
        self,
        pending: list[Request],
        inflight: "list[_Inflight]",
        outcome: TraceResult,
    ) -> TraceResult:
        now = 0.0
        queue_idx = 0

        while queue_idx < len(pending) or inflight:
            # Admit one waiting request per step (prefill), vLLM-style.
            if (
                queue_idx < len(pending)
                and pending[queue_idx].arrival_s <= now
                and len(inflight) < self.max_batch
            ):
                request = pending[queue_idx]
                queue_idx += 1
                now += self.engine.prefill_latency(request.prompt_tokens)
                result = RequestResult(request, first_token_s=now)
                outcome.total_tokens += request.prompt_tokens
                flight = _Inflight(
                    request, result, request.output_tokens, request.prompt_tokens
                )
                self._provision_buffers(flight)
                inflight.append(flight)
                outcome.results.append(result)
                continue
            if not inflight:
                # Idle until the next arrival.
                now = max(now, pending[queue_idx].arrival_s)
                continue
            # One decode step for the whole batch.
            batch = len(inflight)
            context = max(f.context for f in inflight)
            now += self.engine.decode_step_latency(batch=batch, context=context)
            self._run_decode_kernels(inflight, outcome)
            outcome.total_tokens += batch
            finished: list[_Inflight] = []
            for flight in inflight:
                flight.remaining -= 1
                flight.context += 1
                if flight.remaining <= 0:
                    flight.result.finished_s = now
                    finished.append(flight)
            for flight in finished:
                self._finalize(flight)
                inflight.remove(flight)
        outcome.total_time_s = now
        return outcome

    # -- kernel-in-the-loop decode -------------------------------------------
    def _provision_buffers(self, flight: _Inflight) -> None:
        """Give an admitted request private activation/output buffers so
        its decode kernels are hazard-free against every other request."""
        if self.decode_linear is None:
            return
        import numpy as np

        linear = self.decode_linear
        runtime = linear.runtime
        if flight.request.rid >= 0:
            # Deterministic per-request activations: the same rid decodes
            # the same bits in any process, which is what lets the
            # sharded-serving router compare worker outputs against a
            # serial oracle digest-for-digest.
            rng = np.random.default_rng(flight.request.rid)
            activation = rng.standard_normal((1, linear.k))
        else:
            activation = np.zeros((1, linear.k))
        flight.act_addr = runtime.upload(
            linear.act_dtype.quantize(activation), linear.act_dtype
        )
        flight.out_addr = runtime.empty([1, linear.n], linear.act_dtype)

    def _finalize(self, flight: _Inflight) -> None:
        """Digest a finished request's decode output (see
        :attr:`RequestResult.output_digest`)."""
        if self.decode_linear is None or flight.out_addr is None:
            return
        linear = self.decode_linear
        out = linear.runtime.download(flight.out_addr, [1, linear.n], linear.act_dtype)
        flight.result.output_digest = hashlib.sha256(out.tobytes()).hexdigest()[:16]

    def _run_decode_kernels(self, inflight: list[_Inflight], outcome: TraceResult) -> None:
        """Issue one decode linear per in-flight request, each on its own
        stream, then barrier on the pool (one serving step).  With
        ``num_streams=0`` the kernels run synchronously instead; with
        ``use_graphs`` the step is captured once per batch size and
        replayed (buffers rebound) thereafter."""
        if self.decode_linear is None:
            return
        linear = self.decode_linear
        runtime = linear.runtime
        program = linear.program_for(1)
        if self.num_streams < 1:
            for flight in inflight:
                runtime.launch(
                    program,
                    [flight.act_addr, linear.b_addr, linear.s_addr, flight.out_addr],
                )
            outcome.kernel_launches += len(inflight)
            outcome.max_concurrent_streams = max(outcome.max_concurrent_streams, 1)
            return
        pool = runtime.stream_pool(self.num_streams)
        if self.use_graphs:
            self._decode_step_graphed(pool, inflight, outcome)
            return
        streams_used = set()
        for idx, flight in enumerate(inflight):
            stream = pool.streams[idx % len(pool.streams)]
            runtime.launch(
                program,
                [flight.act_addr, linear.b_addr, linear.s_addr, flight.out_addr],
                stream=stream,
            )
            streams_used.add(stream.index)
        pool.synchronize()
        outcome.kernel_launches += len(inflight)
        outcome.max_concurrent_streams = max(
            outcome.max_concurrent_streams, len(streams_used)
        )

    def _capture_hint(self, program, args):
        """The prior profile to hand a fresh batch size's capture, or
        None.  Only meaningful under the adaptive policy, and only when
        the active profiler has already measured this decode kernel's
        specialization key (earlier batch sizes' graphs record the same
        ``program_for(1)`` spec) — an unrelated profile must not be
        offered, since profile-guided capture rejects a profile that
        matches nothing."""
        if self._policy is None and self._warm_profile is None:
            return None
        from repro.compiler.pipeline import specialization_key
        from repro.runtime.profiling import spec_string

        spec = spec_string(specialization_key(program, args))
        if self._policy is not None:
            profiler = self.decode_linear.runtime.profiler
            if profiler is not None and profiler.spec_seconds(spec) is not None:
                return profiler
        warm = self._warm_profile
        if warm is not None and warm.spec_seconds(spec) is not None:
            # Store-warm boot: a profile recorded by a previous process
            # stands in until this one has measured anything itself.
            return warm
        return None

    def _decode_step_graphed(self, pool, inflight, outcome: TraceResult) -> None:
        """One decode step through the graph subsystem: capture the
        launch DAG on the first step at this batch size, replay it on
        every later one (rebinding each request slot's activation and
        output buffers to the current in-flight set).  Under the
        adaptive policy the capture is profile-guided once earlier
        graphs have measured the decode kernel, and the graph comes
        under management — the policy swaps it for its optimized image
        after the warmup window, automatically."""
        linear = self.decode_linear
        runtime = linear.runtime
        program = linear.program_for(1)
        batch = len(inflight)
        act_bytes = (linear.k * linear.act_dtype.nbits + 7) // 8
        out_bytes = (linear.n * linear.act_dtype.nbits + 7) // 8
        graph = self._graphs.get(batch)
        if graph is None:
            first = inflight[0]
            hint = self._capture_hint(
                program,
                [first.act_addr, linear.b_addr, linear.s_addr, first.out_addr],
            )
            with runtime.capture(self.num_streams, profile=hint) as graph:
                for idx, flight in enumerate(inflight):
                    runtime.launch(
                        program,
                        [flight.act_addr, linear.b_addr, linear.s_addr, flight.out_addr],
                        stream=pool.streams[idx % len(pool.streams)],
                    )
            for idx, flight in enumerate(inflight):
                graph.bind(f"act{idx}", flight.act_addr, act_bytes)
                graph.bind(f"out{idx}", flight.out_addr, out_bytes)
            warm_capture = hint is not None and hint is self._warm_profile
            if self._store is not None:
                applied = self._apply_stored_plan(graph)
                if applied is not None:
                    graph = applied
                    warm_capture = True
            if self._policy is not None:
                # A warm capture already sits on a converged placement:
                # the policy's unconditional first swap is disabled so a
                # warm boot replays with zero adaptive swaps.
                graph = self._policy.manage(graph, warm=warm_capture)
            self._graphs[batch] = graph
            outcome.graph_captures += 1
            graph.replay()  # identity bindings: captured from this step
        else:
            bindings = {}
            for idx, flight in enumerate(inflight):
                bindings[f"act{idx}"] = flight.act_addr
                bindings[f"out{idx}"] = flight.out_addr
            graph.replay(bindings)
            outcome.graph_replays += 1
        outcome.kernel_launches += batch
        outcome.max_concurrent_streams = max(
            outcome.max_concurrent_streams, len(graph.stream_indices)
        )

    # -- persistent tuning store ---------------------------------------------
    def _apply_stored_plan(self, graph):
        """This scope's stored placement for ``graph``'s signature
        applied to it, or None (absent / corrupt / no longer applicable
        — every miss degrades to the freshly captured placement)."""
        from repro.errors import VMError

        try:
            plan = self._store.load_plan(self._store_scope, graph.signature)
            if plan is None:
                return None
            return graph.apply_plan(plan)
        except VMError:
            return None

    def publish_store(self) -> dict:
        """Persist this simulator's converged serving state — merged
        profile (warm inheritance + every run served here), each decode
        graph's live placement, and the JIT tier's heat and kernel
        sources — so the next process boots converged.  Returns a
        summary dict; publication is best-effort per artifact."""
        summary = {"profile": False, "plans": 0, "jit_kernels": 0}
        if self._store is None or self.decode_linear is None:
            return summary
        from repro.errors import VMError
        from repro.runtime.profiling import Profile

        runtime = self.decode_linear.runtime
        merged = Profile()
        if self._warm_profile is not None:
            merged.merge(self._warm_profile)
        if self._store_profile is not None:
            merged.merge(self._store_profile)
        if runtime.profiler is not None:
            merged.merge(runtime.profiler)
        if len(merged) > 0:
            self._store.publish_profile(self._store_scope, merged)
            summary["profile"] = True
        for graph in self._graphs.values():
            live = getattr(graph, "live", graph)
            try:
                self._store.publish_plan(
                    self._store_scope, live.signature, live.plan()
                )
                summary["plans"] += 1
            except VMError:
                continue
        if self._jit and runtime.jit is not None:
            summary["jit_kernels"] = self._store.publish_jit(
                self._store_scope, runtime.jit, merged
            )
        return summary


def uniform_trace(
    num_requests: int,
    interarrival_s: float,
    prompt_tokens: int = 512,
    output_tokens: int = 64,
) -> list[Request]:
    """A simple open-loop trace with fixed spacing and sizes."""
    return [
        Request(
            arrival_s=i * interarrival_s,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            rid=i,
        )
        for i in range(num_requests)
    ]
