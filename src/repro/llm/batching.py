"""Continuous batching simulation (paper Section 9.4: "Contiguous
batching [29, 63] was used to efficiently batch multiple decode
requests").

A discrete-event simulator of an Orca/vLLM-style serving loop: requests
arrive with prompt/output lengths, prefills are admitted one per step,
and all in-flight requests decode together (one token per request per
step, ``m = batch``).  Step latencies come from the serving simulator,
so the kernel-level differences between systems (Tilus vs Ladder vs f16)
propagate into throughput and latency percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.engine import ServingConfig, ServingSimulator
from repro.llm.models import ModelConfig


@dataclass(frozen=True)
class Request:
    """One serving request."""

    arrival_s: float
    prompt_tokens: int
    output_tokens: int


@dataclass
class RequestResult:
    """Per-request outcome."""

    request: Request
    first_token_s: float = 0.0   # time-to-first-token (absolute)
    finished_s: float = 0.0

    @property
    def ttft_s(self) -> float:
        return self.first_token_s - self.request.arrival_s

    @property
    def latency_s(self) -> float:
        return self.finished_s - self.request.arrival_s


@dataclass
class TraceResult:
    """Aggregate outcome of one trace."""

    results: list[RequestResult] = field(default_factory=list)
    total_time_s: float = 0.0
    total_tokens: int = 0

    @property
    def throughput_tokens_per_s(self) -> float:
        return self.total_tokens / self.total_time_s if self.total_time_s else 0.0

    def mean_ttft_s(self) -> float:
        return sum(r.ttft_s for r in self.results) / len(self.results)

    def mean_latency_s(self) -> float:
        return sum(r.latency_s for r in self.results) / len(self.results)


@dataclass
class _Inflight:
    request: Request
    result: RequestResult
    remaining: int
    context: int


class ContinuousBatchingSimulator:
    """Serves a request trace with continuous batching."""

    def __init__(
        self,
        model: ModelConfig,
        config: ServingConfig,
        max_batch: int = 16,
    ) -> None:
        self.model = model
        self.config = config
        self.max_batch = max_batch
        self.engine = ServingSimulator(model, config)

    def run(self, requests: list[Request]) -> TraceResult:
        """Simulate until every request finishes."""
        pending = sorted(requests, key=lambda r: r.arrival_s)
        inflight: list[_Inflight] = []
        outcome = TraceResult()
        now = 0.0
        queue_idx = 0

        while queue_idx < len(pending) or inflight:
            # Admit one waiting request per step (prefill), vLLM-style.
            if (
                queue_idx < len(pending)
                and pending[queue_idx].arrival_s <= now
                and len(inflight) < self.max_batch
            ):
                request = pending[queue_idx]
                queue_idx += 1
                now += self.engine.prefill_latency(request.prompt_tokens)
                result = RequestResult(request, first_token_s=now)
                outcome.total_tokens += request.prompt_tokens
                inflight.append(
                    _Inflight(request, result, request.output_tokens, request.prompt_tokens)
                )
                outcome.results.append(result)
                continue
            if not inflight:
                # Idle until the next arrival.
                now = max(now, pending[queue_idx].arrival_s)
                continue
            # One decode step for the whole batch.
            batch = len(inflight)
            context = max(f.context for f in inflight)
            now += self.engine.decode_step_latency(batch=batch, context=context)
            outcome.total_tokens += batch
            finished: list[_Inflight] = []
            for flight in inflight:
                flight.remaining -= 1
                flight.context += 1
                if flight.remaining <= 0:
                    flight.result.finished_s = now
                    finished.append(flight)
            for flight in finished:
                inflight.remove(flight)
        outcome.total_time_s = now
        return outcome


def uniform_trace(
    num_requests: int,
    interarrival_s: float,
    prompt_tokens: int = 512,
    output_tokens: int = 64,
) -> list[Request]:
    """A simple open-loop trace with fixed spacing and sizes."""
    return [
        Request(
            arrival_s=i * interarrival_s,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
        )
        for i in range(num_requests)
    ]
