"""End-to-end LLM serving latency simulation (paper Sections 9.4-9.5).

The simulator decomposes each serving stage into the kernel calls a
vLLM-style engine issues — quantized matmuls for the block linears,
an f16 lm-head GEMM, attention (KV-cache bound during decode,
compute-bound during prefill) — and adds the framework overheads that
dominate small models (kernel launches, Python glue, sampling).

Weight-memory accounting reproduces the OOM cells of Figures 12 and 13:
a configuration whose weights plus working set exceed device DRAM raises
:class:`~repro.errors.OutOfMemoryError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtypes import DataType, float16
from repro.errors import OutOfMemoryError, UnsupportedKernelError
from repro.llm.models import ModelConfig
from repro.perf.gpus import GpuSpec
from repro.perf.systems import ALL_SYSTEMS, CuBLAS, System
from repro.perf.workload import MatmulWorkload

#: Framework (vLLM) overheads, calibrated against the paper's Figure 12.
PER_LAYER_OVERHEAD = 0.13e-3   # s per transformer block per step
STEP_OVERHEAD = 2.0e-3         # s per engine step (scheduler, sampler)
WORKING_SET_BYTES = 1536 * 1024**2  # activations, CUDA context, fragmentation

#: Prefill GEMM efficiency by serving system.  vLLM's f16 path exceeds the
#: fp32-accumulate roofline because cuBLAS uses fp16 accumulation for
#: large GEMMs; quantized paths pay a dequant tax on tensor-core issue
#: slots (higher for Ladder, which also lacks pipelining).
PREFILL_TC_EFFICIENCY = {"vllm": 1.24, "tilus": 0.95, "ladder": 0.80}


@dataclass(frozen=True)
class ServingConfig:
    """One serving setup: engine, weight type, device."""

    system: str                  # "vllm" | "tilus" | "ladder"
    weight_dtype: DataType       # float16 for vllm, quantized otherwise
    gpu: GpuSpec
    group_size: int = 128

    def kernel_system(self) -> System:
        if self.system == "vllm":
            return ALL_SYSTEMS["cublas"]
        return ALL_SYSTEMS[self.system]


class ServingSimulator:
    """Latency and memory model of one model on one serving config."""

    def __init__(self, model: ModelConfig, config: ServingConfig) -> None:
        self.model = model
        self.config = config

    # -- memory ------------------------------------------------------------
    def weight_bytes(self) -> int:
        """Device bytes for weights: quantized blocks + f16 head/embeddings."""
        m, c = self.model, self.config
        block_bits = m.linear_params * c.weight_dtype.nbits
        scale_bytes = 0
        if c.weight_dtype.nbits < 16:
            groups = max(1, m.hidden_size // c.group_size)
            # Scales per linear: (k/group) * n * 2B, summed over blocks.
            scale_bytes = sum(
                (l.k // c.group_size) * l.n * 2
                for l in m.block_linears()
                if l.k >= c.group_size
            ) * m.num_layers
        head_bytes = 2 * m.lm_head_params * 2  # embeddings + lm head, f16
        return block_bits // 8 + scale_bytes + head_bytes

    def memory_required(self, batch: int, context: int = 2048) -> int:
        kv = batch * context * self.model.kv_bytes_per_token()
        return self.weight_bytes() + kv + WORKING_SET_BYTES

    def check_memory(self, batch: int, context: int = 2048) -> None:
        required = self.memory_required(batch, context)
        if required > self.config.gpu.dram_bytes:
            raise OutOfMemoryError(
                f"{self.model} ({self.config.weight_dtype} weights) needs "
                f"{required / 1024**3:.1f} GiB but {self.config.gpu} has "
                f"{self.config.gpu.dram_bytes / 1024**3:.0f} GiB"
            )

    # -- kernels -------------------------------------------------------------
    def _linear_latency(self, m: int, k: int, n: int) -> float:
        c = self.config
        system = self.kernel_or_raise()
        workload = MatmulWorkload(
            m=m, n=n, k=k, weight_dtype=c.weight_dtype, group_size=c.group_size
        )
        return system.matmul_latency(workload, c.gpu)

    def kernel_or_raise(self) -> System:
        system = self.config.kernel_system()
        probe = MatmulWorkload(
            m=1,
            n=self.model.hidden_size,
            k=self.model.hidden_size,
            weight_dtype=self.config.weight_dtype,
            group_size=self.config.group_size,
        )
        system.check(probe, self.config.gpu)
        return system

    def _attention_decode_time(self, batch: int, context: int) -> float:
        """KV-cache read is the decode-attention bottleneck."""
        bytes_read = batch * context * self.model.kv_bytes_per_token()
        return bytes_read / (self.config.gpu.mem_bandwidth * 0.80)

    def _lm_head_time(self, m: int) -> float:
        workload = MatmulWorkload(
            m=m,
            n=self.model.vocab_size,
            k=self.model.hidden_size,
            weight_dtype=float16,
        )
        return CuBLAS().matmul_latency(workload, self.config.gpu)

    # -- stages --------------------------------------------------------------
    def decode_step_latency(self, batch: int, context: int = 256) -> float:
        """One decode step with ``batch`` in-flight requests (continuous
        batching: every request contributes one token => m = batch).
        ``context`` is the per-request KV history length (the paper's
        decode benchmarks start from short dummy prompts)."""
        self.check_memory(batch, context)
        m = self.model
        linear_time = sum(
            self._linear_latency(batch, l.k, l.n) for l in m.block_linears()
        ) * m.num_layers
        return (
            linear_time
            + self._attention_decode_time(batch, context)
            + self._lm_head_time(batch)
            + m.num_layers * PER_LAYER_OVERHEAD
            + STEP_OVERHEAD
        )

    def prefill_latency(self, prompt_tokens: int) -> float:
        """Prefill of one prompt (m = prompt length for every linear)."""
        self.check_memory(batch=1, context=prompt_tokens)
        self.kernel_or_raise()  # surface ERR/unsupported before estimating
        m, c = self.model, self.config
        flops = 2.0 * prompt_tokens * m.linear_params
        eff = PREFILL_TC_EFFICIENCY[c.system]
        gemm_time = flops / (c.gpu.tc_fp16_flops * eff)
        # Causal attention: 2 matmuls of T x T x head_dim per head per layer.
        attn_flops = (
            2 * 2 * m.num_layers * m.num_heads * m.head_dim * prompt_tokens**2 / 2
        )
        attn_time = attn_flops / (c.gpu.tc_fp16_flops * 0.55)
        # Quantized paths read weights once; that traffic is hidden at
        # prefill (compute-bound) so only the GEMM/attention terms count.
        return (
            gemm_time
            + attn_time
            + self._lm_head_time(1)
            + m.num_layers * PER_LAYER_OVERHEAD
            + STEP_OVERHEAD
        )


@dataclass(frozen=True)
class StageResult:
    """Outcome of simulating one (system, dtype) cell of Figure 12/13."""

    label: str
    latency_ms: float | None
    error: str | None = None  # "OOM" | "ERR" | "unsupported"

    @property
    def ok(self) -> bool:
        return self.latency_ms is not None


def simulate_cell(
    model: ModelConfig,
    config: ServingConfig,
    stage: str,
    tokens: int,
) -> StageResult:
    """Evaluate one figure cell; maps failures onto the paper's labels."""
    sim = ServingSimulator(model, config)
    label = f"{config.system}/{config.weight_dtype}"
    try:
        if stage == "decode":
            latency = sim.decode_step_latency(batch=tokens)
        elif stage == "prefill":
            latency = sim.prefill_latency(prompt_tokens=tokens)
        else:
            raise ValueError(f"unknown stage {stage!r}")
    except OutOfMemoryError:
        return StageResult(label, None, "OOM")
    except UnsupportedKernelError as exc:
        kind = "ERR" if "Hopper" in str(exc) or "illegal" in str(exc) else "unsupported"
        return StageResult(label, None, kind)
    return StageResult(label, latency * 1e3)
