"""Architecture configurations of the evaluated LLMs (paper Section 9.1).

Only the *meta-information* matters for system performance — layer counts
and matrix shapes — exactly as in the paper's artifact, which fetches
metadata from Hugging Face and runs with dummy weights.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinearShape:
    """One weight matrix of a transformer block: ``x[m,k] @ W[k,n]``."""

    name: str
    k: int
    n: int

    @property
    def params(self) -> int:
        return self.k * self.n


@dataclass(frozen=True)
class ModelConfig:
    """Decoder-only transformer architecture description."""

    name: str
    num_layers: int
    hidden_size: int
    intermediate_size: int
    num_heads: int
    num_kv_heads: int
    head_dim: int
    vocab_size: int

    def block_linears(self) -> list[LinearShape]:
        """The quantizable weight matrices of one transformer block.

        QKV and gate/up projections are fused, the standard vLLM layout;
        the fused gate+up shape (k=8192, n=57344 for Llama-3.3-70B) is the
        paper's third benchmark shape.
        """
        q_out = self.num_heads * self.head_dim
        kv_out = self.num_kv_heads * self.head_dim
        return [
            LinearShape("qkv_proj", self.hidden_size, q_out + 2 * kv_out),
            LinearShape("o_proj", q_out, self.hidden_size),
            LinearShape("gate_up_proj", self.hidden_size, 2 * self.intermediate_size),
            LinearShape("down_proj", self.intermediate_size, self.hidden_size),
        ]

    @property
    def block_params(self) -> int:
        return sum(l.params for l in self.block_linears())

    @property
    def linear_params(self) -> int:
        """All quantizable parameters (transformer blocks only)."""
        return self.block_params * self.num_layers

    @property
    def lm_head_params(self) -> int:
        return self.hidden_size * self.vocab_size

    @property
    def total_params(self) -> int:
        """Approximate parameter count (blocks + lm head + embeddings)."""
        return self.linear_params + 2 * self.lm_head_params

    def kv_bytes_per_token(self, kv_dtype_bytes: int = 2) -> int:
        """KV-cache bytes appended per generated/prompt token."""
        return 2 * self.num_layers * self.num_kv_heads * self.head_dim * kv_dtype_bytes

    def __str__(self) -> str:
        return self.name


GEMMA2_9B = ModelConfig(
    name="Gemma-2-9B",
    num_layers=42,
    hidden_size=3584,
    intermediate_size=14336,
    num_heads=16,
    num_kv_heads=8,
    head_dim=256,
    vocab_size=256128,
)

QWEN2_5_32B = ModelConfig(
    name="Qwen2.5-32B",
    num_layers=64,
    hidden_size=5120,
    intermediate_size=27648,
    num_heads=40,
    num_kv_heads=8,
    head_dim=128,
    vocab_size=152064,
)

LLAMA3_70B = ModelConfig(
    name="Llama-3.3-70B",
    num_layers=80,
    hidden_size=8192,
    intermediate_size=28672,
    num_heads=64,
    num_kv_heads=8,
    head_dim=128,
    vocab_size=128256,
)

MODELS: dict[str, ModelConfig] = {
    m.name: m for m in (GEMMA2_9B, QWEN2_5_32B, LLAMA3_70B)
}
