"""Unified observability: structured tracing + the metrics registry.

Two halves, both process-scoped and dependency-free (stdlib only, no
imports from the layers they observe):

- :mod:`repro.obs.trace` — a thread-safe, ring-buffered span/instant
  recorder with near-zero cost when disabled.  Every layer of the stack
  carries emit points (runtime launches, stream group execution, graph
  capture/replay, adaptive swaps, JIT lowering, router dispatch, worker
  chunks) that fire only while a tracer is installed; the buffer exports
  as Chrome trace-event JSON loadable in Perfetto, with pid mapped to
  process (router/worker) and tid to stream.  Worker processes ship
  their buffers to the router over the serving wire protocol and
  :meth:`~repro.serving.router.Router.fleet_trace` merges them on one
  clock (see ``docs/observability.md``).

- :mod:`repro.obs.metrics` — the frozen dot-namespaced key contracts
  behind every ``metrics()`` snapshot (``Runtime``, ``LocalEngine``,
  ``ContinuousBatchingSimulator``, ``RouterResult``), subsuming the
  scattered per-subsystem counter dicts under one stable namespace.
"""

from repro.obs.metrics import (
    ROUTER_METRICS_KEYS,
    RUNTIME_METRICS_KEYS,
    SIMULATOR_METRICS_KEYS,
    validate_metrics,
    zero_metrics,
)
from repro.obs.trace import (
    HOST_TID,
    TRACE_JSON_VERSION,
    Tracer,
    active,
    chrome_trace,
    install,
    merge_process_traces,
    summarize_trace,
    uninstall,
)

__all__ = [
    "HOST_TID",
    "TRACE_JSON_VERSION",
    "Tracer",
    "active",
    "chrome_trace",
    "install",
    "merge_process_traces",
    "summarize_trace",
    "uninstall",
    "ROUTER_METRICS_KEYS",
    "RUNTIME_METRICS_KEYS",
    "SIMULATOR_METRICS_KEYS",
    "validate_metrics",
    "zero_metrics",
]
