"""The metrics registry: frozen dot-namespaced snapshot contracts.

Before this module, every subsystem invented its own counter shape —
``ExecutionStats`` attributes, ``SpecializationCache.hits``,
``JitManager.counters()``, ``AdaptivePolicy.swaps``, the ad-hoc
``counters`` dict on serving's ``done`` frames.  The registry replaces
none of those *mechanisms* (they stay the cheap in-band counters they
are) but gives them one read-side contract: a ``metrics()`` method
returning a **flat dict of dot-namespaced keys to numbers**, with the
key set frozen here and validated on every snapshot.

Namespaces:

- ``runtime.*``   — launches, the specialization cache, engine stats
- ``streams.*``   — pool width, launches, post-coalescing executions
- ``jit.*``       — compiled tier: promotion/bailout/cache counters
- ``adaptive.*``  — online reoptimization: swaps, evaluations
- ``store.*``     — persistent tuning store: hit/miss/publish/gc
- ``batching.*``  — the continuous-batching simulator's graph census
- ``router.*``    — fleet aggregates (``router.shed`` is the admission
  reject count — the door is where overload is measured)

Key stability is a CI-guarded contract (like the differential
harness's ``BASELINE_MODES``): renaming or dropping a key fails
``tests/test_obs.py`` until the frozen sets here *and* the literal
copies in the test are both updated — a deliberate two-touch change.
``metrics()`` implementations call :func:`validate_metrics` before
returning, so drift fails at the producing layer, not downstream.
"""

from __future__ import annotations

from repro.errors import VMError

#: ``Runtime.metrics()`` / ``LocalEngine.metrics()`` keys.
RUNTIME_METRICS_KEYS = frozenset({
    "runtime.launches",
    "runtime.spec_cache.entries",
    "runtime.spec_cache.hits",
    "runtime.spec_cache.misses",
    "runtime.spec_cache.evictions",
    "runtime.stats.blocks_run",
    "runtime.stats.instructions",
    "runtime.stats.global_bits_loaded",
    "runtime.stats.global_bits_stored",
    "runtime.stats.shared_bits_loaded",
    "runtime.stats.shared_bits_stored",
    "runtime.stats.copy_async_issued",
    "runtime.stats.dot_ops",
    "runtime.stats.synchronizations",
    "streams.count",
    "streams.launches",
    "streams.executions",
    "jit.enabled",
    "jit.compiled",
    "jit.bailouts",
    "jit.promotions",
    "jit.cache.hits",
    "jit.cache.misses",
    "jit.cache.evictions",
    "adaptive.enabled",
    "adaptive.swaps",
    "adaptive.evaluations",
    "store.enabled",
    "store.hits",
    "store.misses",
    "store.publishes",
    "store.gc_evictions",
})

#: ``ContinuousBatchingSimulator.metrics()`` keys: the runtime contract
#: plus the simulator's own namespace.
SIMULATOR_METRICS_KEYS = RUNTIME_METRICS_KEYS | frozenset({
    "batching.graphs_captured",
    "batching.max_batch",
    "batching.num_streams",
})

#: ``RouterResult.metrics()`` keys (fleet-wide; per-worker detail lives
#: on ``RouterResult.per_worker()``).
ROUTER_METRICS_KEYS = frozenset({
    "router.completed",
    "router.shed",
    "router.redispatched",
    "router.respawns",
    "router.total_tokens",
    "router.kernel_launches",
    "router.graph_captures",
    "router.graph_replays",
    "router.auto_reoptimizations",
    "router.jit_compiled",
    "router.jit_promotions",
    "router.slo_attainment",
    "router.simulated_makespan_s",
    "router.wall_s",
})


def validate_metrics(snapshot: dict, contract: frozenset, owner: str) -> dict:
    """Assert ``snapshot`` honors ``contract``: exactly the frozen keys,
    every value a plain number (JSON-safe).  Returns the snapshot, so
    producers end with ``return validate_metrics(m, KEYS, "Runtime")``.
    """
    got = set(snapshot)
    if got != contract:
        missing = sorted(contract - got)
        extra = sorted(got - contract)
        raise VMError(
            f"{owner} metrics drifted from the frozen contract: "
            f"missing={missing}, unexpected={extra}"
        )
    for key, value in snapshot.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise VMError(
                f"{owner} metric {key!r} is {type(value).__name__}, "
                "expected int or float"
            )
    return snapshot


def zero_metrics(contract: frozenset) -> dict:
    """An all-zero snapshot of ``contract`` (for producers whose
    subsystem is absent — e.g. a simulator with no kernel-in-the-loop
    runtime — so the key contract holds unconditionally)."""
    return {key: 0 for key in sorted(contract)}
