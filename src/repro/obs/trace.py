"""Structured tracing: a ring-buffered span/instant recorder per process.

Design constraints, in order:

1. **Near-zero cost when disabled.**  The tracer is process-scoped and
   the emit points on the hot paths (``Runtime.launch``, stream group
   execution, graph-replay tasks) guard on one module-attribute ``is
   None`` test — the same discipline the runtime already uses for
   ``profiler``.  Nothing is allocated, formatted, or timestamped
   unless a tracer is installed.
2. **Thread-safe recording.**  Stream workers, graph-replay tasks, and
   the host thread all emit concurrently; recording appends one dict to
   a ``deque(maxlen=capacity)`` under a lock.  The deque is the ring
   buffer: when full, the oldest events drop (counted on ``dropped``)
   rather than growing without bound in a long serving run.
3. **Monotonic clocks.**  Timestamps are ``time.perf_counter`` seconds —
   monotonic but with an arbitrary per-process epoch, which is why the
   cross-process merge below carries a clock offset per process.

Event model — a strict subset of the Chrome trace-event format (the
JSON Perfetto and ``chrome://tracing`` load natively):

- **span** (phase ``"X"``, a *complete* event): a named duration on one
  thread lane — an engine invocation, a graph replay, a router admit
  sweep.  Carries ``ts`` + ``dur``.
- **instant** (phase ``"i"``): a point event — a JIT promotion, an
  adaptive swap, a chunk dispatch.

``tid`` maps execution lanes: :data:`HOST_TID` (0) is the host/calling
thread; stream ``i`` records on lane ``i + 1``.  ``pid`` is assigned at
export time: a single-process export is pid 0; the fleet merge gives
the router pid 0 and worker ``i`` pid ``i + 1``, with Chrome metadata
events naming each.

Cross-process merge: each worker ships its raw event buffer plus its
``perf_counter`` reading at reply time; the puller brackets the
request/reply with its own clock and estimates the offset NTP-style
(``offset = worker_now - (t_send + t_recv) / 2``).  Subtracting the
offset maps every worker timestamp onto the puller's clock, and
:func:`merge_process_traces` rebases the union so the merged trace
starts at t=0.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager

from repro.errors import VMError

#: Version stamp of the trace wire/file format (the ``trace`` serving
#: frame and the ``otherData`` block of exported Chrome JSON).
TRACE_JSON_VERSION = 1

#: The host/calling thread's lane; stream ``i`` records on ``i + 1``.
HOST_TID = 0

#: Default ring capacity (events kept per process).
DEFAULT_CAPACITY = 65536


class Tracer:
    """A bounded, thread-safe recorder of span/instant events.

    Use :func:`install` / :func:`uninstall` to manage the process
    tracer; emit points guard on :func:`active` (or the module
    attribute ``ACTIVE``) being non-None.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, clock=time.perf_counter) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._events: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Events emitted in total (including any the ring dropped).
        self.recorded = 0

    # -- recording -----------------------------------------------------------
    def now(self) -> float:
        """The tracer's monotonic clock, in seconds (arbitrary epoch)."""
        return self._clock()

    def instant(self, name: str, cat: str, tid: int = HOST_TID, args: dict | None = None) -> None:
        """Record a point event at the current clock reading."""
        event = {"name": name, "cat": cat, "ph": "i", "ts": self._clock(), "tid": tid}
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)
            self.recorded += 1

    def complete(
        self,
        name: str,
        cat: str,
        tid: int,
        start_s: float,
        dur_s: float,
        args: dict | None = None,
    ) -> None:
        """Record a finished span from caller-measured timestamps (the
        hot-path form: callers read :meth:`now` before and after the
        guarded region, avoiding context-manager overhead)."""
        event = {
            "name": name, "cat": cat, "ph": "X",
            "ts": start_s, "dur": dur_s, "tid": tid,
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)
            self.recorded += 1

    @contextmanager
    def span(self, name: str, cat: str, tid: int = HOST_TID, args: dict | None = None):
        """Record the enclosed block as one span (cold-path convenience)."""
        start = self._clock()
        try:
            yield self
        finally:
            self.complete(name, cat, tid, start, self._clock() - start, args)

    # -- export --------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events lost to the ring bound."""
        with self._lock:
            return self.recorded - len(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self) -> list[dict]:
        """A snapshot copy of the buffered events (raw clock seconds),
        each a JSON-safe flat dict — the wire form workers ship."""
        with self._lock:
            return [dict(e) for e in self._events]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.recorded = 0

    def __repr__(self) -> str:
        return (
            f"Tracer({len(self)}/{self.capacity} events buffered, "
            f"{self.dropped} dropped)"
        )


# ---------------------------------------------------------------------------
# The process tracer
# ---------------------------------------------------------------------------

#: The installed process tracer, or None.  Hot paths read this attribute
#: directly (``trace.ACTIVE is not None``) — keep it a plain module
#: global so the disabled check stays one dict lookup + identity test.
ACTIVE: Tracer | None = None


def install(tracer: Tracer | None = None, capacity: int = DEFAULT_CAPACITY) -> Tracer:
    """Install (and return) the process tracer: the given one, or a
    fresh ring of ``capacity`` events.  Tracing is process-scoped
    because the trace's pid axis is the process — one buffer collects
    every thread and stream lane of this process."""
    global ACTIVE
    ACTIVE = tracer if tracer is not None else Tracer(capacity=capacity)
    return ACTIVE


def uninstall() -> Tracer | None:
    """Remove and return the process tracer (its buffer intact)."""
    global ACTIVE
    tracer, ACTIVE = ACTIVE, None
    return tracer


def active() -> Tracer | None:
    """The installed process tracer, or None."""
    return ACTIVE


# ---------------------------------------------------------------------------
# Chrome trace-event export and the fleet merge
# ---------------------------------------------------------------------------

def _thread_name(tid: int) -> str:
    return "host" if tid == HOST_TID else f"stream-{tid - 1}"


def _chrome_events(
    events: list[dict], pid: int, offset_s: float, base_s: float
) -> list[dict]:
    """Convert raw events (clock seconds) to Chrome form: microsecond
    timestamps on a common clock (``ts - offset - base``)."""
    out = []
    for event in events:
        converted = {
            "name": event["name"],
            "cat": event["cat"],
            "ph": event["ph"],
            "ts": (float(event["ts"]) - offset_s - base_s) * 1e6,
            "pid": pid,
            "tid": int(event.get("tid", HOST_TID)),
        }
        if event["ph"] == "X":
            converted["dur"] = float(event.get("dur", 0.0)) * 1e6
        if event["ph"] == "i":
            converted["s"] = "t"  # instant scope: thread
        if "args" in event:
            converted["args"] = event["args"]
        out.append(converted)
    return out


def merge_process_traces(processes: list[dict]) -> dict:
    """Merge per-process event buffers into one Chrome trace object.

    Each entry of ``processes`` describes one process::

        {"name": "worker-0", "pid": 1, "events": [...],
         "offset_s": 0.0123}   # offset_s maps its clock onto pid 0's

    Timestamps are rebased so the earliest event across the fleet lands
    at t=0; metadata events name every process and thread lane.  The
    result serializes with ``json.dumps`` and loads in Perfetto.
    """
    base = min(
        (
            float(e["ts"]) - float(p.get("offset_s", 0.0))
            for p in processes
            for e in p["events"]
        ),
        default=0.0,
    )
    trace_events: list[dict] = []
    for proc in processes:
        pid = int(proc["pid"])
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": HOST_TID,
            "args": {"name": str(proc["name"])},
        })
        for tid in sorted({int(e.get("tid", HOST_TID)) for e in proc["events"]}):
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": _thread_name(tid)},
            })
        trace_events.extend(
            _chrome_events(proc["events"], pid, float(proc.get("offset_s", 0.0)), base)
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_v": TRACE_JSON_VERSION, "producer": "repro.obs"},
    }


def chrome_trace(tracer: Tracer, name: str = "repro", pid: int = 0) -> dict:
    """This process's buffer as one Chrome trace object."""
    return merge_process_traces(
        [{"name": name, "pid": pid, "events": tracer.events(), "offset_s": 0.0}]
    )


# ---------------------------------------------------------------------------
# Summaries (the ``trace summarize`` CLI)
# ---------------------------------------------------------------------------

def load_trace(text: str) -> dict:
    """Parse Chrome trace JSON (object or bare event-array form),
    raising :class:`~repro.errors.VMError` on malformed input."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise VMError(f"malformed trace JSON: {exc}") from exc
    if isinstance(data, list):
        data = {"traceEvents": data}
    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        raise VMError("not a Chrome trace: expected a traceEvents array")
    return data


def summarize_trace(trace: dict) -> dict:
    """Aggregate a Chrome trace into per-phase and per-process rows.

    Returns ``{"phases": [...], "processes": [...]}``: one phase row per
    event category (spans, instants, total/mean span milliseconds) and
    one process row per pid (name, lanes, events, busy milliseconds).
    """
    events = trace["traceEvents"]
    names: dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[int(event["pid"])] = str(event.get("args", {}).get("name", ""))

    phases: dict[str, dict] = {}
    processes: dict[int, dict] = {}
    for event in events:
        ph = event.get("ph")
        if ph not in ("X", "i"):
            continue
        pid = int(event.get("pid", 0))
        dur_ms = float(event.get("dur", 0.0)) / 1e3 if ph == "X" else 0.0
        row = phases.setdefault(
            str(event.get("cat", "?")), {"spans": 0, "instants": 0, "busy_ms": 0.0}
        )
        row["spans" if ph == "X" else "instants"] += 1
        row["busy_ms"] += dur_ms
        prow = processes.setdefault(
            pid, {"events": 0, "busy_ms": 0.0, "lanes": set()}
        )
        prow["events"] += 1
        prow["busy_ms"] += dur_ms
        prow["lanes"].add(int(event.get("tid", HOST_TID)))

    phase_rows = [
        {
            "cat": cat,
            "spans": row["spans"],
            "instants": row["instants"],
            "busy_ms": row["busy_ms"],
            "mean_ms": row["busy_ms"] / row["spans"] if row["spans"] else 0.0,
        }
        for cat, row in sorted(phases.items())
    ]
    process_rows = [
        {
            "pid": pid,
            "process": names.get(pid, f"pid-{pid}"),
            "lanes": len(row["lanes"]),
            "events": row["events"],
            "busy_ms": row["busy_ms"],
        }
        for pid, row in sorted(processes.items())
    ]
    return {"phases": phase_rows, "processes": process_rows}
