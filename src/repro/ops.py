"""High-level operator API: quantize, transform, compile and run.

This is the entry point a downstream user reaches for first::

    import numpy as np
    from repro import ops
    from repro.dtypes import int6

    a = np.random.randn(32, 256).astype(np.float16)
    w = np.random.randn(256, 64)
    result = ops.quantized_matmul(a, w, weight_dtype=int6, group_size=128)

Everything happens through the real stack: the weight is quantized and
layout-transformed, the matmul template is instantiated and compiled
(verifier, planners, instruction selection, CUDA emission), and the
program is executed bit-accurately on the VM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes import DataType, float16, float32, uint8
from repro.kernels import (
    MatmulConfig,
    matmul_layouts,
    quantized_matmul_program,
    splitk_reduce_program,
    splitk_slice_program,
)
from repro.quant import QuantScheme, quantize_weight, transform_weight
from repro.runtime import Runtime


class _NullCapture:
    """Context stand-in when graph capture is disabled: launches inside
    the block execute eagerly and no graph is produced."""

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return None


@dataclass
class QuantizedLinear:
    """A reusable quantized-weight operator (weights resident on device).

    Programs are memoized per activation row count ``m``; combined with the
    runtime's specialization cache this makes repeated calls launch-only —
    no template re-instantiation and no re-lowering on the hot path.

    With ``config.split_k >= 2`` the product runs as ``split_k``
    independent slice kernels plus a reduce kernel
    (:mod:`repro.kernels.splitk`); ``streams > 0`` issues each slice on
    its own stream of the runtime's pool (the slices write disjoint
    workspace slabs, so they execute concurrently, and the reduce is
    hazard-ordered behind all of them automatically).

    The streamed split-k fan-out is **graph-captured** (``use_graphs``,
    on by default): the first call for a row count ``m`` records the
    slice + reduce launch DAG once (:mod:`repro.runtime.graphs`), and
    every later call replays it with the activation, workspace and
    output pointers rebound — per-call scheduling, hazard analysis and
    coalescing decisions are all skipped.

    With the runtime's profiler enabled (``runtime.enable_profiling()``)
    every call records per-node costs; :meth:`reoptimize` then replaces
    each captured graph with its profile-guided
    :meth:`~repro.runtime.graphs.ExecutionGraph.optimize` image —
    measured-cost stream placement instead of the capture-time
    heuristic — and later calls replay the optimized DAGs.

    With ``runtime.enable_adaptive()`` that loop closes by itself:
    freshly captured graphs come under
    :class:`~repro.runtime.adaptive.AdaptivePolicy` management, and
    after the policy's warmup window of profiled calls each live graph
    is atomically swapped for its optimized image — no explicit
    :meth:`reoptimize` call anywhere.
    """

    runtime: Runtime
    scheme: QuantScheme
    config: MatmulConfig
    k: int
    n: int
    b_addr: int
    s_addr: int
    act_dtype: DataType = float16
    #: Streams to spread split-k slices over (0 = synchronous launches).
    streams: int = 0
    #: Capture the streamed split-k DAG once per ``m`` and replay it.
    use_graphs: bool = True

    #: Bound on memoized per-``m`` programs (oldest evicted beyond this),
    #: mirroring the runtime cache's LRU bound one layer down.
    MAX_PROGRAMS = 32

    def __post_init__(self) -> None:
        self._programs: dict = {}
        self._graphs: dict = {}

    def _memoized(self, key, build):
        program = self._programs.pop(key, None)
        if program is None:
            program = build()
        self._programs[key] = program  # reinsert = most recently used
        while len(self._programs) > self.MAX_PROGRAMS:
            self._programs.pop(next(iter(self._programs)))
        return program

    def program_for(self, m: int):
        """The matmul program specialized to ``m`` rows (memoized, bounded)."""
        return self._memoized(
            m,
            lambda: quantized_matmul_program(
                m, self.n, self.k, self.act_dtype, self.scheme, self.config
            ),
        )

    def splitk_programs_for(self, m: int):
        """The (slice, reduce) program pair for ``m`` rows (memoized)."""
        return self._memoized(
            ("splitk", m),
            lambda: (
                splitk_slice_program(
                    m, self.n, self.k, self.act_dtype, self.scheme, self.config
                ),
                splitk_reduce_program(m, self.n, self.config.split_k, self.act_dtype),
            ),
        )

    def __call__(self, a: np.ndarray) -> np.ndarray:
        """Compute ``a @ dequant(W)`` for activations ``a[m, k]``."""
        a = np.asarray(a)
        if a.ndim != 2 or a.shape[1] != self.k:
            raise ValueError(f"activations must be [m, {self.k}], got {a.shape}")
        m = a.shape[0]
        a_addr = self.runtime.upload(self.act_dtype.quantize(a), self.act_dtype)
        c_addr = self.runtime.empty([m, self.n], self.act_dtype)
        if self.config.split_k >= 2:
            self._launch_splitk(m, a_addr, c_addr)
        else:
            program = self.program_for(m)
            self.runtime.launch(program, [a_addr, self.b_addr, self.s_addr, c_addr])
        return self.runtime.download(c_addr, [m, self.n], self.act_dtype)

    def _launch_splitk(self, m: int, a_addr: int, c_addr: int) -> None:
        """Issue the split-k slice launches (one stream per slice when
        streaming) and the hazard-ordered reduce; blocks until done.

        When streaming with ``use_graphs``, the fan-out is captured as an
        execution graph on the first call per ``m`` and replayed (with
        the a/p/c buffers rebound) on every later call.
        """
        sk = self.config.split_k
        slice_prog, reduce_prog = self.splitk_programs_for(m)
        p_addr = self.runtime.empty([sk, m, self.n], float32)
        slice_bytes = m * self.n * 4
        tiles_per_slice = (self.k // self.config.block_k) // sk
        if self.streams > 0:
            pool = self.runtime.stream_pool(self.streams)
            graph = self._graphs.get(m) if self.use_graphs else None
            if graph is not None:
                graph.replay({"a": a_addr, "p": p_addr, "c": c_addr})
                return
            capture = (
                self.runtime.capture(self.streams)
                if self.use_graphs
                else _NullCapture()
            )
            with capture as g:
                for s in range(sk):
                    self.runtime.launch(
                        slice_prog,
                        [
                            a_addr,
                            self.b_addr,
                            self.s_addr,
                            p_addr + s * slice_bytes,
                            s * tiles_per_slice,
                        ],
                        stream=pool.streams[s % len(pool.streams)],
                    )
                self.runtime.launch(reduce_prog, [p_addr, c_addr], stream="auto").wait()
            if g is not None:
                a_bytes = (m * self.k * self.act_dtype.nbits + 7) // 8
                c_bytes = (m * self.n * self.act_dtype.nbits + 7) // 8
                g.bind("a", a_addr, a_bytes)
                g.bind("p", p_addr, sk * slice_bytes)
                g.bind("c", c_addr, c_bytes)
                # Under runtime.enable_adaptive() the pool's capture()
                # already returned the graph under policy management:
                # after the warmup window of profiled replays it is
                # atomically swapped for its profile-optimized image —
                # no explicit reoptimize() call.
                self._graphs[m] = g
                while len(self._graphs) > self.MAX_PROGRAMS:
                    self._graphs.pop(next(iter(self._graphs)))
                g.replay()  # first call executes via the fresh graph
        else:
            for s in range(sk):
                self.runtime.launch(
                    slice_prog,
                    [
                        a_addr,
                        self.b_addr,
                        self.s_addr,
                        p_addr + s * slice_bytes,
                        s * tiles_per_slice,
                    ],
                )
            self.runtime.launch(reduce_prog, [p_addr, c_addr])

    def reoptimize(self, profile=None) -> int:
        """Re-instantiate every captured split-k graph with profile-guided
        placement (:meth:`~repro.runtime.graphs.ExecutionGraph.optimize`).

        ``profile`` defaults to the runtime's active profiler.  Returns
        the number of graphs optimized; later calls at those row counts
        replay the optimized DAGs (bindings carry over, so rebinding
        works unchanged).  A no-op when nothing was captured yet.

        With ``runtime.enable_adaptive()`` this call is unnecessary —
        the attached policy swaps the graphs automatically after its
        warmup window — but remains valid: managed graphs swap their
        live image in place and stay under management.

        Graphs the profile has never described (e.g. row counts whose
        traffic predates profiling) re-balance with uniform costs
        instead of aborting the loop — ``optimize``'s loud
        wrong-profile contract is for direct calls, not for batch
        re-optimization over mixed-age graphs.
        """
        profile = profile if profile is not None else self.runtime.profiler
        for m, graph in list(self._graphs.items()):
            matched = profile if graph.profile_matches(profile) else None
            self._graphs[m] = graph.optimize(matched)
        return len(self._graphs)


def _default_config(weight_dtype: DataType) -> MatmulConfig:
    """Smallest tile whose per-thread weight fragment is byte-aligned.

    Odd bit widths need more elements per thread (paper Section 7.2), so
    the fallback widens the n/k tile until alignment holds.
    """
    from repro.errors import CompilationError

    for bn, bk in ((8, 16), (16, 16), (8, 32), (16, 32), (32, 32)):
        candidate = MatmulConfig(block_m=16, block_n=bn, block_k=bk)
        try:
            candidate.validate(weight_dtype)
            return candidate
        except CompilationError:
            continue
    raise CompilationError(f"no default tile configuration for {weight_dtype}")


def prepare_linear(
    weight: np.ndarray,
    weight_dtype: DataType,
    group_size: int = 128,
    config: MatmulConfig | None = None,
    runtime: Runtime | None = None,
    streams: int = 0,
) -> QuantizedLinear:
    """Quantize and device-transform a weight matrix once, for many calls.

    ``streams`` (with a ``config`` whose ``split_k >= 2``) spreads the
    split-k slice kernels over that many runtime streams per call.
    """
    weight = np.asarray(weight, dtype=np.float64)
    k, n = weight.shape
    scheme = QuantScheme(weight_dtype, group_size=min(group_size, k))
    config = config or _default_config(weight_dtype)
    runtime = runtime or Runtime()
    q, scales = quantize_weight(weight, scheme)
    lay = matmul_layouts(config, weight_dtype)
    packed = transform_weight(q, weight_dtype, lay.b_warp)
    b_addr = runtime.upload(packed, uint8)
    s_addr = runtime.upload(float16.quantize(scales), float16)
    return QuantizedLinear(
        runtime=runtime,
        scheme=scheme,
        config=config,
        k=k,
        n=n,
        b_addr=b_addr,
        s_addr=s_addr,
        streams=streams,
    )


def quantized_matmul(
    a: np.ndarray,
    weight: np.ndarray,
    weight_dtype: DataType,
    group_size: int = 128,
    config: MatmulConfig | None = None,
) -> np.ndarray:
    """One-shot quantized matmul: ``a[m,k] @ dequant(quantize(weight[k,n]))``."""
    linear = prepare_linear(weight, weight_dtype, group_size, config)
    return linear(a)


def reference_quantized_matmul(
    a: np.ndarray,
    weight: np.ndarray,
    weight_dtype: DataType,
    group_size: int = 128,
) -> np.ndarray:
    """Numpy reference of the same computation (float16 scales)."""
    from repro.quant import dequantize_weight

    weight = np.asarray(weight, dtype=np.float64)
    k = weight.shape[0]
    scheme = QuantScheme(weight_dtype, group_size=min(group_size, k))
    q, scales = quantize_weight(weight, scheme)
    deq = dequantize_weight(q, float16.quantize(scales), scheme)
    return float16.quantize(np.asarray(a, dtype=np.float64) @ deq)
