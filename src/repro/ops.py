"""High-level operator API: quantize, transform, compile and run.

This is the entry point a downstream user reaches for first::

    import numpy as np
    from repro import ops
    from repro.dtypes import int6

    a = np.random.randn(32, 256).astype(np.float16)
    w = np.random.randn(256, 64)
    result = ops.quantized_matmul(a, w, weight_dtype=int6, group_size=128)

Everything happens through the real stack: the weight is quantized and
layout-transformed, the matmul template is instantiated and compiled
(verifier, planners, instruction selection, CUDA emission), and the
program is executed bit-accurately on the VM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes import DataType, float16, uint8
from repro.kernels import MatmulConfig, matmul_layouts, quantized_matmul_program
from repro.quant import QuantScheme, quantize_weight, transform_weight
from repro.runtime import Runtime


@dataclass
class QuantizedLinear:
    """A reusable quantized-weight operator (weights resident on device).

    Programs are memoized per activation row count ``m``; combined with the
    runtime's specialization cache this makes repeated calls launch-only —
    no template re-instantiation and no re-lowering on the hot path.
    """

    runtime: Runtime
    scheme: QuantScheme
    config: MatmulConfig
    k: int
    n: int
    b_addr: int
    s_addr: int
    act_dtype: DataType = float16

    #: Bound on memoized per-``m`` programs (oldest evicted beyond this),
    #: mirroring the runtime cache's LRU bound one layer down.
    MAX_PROGRAMS = 32

    def __post_init__(self) -> None:
        self._programs: dict[int, object] = {}

    def program_for(self, m: int):
        """The matmul program specialized to ``m`` rows (memoized, bounded)."""
        program = self._programs.pop(m, None)
        if program is None:
            program = quantized_matmul_program(
                m, self.n, self.k, self.act_dtype, self.scheme, self.config
            )
        self._programs[m] = program  # reinsert = most recently used
        while len(self._programs) > self.MAX_PROGRAMS:
            self._programs.pop(next(iter(self._programs)))
        return program

    def __call__(self, a: np.ndarray) -> np.ndarray:
        """Compute ``a @ dequant(W)`` for activations ``a[m, k]``."""
        a = np.asarray(a)
        if a.ndim != 2 or a.shape[1] != self.k:
            raise ValueError(f"activations must be [m, {self.k}], got {a.shape}")
        m = a.shape[0]
        program = self.program_for(m)
        a_addr = self.runtime.upload(self.act_dtype.quantize(a), self.act_dtype)
        c_addr = self.runtime.empty([m, self.n], self.act_dtype)
        self.runtime.launch(program, [a_addr, self.b_addr, self.s_addr, c_addr])
        return self.runtime.download(c_addr, [m, self.n], self.act_dtype)


def _default_config(weight_dtype: DataType) -> MatmulConfig:
    """Smallest tile whose per-thread weight fragment is byte-aligned.

    Odd bit widths need more elements per thread (paper Section 7.2), so
    the fallback widens the n/k tile until alignment holds.
    """
    from repro.errors import CompilationError

    for bn, bk in ((8, 16), (16, 16), (8, 32), (16, 32), (32, 32)):
        candidate = MatmulConfig(block_m=16, block_n=bn, block_k=bk)
        try:
            candidate.validate(weight_dtype)
            return candidate
        except CompilationError:
            continue
    raise CompilationError(f"no default tile configuration for {weight_dtype}")


def prepare_linear(
    weight: np.ndarray,
    weight_dtype: DataType,
    group_size: int = 128,
    config: MatmulConfig | None = None,
    runtime: Runtime | None = None,
) -> QuantizedLinear:
    """Quantize and device-transform a weight matrix once, for many calls."""
    weight = np.asarray(weight, dtype=np.float64)
    k, n = weight.shape
    scheme = QuantScheme(weight_dtype, group_size=min(group_size, k))
    config = config or _default_config(weight_dtype)
    runtime = runtime or Runtime()
    q, scales = quantize_weight(weight, scheme)
    lay = matmul_layouts(config, weight_dtype)
    packed = transform_weight(q, weight_dtype, lay.b_warp)
    b_addr = runtime.upload(packed, uint8)
    s_addr = runtime.upload(float16.quantize(scales), float16)
    return QuantizedLinear(
        runtime=runtime,
        scheme=scheme,
        config=config,
        k=k,
        n=n,
        b_addr=b_addr,
        s_addr=s_addr,
    )


def quantized_matmul(
    a: np.ndarray,
    weight: np.ndarray,
    weight_dtype: DataType,
    group_size: int = 128,
    config: MatmulConfig | None = None,
) -> np.ndarray:
    """One-shot quantized matmul: ``a[m,k] @ dequant(quantize(weight[k,n]))``."""
    linear = prepare_linear(weight, weight_dtype, group_size, config)
    return linear(a)


def reference_quantized_matmul(
    a: np.ndarray,
    weight: np.ndarray,
    weight_dtype: DataType,
    group_size: int = 128,
) -> np.ndarray:
    """Numpy reference of the same computation (float16 scales)."""
    from repro.quant import dequantize_weight

    weight = np.asarray(weight, dtype=np.float64)
    k = weight.shape[0]
    scheme = QuantScheme(weight_dtype, group_size=min(group_size, k))
    q, scales = quantize_weight(weight, scheme)
    deq = dequantize_weight(q, float16.quantize(scales), scheme)
    return float16.quantize(np.asarray(a, dtype=np.float64) @ deq)
