"""Analytical GPU performance model and baseline systems."""

from repro.perf.gpus import A100, GPUS, H100, L40S, GpuSpec, gpu_by_name
from repro.perf.pipelines import (
    PIPELINES,
    LoadingPipeline,
    Stage,
    ladder_pipeline,
    tilus_pipeline,
    triton_pipeline,
)
from repro.perf.systems import (
    ALL_SYSTEMS,
    CuBLAS,
    Ladder,
    Marlin,
    QuantLLM,
    System,
    Tilus,
    Triton,
    speedup_vs_cublas,
    system_by_name,
)
from repro.perf.workload import MatmulWorkload

__all__ = [
    "GpuSpec",
    "GPUS",
    "L40S",
    "A100",
    "H100",
    "gpu_by_name",
    "MatmulWorkload",
    "System",
    "CuBLAS",
    "Triton",
    "Ladder",
    "QuantLLM",
    "Marlin",
    "Tilus",
    "ALL_SYSTEMS",
    "system_by_name",
    "speedup_vs_cublas",
    "LoadingPipeline",
    "Stage",
    "PIPELINES",
    "triton_pipeline",
    "ladder_pipeline",
    "tilus_pipeline",
]
