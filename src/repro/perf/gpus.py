"""GPU specifications used by the analytical performance model.

The three devices of the paper's evaluation (Section 9.1 and 9.5.1):
NVIDIA L40S (Ada Lovelace), A100 (Ampere) and H100 (Hopper).  Numbers are
public datasheet values; the model calibrates *efficiencies* separately so
these stay honest hardware constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TilusError


@dataclass(frozen=True)
class GpuSpec:
    """Datasheet-level description of one GPU."""

    name: str
    arch: str                   # "ampere" | "ada" | "hopper"
    compute_capability: tuple[int, int]
    dram_bytes: int             # device memory capacity
    mem_bandwidth: float        # B/s, peak
    tc_fp16_flops: float        # dense fp16 tensor-core FLOP/s
    cuda_fp32_flops: float      # CUDA-core fp32 FLOP/s
    cuda_fp16_flops: float      # CUDA-core fp16 FLOP/s (non-tensor-core)
    num_sms: int
    shared_mem_per_sm: int      # bytes
    l2_bytes: int
    max_blocks_per_sm: int = 16

    @property
    def int_ops(self) -> float:
        """Approximate integer/logic op throughput (ops/s) for dequant
        instruction sequences (PRMT/LOP3/shifts run on INT32 pipes)."""
        return self.cuda_fp32_flops / 2  # one op per FMA slot

    def __str__(self) -> str:
        return self.name


L40S = GpuSpec(
    name="L40S",
    arch="ada",
    compute_capability=(8, 9),
    dram_bytes=48 * 1024**3,
    mem_bandwidth=864e9,
    tc_fp16_flops=181e12,
    cuda_fp32_flops=91.6e12,
    cuda_fp16_flops=91.6e12,
    num_sms=142,
    shared_mem_per_sm=100 * 1024,
    l2_bytes=96 * 1024**2,
)

A100 = GpuSpec(
    name="A100",
    arch="ampere",
    compute_capability=(8, 0),
    dram_bytes=80 * 1024**3,
    mem_bandwidth=2039e9,
    tc_fp16_flops=312e12,
    cuda_fp32_flops=19.5e12,
    cuda_fp16_flops=78e12,
    num_sms=108,
    shared_mem_per_sm=164 * 1024,
    l2_bytes=40 * 1024**2,
)

H100 = GpuSpec(
    name="H100",
    arch="hopper",
    compute_capability=(9, 0),
    dram_bytes=80 * 1024**3,
    mem_bandwidth=3352e9,
    tc_fp16_flops=989e12,
    cuda_fp32_flops=67e12,
    cuda_fp16_flops=134e12,
    num_sms=132,
    shared_mem_per_sm=228 * 1024,
    l2_bytes=50 * 1024**2,
)

GPUS: dict[str, GpuSpec] = {g.name: g for g in (L40S, A100, H100)}


def gpu_by_name(name: str) -> GpuSpec:
    if name not in GPUS:
        raise TilusError(f"unknown GPU {name!r}; known: {sorted(GPUS)}")
    return GPUS[name]
