"""Weight-loading pipeline models (paper Figure 1).

Each system moves a weight tile from global memory to tensor-core-ready
registers through a different sequence of stages.  This module represents
those stage graphs explicitly — which stage uses which memory scope, which
stages pipeline with the next tile, and which one is the bottleneck — and
computes per-tile costs for the Figure 1 comparison bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dtypes import DataType, float16
from repro.perf.gpus import GpuSpec


@dataclass(frozen=True)
class Stage:
    """One step of a weight-loading pipeline."""

    name: str           # e.g. "cp.async (pipelined)"
    src: str            # GMEM | SMEM | REGS
    dst: str
    pipelined: bool     # overlaps with compute of the previous tile
    bytes_moved: float  # per tile
    is_bottleneck: bool = False


@dataclass
class LoadingPipeline:
    """A named sequence of stages (one row of Figure 1)."""

    system: str
    stages: list[Stage] = field(default_factory=list)

    def serial_bytes(self) -> float:
        """Bytes moved by stages that do NOT overlap compute."""
        return sum(s.bytes_moved for s in self.stages if not s.pipelined)

    def total_bytes(self) -> float:
        return sum(s.bytes_moved for s in self.stages)

    def bottleneck(self) -> Stage | None:
        for stage in self.stages:
            if stage.is_bottleneck:
                return stage
        return None

    def critical_time(self, gpu: GpuSpec, smem_bandwidth: float = 20e12) -> float:
        """Per-tile critical-path time: serial stages at their scope's
        bandwidth (GMEM stages at DRAM bw, SMEM/REGS stages at shared bw)."""
        time = 0.0
        for stage in self.stages:
            if stage.pipelined:
                continue
            bw = gpu.mem_bandwidth if stage.src == "GMEM" else smem_bandwidth
            time += stage.bytes_moved / bw
        return time


def triton_pipeline(tile_elems: int, weight_dtype: DataType) -> LoadingPipeline:
    """Paper Figure 1(a): pipelined cp.async + lds, then unpack/cast, then
    a layout conversion bouncing the f16 tile through shared memory —
    the bottleneck stage."""
    wbytes = tile_elems * weight_dtype.nbits / 8
    fbytes = tile_elems * float16.nbits / 8
    return LoadingPipeline(
        system="triton",
        stages=[
            Stage("cp.async (pipelined)", "GMEM", "SMEM", True, wbytes),
            Stage("load shared (lds)", "SMEM", "REGS", True, wbytes),
            Stage("unpack + cast", "REGS", "REGS", True, 0.0),
            Stage(
                "convert layout via SMEM",
                "REGS",
                "REGS",
                False,
                2 * fbytes,
                is_bottleneck=True,
            ),
        ],
    )


def ladder_pipeline(tile_elems: int, weight_dtype: DataType) -> LoadingPipeline:
    """Paper Figure 1(b): plain ldg without pipelining, vectorized cast,
    store to shared, then ldmatrix — nothing overlaps compute."""
    wbytes = tile_elems * weight_dtype.nbits / 8
    fbytes = tile_elems * float16.nbits / 8
    return LoadingPipeline(
        system="ladder",
        stages=[
            Stage("ldg (no pipeline)", "GMEM", "REGS", False, wbytes, is_bottleneck=True),
            Stage("vectorized cast", "REGS", "REGS", False, 0.0),
            Stage("store shared (sts)", "REGS", "SMEM", False, fbytes),
            Stage("ldmatrix", "SMEM", "REGS", False, fbytes),
        ],
    )


def tilus_pipeline(tile_elems: int, weight_dtype: DataType) -> LoadingPipeline:
    """Paper Figure 1(c): pipelined cp.async + lds, zero-cost ``View``
    reinterpretation, vectorized cast — no serial stage at all."""
    wbytes = tile_elems * weight_dtype.nbits / 8
    return LoadingPipeline(
        system="tilus",
        stages=[
            Stage("cp.async (pipelined)", "GMEM", "SMEM", True, wbytes),
            Stage("load shared (lds)", "SMEM", "REGS", True, wbytes),
            Stage("reinterpret (View, free)", "REGS", "REGS", True, 0.0),
            Stage("vectorized cast", "REGS", "REGS", True, 0.0),
        ],
    )


PIPELINES = {
    "triton": triton_pipeline,
    "ladder": ladder_pipeline,
    "tilus": tilus_pipeline,
}
