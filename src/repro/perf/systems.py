"""Analytical latency models of Tilus and every baseline system.

Each system model reproduces the *mechanisms* the paper identifies, with
calibrated efficiency constants:

- **cuBLAS** (f16): near-roofline GEMM; the common denominator of Fig. 10.
- **Triton**: supports integer types via manual unpacking; pays the
  register-layout conversion through shared memory after casting (paper
  Figure 1(a), step 4 — "a major bottleneck").
- **Ladder**: global-memory layout transform avoids conversion, but *no
  software pipelining* (load and compute serialize, Figure 1(b)) and
  type-level packing restricts bit widths to powers of two.  Its decode
  kernels under-use CUDA/Tensor cores (paper Section 9.4) and it crashes
  on Hopper (Figure 13, "ERR").
- **QuantLLM**: hand-written FP6/FP5 kernels with heuristic configs; no
  sub-channel scales; tuned for very small batches.
- **Marlin**: hand-optimized int4 kernels, Ampere/Ada only; within a few
  percent of Tilus on its one supported type.
- **Tilus**: the paper's system — pipelined weight loading, zero-cost
  register reinterpretation, vectorized PRMT/LOP3 casting.  The dequant
  instruction count comes from the *actual compiler recipes* in
  :mod:`repro.compiler.lowprec`.

All times are seconds.  Constants were calibrated once against the
headline ratios of the paper (1.75x vs Triton, 2.61x vs Ladder, 1.29x vs
QuantLLM, 1.03x vs Marlin) and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.lowprec import cast_cost_per_element
from repro.dtypes import DataType, float16
from repro.errors import UnsupportedKernelError
from repro.perf.gpus import GpuSpec
from repro.perf.workload import MatmulWorkload

#: Kernel launch + tail latency floor (s).
LAUNCH_OVERHEAD = 2.8e-6


def _mem_time(workload: MatmulWorkload, gpu: GpuSpec, efficiency: float) -> float:
    """DRAM time: weights + scales + activations + output."""
    total = (
        workload.weight_bytes
        + workload.scale_bytes
        + workload.act_bytes
        + workload.out_bytes
    )
    return total / (gpu.mem_bandwidth * efficiency)


def _tc_time(workload: MatmulWorkload, gpu: GpuSpec, efficiency: float) -> float:
    """Tensor-core time for the fp16 mma work."""
    return workload.flops / (gpu.tc_fp16_flops * efficiency)


def _grid_utilization(workload: MatmulWorkload, gpu: GpuSpec, block_n: int, split_k: int) -> float:
    """Fraction of SMs occupied by the kernel's thread blocks."""
    import math

    blocks = math.ceil(workload.n / block_n) * max(1, split_k)
    return min(1.0, blocks / gpu.num_sms)


class System:
    """Base class: a kernel provider with a support matrix and a latency
    model."""

    name = "system"
    display = "system"

    def supports(self, workload: MatmulWorkload, gpu: GpuSpec) -> bool:
        try:
            self.check(workload, gpu)
            return True
        except UnsupportedKernelError:
            return False

    def check(self, workload: MatmulWorkload, gpu: GpuSpec) -> None:
        """Raise :class:`UnsupportedKernelError` when unsupported."""

    def matmul_latency(self, workload: MatmulWorkload, gpu: GpuSpec) -> float:
        raise NotImplementedError


@dataclass
class CuBLAS(System):
    """Vendor half-precision GEMM (the speedup-1.0 reference)."""

    mem_efficiency: float = 0.88
    tc_efficiency: float = 0.75

    name = "cublas"
    display = "cuBLAS (fp16)"

    def check(self, workload: MatmulWorkload, gpu: GpuSpec) -> None:
        if workload.weight_dtype.nbits < 16 or not workload.weight_dtype.is_float:
            raise UnsupportedKernelError(
                f"cuBLAS has no kernels for {workload.weight_dtype} weights"
            )

    def matmul_latency(self, workload: MatmulWorkload, gpu: GpuSpec) -> float:
        mem = _mem_time(workload, gpu, self.mem_efficiency)
        compute = _tc_time(workload, gpu, self.tc_efficiency)
        return max(mem, compute) + LAUNCH_OVERHEAD


@dataclass
class Tilus(System):
    """The paper's system (our reproduction).

    Decode: pipelined, so latency is the max of DRAM time and compute
    (dequant + mma), plus launch overhead.  The dequant instruction count
    per element comes from the compiler's PRMT/LOP3 recipes.  Prefill:
    tensor-core bound with a small dequant tax on issue slots.
    """

    mem_efficiency: float = 0.92
    tc_efficiency: float = 0.80
    dequant_throughput_frac: float = 0.038  # of tensor-core fp16 rate
    prefill_dequant_tax: float = 0.92

    name = "tilus"
    display = "Tilus (Ours)"

    def check(self, workload: MatmulWorkload, gpu: GpuSpec) -> None:
        w = workload.weight_dtype
        if w.nbits > 16:
            raise UnsupportedKernelError(f"{w} weights exceed 16 bits")

    def dequant_time(self, workload: MatmulWorkload, gpu: GpuSpec) -> float:
        w = workload.weight_dtype
        if w.nbits >= 16:
            return 0.0
        ops = cast_cost_per_element(w, workload.act_dtype if workload.act_dtype.nbits == 16 else float16)
        throughput = gpu.tc_fp16_flops * self.dequant_throughput_frac
        return workload.weight_elements * ops / throughput

    def matmul_latency(self, workload: MatmulWorkload, gpu: GpuSpec) -> float:
        self.check(workload, gpu)
        mem = _mem_time(workload, gpu, self.mem_efficiency)
        dequant = self.dequant_time(workload, gpu)
        tc_eff = self.tc_efficiency
        if workload.weight_dtype.nbits < 16:
            tc_eff *= self.prefill_dequant_tax
        tc = _tc_time(workload, gpu, tc_eff)
        # The pipelined kernel overlaps DRAM traffic, tensor-core mma and
        # the INT-pipe dequant sequence; the slowest engine wins.
        return max(mem, tc, dequant) + LAUNCH_OVERHEAD


@dataclass
class Triton(System):
    """Triton with manual sub-byte unpacking (paper Figure 1(a)).

    The post-cast register layout conversion routes the full weight tile
    through shared memory with a block-wide barrier on both sides; that
    stage does not overlap the pipeline, so it adds to the critical path.
    Unpacking without LOP3 fusion costs roughly twice Tilus's cast ops.
    """

    mem_efficiency: float = 0.82
    tc_efficiency: float = 0.65
    conv_bandwidth: float = 18.0e12   # effective shared-memory conv thru-put, B/s
    dequant_throughput_frac: float = 0.0506  # of tensor-core fp16 rate

    name = "triton"
    display = "Triton"

    def check(self, workload: MatmulWorkload, gpu: GpuSpec) -> None:
        w = workload.weight_dtype
        if w.is_float and w.nbits < 16:
            raise UnsupportedKernelError(
                f"Triton has no sub-byte float support ({w})"
            )
        if w.nbits not in (1, 2, 4, 8, 16):
            raise UnsupportedKernelError(
                f"manual unpacking in Triton needs power-of-two widths, got {w}"
            )

    def matmul_latency(self, workload: MatmulWorkload, gpu: GpuSpec) -> float:
        self.check(workload, gpu)
        mem = _mem_time(workload, gpu, self.mem_efficiency)
        w = workload.weight_dtype
        if w.nbits < 16:
            conv = workload.weight_elements * workload.act_dtype.nbits / 8 * 2 / self.conv_bandwidth
            ops = 2.0 * cast_cost_per_element(w, float16)
            dequant = workload.weight_elements * ops / (
                gpu.tc_fp16_flops * self.dequant_throughput_frac
            )
        else:
            conv = dequant = 0.0
        compute = _tc_time(workload, gpu, self.tc_efficiency) + dequant
        return max(mem, compute) + conv + LAUNCH_OVERHEAD


@dataclass
class Ladder(System):
    """Ladder/BitBLAS (paper Figure 1(b)).

    Global layout transformation avoids register conversion, but the
    schedule has no software pipelining: DRAM time and compute time add
    up.  Type-level packing restricts widths to powers of two.  Decode
    kernels pick poor CUDA-core (m < 16) and tensor-core (m >= 16)
    schedules without k-parallelization (paper Section 9.4).  Hopper
    kernels are miscompiled (Figure 13 "ERR").
    """

    mem_efficiency: float = 0.78
    tc_efficiency_prefill: float = 0.52
    tc_efficiency_decode: float = 0.085
    cuda_efficiency_tiny: float = 0.14
    dequant_throughput_frac: float = 0.0506  # of tensor-core fp16 rate

    name = "ladder"
    display = "Ladder"

    def check(self, workload: MatmulWorkload, gpu: GpuSpec) -> None:
        if gpu.arch == "hopper":
            raise UnsupportedKernelError(
                "Ladder emits an illegal instruction on Hopper (ERR)"
            )
        w = workload.weight_dtype
        if w.nbits not in (1, 2, 4, 8, 16):
            raise UnsupportedKernelError(
                f"Ladder's type-level packing needs power-of-two widths, got {w}"
            )
        if w.is_float and w.nbits < 16:
            raise UnsupportedKernelError(f"Ladder does not support {w}")

    def matmul_latency(self, workload: MatmulWorkload, gpu: GpuSpec) -> float:
        self.check(workload, gpu)
        mem = _mem_time(workload, gpu, self.mem_efficiency)
        w = workload.weight_dtype
        if w.nbits < 16:
            dequant = workload.weight_elements * cast_cost_per_element(w, float16) / (
                gpu.tc_fp16_flops * self.dequant_throughput_frac
            )
        else:
            dequant = 0.0
        if workload.m < 16:
            compute = workload.flops / (gpu.cuda_fp16_flops * self.cuda_efficiency_tiny)
        elif workload.m <= 256:
            compute = _tc_time(workload, gpu, self.tc_efficiency_decode)
        else:
            compute = _tc_time(workload, gpu, self.tc_efficiency_prefill)
        # No pipelining: stages serialize.
        return mem + compute + dequant + LAUNCH_OVERHEAD


@dataclass
class QuantLLM(System):
    """Quant-LLM's hand-written FP6/FP5 kernels (float-only, heuristic
    configs, per-channel scales only, small-batch focus)."""

    mem_efficiency: float = 0.78
    tc_efficiency: float = 0.50
    dequant_throughput_frac: float = 0.0455  # of tensor-core fp16 rate
    batch_penalty_threshold: int = 8

    name = "quantllm"
    display = "QuantLLM"

    def check(self, workload: MatmulWorkload, gpu: GpuSpec) -> None:
        w = workload.weight_dtype
        if not (w.is_float and w.nbits in (5, 6)):
            raise UnsupportedKernelError(
                f"QuantLLM only ships FP5/FP6 kernels, got {w}"
            )
        if gpu.compute_capability < (8, 0):
            raise UnsupportedKernelError("QuantLLM requires compute capability >= 8.0")

    def matmul_latency(self, workload: MatmulWorkload, gpu: GpuSpec) -> float:
        self.check(workload, gpu)
        mem = _mem_time(workload, gpu, self.mem_efficiency)
        dequant = workload.weight_elements * 1.3 * cast_cost_per_element(
            workload.weight_dtype, float16
        ) / (gpu.tc_fp16_flops * self.dequant_throughput_frac)
        compute = _tc_time(workload, gpu, self.tc_efficiency) + dequant
        latency = max(mem, compute) + 2 * LAUNCH_OVERHEAD
        if workload.m > self.batch_penalty_threshold:
            # The heuristic split-k policy over-partitions beyond its
            # intended batch range; reduction traffic grows.
            latency *= 1.15
        return latency


@dataclass
class Marlin(System):
    """Marlin: hand-optimized signed-int4 GEMM, Ampere/Ada only."""

    mem_efficiency: float = 0.88
    tc_efficiency: float = 0.70
    dequant_throughput_frac: float = 0.0734  # of tensor-core fp16 rate

    name = "marlin"
    display = "Marlin"

    def check(self, workload: MatmulWorkload, gpu: GpuSpec) -> None:
        w = workload.weight_dtype
        if not (w.is_integer and w.is_signed and w.nbits == 4):
            raise UnsupportedKernelError(f"Marlin is int4-only, got {w}")
        if gpu.arch == "hopper":
            raise UnsupportedKernelError("Marlin does not support Hopper GPUs")

    def matmul_latency(self, workload: MatmulWorkload, gpu: GpuSpec) -> float:
        self.check(workload, gpu)
        mem = _mem_time(workload, gpu, self.mem_efficiency)
        dequant = workload.weight_elements * cast_cost_per_element(
            workload.weight_dtype, float16
        ) / (gpu.tc_fp16_flops * self.dequant_throughput_frac)
        compute = _tc_time(workload, gpu, self.tc_efficiency) + dequant
        return max(mem, compute) + LAUNCH_OVERHEAD


ALL_SYSTEMS: dict[str, System] = {
    s.name: s
    for s in (CuBLAS(), Triton(), QuantLLM(), Ladder(), Marlin(), Tilus())
}


def system_by_name(name: str) -> System:
    if name not in ALL_SYSTEMS:
        raise UnsupportedKernelError(f"unknown system {name!r}")
    return ALL_SYSTEMS[name]


def speedup_vs_cublas(
    system: System, workload: MatmulWorkload, gpu: GpuSpec
) -> float:
    """Speedup of ``system`` on the quantized workload against the cuBLAS
    f16 kernel on the equivalent unquantized workload."""
    f16_workload = MatmulWorkload(
        m=workload.m,
        n=workload.n,
        k=workload.k,
        weight_dtype=float16,
        act_dtype=workload.act_dtype,
        group_size=workload.group_size,
    )
    base = CuBLAS().matmul_latency(f16_workload, gpu)
    return base / system.matmul_latency(workload, gpu)
