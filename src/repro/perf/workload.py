"""Workload description consumed by the performance model."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dtypes import DataType, dtype_from_name, float16


@dataclass(frozen=True)
class MatmulWorkload:
    """One quantized matrix multiplication ``C[m,n] = A[m,k] @ B[k,n]``.

    ``m`` is the batch (token) dimension: 1-16 during decode, thousands
    during prefill.  ``weight_dtype`` is the quantized storage type of B;
    ``act_dtype`` the activation/output type.
    """

    m: int
    n: int
    k: int
    weight_dtype: DataType
    act_dtype: DataType = float16
    group_size: int = 128

    @staticmethod
    def of(m: int, n: int, k: int, weight: str, act: str = "f16") -> "MatmulWorkload":
        return MatmulWorkload(
            m=m, n=n, k=k,
            weight_dtype=dtype_from_name(weight),
            act_dtype=dtype_from_name(act),
        )

    @property
    def weight_bytes(self) -> float:
        return self.k * self.n * self.weight_dtype.nbits / 8

    @property
    def scale_bytes(self) -> float:
        groups = max(1, self.k // self.group_size)
        return groups * self.n * self.act_dtype.nbits / 8

    @property
    def act_bytes(self) -> float:
        return self.m * self.k * self.act_dtype.nbits / 8

    @property
    def out_bytes(self) -> float:
        return self.m * self.n * self.act_dtype.nbits / 8

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k

    @property
    def weight_elements(self) -> int:
        return self.k * self.n

    def with_batch(self, m: int) -> "MatmulWorkload":
        return replace(self, m=m)

    def describe(self) -> str:
        return (
            f"matmul m={self.m} n={self.n} k={self.k} "
            f"w={self.weight_dtype} a={self.act_dtype}"
        )
