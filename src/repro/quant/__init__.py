"""Quantization toolkit: schemes, host-side packing, layout transforms,
codebook (LCQ) and microscaling (MX) extensions."""

from repro.quant.codebook import (
    Codebook,
    codebook_error,
    codebook_matmul_program,
    decode_weight,
    encode_weight,
    fit_codebook,
    pack_codes,
)
from repro.quant.mx import (
    MX_BLOCK,
    MX_FORMATS,
    MXFP4,
    MXFP6,
    MXFP8,
    MXINT8,
    MxFormat,
    dequantize_mx,
    mx_error,
    quantize_mx,
    scales_are_powers_of_two,
)
from repro.quant.packing import (
    byte_view_layout,
    tile_bytes,
    transform_weight,
    untransform_weight,
)
from repro.quant.scheme import (
    QuantScheme,
    dequantize_weight,
    quantization_error,
    quantize_weight,
)

__all__ = [
    "Codebook",
    "fit_codebook",
    "encode_weight",
    "decode_weight",
    "codebook_error",
    "pack_codes",
    "codebook_matmul_program",
    "MxFormat",
    "MX_BLOCK",
    "MX_FORMATS",
    "MXFP4",
    "MXFP6",
    "MXFP8",
    "MXINT8",
    "quantize_mx",
    "dequantize_mx",
    "mx_error",
    "scales_are_powers_of_two",
    "QuantScheme",
    "quantize_weight",
    "dequantize_weight",
    "quantization_error",
    "transform_weight",
    "untransform_weight",
    "byte_view_layout",
    "tile_bytes",
]
