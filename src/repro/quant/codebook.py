"""Codebook (LCQ-style) quantization — the paper's Section-10 extension.

Instead of uniform integer grids, each weight is stored as a small code
indexing a learned per-matrix codebook.  A Lloyd-Max (1-D k-means)
iteration fits the codebook to the weight distribution, which beats
uniform quantization for the heavy-tailed distributions of real models.

Kernels expand codes through the :class:`~repro.ir.instructions.Lookup`
instruction; :func:`codebook_matmul_program` builds the full matmul.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes import DataType, float16, float32, uint, uint8
from repro.errors import CompilationError, DataTypeError
from repro.ir.program import Program
from repro.lang import ProgramBuilder, pointer
from repro.quant.packing import transform_weight


@dataclass
class Codebook:
    """A fitted codebook: ``values[code]`` reconstructs a weight."""

    code_bits: int
    values: np.ndarray  # shape (2**code_bits,), float64

    @property
    def code_dtype(self) -> DataType:
        return uint(self.code_bits)

    @property
    def size(self) -> int:
        return 1 << self.code_bits


def fit_codebook(
    weight: np.ndarray, code_bits: int, iterations: int = 20
) -> Codebook:
    """Fit a Lloyd-Max codebook to the weight value distribution."""
    if not 1 <= code_bits <= 8:
        raise DataTypeError(f"code_bits must be in [1, 8], got {code_bits}")
    flat = np.asarray(weight, dtype=np.float64).reshape(-1)
    k = 1 << code_bits
    # Quantile initialization covers the tails.
    centers = np.quantile(flat, np.linspace(0.005, 0.995, k))
    centers = np.unique(centers)
    while centers.size < k:  # degenerate distributions: pad
        centers = np.append(centers, centers[-1] + 1e-6)
    for _ in range(iterations):
        codes = np.argmin(np.abs(flat[:, None] - centers[None, :]), axis=1)
        for idx in range(k):
            members = flat[codes == idx]
            if members.size:
                centers[idx] = members.mean()
        centers = np.sort(centers)
    return Codebook(code_bits=code_bits, values=centers)


def encode_weight(weight: np.ndarray, codebook: Codebook) -> np.ndarray:
    """Nearest-center codes for each weight."""
    flat = np.asarray(weight, dtype=np.float64)
    codes = np.argmin(
        np.abs(flat.reshape(-1, 1) - codebook.values[None, :]), axis=1
    )
    return codes.reshape(flat.shape)


def decode_weight(codes: np.ndarray, codebook: Codebook) -> np.ndarray:
    """Reconstruct weights from codes."""
    return codebook.values[np.asarray(codes, dtype=np.int64)]


def codebook_error(weight: np.ndarray, codebook: Codebook) -> float:
    """Relative RMS reconstruction error."""
    recon = decode_weight(encode_weight(weight, codebook), codebook)
    rms = float(np.sqrt(np.mean((weight - recon) ** 2)))
    denom = float(np.sqrt(np.mean(np.asarray(weight) ** 2))) or 1.0
    return rms / denom


def pack_codes(codes: np.ndarray, codebook: Codebook, cfg) -> np.ndarray:
    """Tile-transform the code matrix exactly like an ordinary
    low-precision weight (Figure 9 applies unchanged: codes are just
    unsigned integers of ``code_bits`` width)."""
    # Imported lazily: repro.kernels depends on repro.quant.packing.
    from repro.kernels.layouts import matmul_layouts

    lay = matmul_layouts(cfg, codebook.code_dtype)
    return transform_weight(codes, codebook.code_dtype, lay.b_warp)


def codebook_matmul_program(
    m: int,
    n: int,
    k: int,
    codebook: Codebook,
    cfg,
    act_dtype=float16,
) -> Program:
    """Matmul with codebook-quantized weights.

    Pipeline per k-tile: load packed code bytes → ``View`` to the code
    dtype in the mma layout → ``Lookup`` through the codebook (staged in
    shared memory once per block) → ``Dot``.

    Parameters: ``a_ptr`` (act), ``b_ptr`` (packed codes, u8),
    ``codebook_ptr`` (act, ``2**code_bits`` entries), ``c_ptr`` (act).
    """
    from repro.kernels.layouts import matmul_layouts

    code_dtype = codebook.code_dtype
    cfg.validate(code_dtype)
    bm, bn, bk = cfg.block_m, cfg.block_n, cfg.block_k
    if n % bn or k % bk:
        raise CompilationError(f"n={n}, k={k} must tile by ({bn}, {bk})")
    lay = matmul_layouts(cfg, code_dtype)
    block_bytes = cfg.warps_n * lay.b_tile_bytes
    n_ktiles = k // bk
    grid_m = -(-m // bm)

    pb = ProgramBuilder("codebook_matmul", grid=[grid_m, n // bn], num_threads=cfg.num_threads)
    a_ptr = pb.param("a_ptr", pointer(act_dtype))
    b_ptr = pb.param("b_ptr", pointer(uint8))
    t_ptr = pb.param("codebook_ptr", pointer(act_dtype))
    c_ptr = pb.param("c_ptr", pointer(act_dtype))

    bi, bj = pb.block_indices()
    ga = pb.view_global(a_ptr, dtype=act_dtype, shape=[m, k])
    gb = pb.view_global(b_ptr, dtype=uint8, shape=[n_ktiles, n // bn, block_bytes])
    gt = pb.view_global(t_ptr, dtype=act_dtype, shape=[codebook.size])
    gc = pb.view_global(c_ptr, dtype=act_dtype, shape=[m, n])

    # Stage the codebook in shared memory once (it is tiny and reused by
    # every k-tile of every warp).
    table = pb.allocate_shared(act_dtype, [codebook.size])
    pb.copy_async(table, gt, src_offset=[0])
    pb.copy_async_commit_group()
    pb.copy_async_wait_group(0)
    pb.synchronize()

    acc = pb.allocate_register(float32, layout=lay.c, init=0.0)
    with pb.for_range(n_ktiles) as kt:
        a_tile = pb.load_global(ga, layout=lay.a, offset=[bi * bm, kt * bk], masked=True)
        braw = pb.load_global(gb, layout=lay.b_bytes, offset=[kt, bj, 0])
        codes = pb.view(braw, dtype=code_dtype, layout=lay.b)
        b_vals = pb.lookup(codes, table)
        pb.dot(a_tile, b_vals, acc, out=acc)
    out = pb.cast(acc, act_dtype)
    pb.store_global(out, gc, offset=[bi * bm, bj * bn], masked=True)
    return pb.finish()
