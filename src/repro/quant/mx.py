"""Microscaling (MX) formats — the paper's second Section-10 extension.

An MX block format pairs a low-precision element type with one shared
power-of-two scale (E8M0: 8 exponent bits, no mantissa) per block of 32
consecutive elements, following the OCP Microscaling specification
(MXFP4 = f4e2m1 + e8m0/32, MXFP6 = f6e3m2 + e8m0/32, MXINT8 = i8 + e8m0/32).

Because scales are powers of two, dequantization in a kernel is a pure
exponent add — even cheaper than the f16-multiply path.  Host-side, MX
plugs into the same kernel template: e8m0 scales are stored as f16
(every power of two in range is exact in f16), so the group-wise scale
machinery applies unchanged with ``group_size = 32``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes import DataType, dtype_from_name
from repro.errors import DataTypeError

MX_BLOCK = 32

#: E8M0 scale exponent range (biased 8-bit exponent, no sign/mantissa).
_E8M0_MIN_EXP, _E8M0_MAX_EXP = -127, 127


@dataclass(frozen=True)
class MxFormat:
    """One microscaling format: element type + 32-element e8m0 scales."""

    name: str
    element_dtype: DataType

    @property
    def bits_per_element(self) -> float:
        """Effective storage including the amortized shared scale."""
        return self.element_dtype.nbits + 8 / MX_BLOCK


MXFP4 = MxFormat("mxfp4", dtype_from_name("f4e2m1"))
MXFP6 = MxFormat("mxfp6", dtype_from_name("f6e3m2"))
MXFP8 = MxFormat("mxfp8", dtype_from_name("f8e4m3"))
MXINT8 = MxFormat("mxint8", dtype_from_name("i8"))

MX_FORMATS = {f.name: f for f in (MXFP4, MXFP6, MXFP8, MXINT8)}


def quantize_mx(weight: np.ndarray, fmt: MxFormat) -> tuple[np.ndarray, np.ndarray]:
    """Quantize ``weight[k, n]`` into MX blocks along ``k``.

    Returns ``(q, scales)``: stored element values and *power-of-two*
    scales of shape ``[k / 32, n]`` with ``weight ≈ q * scales``.
    """
    weight = np.asarray(weight, dtype=np.float64)
    k, n = weight.shape
    if k % MX_BLOCK:
        raise DataTypeError(f"k={k} is not a multiple of the MX block size {MX_BLOCK}")
    grouped = weight.reshape(k // MX_BLOCK, MX_BLOCK, n)
    absmax = np.abs(grouped).max(axis=1)
    elem = fmt.element_dtype
    target = elem.max_value if elem.is_float else float(elem.max_value)
    with np.errstate(divide="ignore"):
        exponents = np.where(
            absmax > 0, np.ceil(np.log2(absmax / target)), _E8M0_MIN_EXP
        )
    exponents = np.clip(exponents, _E8M0_MIN_EXP, _E8M0_MAX_EXP)
    scales = np.exp2(exponents)
    scaled = grouped / scales[:, None, :]
    if elem.is_float:
        q = elem.quantize(scaled)
    else:
        q = np.clip(np.rint(scaled), elem.min_value, elem.max_value)
    return q.reshape(k, n), scales


def dequantize_mx(q: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Invert :func:`quantize_mx`."""
    q = np.asarray(q, dtype=np.float64)
    k, n = q.shape
    groups = scales.shape[0]
    return (q.reshape(groups, k // groups, n) * scales[:, None, :]).reshape(k, n)


def mx_error(weight: np.ndarray, fmt: MxFormat) -> float:
    """Relative RMS round-trip error of an MX format."""
    q, scales = quantize_mx(weight, fmt)
    recon = dequantize_mx(q, scales)
    rms = float(np.sqrt(np.mean((weight - recon) ** 2)))
    denom = float(np.sqrt(np.mean(np.asarray(weight) ** 2))) or 1.0
    return rms / denom


def scales_are_powers_of_two(scales: np.ndarray) -> bool:
    """Invariant check: every MX scale must be an exact power of two."""
    mantissa, _ = np.frexp(scales)
    return bool(np.all(mantissa == 0.5))
