"""Host-side weight packing and the global-layout transformation.

Two representations of a quantized weight matrix exist on the device:

1. **Row-major compact** — ``q[k, n]`` packed back to back at ``nbits``
   per element.  Simple, but loading it into the mma register layout needs
   non-coalesced accesses and per-element bit surgery (paper Section 7.2).
2. **Tile-transformed** — ``u8[k/BK, n/BN, BK*BN*nbits/8]`` where each
   tile's bytes are ordered exactly as the kernel's register ``View``
   expects, so a plain vectorized byte load reconstructs every thread's
   fragment (paper Figure 9).

:func:`transform_weight` computes representation 2 directly with numpy —
it is the host-side equivalent of running the ``transform_b`` VM program
and is validated against it in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes import DataType
from repro.errors import LayoutError
from repro.layout import Layout
from repro.utils.indexmath import gcd


def byte_view_layout(reg_layout: Layout, nbits: int) -> Layout:
    """The uint8 view layout for a low-precision register tile.

    Paper Section 7.2: a tile holding ``n`` bytes per thread over ``T``
    threads is reinterpreted as dtype uint8 with layout
    ``local(n2).spatial(T).local(n1)`` where ``n1 = gcd(n, 16)`` and
    ``n2 = n / n1`` — ``n1`` contiguous bytes feed one vectorized
    (up to 128-bit) memory instruction.
    """
    from repro.layout import local, spatial

    bits_per_thread = reg_layout.local_size * nbits
    if bits_per_thread % 8 != 0:
        raise LayoutError(
            f"register tile holds {bits_per_thread} bits per thread, not a "
            f"whole number of bytes; choose a tile with more local elements"
        )
    n = bits_per_thread // 8
    n1 = gcd(n, 16)
    n2 = n // n1
    return local(n2).spatial(reg_layout.num_threads).local(n1)


def tile_bytes(reg_layout: Layout, nbits: int) -> int:
    """Packed byte count of one weight tile."""
    bits = reg_layout.local_size * nbits
    if bits % 8 != 0:
        raise LayoutError(f"{bits} bits per thread is not byte-aligned")
    return reg_layout.num_threads * (bits // 8)


def transform_weight(
    q: np.ndarray, dtype: DataType, reg_layout: Layout
) -> np.ndarray:
    """Rearrange ``q[k, n]`` into the tile-transformed byte representation.

    Args:
        q: stored weight values (shape [k, n]).
        dtype: the low-precision storage type.
        reg_layout: register layout of one (BK, BN) weight tile — bytes are
            ordered so that the kernel's ``View`` to this layout is a no-op.

    Returns:
        uint8 array of shape ``[k // BK, n // BN, tile_bytes]``.
    """
    q = np.asarray(q)
    bk, bn = reg_layout.shape
    k, n = q.shape
    if k % bk or n % bn:
        raise LayoutError(f"weight {k}x{n} is not tiled by {bk}x{bn}")
    nbits = dtype.nbits
    bits_per_thread = reg_layout.local_size * nbits
    if bits_per_thread % 8 != 0:
        raise LayoutError(f"{bits_per_thread} bits per thread is not byte-aligned")
    nbytes = bits_per_thread // 8
    t_count = reg_layout.num_threads

    # Per-(thread, local) coordinates within one tile, computed once.
    t = np.repeat(np.arange(t_count), reg_layout.local_size)
    i = np.tile(np.arange(reg_layout.local_size), t_count)
    coords = [np.broadcast_to(c, t.shape) for c in reg_layout.map_batch(t, i)]

    out = np.empty((k // bk, n // bn, t_count * nbytes), dtype=np.uint8)
    bit_weights = np.uint64(1) << np.arange(nbits, dtype=np.uint64)
    for tk in range(k // bk):
        for tn in range(n // bn):
            tile = q[tk * bk : (tk + 1) * bk, tn * bn : (tn + 1) * bn]
            values = tile[coords[0], coords[1]]
            patterns = dtype.to_bits(values)
            # Per-thread bit streams -> bytes, LSB first.
            bits = ((patterns[:, None] & bit_weights) > 0).astype(np.uint8)
            per_thread = bits.reshape(t_count, reg_layout.local_size * nbits)
            byte_weights = np.uint8(1) << np.arange(8, dtype=np.uint8)
            as_bytes = (per_thread.reshape(t_count, nbytes, 8) * byte_weights).sum(
                axis=2, dtype=np.uint32
            ).astype(np.uint8)
            # Byte order within the tile follows the byte-view layout, which
            # stores thread t's bytes contiguously in (n2, t, n1) order; for
            # local(n2).spatial(T).local(n1) the logical byte index of
            # thread t's j-th byte is the layout's forward map.
            out[tk, tn] = _order_bytes(as_bytes, reg_layout, nbits)
    return out


def _order_bytes(per_thread_bytes: np.ndarray, reg_layout: Layout, nbits: int) -> np.ndarray:
    """Place each thread's bytes at the positions the byte-view layout maps
    them to, yielding the contiguous tile representation."""
    view = byte_view_layout(reg_layout, nbits)
    t_count, nbytes = per_thread_bytes.shape
    t = np.repeat(np.arange(t_count), nbytes)
    j = np.tile(np.arange(nbytes), t_count)
    (positions,) = view.map_batch(t, j)
    flat = np.empty(t_count * nbytes, dtype=np.uint8)
    flat[np.broadcast_to(positions, t.shape)] = per_thread_bytes.reshape(-1)
    return flat


def untransform_weight(
    packed: np.ndarray, dtype: DataType, reg_layout: Layout, k: int, n: int
) -> np.ndarray:
    """Invert :func:`transform_weight` (used by tests)."""
    packed = np.asarray(packed, dtype=np.uint8)
    bk, bn = reg_layout.shape
    nbits = dtype.nbits
    nbytes = reg_layout.local_size * nbits // 8
    t_count = reg_layout.num_threads
    view = byte_view_layout(reg_layout, nbits)

    t = np.repeat(np.arange(t_count), nbytes)
    j = np.tile(np.arange(nbytes), t_count)
    (positions,) = view.map_batch(t, j)
    positions = np.broadcast_to(positions, t.shape)

    tl = np.repeat(np.arange(t_count), reg_layout.local_size)
    il = np.tile(np.arange(reg_layout.local_size), t_count)
    coords = [np.broadcast_to(c, tl.shape) for c in reg_layout.map_batch(tl, il)]

    out = np.zeros((k, n), dtype=np.int64 if dtype.is_integer else np.float64)
    for tk in range(k // bk):
        for tn in range(n // bn):
            flat = packed[tk, tn]
            per_thread = np.empty((t_count, nbytes), dtype=np.uint8)
            per_thread.reshape(-1)[:] = flat[positions]
            bits = np.unpackbits(per_thread, axis=1, bitorder="little")
            grouped = bits[:, : reg_layout.local_size * nbits].reshape(
                t_count, reg_layout.local_size, nbits
            )
            weights = np.uint64(1) << np.arange(nbits, dtype=np.uint64)
            patterns = (grouped.astype(np.uint64) * weights).sum(axis=2)
            values = dtype.from_bits(patterns.reshape(-1))
            out[tk * bk + coords[0], tn * bn + coords[1]] = values
    return out
