"""Weight quantization schemes.

A :class:`QuantScheme` pairs a storage data type with a scale granularity:

- ``group_size = k`` (full reduction dimension): per-channel scales,
- ``group_size < k``: sub-channel (group-wise) scales — the granularity
  QuantLLM lacks (paper Section 1).

Signed integers and floats quantize symmetrically; unsigned integers use a
mid-point zero offset (``2^(b-1)``), the convention of GPTQ/AWQ-style u4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes import DataType
from repro.errors import DataTypeError


@dataclass(frozen=True)
class QuantScheme:
    """How a float weight matrix maps onto a low-precision tensor."""

    dtype: DataType
    group_size: int = 128

    def __post_init__(self) -> None:
        if self.dtype.is_pointer:
            raise DataTypeError("cannot quantize to a pointer type")
        if self.group_size <= 0:
            raise DataTypeError("group_size must be positive")

    @property
    def zero_point(self) -> int:
        """Stored-value offset representing zero (unsigned integers only)."""
        if self.dtype.is_integer and not self.dtype.is_signed:
            return 1 << (self.dtype.nbits - 1) if self.dtype.nbits > 1 else 0
        return 0

    @property
    def max_magnitude(self) -> float:
        """Largest representable magnitude after removing the zero offset.

        Float formats with huge dynamic range (e.g. e5m2, max 114688) are
        capped at 2^15 so that stored values survive the cast to float16
        activations inside the kernel (float16 max is 65504).
        """
        if self.dtype.is_float:
            return min(self.dtype.max_value, float(2**15))
        if self.dtype.is_signed:
            return float(self.dtype.max_value)
        return float(self.dtype.max_value - self.zero_point)


def quantize_weight(
    weight: np.ndarray, scheme: QuantScheme
) -> tuple[np.ndarray, np.ndarray]:
    """Quantize ``weight[k, n]`` group-wise along ``k``.

    Returns:
        ``(q, scales)`` where ``q[k, n]`` holds stored values (integers for
        int types, already-quantized floats for float types) and
        ``scales[k // group_size, n]`` holds float64 scale factors with
        ``weight ≈ (q - zero_point) * scale``.
    """
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2:
        raise DataTypeError("quantize_weight expects a 2-D [k, n] matrix")
    k, n = weight.shape
    g = min(scheme.group_size, k)
    if k % g != 0:
        raise DataTypeError(f"k={k} is not a multiple of group_size={g}")
    grouped = weight.reshape(k // g, g, n)
    absmax = np.abs(grouped).max(axis=1)
    scales = absmax / scheme.max_magnitude
    scales = np.where(scales == 0, 1.0, scales)
    scaled = grouped / scales[:, None, :]
    if scheme.dtype.is_float:
        q = scheme.dtype.quantize(scaled).reshape(k, n)
    else:
        q = np.clip(
            np.rint(scaled) + scheme.zero_point,
            scheme.dtype.min_value,
            scheme.dtype.max_value,
        ).reshape(k, n)
    return q, scales


def dequantize_weight(
    q: np.ndarray, scales: np.ndarray, scheme: QuantScheme
) -> np.ndarray:
    """Invert :func:`quantize_weight` (up to quantization error)."""
    q = np.asarray(q, dtype=np.float64)
    k, n = q.shape
    groups = scales.shape[0]
    g = k // groups
    centred = q - scheme.zero_point
    return (centred.reshape(groups, g, n) * scales[:, None, :]).reshape(k, n)


def quantization_error(weight: np.ndarray, scheme: QuantScheme) -> float:
    """Relative RMS error of a quantize/dequantize round trip."""
    q, scales = quantize_weight(weight, scheme)
    recon = dequantize_weight(q, scales, scheme)
    rms = float(np.sqrt(np.mean((weight - recon) ** 2)))
    denom = float(np.sqrt(np.mean(np.asarray(weight) ** 2))) or 1.0
    return rms / denom
