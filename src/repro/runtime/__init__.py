"""Runtime system (paper Section 8.1, step 4)."""

from repro.runtime.runtime import (
    ExecutionContext,
    KernelCache,
    Runtime,
    SpecializationCache,
)

__all__ = ["Runtime", "KernelCache", "SpecializationCache", "ExecutionContext"]
