"""Runtime system (paper Section 8.1, step 4)."""

from repro.runtime.adaptive import AdaptiveGraph, AdaptivePolicy
from repro.runtime.engine import LocalEngine
from repro.runtime.graphs import ExecutionGraph, GraphNode, GraphPlan
from repro.runtime.jit import JitCache, JitManager
from repro.runtime.profiling import NodeProfile, Profile
from repro.runtime.runtime import (
    ExecutionContext,
    KernelCache,
    Runtime,
    SpecializationCache,
)
from repro.runtime.streams import (
    Event,
    LaunchHandle,
    Stream,
    StreamPool,
    StreamTask,
    launch_ranges,
)

__all__ = [
    "AdaptiveGraph",
    "AdaptivePolicy",
    "Runtime",
    "KernelCache",
    "SpecializationCache",
    "ExecutionContext",
    "ExecutionGraph",
    "GraphNode",
    "GraphPlan",
    "JitCache",
    "JitManager",
    "LocalEngine",
    "Stream",
    "StreamPool",
    "StreamTask",
    "Event",
    "LaunchHandle",
    "NodeProfile",
    "Profile",
    "launch_ranges",
]
