"""Runtime system (paper Section 8.1, step 4)."""

from repro.runtime.runtime import ExecutionContext, KernelCache, Runtime

__all__ = ["Runtime", "KernelCache", "ExecutionContext"]
