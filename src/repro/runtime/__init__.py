"""Runtime system (paper Section 8.1, step 4)."""

from repro.runtime.runtime import (
    ExecutionContext,
    KernelCache,
    Runtime,
    SpecializationCache,
)
from repro.runtime.streams import (
    Event,
    LaunchHandle,
    Stream,
    StreamPool,
    launch_ranges,
)

__all__ = [
    "Runtime",
    "KernelCache",
    "SpecializationCache",
    "ExecutionContext",
    "Stream",
    "StreamPool",
    "Event",
    "LaunchHandle",
    "launch_ranges",
]
