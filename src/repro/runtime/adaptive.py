"""Adaptive runtime: profile-guided capture and online auto-reoptimization.

The profiling subsystem (:mod:`repro.runtime.profiling`) closed the PGO
loop *mechanically* — ``graph.optimize(profile)`` re-places a captured
DAG by measured cost — but left it **manual**: serving code had to call
:meth:`~repro.ops.QuantizedLinear.reoptimize` by hand, and a fresh
capture still froze stream placement and engine choice with zero
knowledge of what anything costs.  This module makes the loop automatic
and continuous, which is where profile-guided systems actually pay off
(cf. the PGO survey in PAPERS.md):

**Profile-guided capture** — ``runtime.capture(profile=...)`` /
``pool.capture(profile=...)`` hands a prior
:class:`~repro.runtime.profiling.Profile` to the capture itself.  At
record time the engine choice consults measured per-engine costs for the
launch's specialization key (sequential vs batched by what each actually
cost, not just grid size); at instantiate time the node placement is
recomputed from measured per-node costs — longest-processing-time list
scheduling over the hazard DAG, never worse than round-robin under the
makespan estimate — and the **stream count is capped to the measured
parallelism**: the smallest stream count whose estimated makespan is
within :data:`STREAM_CAP_SLACK` of the best over all counts wins, so a
serial chain collapses onto one stream instead of paying cross-stream
event waits for nothing.  Signatures the profile has never seen fall
back to today's heuristics unchanged; a non-empty profile that matches
*nothing* in the capture is rejected loudly (see
:meth:`~repro.runtime.graphs.ExecutionGraph.optimize` for the same
contract) rather than silently misoptimizing.

**Online auto-reoptimization** — an :class:`AdaptivePolicy` attachable
to a :class:`~repro.runtime.runtime.Runtime`
(:meth:`~repro.runtime.runtime.Runtime.enable_adaptive`) or a
:class:`~repro.runtime.streams.StreamPool` (``pool.adaptive``).
``policy.manage(graph)`` wraps a captured graph in an
:class:`AdaptiveGraph` — same ``replay``/``bind`` surface — and from
then on the policy counts profiled replays of the live image.  After
``warmup_replays`` of them it **atomically swaps** the live graph for
its ``optimize(profile)`` image (one attribute store: a replay that
races the swap finishes on whichever image it started with — there are
no torn reads).  Every later window re-evaluates against the *window's*
cost deltas (not the all-time means, which would dampen drift) and
re-swaps only when the estimated makespan gain clears ``min_gain`` —
the hysteresis that keeps two placements scoring within ``min_gain`` of
each other from flapping.

Wired through :class:`~repro.ops.QuantizedLinear` (captured split-k
graphs are managed automatically once ``runtime.enable_adaptive()`` is
on — no more explicit ``reoptimize()``) and the
:mod:`repro.llm.batching` decode loop (``adaptive=True``; swaps are
counted on ``TraceResult.auto_reoptimizations``).  The policy's observed
profile also feeds :meth:`repro.autotune.tuner.Autotuner.tune_profiled`
directly — pass the policy where a profile is expected.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

from repro.errors import VMError
from repro.obs import trace as obs_trace
from repro.runtime.profiling import NodeProfile, Profile

#: Stream-count capping slack: the smallest stream count whose estimated
#: makespan is within this fraction of the best over all counts is
#: chosen (fewer streams = fewer cross-stream event waits at replay).
STREAM_CAP_SLACK = 0.05


# ---------------------------------------------------------------------------
# Pure scheduling core (shared by capture, optimize, and the policy; pure
# functions over plain data so property tests can drive them directly)
# ---------------------------------------------------------------------------


def round_robin_placement(node_indices: Iterable[int], num_streams: int) -> dict[int, int]:
    """The baseline heuristic: nodes onto streams in submission order."""
    return {i: k % num_streams for k, i in enumerate(sorted(node_indices))}


def lpt_placement(
    num_streams: int, costs: Mapping[int, float], deps: Mapping[int, tuple]
) -> dict[int, int]:
    """Longest-processing-time list scheduling over a hazard DAG.

    Nodes are scheduled most-expensive-first among those whose
    dependencies are already placed; each goes to the stream with the
    earliest predicted finish (``max(stream available, deps ready) +
    cost``).  For independent nodes this is classic LPT onto the
    least-loaded stream; dependent nodes land where their predecessors
    let them start soonest.  Fully deterministic: ties break on node
    index and stream index, so equal cost maps yield equal placements.
    ``deps`` entries may reference nodes outside ``costs`` (eliminated
    nodes); those are ignored.
    """
    live_set = set(costs)
    remaining = set(costs)
    scheduled: dict[int, int] = {}
    finish: dict[int, float] = {}
    avail = [0.0] * num_streams
    while remaining:
        ready = [
            i
            for i in remaining
            if all(d in scheduled for d in deps.get(i, ()) if d in live_set)
        ]
        ready.sort(key=lambda i: (-costs[i], i))
        i = ready[0]
        ready_time = max(
            (finish[d] for d in deps.get(i, ()) if d in live_set),
            default=0.0,
        )
        best_stream = min(
            range(num_streams),
            key=lambda s: (max(avail[s], ready_time) + costs[i], s),
        )
        start = max(avail[best_stream], ready_time)
        finish[i] = start + costs[i]
        avail[best_stream] = finish[i]
        scheduled[i] = best_stream
        remaining.discard(i)
    return scheduled


def estimated_makespan(
    placement: Mapping[int, int],
    costs: Mapping[int, float],
    deps: Mapping[int, tuple],
) -> float:
    """Predicted finish time of a placement: streams execute their nodes
    FIFO in node-index order (exactly the replay contract), each node
    starting once its stream is free and its placed dependencies have
    finished.  Dependencies outside ``placement`` (eliminated nodes) are
    skipped."""
    finish: dict[int, float] = {}
    avail: dict[int, float] = {}
    for i in sorted(placement):
        stream = placement[i]
        ready = max(
            (finish[d] for d in deps.get(i, ()) if d in finish), default=0.0
        )
        start = max(avail.get(stream, 0.0), ready)
        finish[i] = start + costs[i]
        avail[stream] = finish[i]
    return max(avail.values(), default=0.0)


def guided_placement(
    num_streams: int, costs: Mapping[int, float], deps: Mapping[int, tuple]
) -> dict[int, int]:
    """The capture-time placement: LPT over the hazard DAG, kept only
    when its estimated makespan does not exceed plain round-robin's —
    LPT is a heuristic, not an optimum, and this guard makes
    "profile-guided capture is never estimated worse than the baseline"
    an invariant rather than a hope (property-tested)."""
    lpt = lpt_placement(num_streams, costs, deps)
    rr = round_robin_placement(costs, num_streams)
    if estimated_makespan(lpt, costs, deps) <= estimated_makespan(rr, costs, deps):
        return lpt
    return rr


# ---------------------------------------------------------------------------
# The adaptive policy and its managed-graph facade
# ---------------------------------------------------------------------------


class AdaptiveGraph:
    """A captured graph under :class:`AdaptivePolicy` management.

    Exposes the :class:`~repro.runtime.graphs.ExecutionGraph` surface the
    serving layers use — ``replay``/``bind`` plus read-only introspection
    via attribute passthrough — while the policy swaps the **live image**
    underneath.  :meth:`replay` reads the live image exactly once, so a
    swap landing mid-replay on another thread is invisible: each replay
    runs one consistent image end to end, and its profile records carry
    that image's signature.
    """

    def __init__(
        self, policy: "AdaptivePolicy", graph, outputs=None, warm=False
    ) -> None:
        self._policy = policy
        self._outputs = tuple(outputs) if outputs is not None else None
        self._live = graph
        #: Captured from a trusted (store-loaded) profile: the
        #: first-window free swap is disabled, so an already-converged
        #: placement only swaps when measured costs clear ``min_gain``.
        self._warm = bool(warm)
        #: Guards this graph's replay counting, evaluation and swap.
        #: Per-facade, not policy-wide: one graph's (potentially long)
        #: optimize pass must not stall the bookkeeping of every other
        #: graph the same policy manages.
        self._lock = threading.Lock()
        #: Profiled replays observed since management began.
        self._profiled_replays = 0
        #: Replay count at the last policy evaluation — the window
        #: anchor.  Evaluation triggers on ``replays - last >= warmup``,
        #: never on exact multiples: a counter that jumps past a
        #: boundary (racing replays, external perturbation) still
        #: evaluates within one warmup window instead of never again.
        self._last_evaluated = 0
        #: (signature, profiler, per-ident (calls, wall)) at the last
        #: evaluation — the window baseline.  Holds the profiler object
        #: itself: an ``id()`` could be reused by a later allocation and
        #: make a stale baseline pass the identity check.
        self._snapshot: tuple = (None, None, {})
        #: Times the live image was swapped (automatic or explicit).
        self.swaps = 0
        #: Policy evaluations run against this graph.
        self.evaluations = 0

    # -- surface -------------------------------------------------------------
    @property
    def live(self):
        """The current live :class:`~repro.runtime.graphs.ExecutionGraph`."""
        return self._live

    @property
    def policy(self) -> "AdaptivePolicy":
        return self._policy

    @property
    def pool(self):
        return self._live.pool

    @property
    def signature(self) -> str:
        return self._live.signature

    def bind(self, name: str, value, nbytes: int | None = None) -> None:
        # Under the graph lock: a bind racing a window-boundary swap
        # could otherwise land on the retired image after the optimize
        # pass snapshotted its bindings, and silently vanish.
        with self._lock:
            self._live.bind(name, value, nbytes)

    def __enter__(self) -> "AdaptiveGraph":
        """Capture through the facade (``pool.capture()`` returns one
        when a policy is attached to the pool): recording happens on the
        live image, the managed surface comes back to the caller."""
        self._live.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        return self._live.__exit__(exc_type, exc, tb)

    def replay(self, bindings=None, *, serial: bool = False) -> None:
        """Replay the live image once, then let the policy observe it.

        The single ``self._live`` read is the atomicity contract: the
        whole replay — argument rebinding, group execution, profile
        attribution — happens against one image even if the policy swaps
        concurrently.
        """
        image = self._live
        image.replay(bindings, serial=serial)
        self._policy._after_replay(self, image)

    def optimize(self, profile=None, outputs=None):
        """Explicit re-optimization of a *managed* graph: swap the live
        image in place and return ``self``, so call sites that replace
        their graph with ``graph.optimize(...)`` (the pre-adaptive
        :meth:`~repro.ops.QuantizedLinear.reoptimize` pattern) keep the
        graph under management instead of unwrapping it.  Runs under
        this graph's lock so it cannot interleave with (or be silently
        overwritten by) the policy's own evaluation/swap path."""
        with self._lock:
            image = self._live
            self._swap(
                image.optimize(
                    profile, outputs=outputs if outputs is not None else self._outputs
                ),
                profiler=self._policy.profile,
            )
        return self

    def _swap(self, optimized, profiler: Profile | None = None) -> None:
        """Install a new live image (a single attribute store — atomic
        under the interpreter; callers hold the policy lock).  The
        window baseline resets to the new image's *current* recorded
        totals: when a pure re-placement keeps the signature, pre-swap
        history must not leak into the next window's deltas."""
        if profiler is not None:
            self._snapshot = (
                optimized.signature,
                profiler,
                {
                    ident: (rec.calls, rec.wall_s)
                    for ident, rec in profiler.graph_nodes(
                        optimized.signature
                    ).items()
                },
            )
        else:
            self._snapshot = (None, None, {})
        self._live = optimized
        self.swaps += 1
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.instant(
                "adaptive.swap",
                "adaptive",
                obs_trace.HOST_TID,
                {"signature": optimized.signature, "swaps": self.swaps},
            )

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._live, name)

    def __len__(self) -> int:
        return len(self._live)

    def __repr__(self) -> str:
        return (
            f"AdaptiveGraph({self._live!r}, {self.swaps} swaps, "
            f"{self._profiled_replays} profiled replays)"
        )


class AdaptivePolicy:
    """Online auto-reoptimization: swap live graphs for their
    profile-optimized images as measured costs come in.

    ``warmup_replays`` profiled replays of a managed graph's signature
    form one **profile window**.  At the first window boundary the live
    image is unconditionally swapped for its
    :meth:`~repro.runtime.graphs.ExecutionGraph.optimize` image built
    from that window's measured costs — the capture-time heuristic has
    served its purpose once real numbers exist.  Every later window
    re-evaluates: the window's per-node cost deltas score the live
    placement against a fresh LPT candidate, and the swap re-runs only
    when the estimated makespan gain is at least ``min_gain``
    (relative) — the hysteresis that keeps two placements scoring
    within ``min_gain`` of each other from flapping back and forth.

    Swaps are atomic (one attribute store on the
    :class:`AdaptiveGraph`); replays racing a swap complete on the image
    they started with, and their profile records attribute to that
    image's signature.  ``swaps``/``evaluations`` expose the policy's
    behaviour to tests and serving counters; ``profile`` is the profiler
    the policy last observed, accepted directly by
    :meth:`~repro.autotune.tuner.Autotuner.tune_profiled`.
    """

    def __init__(self, warmup_replays: int = 8, min_gain: float = 0.10) -> None:
        if warmup_replays < 1:
            raise ValueError(
                f"warmup_replays must be positive, got {warmup_replays}"
            )
        if min_gain < 0.0:
            raise ValueError(f"min_gain must be non-negative, got {min_gain}")
        self.warmup_replays = warmup_replays
        self.min_gain = min_gain
        #: Automatic swaps performed (explicit ``optimize()`` calls on a
        #: managed graph do not count here; see ``AdaptiveGraph.swaps``).
        self.swaps = 0
        #: Window evaluations run (each may or may not swap).
        self.evaluations = 0
        #: The profiler last observed recording a managed replay — the
        #: handle to pass to ``Autotuner.tune_profiled``.
        self.profile: Profile | None = None
        self._lock = threading.Lock()

    def manage(self, graph, outputs=None, warm=False) -> AdaptiveGraph:
        """Put a captured graph under management; returns the
        :class:`AdaptiveGraph` facade to replay instead of the raw graph.
        ``outputs`` forwards to ``optimize`` (names the pointer bindings
        that are externally observable; ``None`` = all of them).
        ``warm=True`` marks a graph captured from a trusted store-loaded
        profile: the unconditional first-window swap is skipped, so a
        warm boot that is already converged performs **zero** swaps and
        only re-places if live measurements beat ``min_gain``.
        Managing a graph this policy already manages returns it
        unchanged; a facade bound to a *different* policy is re-homed —
        its live image is wrapped under this policy, so the caller's
        knobs and counters apply rather than silently staying with
        whichever policy wrapped it first."""
        if isinstance(graph, AdaptiveGraph):
            if graph.policy is self:
                return graph
            graph = graph.live
        return AdaptiveGraph(self, graph, outputs=outputs, warm=warm)

    # -- the feedback loop ---------------------------------------------------
    def _after_replay(self, agraph: AdaptiveGraph, image) -> None:
        """Observe one completed replay of ``image``; called by the
        facade on the replaying thread.  Counting, evaluation and the
        swap all run under the *graph's* lock — concurrent replays of a
        shared graph cannot double-swap a window, while other managed
        graphs' bookkeeping proceeds unblocked."""
        profiler = image.pool.profiler
        if profiler is None:
            return  # unprofiled replay: nothing measured, nothing to do
        self.profile = profiler  # single store: atomic
        with agraph._lock:
            agraph._profiled_replays += 1
            # Threshold check, not a modulo: a counter that skips past
            # the exact multiple (replays racing an evaluation, or any
            # batch of increments landing together) would never hit
            # ``% warmup == 0`` again and the graph would never
            # reoptimize.  The anchor makes every window boundary
            # reachable regardless of how the count got there.
            if agraph._profiled_replays - agraph._last_evaluated < self.warmup_replays:
                return
            agraph._last_evaluated = agraph._profiled_replays
            self._evaluate(agraph, image, profiler)

    def _evaluate(self, agraph: AdaptiveGraph, image, profiler: Profile) -> None:
        if image is not agraph._live:
            # This replay raced a swap: it ran (and measured) an image
            # that is no longer live.  Optimizing the stale image would
            # re-install work the previous swap already superseded —
            # skip; the live image's own windows drive the next decision.
            return
        window = self._window(agraph, image, profiler)
        if window is None:
            return  # no new profiled traffic for this image's signature
        with self._lock:  # policy-wide counters only; never held long
            self.evaluations += 1
        agraph.evaluations += 1
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.instant(
                "adaptive.evaluate",
                "adaptive",
                obs_trace.HOST_TID,
                {"signature": image.signature, "swaps": agraph.swaps},
            )
        first = agraph.swaps == 0 and not agraph._warm
        if not first:
            costs, matched = image._profiled_costs(window)
            if matched == 0:
                return
            deps = {node.index: node.deps for node in image.nodes}
            current = {node.index: node.stream_index for node in image.nodes}
            current_span = estimated_makespan(current, costs, deps)
            live = image._live_indices(agraph._outputs)
            live_set = set(live)
            live_costs = {i: costs[i] for i in live}
            live_deps = {
                i: tuple(d for d in image.nodes[i].deps if d in live_set)
                for i in live
            }
            candidate = lpt_placement(
                len(image.pool.streams), live_costs, live_deps
            )
            candidate_span = estimated_makespan(candidate, live_costs, live_deps)
            if current_span <= 0.0:
                return
            gain = (current_span - candidate_span) / current_span
            # Hysteresis: only a shift that clears min_gain re-runs the
            # swap; placements scoring within min_gain never flap.
            if gain <= 0.0 or gain < self.min_gain:
                return
        optimized = image.optimize(window, outputs=agraph._outputs)
        agraph._swap(optimized, profiler=profiler)
        with self._lock:
            self.swaps += 1

    def _window(
        self, agraph: AdaptiveGraph, image, profiler: Profile
    ) -> Profile | None:
        """The profile *window*: a synthetic :class:`Profile` holding the
        per-node cost deltas recorded for ``image`` since the last
        evaluation.  Windows — not all-time means — drive re-swaps, so a
        genuine cost shift is visible immediately instead of being
        averaged away by history.  Returns ``None`` when the window is
        empty (no profiled replays landed for this signature)."""
        signature = image.signature
        recorded = profiler.graph_nodes(signature)
        prev_sig, prev_profiler, prev = agraph._snapshot
        if prev_sig != signature or prev_profiler is not profiler:
            prev = {}
        window = Profile()
        new_calls = 0
        for ident, rec in recorded.items():
            prev_calls, prev_wall = prev.get(ident, (0, 0.0))
            delta_calls = rec.calls - prev_calls
            if delta_calls <= 0:
                continue
            node = NodeProfile(
                signature, ident, rec.program, rec.spec, rec.engine, rec.stream
            )
            node.calls = delta_calls
            node.wall_s = max(rec.wall_s - prev_wall, 0.0)
            window.nodes[node.key] = node
            new_calls += delta_calls
        agraph._snapshot = (
            signature,
            profiler,
            {ident: (rec.calls, rec.wall_s) for ident, rec in recorded.items()},
        )
        return window if new_calls else None

    def __repr__(self) -> str:
        return (
            f"AdaptivePolicy(warmup_replays={self.warmup_replays}, "
            f"min_gain={self.min_gain}, {self.swaps} swaps in "
            f"{self.evaluations} evaluations)"
        )
