"""The **local engine** interface: the engine half of the
engine/transport split.

The runtime package grew four tightly-coupled subsystems — the
:class:`~repro.runtime.runtime.Runtime` (memory + specialization cache +
launch API), the stream pool, execution graphs and the adaptive policy.
Multi-process sharded serving (:mod:`repro.serving`) needs a *seam*
between all of that and the placement/transport layer: a worker process
owns exactly one local engine; the router owns none — it only moves
JSON-serialized state (:class:`~repro.runtime.profiling.Profile`,
:class:`~repro.runtime.graphs.GraphPlan`) and requests between engines.

:class:`LocalEngine` is that seam.  It bundles a Runtime, its spec
cache, optional profiling and an optional adaptive policy behind the
narrow surface the serving layer is allowed to touch, plus the
JSON-state import/export the transport layer ships across process
boundaries.  Semantics are unchanged from driving the Runtime directly
— the engine owns and delegates; it never reimplements.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import VMError
from repro.runtime.graphs import ExecutionGraph, GraphPlan
from repro.runtime.profiling import Profile
from repro.runtime.runtime import Runtime
from repro.store import TuningStore


class LocalEngine:
    """One process's execution engine: Runtime + spec cache + policy.

    Everything the placement/transport layer may ask of a shard happens
    through this interface:

    - **execution**: :meth:`upload` / :meth:`empty` / :meth:`download` /
      :meth:`launch` / :meth:`capture` / :meth:`synchronize`, delegating
      to the owned :class:`~repro.runtime.runtime.Runtime` unchanged;
    - **observability**: :meth:`profile_json` exports the engine's
      recorded :class:`~repro.runtime.profiling.Profile` as versioned
      JSON, :meth:`absorb_profile_json` merges a profile recorded by
      *another* process into this engine's active profiler (warm-start:
      profiles recorded in one context are spent in another);
    - **placement transfer**: :meth:`plan_json` exports a captured
      graph's :class:`~repro.runtime.graphs.GraphPlan`,
      :meth:`apply_plan_json` re-places a local graph under a plan
      decided elsewhere.

    ``adaptive=True`` (or a concrete policy) attaches the online
    auto-reoptimization loop exactly as ``runtime.enable_adaptive()``
    would; ``profile=True`` starts recording immediately; ``jit=True``
    attaches the compiled tier exactly as ``runtime.enable_jit()``
    would, so hot specializations promote out of the interpreter with
    no further API surface.

    ``store=`` (a directory path or a live
    :class:`~repro.store.TuningStore`) attaches the persistent tuning
    store; :meth:`warm_start` then spends state another process
    published — profiles merge into the profiler, stored JIT heat and
    kernels pre-promote — and :meth:`publish_store` persists this
    engine's converged state for the next process.  Every load path
    degrades: a corrupt entry raises ``VMError`` inside the store, the
    engine counts it and proceeds cold.
    """

    def __init__(
        self,
        dram_bytes: int = 1 << 30,
        engine: str = "auto",
        cache_entries: int = 128,
        profile: bool = False,
        adaptive=False,
        jit: bool = False,
        store=None,
        store_scope: str = "engine",
    ) -> None:
        self.runtime = Runtime(
            dram_bytes=dram_bytes, engine=engine, cache_entries=cache_entries
        )
        if adaptive:
            policy = adaptive if not isinstance(adaptive, bool) else None
            self.runtime.enable_adaptive(policy)
        if profile:
            self.runtime.enable_profiling()
        if jit:
            self.runtime.enable_jit()
        self.store_scope = store_scope
        if store is not None and not isinstance(store, TuningStore):
            store = TuningStore(store)
        self.store = store
        self.runtime.store = store

    # -- execution (pure delegation) ----------------------------------------
    def upload(self, values, dtype) -> int:
        return self.runtime.upload(values, dtype)

    def empty(self, shape: Sequence[int], dtype) -> int:
        return self.runtime.empty(shape, dtype)

    def download(self, addr: int, shape: Sequence[int], dtype):
        return self.runtime.download(addr, shape, dtype)

    def launch(self, program, args, **kwargs):
        return self.runtime.launch(program, args, **kwargs)

    def capture(self, num_streams: int = 4, profile: Profile | None = None):
        return self.runtime.capture(num_streams, profile=profile)

    def synchronize(self) -> None:
        self.runtime.synchronize()

    # -- cache / policy introspection ---------------------------------------
    @property
    def cache(self):
        """The runtime's kernel specialization cache."""
        return self.runtime.cache

    @property
    def policy(self):
        """The attached adaptive policy, or None."""
        return self.runtime.adaptive

    @property
    def profiler(self) -> Profile | None:
        return self.runtime.profiler

    @property
    def jit(self):
        """The attached JIT manager (compiled tier), or None."""
        return self.runtime.jit

    def metrics(self) -> dict:
        """The owned runtime's unified counter snapshot (frozen
        dot-namespaced keys; see :mod:`repro.obs.metrics`)."""
        return self.runtime.metrics()

    # -- persistent tuning store ---------------------------------------------
    def warm_start(self) -> dict:
        """Spend the store's persisted state in this process: merge the
        stored profile into the active profiler and seed the JIT manager
        with stored heat and kernels.  Returns a summary dict
        (``profile``/``jit_heat``/``jit_kernels``/``errors``).  Corrupt
        entries are counted in ``errors`` and skipped — warm start never
        fails; the worst outcome is a cold boot."""
        summary = {"profile": False, "jit_heat": 0, "jit_kernels": 0, "errors": 0}
        if self.store is None:
            return summary
        try:
            profile = self.store.load_profile(self.store_scope)
        except VMError:
            profile, summary["errors"] = None, summary["errors"] + 1
        if profile is not None:
            self.runtime.enable_profiling().merge(profile)
            summary["profile"] = True
        if self.runtime.jit is not None:
            try:
                payload = self.store.load_jit(self.store_scope)
            except VMError:
                payload, summary["errors"] = None, summary["errors"] + 1
            if payload is not None:
                heat = {
                    spec: seconds
                    for spec, seconds in payload["heat"].items()
                    if isinstance(spec, str)
                    and isinstance(seconds, (int, float))
                    and not isinstance(seconds, bool)
                }
                self.runtime.jit.preheat(heat)
                summary["jit_heat"] = len(heat)
                summary["jit_kernels"] = self.runtime.jit.stage_kernels(
                    payload["kernels"]
                )
        return summary

    def load_stored_plan(self, graph):
        """Re-place ``graph`` under this scope's stored plan for its
        signature, or return None (store off / no entry / corrupt entry
        / plan no longer applicable — every miss degrades)."""
        if self.store is None:
            return None
        live = getattr(graph, "live", graph)
        try:
            plan = self.store.load_plan(self.store_scope, live.signature)
            if plan is None:
                return None
            return live.apply_plan(plan)
        except VMError:
            return None

    def publish_store(self, graphs: Sequence = ()) -> dict:
        """Persist this engine's converged state: the recorded profile,
        each given graph's live placement, and (when the compiled tier
        is attached) JIT heat + kernel sources.  Returns a summary dict.
        Publication is best-effort per artifact; one failure does not
        block the others."""
        summary = {"profile": False, "plans": 0, "jit_kernels": 0}
        if self.store is None:
            return summary
        profiler = self.runtime.profiler
        if profiler is not None and len(profiler.nodes) > 0:
            self.store.publish_profile(self.store_scope, profiler)
            summary["profile"] = True
        for graph in graphs:
            live = getattr(graph, "live", graph)
            try:
                self.store.publish_plan(
                    self.store_scope, live.signature, live.plan()
                )
                summary["plans"] += 1
            except VMError:
                continue
        if self.runtime.jit is not None:
            summary["jit_kernels"] = self.store.publish_jit(
                self.store_scope, self.runtime.jit, profiler
            )
        return summary

    # -- JSON state transport ------------------------------------------------
    def profile_json(self) -> str:
        """The engine's recorded profile as versioned JSON (an empty
        profile when profiling was never enabled): what a worker ships
        back to the router after serving a trace."""
        profiler = self.runtime.profiler
        return (profiler if profiler is not None else Profile()).to_json()

    def absorb_profile_json(self, text: str) -> Profile:
        """Merge a profile recorded by another process into this
        engine's active profiler (enabling profiling if it was off).
        Returns the active profiler.  Specialization-key strings are
        deterministic across processes, so the absorbed records are
        immediately consultable by profile-guided capture and
        ``tune_profiled`` — the fleet-warm-start path."""
        incoming = Profile.from_json(text)
        active = self.runtime.enable_profiling()
        active.merge(incoming)
        return active

    @staticmethod
    def plan_json(graph) -> str:
        """A captured graph's transportable schedule as versioned JSON.
        Accepts a raw :class:`~repro.runtime.graphs.ExecutionGraph` or an
        adaptive facade (the live image's plan is exported)."""
        live = getattr(graph, "live", graph)
        return live.plan().to_json()

    @staticmethod
    def apply_plan_json(graph, text: str) -> ExecutionGraph:
        """Re-place a local graph under a JSON plan recorded elsewhere
        (see :meth:`~repro.runtime.graphs.ExecutionGraph.apply_plan` for
        the validation contract)."""
        live = getattr(graph, "live", graph)
        return live.apply_plan(GraphPlan.from_json(text))

    def __repr__(self) -> str:
        return (
            f"LocalEngine({self.runtime.cache!r}, "
            f"profiling={'on' if self.runtime.profiler is not None else 'off'}, "
            f"adaptive={'on' if self.runtime.adaptive is not None else 'off'}, "
            f"jit={'on' if self.runtime.jit is not None else 'off'})"
        )
