"""Execution-graph capture & replay: record the launch DAG once, replay
it with zero scheduling or hazard analysis.

The multi-stream runtime (:mod:`repro.runtime.streams`) pays a fixed
orchestration tax on *every* ``submit``: resolve the launch's global
byte ranges (``launch_ranges``), scan outstanding launches for hazards
(``ranges_conflict``), pick a stream, and re-prove coalescing
eligibility on the worker.  Launch-bound workloads — the serving decode
loop re-submits an *identical* DAG every step — pay that tax per step
for answers that never change.  This module is the CUDA-graph analogue
for the simulator: **capture** the DAG once, freeze every decision, and
**replay** it by driving the per-stream engines directly.

Capture
-------
::

    with runtime.capture() as g:          # or pool.capture()
        runtime.launch(prog, args, stream=s0)
        runtime.launch(prog2, args2, stream="auto")
    g.bind("act", act_addr, act_nbytes)   # designate rebindable slots
    g.replay({"act": new_act_addr})

Inside the ``with`` block nothing executes: every launch is recorded as
a :class:`GraphNode` holding the program, its arguments, its resolved
global byte ranges, its hazard dependencies (computed against every
earlier recorded node — writes serialize, reads share, exactly the live
semantics), its frozen stream assignment (the caller's stream, or the
same round-robin + memory-aware placement the live scheduler would
pick), and its resolved engine choice.  Handles returned during capture
are inert: ``wait()`` is a no-op, so code written for eager streams
(e.g. ``ops.QuantizedLinear``'s split-k path) captures unchanged.

On exit the graph **instantiates**: nodes are partitioned into
per-stream *execution groups* — the static image of the live runtime's
launch coalescing.  Consecutive same-stream nodes merge into one
stacked :meth:`~repro.vm.batched.BatchedExecutor.launch_many` when they
run the same program on the batched engine with one grid shape,
identical shape-contributing scalars, pairwise-disjoint ranges, and no
dependency on or after the group head (so hoisting their waits to the
group head cannot deadlock: every dependency strictly precedes the
head, and dependencies only ever point at earlier submissions).
Cross-stream group edges are the only synchronization replay performs.

Replay
------
:meth:`ExecutionGraph.replay` enqueues one :class:`~repro.runtime.
streams.StreamTask` per group onto the captured streams and blocks
until the whole graph retires.  Each task waits on its precomputed
cross-stream dependency events, then calls the stream's engine directly
— no ``analyze_access``, no ``launch_ranges``, no ``ranges_conflict``,
no scheduler, no mergeability probing.  Replay is bit-exact with eager
stream submission of the same launches and with a serial replay
(``replay(serial=True)`` runs the nodes one at a time in submission
order — the debugging oracle).

Rebinding
---------
``bind(name, base, nbytes)`` designates a device buffer: every pointer
argument inside ``[base, base + nbytes)`` becomes a rebindable slot
(its offset into the buffer is preserved, so e.g. split-k's per-slice
``p + s*slice_bytes`` pointers rebase correctly).  ``bind(name, value)``
without ``nbytes`` designates a scalar slot by exact value.  At replay,
``bindings`` maps names to new values; every rebound launch is
validated against its capture-time **specialization key** — pointer
swaps keep the key (kernels are address-agnostic), while any scalar
change that would alter shapes or the compiled kernel is rejected.
Rebinding carries the CUDA-graph contract: new buffers must preserve
the capture-time aliasing relationships (disjoint stays disjoint);
hazard analysis is *not* re-run — that is the point.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Iterable, Mapping, Sequence

from repro.compiler.pipeline import specialization_key
from repro.errors import VMError
from repro.ir import instructions as insts
from repro.obs import trace as obs_trace
from repro.ir.program import Program
from repro.runtime.adaptive import (
    STREAM_CAP_SLACK,
    estimated_makespan,
    guided_placement,
    lpt_placement,
)
from repro.runtime.profiling import (
    Profile,
    StatsTimer,
    spec_string,
    split_counts,
)
from repro.runtime.streams import (
    Stream,
    StreamPool,
    StreamTask,
    launch_ranges,
    ranges_conflict,
    stackable_with_group,
)
from repro.vm.batched import BatchedExecutor, select_engine
from repro.vm.interp import ExecutionStats, Interpreter

_SIDE_EFFECT_ATTR = "_graph_has_side_effects"


def _has_side_effects(program: Program) -> bool:
    """True when the program observably acts beyond its memory writes
    (``PrintTensor``), so dead-node elimination must never drop it.
    Memoized on the program object."""
    cached = program.__dict__.get(_SIDE_EFFECT_ATTR)
    if cached is None:
        cached = any(
            isinstance(inst, insts.PrintTensor)
            for inst in program.body.instructions()
        )
        program.__dict__[_SIDE_EFFECT_ATTR] = cached
    return cached


def _intervals_overlap(a: tuple[float, float], b: tuple[float, float]) -> bool:
    return a[0] < b[1] and b[0] < a[1]


class GraphNode:
    """One captured launch: everything the live runtime decides per
    submission, frozen at capture time."""

    __slots__ = ("index", "program", "args", "ranges", "deps", "stream_index",
                 "engine", "grid", "key")

    def __init__(self, index, program, args, ranges, deps, stream_index,
                 engine, grid, key) -> None:
        self.index = index
        self.program = program
        self.args = args
        self.ranges = ranges
        self.deps = deps            # indices of earlier conflicting nodes
        self.stream_index = stream_index
        self.engine = engine        # resolved: "sequential" | "batched"
        self.grid = grid
        self.key = key              # capture-time specialization key

    def __repr__(self) -> str:
        return (
            f"GraphNode({self.index}: {self.program.name} on stream "
            f"{self.stream_index}, deps={list(self.deps)})"
        )


class CapturedLaunchHandle:
    """The inert handle returned by a launch recorded during capture.

    Nothing executed, so there is nothing to wait for: ``wait()`` is a
    no-op and ``done`` is always True.  This lets eager-stream call sites
    (``handle.wait()`` / ``pool.synchronize()``) capture unchanged.
    """

    __slots__ = ("program", "args", "node", "graph", "error")

    def __init__(self, program, args, node: GraphNode, graph) -> None:
        self.program = program
        self.args = args
        self.node = node
        self.graph = graph
        self.error = None

    # Mirror the LaunchHandle surface used by callers.
    done = True

    def wait(self) -> None:
        return None

    def __repr__(self) -> str:
        return f"CapturedLaunchHandle({self.program.name}, node={self.node.index})"


class _Binding:
    """A designated rebindable region (pointer span) or value (scalar)."""

    __slots__ = ("name", "base", "nbytes")

    def __init__(self, name: str, base, nbytes: int | None) -> None:
        self.name = name
        self.base = base
        self.nbytes = nbytes

    @property
    def is_pointer(self) -> bool:
        return self.nbytes is not None


#: Wire-format version of the serialized graph plan (bump on any change
#: to the schema below; readers reject unknown versions loudly).
PLAN_JSON_VERSION = 1


class GraphPlan:
    """The transportable half of an :class:`ExecutionGraph`: every
    *decision* the capture froze — per-node stream placement, engine
    choice, specialization identity, grid shape and hazard edges — with
    none of the process-local state (programs, device addresses).

    This is what ships across a process boundary in the sharded-serving
    stack: a worker (or the router) serializes a captured graph's plan as
    versioned JSON, and the receiving process — which holds an
    *isomorphic* capture of the same launch DAG, because specialization
    keys and graph signatures are deterministic across processes — applies
    it with :meth:`ExecutionGraph.apply_plan`.  Live objects never cross
    the wire: no pickle, no addresses, no compiled kernels.

    Per-node ``spec`` strings are the cross-process identity check: a plan
    only applies to a graph whose node sequence carries the same
    specialization keys and grids in the same order.
    """

    __slots__ = ("signature", "num_streams", "nodes")

    def __init__(self, signature: str, num_streams: int, nodes: list[dict]) -> None:
        self.signature = signature
        self.num_streams = num_streams
        #: One dict per node: ``index``, ``program`` (name), ``spec``
        #: (specialization-key string), ``engine``, ``stream``, ``grid``,
        #: ``deps`` — all JSON-native types.
        self.nodes = nodes

    @classmethod
    def from_graph(cls, graph: "ExecutionGraph") -> "GraphPlan":
        nodes = [
            {
                "index": node.index,
                "program": node.program.name,
                "spec": spec_string(node.key),
                "engine": node.engine,
                "stream": node.stream_index,
                "grid": list(node.grid),
                "deps": list(node.deps),
            }
            for node in graph.nodes
        ]
        return cls(graph.signature, len(graph.pool.streams), nodes)

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": PLAN_JSON_VERSION,
                "kind": "execution-graph-plan",
                "signature": self.signature,
                "num_streams": self.num_streams,
                "nodes": self.nodes,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "GraphPlan":
        """Parse a plan written by :meth:`to_json`.  Malformed input —
        truncated JSON, wrong kind, unknown version, mangled node list —
        raises :class:`VMError` naming the problem, never a silently
        unusable plan: a worker about to re-place its graph from this
        data must not mistake garbage for a schedule."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise VMError(f"graph plan JSON is truncated or malformed: {exc}") from exc
        if not isinstance(data, dict) or data.get("kind") != "execution-graph-plan":
            raise VMError("graph plan JSON is not an execution-graph-plan object")
        version = data.get("version")
        if version != PLAN_JSON_VERSION:
            raise VMError(
                f"unsupported graph-plan version {version!r} "
                f"(this build reads version {PLAN_JSON_VERSION})"
            )
        nodes = data.get("nodes")
        if not isinstance(nodes, list):
            raise VMError("graph plan JSON is missing its 'nodes' list")
        required = {"index", "program", "spec", "engine", "stream", "grid", "deps"}
        for record in nodes:
            if not isinstance(record, dict) or not required.issubset(record):
                raise VMError(
                    f"malformed graph-plan node record: {record!r} "
                    f"(need keys {sorted(required)})"
                )
        return cls(data["signature"], int(data["num_streams"]), nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        streams = sorted({n["stream"] for n in self.nodes})
        return (
            f"GraphPlan({self.signature}, {len(self.nodes)} nodes over "
            f"streams {streams})"
        )


class _Group:
    """A per-stream execution group: one engine invocation at replay."""

    __slots__ = ("stream_index", "node_indices", "dep_groups", "engine", "program")

    def __init__(self, stream_index, node_indices, engine, program) -> None:
        self.stream_index = stream_index
        self.node_indices = node_indices
        self.dep_groups: tuple[int, ...] = ()
        self.engine = engine
        self.program = program


class _ReplayState:
    """Shared error latch for one replay's tasks (first error wins;
    later groups observe it and retire without executing)."""

    __slots__ = ("error", "_lock")

    def __init__(self) -> None:
        self.error: BaseException | None = None
        self._lock = threading.Lock()

    def fail(self, exc: BaseException) -> None:
        with self._lock:
            if self.error is None:
                self.error = exc


class _GroupTask(StreamTask):
    """Replays one execution group on its stream's worker: wait the
    precomputed cross-stream dependency events, drive the engine, signal
    completion.  No analysis of any kind happens here.  When the pool
    has an active profiler, the engine invocation is timed (dependency
    waits excluded) and attributed to the group's nodes."""

    __slots__ = ("group", "group_index", "args_list", "dep_events",
                 "done_event", "state", "graph", "engine_used")

    def __init__(self, group: _Group, group_index, args_list, dep_events,
                 done_event, state, graph) -> None:
        self.group = group
        self.group_index = group_index
        self.args_list = args_list
        self.dep_events = dep_events
        self.done_event = done_event
        self.state = state
        self.graph = graph
        #: Engine that actually executed (the compiled tier may promote
        #: a single-node group past its frozen choice at replay time).
        self.engine_used = group.engine

    def _execute(self, stream: Stream) -> None:
        group = self.group
        if len(self.args_list) == 1:
            args = self.args_list[0]
            jit = stream.pool.jit
            if jit is not None:
                node = self.graph.nodes[group.node_indices[0]]
                compiled = jit.maybe_compile(
                    group.program, args, stream.pool.profiler, key=node.key
                )
                if compiled is not None:
                    self.engine_used = "compiled"
                    jit.run(compiled, args, stream.stats)
                    stream.launches += 1
                    stream.executions += 1
                    return
            engine = (
                stream.batched
                if group.engine == "batched"
                else stream.interpreter
            )
            engine.launch(group.program, args)
        else:
            stream.batched.launch_many(group.program, self.args_list)
        stream.launches += len(self.args_list)
        stream.executions += 1

    def run(self, stream: Stream) -> None:
        try:
            for event in self.dep_events:
                event.wait()
            if self.state.error is None:
                profiler = stream.pool.profiler
                tracer = obs_trace.ACTIVE
                trace_start = tracer.now() if tracer is not None else 0.0
                if profiler is None:
                    self._execute(stream)
                else:
                    with StatsTimer(stream.stats) as timer:
                        self._execute(stream)
                    self.graph._record_nodes(
                        profiler,
                        self.group.node_indices,
                        timer.wall,
                        timer.delta,
                        group=self.group_index,
                        engine=self.engine_used,
                    )
                if tracer is not None:
                    # Lane-level execution spans carry cat "stream" (like
                    # live stream groups); "graph" is the lifecycle lane
                    # (capture / host-side replay spans).
                    tracer.complete(
                        f"replay:{self.group.program.name}",
                        "stream",
                        stream.index + 1,
                        trace_start,
                        tracer.now() - trace_start,
                        {"launches": len(self.args_list), "engine": self.engine_used},
                    )
        except BaseException as exc:  # noqa: BLE001 — surfaced by replay()
            self.state.fail(exc)
        finally:
            self.done_event.set()


class ExecutionGraph:
    """A captured launch DAG over a :class:`~repro.runtime.streams.
    StreamPool`, replayable without scheduling or hazard analysis.

    Lifecycle: ``pool.capture()`` (or ``runtime.capture()``) creates the
    graph idle; entering it as a context manager records submissions;
    exiting instantiates it (execution groups + dependency edges frozen);
    :meth:`replay` then executes it any number of times.  See the module
    docstring for semantics.
    """

    def __init__(self, pool: StreamPool, profile: Profile | None = None) -> None:
        self.pool = pool
        #: Prior profile consulted at capture/instantiate time
        #: (profile-guided capture; see :mod:`repro.runtime.adaptive`).
        self._capture_profile = profile
        self.nodes: list[GraphNode] = []
        self.replays = 0
        self._phase = "idle"  # idle -> capturing -> ready (or aborted)
        self._rr = 0
        self._bindings: dict[str, _Binding] = {}
        self._groups: list[_Group] = []
        self._slot_map: dict[str, list[tuple]] | None = None
        self._bound_args: list[tuple] | None = None
        self._group_args: list[list[tuple]] | None = None
        self._last_values: dict | None = None
        self._signature: str | None = None

    # -- capture ------------------------------------------------------------
    def __enter__(self) -> "ExecutionGraph":
        if self._phase != "idle":
            raise VMError(f"cannot re-enter a graph in phase {self._phase!r}")
        if self.pool._capture is not None:
            raise VMError("another capture is already active on this pool")
        self.pool._capture = self
        self._phase = "capturing"
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.pool._capture = None
        if exc_type is None:
            try:
                self._instantiate()
            except BaseException:
                # A failed instantiation (e.g. a capture profile that
                # matches nothing) must not leave the graph looking like
                # an active capture: later use should say "aborted".
                self._phase = "aborted"
                raise
            self._phase = "ready"
        else:
            self._phase = "aborted"

    def _record(
        self,
        program: Program,
        args: Sequence,
        stream: Stream | None = None,
        engine: str = "auto",
    ) -> CapturedLaunchHandle:
        """Record one launch: hazard analysis, scheduling and engine
        selection run here, once, never again."""
        if self._phase != "capturing":
            raise VMError("graph is not capturing")
        if len(args) != len(program.params):
            raise VMError(
                f"{program.name} expects {len(program.params)} args, got {len(args)}"
            )
        args = tuple(args)
        ranges = launch_ranges(program, args)
        deps = tuple(
            node.index
            for node in self.nodes
            if ranges_conflict(node.ranges, ranges)
        )
        if stream is not None:
            if stream.pool is not self.pool:
                raise VMError("stream belongs to a different pool")
            stream_index = stream.index
        elif deps:
            # Memory-aware placement, like the live scheduler: FIFO order
            # on the conflicting stream replaces a cross-stream wait.
            stream_index = self.nodes[deps[-1]].stream_index
        else:
            stream_index = self._rr % len(self.pool.streams)
            self._rr += 1
        grid = program.grid_size(args)
        key = specialization_key(program, args)
        choice = engine
        if choice == "auto":
            choice = self._guided_engine(program, grid, key)
        elif choice == "compiled":
            # The compiled tier is an execution-time decision (replay
            # tasks promote hot nodes themselves); captured nodes only
            # ever freeze an interpreted engine, keeping plans portable
            # to processes without a JIT manager attached.
            choice = "batched"
        node = GraphNode(
            index=len(self.nodes),
            program=program,
            args=args,
            ranges=ranges,
            deps=deps,
            stream_index=stream_index,
            engine=choice,
            grid=grid,
            key=key,
        )
        self.nodes.append(node)
        return CapturedLaunchHandle(program, args, node, self)

    def _guided_engine(self, program: Program, grid, key: tuple) -> str:
        """Resolve ``engine="auto"`` for one recorded launch.

        With a capture profile, the launch's specialization key is looked
        up per engine: when *both* engines have measured costs, the
        cheaper one wins — measured cost, not grid size, decides.  A key
        the profile has seen under at most one engine has nothing to
        compare, so it falls back to the live heuristic
        (:func:`~repro.vm.batched.select_engine`) unchanged.
        """
        if self._capture_profile is not None:
            measured = self._capture_profile.spec_engine_seconds(spec_string(key))
            # Only the interpreted engines are capture-time choices; the
            # compiled tier's records must not elect "compiled" as a
            # frozen node engine (promotion happens at replay).
            measured = {
                e: s for e, s in measured.items() if e in ("sequential", "batched")
            }
            if len(measured) >= 2:
                return min(measured.items(), key=lambda kv: (kv[1], kv[0]))[0]
        return select_engine(program, grid)

    # -- instantiation ------------------------------------------------------
    def _mergeable(self, group: list[GraphNode], node: GraphNode) -> bool:
        first = group[0]
        if node.program is not first.program or node.engine != first.engine:
            return False
        if first.engine != "batched":
            return False
        if not stackable_with_group(
            first.program, first.grid, first.args, node.grid, node.args, len(group)
        ):
            return False
        # Dependency waits hoist to the group head, which is safe (and
        # deadlock-free) only when every dependency strictly precedes it.
        if any(dep >= first.index for dep in node.deps):
            return False
        # Coalesced launches interleave: members must be pairwise disjoint.
        return all(
            not ranges_conflict(node.ranges, member.ranges) for member in group
        )

    def _instantiate(self) -> None:
        """Freeze the per-stream execution groups and their cross-stream
        dependency edges — the static image of the live runtime's
        coalescing and ordering decisions.  With a capture profile, node
        placement (and the stream count) is first recomputed from
        measured costs (:meth:`_apply_capture_profile`)."""
        if self._capture_profile is not None and self.nodes:
            self._apply_capture_profile(self._capture_profile)
        per_stream: dict[int, list[GraphNode]] = {}
        for node in self.nodes:
            per_stream.setdefault(node.stream_index, []).append(node)
        groups: list[_Group] = []
        node_group = [0] * len(self.nodes)
        for stream_index, stream_nodes in per_stream.items():
            current: list[GraphNode] = []
            for node in stream_nodes:
                if current and self._mergeable(current, node):
                    current.append(node)
                else:
                    if current:
                        groups.append(self._finish_group(stream_index, current))
                    current = [node]
            if current:
                groups.append(self._finish_group(stream_index, current))
        # Stable global order (by head node) so replay enqueues a group's
        # dependencies before its dependents.
        groups.sort(key=lambda g: g.node_indices[0])
        for gi, group in enumerate(groups):
            for ni in group.node_indices:
                node_group[ni] = gi
        for gi, group in enumerate(groups):
            dep_groups = {
                node_group[dep]
                for ni in group.node_indices
                for dep in self.nodes[ni].deps
            }
            dep_groups.discard(gi)
            # Same-stream edges are implied by FIFO order; only
            # cross-stream edges need an event wait at replay.
            group.dep_groups = tuple(
                sorted(
                    d
                    for d in dep_groups
                    if groups[d].stream_index != group.stream_index
                )
            )
        self._groups = groups
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.instant(
                "graph.capture",
                "graph",
                obs_trace.HOST_TID,
                {
                    "signature": self.signature,
                    "nodes": len(self.nodes),
                    "groups": len(groups),
                },
            )

    def _apply_capture_profile(self, profile: Profile) -> None:
        """Profile-guided placement at capture time.

        Measured per-node costs (this graph's signature, falling back to
        specialization-key means for nodes the signature scope missed)
        drive a guided LPT placement over the hazard DAG, and the
        **stream count is capped to the measured parallelism**: the
        smallest count whose estimated makespan is within
        :data:`~repro.runtime.adaptive.STREAM_CAP_SLACK` of the best
        over all counts wins.  The re-placement is applied only when its
        estimated makespan stays within that same slack of the heuristic
        placement's — profile-guided capture never regresses the
        estimate beyond the slack it deliberately trades for fewer
        streams (the estimate ignores per-stream replay overhead, which
        is exactly what fewer streams save).  An empty profile changes
        nothing (cold start); a
        non-empty profile matching *no* node is rejected with
        :class:`VMError` — a wrong profile file must not silently
        misoptimize.
        """
        if len(profile) == 0:
            return  # cold start: nothing measured yet, keep the heuristics
        costs, matched = self._profiled_costs(profile)
        if matched == 0:
            raise VMError(
                f"capture profile ({len(profile)} sites) matches no node of "
                f"this graph (signature {self.signature}): neither the "
                "signature nor any node's specialization key was ever "
                "recorded — wrong profile?  Capture without profile= to "
                "use the heuristic placement."
            )
        deps = {node.index: node.deps for node in self.nodes}
        heuristic = {node.index: node.stream_index for node in self.nodes}
        heuristic_span = estimated_makespan(heuristic, costs, deps)
        candidates = []
        for k in range(1, len(self.pool.streams) + 1):
            placement = guided_placement(k, costs, deps)
            candidates.append((k, placement, estimated_makespan(placement, costs, deps)))
        best_span = min(span for _, _, span in candidates)
        for _, placement, span in candidates:  # ascending stream count
            if span <= best_span * (1.0 + STREAM_CAP_SLACK):
                break
        if span <= heuristic_span * (1.0 + STREAM_CAP_SLACK):
            for node in self.nodes:
                node.stream_index = placement[node.index]

    def _finish_group(self, stream_index: int, nodes: list[GraphNode]) -> _Group:
        return _Group(
            stream_index,
            [n.index for n in nodes],
            nodes[0].engine,
            nodes[0].program,
        )

    # -- rebinding ----------------------------------------------------------
    def bind(self, name: str, value, nbytes: int | None = None) -> None:
        """Designate a rebindable argument slot set.

        With ``nbytes``, ``value`` is a device buffer base address: every
        *pointer* argument in ``[value, value + nbytes)`` rebinds with
        its intra-buffer offset preserved.  Without ``nbytes``, ``value``
        designates *scalar* slots by exact match (rebinding those is
        validated against the specialization key — a change that would
        alter the compiled kernel or any shape is rejected at replay).
        """
        if name in self._bindings:
            raise VMError(f"binding {name!r} already registered")
        if nbytes is not None:
            for other in self._bindings.values():
                if other.is_pointer and (
                    other.base < value + nbytes and value < other.base + other.nbytes
                ):
                    raise VMError(
                        f"binding {name!r} overlaps binding {other.name!r}"
                    )
        self._bindings[name] = _Binding(name, value, nbytes)
        self._slot_map = None  # rebuild lazily

    def _build_slot_map(self) -> None:
        slot_map: dict[str, list[tuple]] = {name: [] for name in self._bindings}
        for node in self.nodes:
            for j, (param, value) in enumerate(zip(node.program.params, node.args)):
                owner = None
                for binding in self._bindings.values():
                    if binding.is_pointer:
                        if (
                            param.dtype.is_pointer
                            and binding.base <= value < binding.base + binding.nbytes
                        ):
                            matched = (node.index, j, value - binding.base)
                        else:
                            continue
                    elif not param.dtype.is_pointer and value == binding.base:
                        matched = (node.index, j, None)
                    else:
                        continue
                    if owner is not None:
                        raise VMError(
                            f"argument {j} of node {node.index} "
                            f"({node.program.name}) matches bindings "
                            f"{owner!r} and {binding.name!r}"
                        )
                    owner = binding.name
                    slot_map[binding.name].append(matched)
        self._slot_map = slot_map

    def _apply_bindings(self, bindings: Mapping) -> None:
        unknown = set(bindings) - set(self._bindings)
        if unknown:
            raise VMError(
                f"unknown bindings {sorted(unknown)}; registered: "
                f"{sorted(self._bindings)}"
            )
        if self._slot_map is None:
            self._build_slot_map()
        values = {
            name: bindings.get(name, b.base) for name, b in self._bindings.items()
        }
        if values == self._last_values and self._bound_args is not None:
            return  # identity with the previous replay: nothing to rebind
        new_args = [list(node.args) for node in self.nodes]
        for name, entries in self._slot_map.items():
            base = values[name]
            for node_index, arg_index, delta in entries:
                new_args[node_index][arg_index] = (
                    base if delta is None else base + delta
                )
        bound = [tuple(a) for a in new_args]
        for node, args in zip(self.nodes, bound):
            if args == node.args:
                continue
            key = specialization_key(node.program, args)
            if key != node.key:
                raise VMError(
                    f"rebinding changes the specialization key of node "
                    f"{node.index} ({node.program.name}): replayed buffers "
                    "must keep the capture-time shapes and scalars"
                )
        self._bound_args = bound
        self._group_args = [
            [bound[i] for i in group.node_indices] for group in self._groups
        ]
        self._last_values = dict(values)

    # -- replay -------------------------------------------------------------
    def replay(
        self, bindings: Mapping | None = None, *, serial: bool = False
    ) -> None:
        """Execute the captured DAG once; blocks until it fully retires.

        ``bindings`` rebinds designated slots (see :meth:`bind`); omitted
        names keep their capture-time values.  ``serial=True`` runs the
        nodes one at a time in submission order on the calling thread —
        the bit-exactness oracle for the streamed replay.  Raises
        :class:`VMError` if any node fails (remaining groups retire
        without executing, like dependency poisoning in the live runtime).
        """
        if self._phase != "ready":
            raise VMError(
                f"graph is not replayable (phase {self._phase!r}); "
                "capture must have completed without error"
            )
        self._apply_bindings(bindings or {})
        tracer = obs_trace.ACTIVE
        trace_start = tracer.now() if tracer is not None else 0.0
        if serial:
            self._replay_serial()
        else:
            self._replay_streamed()
        if tracer is not None:
            tracer.complete(
                "graph.replay",
                "graph",
                obs_trace.HOST_TID,
                trace_start,
                tracer.now() - trace_start,
                {
                    "signature": self.signature,
                    "nodes": len(self.nodes),
                    "serial": serial,
                },
            )
        self.replays += 1

    def _replay_streamed(self) -> None:
        state = _ReplayState()
        events = [threading.Event() for _ in self._groups]
        for gi, group in enumerate(self._groups):
            task = _GroupTask(
                group,
                gi,
                self._group_args[gi],
                [events[d] for d in group.dep_groups],
                events[gi],
                state,
                self,
            )
            self.pool.streams[group.stream_index].enqueue_task(task)
        for event in events:
            event.wait()
        if state.error is not None:
            raise VMError(f"graph replay failed: {state.error}") from state.error

    def _replay_serial(self) -> ExecutionStats:
        # The serial oracle runs on the calling thread: drain the pool
        # first so it cannot race in-flight stream work, and account its
        # execution into stream 0's stats/counters so aggregate totals
        # stay comparable with a streamed replay's.
        pool = self.pool
        pool.synchronize()
        stream0 = pool.streams[0]
        interpreter = Interpreter(
            pool.memory, shared_capacity=pool.shared_capacity, stdout=pool.stdout
        )
        interpreter.stats = stream0.stats
        batched = BatchedExecutor(
            pool.memory,
            shared_capacity=pool.shared_capacity,
            stats=stream0.stats,
            stdout=pool.stdout,
        )
        profiler = pool.profiler
        jit = pool.jit
        for node in self.nodes:
            args = self._bound_args[node.index]
            compiled = (
                jit.maybe_compile(node.program, args, profiler, key=node.key)
                if jit is not None
                else None
            )

            def execute() -> None:
                if compiled is not None:
                    jit.run(compiled, args, stream0.stats)
                else:
                    engine = batched if node.engine == "batched" else interpreter
                    engine.launch(node.program, args)

            if profiler is None:
                execute()
            else:
                # The serial oracle is also the cheapest profile
                # collector: one engine invocation per node gives exact
                # (not group-amortized) per-node costs.
                with StatsTimer(stream0.stats) as timer:
                    execute()
                self._record_nodes(
                    profiler,
                    [node.index],
                    timer.wall,
                    timer.delta,
                    engine="compiled" if compiled is not None else None,
                )
        stream0.launches += len(self.nodes)
        stream0.executions += len(self.nodes)
        return stream0.stats

    def _record_nodes(
        self,
        profiler: Profile,
        node_indices: Sequence[int],
        wall_s: float,
        stats_delta: Mapping,
        group: int | None = None,
        engine: str | None = None,
    ) -> None:
        """Attribute one engine invocation to the given nodes under this
        graph's signature scope (an even split across a coalesced group —
        members run the same program on one stacked grid; integer stat
        counters split remainder-exactly).  Graph nodes record under
        their *frozen* stream so every node keeps a unique profile site
        regardless of which thread executed it (the serial oracle runs
        them all on the calling thread, for instance).  ``engine``
        overrides the frozen engine choice when the compiled tier
        promoted the execution past it — compiled time must not pollute
        the interpreted tiers' promotion heat or capture-time costs."""
        n = len(node_indices)
        shares = split_counts(stats_delta, n)
        for ni, share in zip(node_indices, shares):
            node = self.nodes[ni]
            profiler.record(
                self.signature,
                ni,
                node.program.name,
                spec_string(node.key),
                engine if engine is not None else node.engine,
                node.stream_index,
                wall_s / n,
                stats_delta=share,
                group=group,
                group_size=n,
            )

    # -- profile-guided optimization ----------------------------------------
    @property
    def signature(self) -> str:
        """Stable identity of the captured DAG: a hash over the node
        sequence's specialization keys, engines and grids.  Pointer
        arguments are excluded (the keys are address-agnostic), so the
        same plan captured against fresh buffers — or in another process
        — produces the same signature, which is how a serialized
        :class:`~repro.runtime.profiling.Profile` finds this graph's
        per-node records again."""
        if self._signature is None:
            tokens = [
                f"{spec_string(node.key)}|{node.engine}|{node.grid}"
                for node in self.nodes
            ]
            digest = hashlib.sha256("\n".join(tokens).encode()).hexdigest()
            self._signature = f"graph:{digest[:16]}"
        return self._signature

    def _live_indices(self, outputs: Iterable[str] | None) -> list[int]:
        """Indices of nodes that must survive dead-node elimination.

        A node is **live** when any of:

        - its write ranges intersect a bound output span (``outputs``
          names a subset of the pointer bindings; ``None`` means every
          pointer binding is an observable output);
        - a later live node *reads* bytes it writes (RAW reachability —
          WAW alone does not resurrect a node: an unread, un-bound write
          is unobservable even if overwritten);
        - its ranges are conservative (whole-memory: static analysis
          failed, so everything it does may be observed);
        - it has side effects beyond memory (``PrintTensor``), or it
          writes nothing that analysis resolved (pure/opaque nodes are
          kept rather than guessed at).

        When the graph has no pointer bindings and ``outputs`` is None,
        *all of device memory* is presumed observable (the host can
        download any buffer), so nothing is eliminated.  Passing an
        explicit — possibly empty — ``outputs`` asserts the bound spans
        are the only externally read memory.
        """
        pointer_bindings = {
            name: b for name, b in self._bindings.items() if b.is_pointer
        }
        if outputs is None:
            if not pointer_bindings:
                return list(range(len(self.nodes)))
            spans = [
                (float(b.base), float(b.base + b.nbytes))
                for b in pointer_bindings.values()
            ]
        else:
            spans = []
            for name in outputs:
                binding = pointer_bindings.get(name)
                if binding is None:
                    raise VMError(
                        f"outputs names {name!r}, which is not a pointer "
                        f"binding of this graph (registered: "
                        f"{sorted(pointer_bindings)})"
                    )
                spans.append((float(binding.base), float(binding.base + binding.nbytes)))
        live = [False] * len(self.nodes)
        later_reads: list[tuple[float, float]] = []
        later_conservative = False
        for i in reversed(range(len(self.nodes))):
            node = self.nodes[i]
            conservative = any(end == float("inf") for _, end, _ in node.ranges)
            writes = [
                (float(s), float(e)) for s, e, w in node.ranges if w and s < e
            ]
            reads = [
                (float(s), float(e)) for s, e, w in node.ranges if not w and s < e
            ]
            keep = (
                conservative
                or _has_side_effects(node.program)
                or not writes  # pure/opaque nodes are kept, not guessed at
                or later_conservative  # an opaque later node may read anything
                or any(_intervals_overlap(w, span) for w in writes for span in spans)
                or any(_intervals_overlap(w, r) for w in writes for r in later_reads)
            )
            if keep:
                live[i] = True
                later_reads.extend(reads)
                later_conservative = later_conservative or conservative
        return [i for i in range(len(self.nodes)) if live[i]]

    def _profiled_costs(self, profile: Profile) -> tuple[dict[int, float], int]:
        """Per-node cost estimates from a profile, with the match count.

        Each node takes its measured mean wall seconds under this graph's
        signature; nodes the signature scope never recorded fall back to
        the profile-wide mean of their **specialization key** (so a
        profile gathered from a *different* capture of the same kernels —
        another batch size, eager traffic — still informs placement).
        Nodes matched by neither cost the mean of the matched ones (or
        1.0 when nothing matched), so unprofiled nodes neither dominate
        nor vanish from the balance.  ``matched`` is how many nodes got a
        real measurement — zero means the profile knows nothing about
        this graph.
        """
        recorded = profile.graph_nodes(self.signature)
        costs: dict[int, float | None] = {}
        known: list[float] = []
        matched = 0
        for node in self.nodes:
            rec = recorded.get(node.index)
            mean: float | None = None
            if rec is not None and rec.calls and rec.mean_wall_s > 0.0:
                mean = rec.mean_wall_s
            else:
                spec_mean = profile.spec_seconds(spec_string(node.key))
                if spec_mean is not None and spec_mean > 0.0:
                    mean = spec_mean
            if mean is not None:
                matched += 1
                known.append(mean)
            costs[node.index] = mean
        default = sum(known) / len(known) if known else 1.0
        return (
            {i: (default if mean is None else mean) for i, mean in costs.items()},
            matched,
        )

    def _lpt_placement(
        self, live: list[int], costs: dict[int, float]
    ) -> dict[int, int]:
        """Measured-cost LPT over the hazard DAG, restricted to the live
        nodes (see :func:`repro.runtime.adaptive.lpt_placement` for the
        scheduling semantics — the same deterministic core drives
        profile-guided capture and the adaptive policy)."""
        deps = {i: self.nodes[i].deps for i in live}
        return lpt_placement(
            len(self.pool.streams), {i: costs[i] for i in live}, deps
        )

    def profile_matches(self, profile: Profile | None) -> bool:
        """True when ``profile`` holds at least one record describing
        this graph — a signature or specialization-key match — i.e. the
        condition under which :meth:`optimize` will consume it rather
        than raise.  Batch re-optimizers (``QuantizedLinear.reoptimize``)
        use this to degrade unmatched graphs to uniform-cost
        re-balancing instead of aborting mid-loop."""
        if profile is None or not len(profile):
            return False
        return self._profiled_costs(profile)[1] > 0

    def optimize(
        self,
        profile: Profile | None = None,
        outputs: Iterable[str] | None = None,
    ) -> "ExecutionGraph":
        """Profile-guided re-instantiation: a new, independently
        replayable graph over the same pool with

        - **dead nodes eliminated** — nodes whose writes are never read
          by a later live node and never alias a bound output span (see
          :meth:`_live_indices`; with no pointer bindings and ``outputs``
          unset, nothing is dropped — all memory is presumed observable);
        - **stream placement re-balanced** by longest-processing-time
          list scheduling over the hazard DAG, using measured per-node
          costs from ``profile`` (collected under this graph's
          :attr:`signature` by any profiled replay, falling back to
          specialization-key means for nodes the signature scope missed)
          instead of the capture-time round-robin/memory-aware heuristic
          — unprofiled nodes cost the profiled mean, ``profile=None``
          degrades to uniform costs (pure re-balancing), and a non-empty
          profile that matches *nothing* in this graph raises
          :class:`VMError` instead of silently misoptimizing;
        - **coalescing groups re-derived** for the new placement (the
          instantiate pass runs again, so nodes that now neighbour on a
          stream may merge into one stacked execution and vice versa).

        Hazard edges are *not* recomputed — they came from capture and
        remain valid for any placement (cross-stream edges become event
        waits at replay).  Pointer/scalar bindings carry over; the
        original graph stays replayable and the two share no mutable
        state.  Replaying the optimized graph is bit-exact with the
        original up to the eliminated (unobservable) writes.

        Note on signatures: pure re-placement preserves the node
        sequence, so the optimized graph keeps the original's
        :attr:`signature` and existing profiles keep matching; once
        elimination drops nodes the sequence — and therefore the
        signature — changes, and further refinement needs a profile
        recorded from the optimized graph itself.
        """
        if self._phase != "ready":
            raise VMError(
                f"cannot optimize a graph in phase {self._phase!r}; "
                "capture must have completed without error"
            )
        live = self._live_indices(outputs)
        if profile is not None and len(profile):
            costs, matched = self._profiled_costs(profile)
            if matched == 0:
                raise VMError(
                    f"profile ({len(profile)} sites) contains no record "
                    f"matching this graph (signature {self.signature}): "
                    "neither the signature nor any node's specialization "
                    "key was ever recorded — wrong profile?  Pass "
                    "profile=None for uniform-cost re-balancing."
                )
        else:
            costs = {node.index: 1.0 for node in self.nodes}
        placement = self._lpt_placement(live, costs)
        remap = {old: new for new, old in enumerate(live)}
        optimized = ExecutionGraph(self.pool)
        for old in live:
            node = self.nodes[old]
            optimized.nodes.append(
                GraphNode(
                    index=remap[old],
                    program=node.program,
                    args=node.args,
                    ranges=node.ranges,
                    deps=tuple(remap[d] for d in node.deps if d in remap),
                    stream_index=placement[old],
                    engine=node.engine,
                    grid=node.grid,
                    key=node.key,
                )
            )
        optimized._instantiate()
        # Bindings carry over; the slot map is rebuilt lazily against the
        # remapped node indices on the first replay.
        optimized._bindings = dict(self._bindings)
        optimized._phase = "ready"
        return optimized

    # -- plan transport -----------------------------------------------------
    def plan(self) -> GraphPlan:
        """This graph's transportable schedule: placement, engines,
        specialization identities and hazard edges as a
        :class:`GraphPlan` (versioned JSON via ``plan().to_json()``).
        Programs and device addresses stay behind — the receiving
        process applies the plan to its own isomorphic capture with
        :meth:`apply_plan`."""
        if self._phase != "ready":
            raise VMError(
                f"cannot export the plan of a graph in phase {self._phase!r}; "
                "capture must have completed without error"
            )
        return GraphPlan.from_graph(self)

    def apply_plan(self, plan: GraphPlan) -> "ExecutionGraph":
        """Re-instantiate this graph under a :class:`GraphPlan` recorded
        elsewhere — the receiving half of cross-process placement
        transfer.

        The plan must describe *this* DAG: node counts, per-node
        specialization-key strings, grids and hazard edges are all
        validated (they are deterministic across processes, so a capture
        of the same launch sequence in another process matches exactly);
        any mismatch raises :class:`VMError` — a plan for a different
        graph must not silently misplace this one.  Stream placement
        *and* engine choices come from the plan (a profile-guided
        placement decided in one process lands unchanged in another);
        the resulting graph is new and independently replayable, with
        pointer/scalar bindings carried over, exactly like
        :meth:`optimize`.
        """
        if self._phase != "ready":
            raise VMError(
                f"cannot apply a plan to a graph in phase {self._phase!r}; "
                "capture must have completed without error"
            )
        if len(plan.nodes) != len(self.nodes):
            raise VMError(
                f"plan describes {len(plan.nodes)} nodes but this graph has "
                f"{len(self.nodes)} — not the same DAG"
            )
        num_streams = len(self.pool.streams)
        applied = ExecutionGraph(self.pool)
        for node, record in zip(self.nodes, plan.nodes):
            spec = spec_string(node.key)
            if record["spec"] != spec or tuple(record["grid"]) != tuple(node.grid):
                raise VMError(
                    f"plan node {node.index} does not describe this graph's "
                    f"node {node.index} ({node.program.name}): specialization "
                    "key or grid differs — wrong plan?"
                )
            if tuple(record["deps"]) != tuple(node.deps):
                raise VMError(
                    f"plan node {node.index} carries different hazard edges "
                    f"({record['deps']} vs {list(node.deps)}): the captures "
                    "are not isomorphic"
                )
            if record["engine"] not in ("sequential", "batched"):
                raise VMError(f"plan node {node.index}: unknown engine "
                              f"{record['engine']!r}")
            stream = int(record["stream"])
            if not 0 <= stream < num_streams:
                raise VMError(
                    f"plan places node {node.index} on stream {stream}, but "
                    f"this pool has {num_streams} streams"
                )
            applied.nodes.append(
                GraphNode(
                    index=node.index,
                    program=node.program,
                    args=node.args,
                    ranges=node.ranges,
                    deps=node.deps,
                    stream_index=stream,
                    engine=record["engine"],
                    grid=node.grid,
                    key=node.key,
                )
            )
        applied._instantiate()
        applied._bindings = dict(self._bindings)
        applied._phase = "ready"
        return applied

    # -- introspection ------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_groups(self) -> int:
        return len(self._groups)

    @property
    def stream_indices(self) -> tuple[int, ...]:
        """Distinct stream indices the captured DAG executes on."""
        return tuple(sorted({node.stream_index for node in self.nodes}))

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"ExecutionGraph({len(self.nodes)} nodes in {len(self._groups)} "
            f"groups over streams {list(self.stream_indices)}, "
            f"{self.replays} replays, phase={self._phase})"
        )
