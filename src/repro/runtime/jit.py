"""The compiled execution tier: profile-driven promotion of hot
specializations out of the interpreters.

The two interpreted engines — the sequential interpreter and the
grid-vectorized batched executor — both pay per-statement Python
dispatch on every launch.  The lowering pipeline
(:mod:`repro.compiler.lower`) removes that cost for an
already-specialized launch by partially evaluating the batched engine's
statement walk at compile time and emitting flat, straight-line numpy
source.  This module is the *runtime* half of the tier:

- :class:`JitCache` — a bounded LRU of
  :class:`~repro.compiler.lower.LoweredKernel` objects keyed by
  :func:`~repro.compiler.pipeline.specialization_key`, the same
  discipline (and the same key) as the runtime's
  :class:`~repro.runtime.runtime.SpecializationCache`, so a compiled
  kernel lives alongside its interpreted specialization;
- :class:`JitManager` — the promotion policy plus a bounded *bailout
  memo*: specializations the pipeline declined (``LoweringBailout``) are
  remembered so a hot-but-unloweable signature does not re-attempt the
  whole pass pipeline on every launch.

Promotion is profile-driven, closing the tiered-PGO loop: the adaptive
runtime already records per-specialization wall time
(:meth:`~repro.runtime.profiling.Profile.spec_heat`, fed by the same
profiled replays that drive :class:`~repro.runtime.adaptive.
AdaptivePolicy`); once a signature's accumulated interpreted time
clears ``threshold_s``, the next launch compiles it and every launch
after that runs the cached callable — interpret → batched → compiled,
with no API change at any call site.  Cold signatures never pay a
compile; promoted signatures stay promoted for the manager's lifetime
(the cache hit short-circuits the heat check, so a profiler reset — the
serving loop installs a fresh profile per trace — cannot demote them).

Execution stays bit-exact: lowering either reproduces the batched
engine's results (and error behaviour, and statistics) exactly, or
bails out and the launch falls back to the batched engine.  The
differential harness locks the tier in as its 8th mode.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Sequence

from repro.compiler.lower import LoweredKernel, LoweringBailout, lower_program
from repro.compiler.pipeline import specialization_key
from repro.obs import trace as obs_trace
from repro.runtime.profiling import Profile, spec_string
from repro.vm.interp import ExecutionStats
from repro.vm.memory import GlobalMemory

#: Accumulated interpreted seconds per specialization before it promotes.
DEFAULT_THRESHOLD_S = 0.02

#: Compiled kernels kept per manager (LRU beyond this).
DEFAULT_MAX_ENTRIES = 64


class JitCache:
    """Bounded LRU of compiled (lowered) kernels, keyed by
    specialization key — the compiled twin of the runtime's
    :class:`~repro.runtime.runtime.SpecializationCache`, with the same
    eviction discipline and the same ``hits``/``misses``/``evictions``
    counters."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._kernels: OrderedDict[tuple, LoweredKernel] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: tuple) -> Optional[LoweredKernel]:
        """The cached kernel for ``key``, or None.  A hit refreshes
        recency; a miss only counts (insertion happens via :meth:`put`
        once compilation succeeds — bailed-out keys never consume an
        entry)."""
        kernel = self._kernels.get(key)
        if kernel is not None:
            self.hits += 1
            self._kernels.move_to_end(key)
            return kernel
        self.misses += 1
        return None

    def put(self, key: tuple, kernel: LoweredKernel) -> None:
        self._kernels[key] = kernel
        self._kernels.move_to_end(key)
        while len(self._kernels) > self.max_entries:
            self._kernels.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._kernels)

    def __repr__(self) -> str:
        return (
            f"JitCache({len(self)}/{self.max_entries} entries, "
            f"{self.hits} hits, {self.misses} misses, {self.evictions} evicted)"
        )


class JitManager:
    """Owns one memory's compiled tier: cache, bailout memo, promotion
    policy, counters.

    One manager per :class:`~repro.runtime.runtime.Runtime` (attached by
    ``enable_jit()``; shared with its stream pool as ``pool.jit``), so
    every execution path — synchronous launches, eager streams, graph
    replays — consults the same cache and the same heat policy.
    Thread-safe: stream workers and graph-replay tasks call into it
    concurrently; compilation runs under the lock so one hot signature
    compiles exactly once.
    """

    def __init__(
        self,
        memory: GlobalMemory,
        shared_capacity: int = 228 * 1024,
        threshold_s: float = DEFAULT_THRESHOLD_S,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if threshold_s < 0.0:
            raise ValueError(f"threshold_s must be non-negative, got {threshold_s}")
        self.memory = memory
        self.shared_capacity = shared_capacity
        self.threshold_s = threshold_s
        self.cache = JitCache(max_entries)
        #: Specializations the pipeline declined, with the bailout reason
        #: — bounded like the cache so unloweable traffic cannot grow it.
        self._bailed: OrderedDict[tuple, str] = OrderedDict()
        self._max_bailed = 4 * max_entries
        self._lock = threading.Lock()
        #: Successful compilations (pass pipeline ran to the end).
        self.compiled = 0
        #: Lowering attempts that declined (``LoweringBailout``).
        self.bailouts = 0
        #: Launches actually executed on the compiled tier.
        self.promotions = 0
        #: Kernels restored from a tuning store (no pass pipeline run).
        self.rehydrated = 0
        #: Store-loaded heat per spec string — counts toward the
        #: promotion threshold alongside live profiler heat, so a fresh
        #: process promotes hot specializations on first launch.
        self._preheat: dict[str, float] = {}
        #: Store-loaded kernel records per spec string, decoded lazily
        #: at promotion time (a corrupt record degrades to a compile).
        self._stored: dict[str, dict] = {}

    # -- policy --------------------------------------------------------------
    def maybe_compile(
        self,
        program,
        args: Sequence,
        profiler: Optional[Profile] = None,
        forced: bool = False,
        key: Optional[tuple] = None,
    ) -> Optional[LoweredKernel]:
        """The compiled kernel this launch should run, or None to stay
        interpreted.

        ``forced=True`` (an explicit ``engine="compiled"``) skips the
        heat check and compiles immediately; otherwise the launch
        promotes only when the accumulated interpreted time for its
        specialization — live profiler heat plus any store-seeded
        :meth:`preheat` — has reached ``threshold_s`` (no profiler and
        no preheat → never promote).  Either way a known bailed-out
        specialization
        answers None from the memo without re-running the pipeline, and
        an already-compiled one answers from the cache without
        consulting the heat at all — promotion is sticky.
        """
        if key is None:
            key = specialization_key(program, args)
        with self._lock:
            kernel = self.cache.lookup(key)
            if kernel is not None:
                return kernel
            reason = self._bailed.get(key)
            if reason is not None:
                self._bailed.move_to_end(key)
                return None
        if not forced:
            spec = spec_string(key)
            pre = self._preheat.get(spec)
            if profiler is None and pre is None:
                return None
            heat = pre or 0.0
            if profiler is not None:
                heat += profiler.spec_heat(spec)
            if heat < self.threshold_s:
                return None
        with self._lock:
            # Re-check under the lock: a racing launch may have compiled
            # (or bailed) this key while the heat check ran.
            kernel = self.cache.lookup(key)
            if kernel is not None:
                return kernel
            if key in self._bailed:
                return None
            tracer = obs_trace.ACTIVE
            record = self._stored.pop(spec_string(key), None)
            if record is not None:
                from repro.errors import VMError
                from repro.store import decode_kernel

                try:
                    kernel = decode_kernel(record, self.memory, key)
                except VMError:
                    kernel = None  # corrupt record: fall through and compile
                if kernel is not None:
                    self.cache.put(key, kernel)
                    self.rehydrated += 1
                    if tracer is not None:
                        tracer.instant(
                            f"jit.rehydrate:{program.name}",
                            "jit",
                            obs_trace.HOST_TID,
                            {"rehydrated": self.rehydrated},
                        )
                    return kernel
            try:
                kernel = lower_program(
                    program, args, self.memory, self.shared_capacity
                )
            except LoweringBailout as exc:
                self.bailouts += 1
                self._bailed[key] = str(exc)
                while len(self._bailed) > self._max_bailed:
                    self._bailed.popitem(last=False)
                if tracer is not None:
                    tracer.instant(
                        f"jit.bailout:{program.name}",
                        "jit",
                        obs_trace.HOST_TID,
                        {"reason": str(exc)},
                    )
                return None
            self.cache.put(key, kernel)
            self.compiled += 1
            if tracer is not None:
                tracer.instant(
                    f"jit.promote:{program.name}",
                    "jit",
                    obs_trace.HOST_TID,
                    {"forced": forced, "compiled": self.compiled},
                )
            return kernel

    def run(
        self,
        kernel: LoweredKernel,
        args: Sequence,
        stats: Optional[ExecutionStats] = None,
    ) -> ExecutionStats:
        """Execute one compiled launch against the manager's memory."""
        with self._lock:
            self.promotions += 1
        return kernel.run(self.memory, args, stats)

    # -- store warm-start ----------------------------------------------------
    def preheat(self, heats: dict) -> None:
        """Seed per-spec heat from a tuning store: a fresh process
        promotes store-hot specializations on their first launch instead
        of re-paying interpreted warmup.  Adds to (never replaces) any
        previously seeded heat."""
        with self._lock:
            for spec, seconds in heats.items():
                self._preheat[spec] = self._preheat.get(spec, 0.0) + float(seconds)

    def stage_kernels(self, records: list) -> int:
        """Stage store-loaded kernel records for lazy rehydration: when a
        staged specialization promotes, its kernel is decoded from the
        record instead of re-lowered.  Malformed list entries are
        skipped; a record that later fails to decode degrades to a cold
        compile.  Returns the number staged."""
        staged = 0
        with self._lock:
            for record in records:
                spec = record.get("spec") if isinstance(record, dict) else None
                if not isinstance(spec, str):
                    continue
                self._stored[spec] = record
                staged += 1
        return staged

    # -- introspection -------------------------------------------------------
    def bailout_reason(self, program, args: Sequence) -> Optional[str]:
        """Why a specialization stays interpreted, or None if it never
        bailed (useful in tests and bug reports)."""
        key = specialization_key(program, args)
        with self._lock:
            return self._bailed.get(key)

    def counters(self) -> dict:
        """JSON-friendly counter snapshot (shipped in worker state
        exports)."""
        with self._lock:
            return {
                "compiled": self.compiled,
                "bailouts": self.bailouts,
                "promotions": self.promotions,
                "rehydrated": self.rehydrated,
                "cache_hits": self.cache.hits,
                "cache_misses": self.cache.misses,
                "cache_evictions": self.cache.evictions,
            }

    def __repr__(self) -> str:
        return (
            f"JitManager(threshold_s={self.threshold_s}, {self.cache!r}, "
            f"{self.compiled} compiled, {self.bailouts} bailouts, "
            f"{self.promotions} promotions)"
        )
