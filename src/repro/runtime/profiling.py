"""Per-node execution profiling: the measurement half of the PGO loop.

The execution-graph subsystem (:mod:`repro.runtime.graphs`) freezes all
scheduling decisions at capture time — which is exactly when they are
cheapest to get *wrong*: the round-robin + memory-aware policy places
launches without knowing what they cost.  This module records what every
launch actually cost — wall time, instruction count, bits moved, engine
used, coalescing-group membership — as a :class:`NodeProfile`, keyed so
the numbers can be found again:

- a launch replayed from an execution graph records under the graph's
  stable :attr:`~repro.runtime.graphs.ExecutionGraph.signature` and its
  node index, which is what :meth:`~repro.runtime.graphs.ExecutionGraph.
  optimize` consumes to re-place nodes by measured cost;
- an eager launch (synchronous or streamed) records under its
  **specialization-key string** and stream — one site per distinct
  kernel specialization, the identity
  :meth:`repro.autotune.tuner.Autotuner.tune_profiled` matches so
  recorded serving traffic replaces fresh measurement runs (each record
  also carries the program name, for coarser dashboard aggregation).

A :class:`Profile` is a bag of those records with per-stream and
per-graph aggregation and a versioned JSON serialization, so a profile
gathered in one process (a serving run) can be saved, loaded elsewhere,
and fed to ``graph.optimize``/``tune_profiled`` — the classic
profile-guided-optimization workflow (cf. Liu et al. in PAPERS.md).

Recording is thread-safe (stream workers record concurrently) and
costs nothing when disabled: the engines' hot paths check a single
``profiler is None`` before doing any bookkeeping.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Iterable, Mapping

from repro.errors import VMError

#: Scope tag for launches that did not come from a graph replay.
EAGER = "eager"

#: Stream index recorded for synchronous (non-stream) launches.
HOST_STREAM = -1

#: Engine tag recorded for launches served by the compiled (JIT) tier.
COMPILED = "compiled"


def spec_string(key: tuple) -> str:
    """Canonical string form of a specialization key.

    ``repr`` of the key tuple — deterministic across processes (the
    fingerprint component is a sha256 hex digest, not a salted hash), so
    a profile saved from one run matches keys computed in another.
    """
    return repr(key)


class NodeProfile:
    """Accumulated cost of one profiled launch site.

    Identity is ``(scope, ident, stream, engine)``: for graph-replayed
    nodes the scope is the graph signature and ``ident`` the node index
    (stream is the node's frozen placement); for eager launches the
    scope is :data:`EAGER` and ``ident`` the specialization-key string.
    The engine is part of the identity because one launch site can
    execute under different tiers over its lifetime — the compiled tier
    promotes a hot site mid-run, and its costs must not accumulate into
    (or poison the heat of) the interpreted record.  All
    counters accumulate across calls; divide by :attr:`calls` for
    per-launch means.  ``group``/``group_size`` describe the coalescing
    membership of the *most recent* recorded execution (grouping can
    differ call to call on eager streams), not an accumulated property.
    """

    __slots__ = (
        "scope",
        "ident",
        "program",
        "spec",
        "engine",
        "stream",
        "group",
        "group_size",
        "calls",
        "wall_s",
        "blocks",
        "instructions",
        "global_bits_loaded",
        "global_bits_stored",
    )

    def __init__(
        self,
        scope: str,
        ident,
        program: str,
        spec: str,
        engine: str,
        stream: int,
        group: int | None = None,
        group_size: int = 1,
    ) -> None:
        self.scope = scope
        self.ident = ident
        self.program = program
        self.spec = spec
        self.engine = engine
        self.stream = stream
        #: Coalescing-group membership: the group index this node
        #: executed in (graph replays: the instantiate-time group;
        #: eager streams: unset) and how many launches shared the
        #: engine invocation.
        self.group = group
        self.group_size = group_size
        self.calls = 0
        self.wall_s = 0.0
        self.blocks = 0
        self.instructions = 0
        self.global_bits_loaded = 0
        self.global_bits_stored = 0

    @property
    def key(self) -> tuple:
        return (self.scope, self.ident, self.stream, self.engine)

    @property
    def mean_wall_s(self) -> float:
        """Mean wall time of one launch at this site."""
        return self.wall_s / self.calls if self.calls else 0.0

    @property
    def bytes_touched(self) -> int:
        """Global-memory bytes moved across all recorded calls."""
        return (self.global_bits_loaded + self.global_bits_stored) // 8

    def to_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data: Mapping) -> "NodeProfile":
        node = cls(
            scope=data["scope"],
            ident=data["ident"],
            program=data["program"],
            spec=data["spec"],
            engine=data["engine"],
            stream=data["stream"],
            group=data.get("group"),
            group_size=data.get("group_size", 1),
        )
        node.calls = int(data["calls"])
        node.wall_s = float(data["wall_s"])
        node.blocks = int(data.get("blocks", 0))
        node.instructions = int(data.get("instructions", 0))
        node.global_bits_loaded = int(data.get("global_bits_loaded", 0))
        node.global_bits_stored = int(data.get("global_bits_stored", 0))
        return node

    def __repr__(self) -> str:
        return (
            f"NodeProfile({self.scope}:{self.ident} {self.program!r} on "
            f"stream {self.stream}, {self.calls} calls, "
            f"{self.mean_wall_s * 1e6:.1f} us/call)"
        )


#: Stat counters copied from an ``ExecutionStats`` snapshot delta into a
#: node record (shared across every engine invocation attribution).
_STAT_FIELDS = (
    ("blocks", "blocks_run"),
    ("instructions", "instructions"),
    ("global_bits_loaded", "global_bits_loaded"),
    ("global_bits_stored", "global_bits_stored"),
)

_JSON_VERSION = 1


class StatsTimer:
    """Times one engine invocation and captures its ``ExecutionStats``
    delta — the single implementation of the measure-around-the-engine
    pattern every profiled execution path uses::

        with StatsTimer(stream.stats) as t:
            engine.launch(program, args)
        profiler.record(..., t.wall, stats_delta=t.delta)

    Only the engine call belongs inside the block: dependency waits and
    recording bookkeeping must stay outside the measurement.
    """

    __slots__ = ("_stats", "_before", "_start", "wall", "delta")

    def __init__(self, stats) -> None:
        self._stats = stats

    def __enter__(self) -> "StatsTimer":
        self._before = self._stats.snapshot()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall = time.perf_counter() - self._start
        after = self._stats.snapshot()
        self.delta = {k: after[k] - self._before[k] for k in after}


def split_counts(delta: Mapping, n: int) -> list[dict]:
    """Split an integer stat delta into ``n`` member shares whose sum is
    exactly the original (remainders go to the leading members) — naive
    per-member ``value / n`` truncates away up to ``n - 1`` units per
    counter per invocation."""
    shares: list[dict] = [{} for _ in range(n)]
    for key, value in delta.items():
        base, rem = divmod(int(value), n)
        for i in range(n):
            shares[i][key] = base + (1 if i < rem else 0)
    return shares


class Profile:
    """A set of :class:`NodeProfile` records with aggregation and JSON.

    One ``Profile`` can absorb launches from every execution mode at
    once — the synchronous engines, the stream workers and graph replays
    all record into the runtime's active profiler — and is safe to share
    across worker threads.
    """

    def __init__(self) -> None:
        self.nodes: dict[tuple, NodeProfile] = {}
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------
    def record(
        self,
        scope: str,
        ident,
        program: str,
        spec: str,
        engine: str,
        stream: int,
        wall_s: float,
        stats_delta: Mapping | None = None,
        group: int | None = None,
        group_size: int = 1,
    ) -> NodeProfile:
        """Accumulate one launch's measurements into its site record.

        ``stats_delta`` is an ``ExecutionStats`` snapshot difference for
        the *engine invocation*; callers attributing one coalesced
        invocation to several launches divide it (and ``wall_s``) before
        recording each.
        """
        key = (scope, ident, stream, engine)
        with self._lock:
            node = self.nodes.get(key)
            if node is None:
                node = NodeProfile(
                    scope, ident, program, spec, engine, stream,
                    group=group, group_size=group_size,
                )
                self.nodes[key] = node
            node.calls += 1
            node.wall_s += wall_s
            node.group = group if group is not None else node.group
            node.group_size = group_size
            if stats_delta:
                for attr, stat in _STAT_FIELDS:
                    setattr(node, attr, getattr(node, attr) + int(stats_delta.get(stat, 0)))
        return node

    def record_group(
        self,
        scope: str,
        idents: Iterable,
        program: str,
        specs: Iterable[str],
        engine: str,
        stream: int,
        wall_s: float,
        stats_delta: Mapping | None = None,
        group: int | None = None,
    ) -> None:
        """Attribute one coalesced engine invocation evenly across its
        member launches (they run the same program on one stacked grid,
        so an even split is the honest per-launch estimate).  Integer
        counters split with the remainder spread over the first members,
        so group totals equal the invocation's exact delta."""
        idents = list(idents)
        specs = list(specs)
        n = len(idents)
        shares = split_counts(stats_delta, n) if stats_delta else [None] * n
        for (ident, spec), share in zip(zip(idents, specs), shares):
            self.record(
                scope,
                ident,
                program,
                spec,
                engine,
                stream,
                wall_s / n,
                stats_delta=share,
                group=group,
                group_size=n,
            )

    # -- aggregation --------------------------------------------------------
    def per_stream(self) -> dict[int, dict]:
        """Totals per stream index: calls, wall seconds, bytes touched."""
        out: dict[int, dict] = {}
        with self._lock:
            for node in self.nodes.values():
                agg = out.setdefault(
                    node.stream, {"calls": 0, "wall_s": 0.0, "bytes": 0}
                )
                agg["calls"] += node.calls
                agg["wall_s"] += node.wall_s
                agg["bytes"] += node.bytes_touched
        return out

    def per_graph(self) -> dict[str, dict]:
        """Totals per graph signature (eager launches under ``"eager"``)."""
        out: dict[str, dict] = {}
        with self._lock:
            for node in self.nodes.values():
                agg = out.setdefault(
                    node.scope, {"nodes": 0, "calls": 0, "wall_s": 0.0}
                )
                agg["nodes"] += 1
                agg["calls"] += node.calls
                agg["wall_s"] += node.wall_s
        return out

    def graph_nodes(self, signature: str) -> dict[int, NodeProfile]:
        """The recorded per-node profiles of one captured graph.

        A node index may have been recorded under several streams — a
        purely re-placed optimized graph (no nodes eliminated) keeps the
        original's signature while placing nodes elsewhere — so sites
        with the same ident are *merged* (counters summed) rather than
        arbitrarily picking one.  (Elimination changes the node sequence
        and therefore the signature: profile the optimized graph itself
        to refine it further.)  Returned records are copies; mutating
        them does not touch the profile.
        """
        merged: dict[int, NodeProfile] = {}
        with self._lock:
            for node in self.nodes.values():
                if node.scope != signature:
                    continue
                agg = merged.get(node.ident)
                if agg is None:
                    merged[node.ident] = NodeProfile.from_dict(node.to_dict())
                    continue
                agg.calls += node.calls
                agg.wall_s += node.wall_s
                for attr, _ in _STAT_FIELDS:
                    setattr(agg, attr, getattr(agg, attr) + getattr(node, attr))
        return merged

    def spec_engine_seconds(self, spec: str) -> dict[str, float]:
        """Mean wall seconds per launch of this specialization-key
        string, broken out **per engine** — the profile-guided capture
        lookup: when both engines have been measured for a kernel, the
        capture picks the cheaper one instead of deciding by grid size.
        Engines never recorded are absent from the result."""
        totals: dict[str, tuple[float, int]] = {}
        with self._lock:
            for node in self.nodes.values():
                if node.spec != spec or not node.calls:
                    continue
                wall, calls = totals.get(node.engine, (0.0, 0))
                totals[node.engine] = (wall + node.wall_s, calls + node.calls)
        return {engine: wall / calls for engine, (wall, calls) in totals.items()}

    def spec_heat(self, spec: str) -> float:
        """Total wall seconds this specialization-key string has spent in
        the *interpreted* tiers (every engine except ``compiled``) — the
        promotion heat the tiered JIT consults.  Monotone while traffic
        keeps landing on the interpreted tiers, and unchanged by compiled
        executions, so a signature that clears the promotion threshold
        stays cleared."""
        heat = 0.0
        with self._lock:
            for node in self.nodes.values():
                if node.spec == spec and node.engine != COMPILED:
                    heat += node.wall_s
        return heat

    def spec_seconds(self, spec: str) -> float | None:
        """Mean wall seconds per launch across every site with this
        specialization-key string, or ``None`` when never recorded —
        the :meth:`~repro.autotune.tuner.Autotuner.tune_profiled`
        lookup."""
        wall = 0.0
        calls = 0
        with self._lock:
            for node in self.nodes.values():
                if node.spec == spec:
                    wall += node.wall_s
                    calls += node.calls
        return wall / calls if calls else None

    def stamp(self) -> tuple:
        """A cheap content fingerprint — (sites, total calls, total wall
        seconds) — used by memoizing consumers (``tune_profiled``) to
        notice the profile absorbed new traffic.  Takes the lock:
        profiles may be actively recording while being consumed."""
        with self._lock:
            return (
                len(self.nodes),
                sum(node.calls for node in self.nodes.values()),
                sum(node.wall_s for node in self.nodes.values()),
            )

    def merge(self, other: "Profile") -> "Profile":
        """Absorb ``other``'s records (summing shared sites); returns self."""
        with other._lock:
            records = [node.to_dict() for node in other.nodes.values()]
        for data in records:
            incoming = NodeProfile.from_dict(data)
            key = incoming.key
            with self._lock:
                node = self.nodes.get(key)
                if node is None:
                    self.nodes[key] = incoming
                    continue
                node.calls += incoming.calls
                node.wall_s += incoming.wall_s
                for attr, _ in _STAT_FIELDS:
                    setattr(node, attr, getattr(node, attr) + getattr(incoming, attr))
        return self

    # -- serialization ------------------------------------------------------
    def to_json(self) -> str:
        with self._lock:
            nodes = [node.to_dict() for node in self.nodes.values()]
        return json.dumps({"version": _JSON_VERSION, "nodes": nodes}, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Profile":
        """Parse a profile written by :meth:`to_json`.

        Every malformed input — truncated payload, non-object JSON, a
        missing or mangled ``nodes`` list, unknown version — raises a
        :class:`VMError` naming the problem, never a bare decode error
        and never a silently empty profile: a consumer about to optimize
        against this data must not mistake garbage for measurements.
        """
        try:
            data = json.loads(text)
        except ValueError as exc:  # json.JSONDecodeError is a ValueError
            raise VMError(f"profile JSON is truncated or malformed: {exc}") from exc
        if not isinstance(data, dict):
            raise VMError(
                f"profile JSON must be an object, got {type(data).__name__}"
            )
        version = data.get("version")
        if version != _JSON_VERSION:
            raise VMError(
                f"unsupported profile version {version!r} "
                f"(this build reads version {_JSON_VERSION})"
            )
        nodes = data.get("nodes")
        if not isinstance(nodes, list):
            raise VMError("profile JSON is missing its 'nodes' list")
        profile = cls()
        for record in nodes:
            try:
                node = NodeProfile.from_dict(record)
            except (KeyError, TypeError, ValueError) as exc:
                raise VMError(f"malformed profile node record: {exc}") from exc
            # JSON turns tuple idents into lists; node indices are ints
            # and program names strings, both of which survive unchanged.
            profile.nodes[node.key] = node
        return profile

    def save(self, fp: IO[str] | str) -> None:
        """Write the profile as JSON to a path or open text file."""
        if isinstance(fp, str):
            with open(fp, "w", encoding="utf-8") as handle:
                handle.write(self.to_json())
        else:
            fp.write(self.to_json())

    @classmethod
    def load(cls, fp: IO[str] | str) -> "Profile":
        """Read a profile previously written by :meth:`save`."""
        if isinstance(fp, str):
            with open(fp, "r", encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        return cls.from_json(fp.read())

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        streams = self.per_stream()
        total = sum(agg["wall_s"] for agg in streams.values())
        return (
            f"Profile({len(self.nodes)} sites over {len(streams)} streams, "
            f"{total * 1e3:.2f} ms recorded)"
        )
