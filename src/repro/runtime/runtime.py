"""The Tilus runtime system (paper Section 8.1, step 4).

Maintains the three pieces of state the paper describes:

1. a **workspace** in global memory that kernels request through
   ``AllocateGlobal``;
2. an **execution context** holding the (simulated) stream kernels are
   launched on;
3. a **kernel cache** so each program compiles once and is reused.

Execution is delegated to the VM interpreter; compilation to the
compiler pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.compiler.pipeline import CompiledKernel, compile_program
from repro.dtypes import DataType
from repro.errors import VMError
from repro.ir.program import Program
from repro.vm.interp import ExecutionStats, Interpreter
from repro.vm.memory import GlobalMemory


@dataclass
class ExecutionContext:
    """Launch-time state: the stream and accumulated statistics."""

    stream: int = 0
    launches: int = 0
    stats: ExecutionStats = field(default_factory=ExecutionStats)


class KernelCache:
    """Compile-once cache keyed by program identity."""

    def __init__(self) -> None:
        self._kernels: dict[int, CompiledKernel] = {}
        self.hits = 0
        self.misses = 0

    def get(self, program: Program) -> CompiledKernel:
        key = id(program)
        if key in self._kernels:
            self.hits += 1
        else:
            self.misses += 1
            self._kernels[key] = compile_program(program)
        return self._kernels[key]

    def __len__(self) -> int:
        return len(self._kernels)


class Runtime:
    """Device handle: memory, kernel cache, context, launch API."""

    def __init__(self, dram_bytes: int = 1 << 30, shared_capacity: int = 228 * 1024) -> None:
        self.memory = GlobalMemory(dram_bytes)
        self.interpreter = Interpreter(self.memory, shared_capacity=shared_capacity)
        self.cache = KernelCache()
        self.context = ExecutionContext()
        self._workspace_addr: int | None = None
        self._workspace_size = 0

    # -- memory -------------------------------------------------------------
    def upload(self, values: np.ndarray, dtype: DataType) -> int:
        """Copy a host array into device memory; returns its address."""
        return self.interpreter.upload(values, dtype)

    def empty(self, shape: Sequence[int], dtype: DataType) -> int:
        """Allocate uninitialized device memory for an output tensor."""
        return self.interpreter.alloc_output(shape, dtype)

    def download(self, addr: int, shape: Sequence[int], dtype: DataType) -> np.ndarray:
        """Copy a device tensor back to the host."""
        return self.interpreter.download(addr, shape, dtype)

    def ensure_workspace(self, nbytes: int) -> int:
        """Grow-on-demand workspace shared by kernels (never shrinks)."""
        if nbytes > self._workspace_size:
            self._workspace_addr = self.memory.alloc(nbytes)
            self._workspace_size = nbytes
        if self._workspace_addr is None:
            self._workspace_addr = self.memory.alloc(max(nbytes, 1))
        return self._workspace_addr

    # -- execution -------------------------------------------------------------
    def launch(self, program: Program, args: Sequence) -> CompiledKernel:
        """Compile (cached), provision the workspace, and execute."""
        kernel = self.cache.get(program)
        if kernel.workspace_bytes:
            self.ensure_workspace(kernel.workspace_bytes)
        try:
            self.interpreter.launch(program, args)
        except VMError as exc:
            raise VMError(f"kernel {program.name!r} failed: {exc}") from exc
        self.context.launches += 1
        self.context.stats = self.interpreter.stats
        return kernel

    def stats(self) -> ExecutionStats:
        return self.interpreter.stats
