"""The Tilus runtime system (paper Section 8.1, step 4).

Maintains the three pieces of state the paper describes:

1. a **workspace** in global memory that kernels request through
   ``AllocateGlobal``;
2. an **execution context** for launch bookkeeping, plus a lazily created
   **stream pool** (:mod:`repro.runtime.streams`) for asynchronous
   launches: ``launch(..., stream=...)`` enqueues and returns a handle,
   independent streams execute concurrently on per-stream engines, and
   cross-stream hazards on global-memory ranges are ordered
   automatically;
3. a **kernel specialization cache** keyed on (program hash, const-bound
   scalar params, dtype set), so structurally identical programs —
   including fresh re-instantiations of the same template — compile once
   and every later launch skips lowering entirely.

Execution is delegated to one of the two VM engines — the sequential
interpreter or the grid-vectorized batched executor — selected per launch
by :func:`repro.vm.batched.select_engine` (policy: batched for multi-block
grids of batchable programs).  Compilation is delegated to the compiler
pipeline.

A third, **compiled** tier sits above both (:mod:`repro.runtime.jit`):
with :meth:`Runtime.enable_jit` (or ``engine="compiled"``), hot
specializations are lowered to flat numpy source by
:mod:`repro.compiler.lower` and executed as cached callables.
Promotion is profile-driven — a signature promotes once its accumulated
interpreted wall time clears the manager's threshold — and bit-exact:
signatures the pipeline cannot lower fall back to the batched engine.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.compiler.pipeline import (
    CompiledKernel,
    compile_program,
    specialization_key,
)
from repro.dtypes import DataType
from repro.errors import VMError
from repro.ir.program import Program
from repro.obs import trace as obs_trace
from repro.runtime.profiling import (
    EAGER,
    HOST_STREAM,
    Profile,
    StatsTimer,
    spec_string,
)
from repro.runtime.streams import LaunchHandle, Stream, StreamPool
from repro.vm.batched import BatchedExecutor, select_engine
from repro.vm.interp import ExecutionStats, Interpreter
from repro.vm.memory import GlobalMemory


@dataclass
class ExecutionContext:
    """Launch-time state: the stream and accumulated statistics."""

    stream: int = 0
    launches: int = 0
    stats: ExecutionStats = field(default_factory=ExecutionStats)


class SpecializationCache:
    """Bounded LRU cache of compiled kernels keyed by specialization.

    The key is :func:`repro.compiler.pipeline.specialization_key`:
    ``(program fingerprint, const-bound scalar args, dtype set)``.  Two
    structurally identical programs share one entry even when they are
    distinct objects, which is what makes per-call template
    re-instantiation (the common operator pattern) cheap.

    ``max_entries`` bounds memory: least-recently-used kernels are evicted
    once the bound is exceeded; ``hits``/``misses``/``evictions`` expose
    the cache behaviour to tests and benchmarks.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._kernels: OrderedDict[tuple, CompiledKernel] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(
        self, program: Program, args: Sequence = (), key: tuple | None = None
    ) -> CompiledKernel:
        """Return the compiled kernel for ``program``, compiling on miss.
        ``key`` accepts a precomputed specialization key so callers that
        also need it (the profiled launch path) compute it once."""
        if key is None:
            key = specialization_key(program, args)
        kernel = self._kernels.get(key)
        if kernel is not None:
            self.hits += 1
            self._kernels.move_to_end(key)
            return kernel
        self.misses += 1
        kernel = compile_program(program)
        self._kernels[key] = kernel
        while len(self._kernels) > self.max_entries:
            self._kernels.popitem(last=False)
            self.evictions += 1
        return kernel

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._kernels)

    def __repr__(self) -> str:
        return (
            f"SpecializationCache({len(self)}/{self.max_entries} entries, "
            f"{self.hits} hits, {self.misses} misses, {self.evictions} evicted)"
        )


#: Backwards-compatible name: the runtime's kernel cache *is* the
#: specialization cache.
KernelCache = SpecializationCache


class Runtime:
    """Device handle: memory, kernel cache, execution engines, launch API.

    ``engine`` selects how kernels execute:

    - ``"auto"`` (default): the grid-vectorized batched executor for
      multi-block grids, the sequential interpreter otherwise — and the
      compiled tier for promoted-hot specializations once
      :meth:`enable_jit` is on;
    - ``"sequential"`` / ``"batched"``: force one engine for every launch;
    - ``"compiled"``: force the JIT tier (falling back to batched for
      specializations the lowering pipeline declines).
    """

    def __init__(
        self,
        dram_bytes: int = 1 << 30,
        shared_capacity: int = 228 * 1024,
        engine: str = "auto",
        cache_entries: int = 128,
    ) -> None:
        if engine not in ("auto", "sequential", "batched", "compiled"):
            raise ValueError(f"unknown engine {engine!r}")
        self.memory = GlobalMemory(dram_bytes)
        self.interpreter = Interpreter(self.memory, shared_capacity=shared_capacity)
        # Both engines share the memory and the stats object, so
        # ``stats()`` reflects every launch regardless of engine.
        self.batched = BatchedExecutor(
            self.memory, shared_capacity=shared_capacity, stats=self.interpreter.stats
        )
        self.engine = engine
        self.cache = SpecializationCache(max_entries=cache_entries)
        self.context = ExecutionContext()
        self._workspace_addr: int | None = None
        self._workspace_size = 0
        self._pool: StreamPool | None = None
        #: Active profiler (see :meth:`enable_profiling`), or None.
        self.profiler: Profile | None = None
        #: Attached adaptive policy (see :meth:`enable_adaptive`), or None.
        self.adaptive = None
        #: Attached :class:`~repro.runtime.jit.JitManager` (see
        #: :meth:`enable_jit`), or None.
        self.jit = None
        #: Attached :class:`~repro.store.TuningStore` (wired by
        #: :class:`~repro.runtime.engine.LocalEngine` or the serving
        #: simulator), or None.  Only read for ``store.*`` metrics.
        self.store = None
        if engine == "compiled":
            self.enable_jit()

    # -- profiling -----------------------------------------------------------
    def enable_profiling(self, profile: Profile | None = None) -> Profile:
        """Start recording per-launch execution profiles.

        Returns the active :class:`~repro.runtime.profiling.Profile`:
        the given ``profile`` (installed, replacing any active one), the
        already-active one, or a fresh one.  Every later launch —
        synchronous, streamed, or graph-replayed through this runtime's
        pool — records a per-node cost into it.  The profile feeds
        :meth:`~repro.runtime.graphs.ExecutionGraph.optimize` and
        :meth:`~repro.autotune.tuner.Autotuner.tune_profiled`, and
        serializes to JSON (``profile.save(path)``) for reuse across
        processes.
        """
        if profile is not None:
            self.profiler = profile
        elif self.profiler is None:
            self.profiler = Profile()
        if self._pool is not None:
            self._pool.profiler = self.profiler
        return self.profiler

    def disable_profiling(self) -> Profile | None:
        """Stop recording; returns the profile collected so far."""
        profile = self.profiler
        self.profiler = None
        if self._pool is not None:
            self._pool.profiler = None
        return profile

    # -- tracing -------------------------------------------------------------
    def enable_tracing(self, tracer=None, capacity: int = obs_trace.DEFAULT_CAPACITY):
        """Install (and return) the process tracer
        (:mod:`repro.obs.trace`).  Tracing is process-scoped — the
        trace's pid axis is the process, and one ring buffer collects
        the host thread plus every stream lane — so this delegates to
        :func:`repro.obs.trace.install`; the emit points across the
        stack (launches, stream groups, graph replays, JIT promotions,
        adaptive swaps) fire only while a tracer is installed and cost
        one ``is None`` test otherwise."""
        return obs_trace.install(tracer, capacity=capacity)

    def disable_tracing(self):
        """Uninstall and return the process tracer (buffer intact), or
        None if tracing was off."""
        return obs_trace.uninstall()

    # -- adaptive reoptimization ---------------------------------------------
    def enable_adaptive(self, policy=None):
        """Attach an :class:`~repro.runtime.adaptive.AdaptivePolicy` and
        turn on profiling (the policy is driven by profiled replays).

        Returns the active policy: the given one, the already-attached
        one, or a fresh default.  From here on, graphs captured by the
        serving layers (``ops.QuantizedLinear``'s split-k fan-out, the
        ``llm.batching`` decode loop) come under management: after the
        policy's warmup window of profiled replays each live graph is
        atomically swapped for its profile-optimized image — no explicit
        :meth:`~repro.ops.QuantizedLinear.reoptimize` call needed.
        Graphs captured *before* this call stay unmanaged.
        """
        from repro.runtime.adaptive import AdaptivePolicy

        if policy is None:
            policy = self.adaptive if self.adaptive is not None else AdaptivePolicy()
        self.adaptive = policy
        self.enable_profiling()
        if self._pool is not None:
            self._pool.adaptive = policy
        return policy

    def disable_adaptive(self):
        """Detach the adaptive policy; returns it.  No *new* captures
        come under management afterwards; graphs already managed keep
        their facade and continue evaluating while profiling stays on —
        call :meth:`disable_profiling` too for a full stop."""
        policy = self.adaptive
        self.adaptive = None
        if self._pool is not None:
            self._pool.adaptive = None
        return policy

    # -- tiered JIT ----------------------------------------------------------
    def enable_jit(self, threshold_s: float | None = None, max_entries: int | None = None):
        """Attach the compiled execution tier (:mod:`repro.runtime.jit`).

        Returns the active :class:`~repro.runtime.jit.JitManager`: the
        already-attached one (knobs updated when given), or a fresh one.
        From here on every execution path through this runtime —
        synchronous launches, eager streams, graph replays — promotes a
        hot specialization to its compiled kernel once the profiler's
        accumulated interpreted time for it clears ``threshold_s``
        (promotion needs an active profiler: :meth:`enable_profiling` or
        :meth:`enable_adaptive`; without one, only explicit
        ``engine="compiled"`` launches compile).  Specializations the
        lowering pipeline declines fall back to the batched engine,
        bit-exactly.
        """
        from repro.runtime.jit import JitManager

        if self.jit is None:
            kwargs = {}
            if threshold_s is not None:
                kwargs["threshold_s"] = threshold_s
            if max_entries is not None:
                kwargs["max_entries"] = max_entries
            self.jit = JitManager(
                self.memory, self.interpreter.shared_capacity, **kwargs
            )
        elif threshold_s is not None:
            self.jit.threshold_s = threshold_s
        if self._pool is not None:
            self._pool.jit = self.jit
        return self.jit

    def disable_jit(self):
        """Detach the compiled tier; returns the manager (with its cache
        intact, so re-enabling resumes warm)."""
        manager = self.jit
        self.jit = None
        if self._pool is not None:
            self._pool.jit = None
        return manager

    # -- streams ------------------------------------------------------------
    def stream_pool(self, num_streams: int = 4) -> StreamPool:
        """The runtime's stream pool, created on first use.

        The pool shares this runtime's device memory, so tensors uploaded
        through :meth:`upload` are visible to every stream.  The stream
        count is fixed on first call; later calls return the same pool.
        """
        if self._pool is None:
            self._pool = StreamPool(
                self.memory,
                num_streams=num_streams,
                shared_capacity=self.interpreter.shared_capacity,
            )
            self._pool.profiler = self.profiler
            self._pool.adaptive = self.adaptive
            self._pool.jit = self.jit
        return self._pool

    def synchronize(self) -> None:
        """Wait for all asynchronously launched kernels to retire."""
        if self._pool is not None:
            self._pool.synchronize()

    def capture(
        self, num_streams: int = 4, profile: Profile | None = None
    ) -> "repro.runtime.graphs.ExecutionGraph":  # noqa: F821
        """Begin an execution-graph capture on the runtime's stream pool.

        Used as a context manager: every launch inside the ``with`` block
        — streamed or synchronous — is recorded into the returned
        :class:`~repro.runtime.graphs.ExecutionGraph` instead of
        executing (compilation still goes through the specialization
        cache, so captured nodes hold compiled programs).  After the
        block, ``graph.replay(bindings)`` re-executes the frozen launch
        DAG without re-running scheduling, hazard analysis, or
        coalescing decisions.  See :mod:`repro.runtime.graphs`.

        ``profile`` turns on profile-guided capture: measured costs pick
        the engine choice, the per-launch stream placement, and the
        stream count, with heuristic fallback for anything unseen (see
        :mod:`repro.runtime.adaptive`).
        """
        return self.stream_pool(num_streams).capture(profile=profile)

    # -- memory -------------------------------------------------------------
    def upload(self, values: np.ndarray, dtype: DataType) -> int:
        """Copy a host array into device memory; returns its address."""
        return self.interpreter.upload(values, dtype)

    def empty(self, shape: Sequence[int], dtype: DataType) -> int:
        """Allocate uninitialized device memory for an output tensor."""
        return self.interpreter.alloc_output(shape, dtype)

    def download(self, addr: int, shape: Sequence[int], dtype: DataType) -> np.ndarray:
        """Copy a device tensor back to the host."""
        return self.interpreter.download(addr, shape, dtype)

    def ensure_workspace(self, nbytes: int) -> int:
        """Grow-on-demand workspace shared by kernels (never shrinks)."""
        if nbytes > self._workspace_size:
            self._workspace_addr = self.memory.alloc(nbytes)
            self._workspace_size = nbytes
        if self._workspace_addr is None:
            self._workspace_addr = self.memory.alloc(max(nbytes, 1))
        return self._workspace_addr

    # -- execution -------------------------------------------------------------
    def launch(
        self,
        program: Program,
        args: Sequence,
        engine: str | None = None,
        stream: "Stream | str | None" = None,
    ) -> CompiledKernel | LaunchHandle:
        """Compile (specialization-cached), provision workspace, execute.

        A cache hit executes the *cached* kernel's program, so launching a
        freshly rebuilt but structurally identical program skips both
        lowering and any recompilation side effects.

        ``stream`` makes the launch asynchronous: pass a
        :class:`~repro.runtime.streams.Stream` (from :meth:`stream_pool`)
        to enqueue on that stream, or ``"auto"`` to let the pool's
        scheduler place it.  Async launches return a
        :class:`~repro.runtime.streams.LaunchHandle` instead of the
        kernel; ``handle.wait()`` / ``stream.synchronize()`` /
        :meth:`synchronize` drain them.  Cross-stream ordering on
        overlapping global-memory ranges is enforced automatically
        (writes serialize, reads share), so out-of-order completion stays
        bit-exact with serial issue.
        """
        if engine is not None and engine not in (
            "auto", "sequential", "batched", "compiled"
        ):
            raise ValueError(f"unknown engine {engine!r}")
        if stream is not None and stream != "auto" and not isinstance(stream, Stream):
            raise ValueError(
                f"stream must be a Stream, 'auto', or None, got {stream!r}"
            )
        if len(args) != len(program.params):
            # Check before touching the cache: a truncated zip would
            # otherwise build a bogus specialization key and cache a kernel
            # for a launch that can never run.
            raise VMError(
                f"{program.name} expects {len(program.params)} args, got {len(args)}"
            )
        key = specialization_key(program, args)
        kernel = self.cache.get(program, args, key=key)
        program = kernel.program
        if kernel.workspace_bytes:
            self.ensure_workspace(kernel.workspace_bytes)
        if stream is None and self._pool is not None and self._pool.capturing:
            # During graph capture every launch is recorded, including
            # synchronous ones (scheduler-placed, like stream="auto").
            stream = "auto"
        if stream is not None:
            pool = stream.pool if isinstance(stream, Stream) else self.stream_pool()
            handle = pool.submit(
                program,
                args,
                stream=stream if isinstance(stream, Stream) else None,
                engine=engine or self.engine,
            )
            self.context.launches += 1
            return handle
        choice = engine or self.engine
        auto = choice == "auto"
        if auto:
            choice = select_engine(program, program.grid_size(args))
        compiled = None
        if choice == "compiled" or (auto and self.jit is not None):
            jit = self.jit if self.jit is not None else self.enable_jit()
            compiled = jit.maybe_compile(
                program, args, self.profiler, forced=choice == "compiled", key=key
            )
            if compiled is not None:
                choice = "compiled"
            elif choice == "compiled":
                # The lowering pipeline declined: the batched engine is
                # the bit-exact fallback tier.
                choice = "batched"
        executor = self.batched if choice == "batched" else self.interpreter

        def execute() -> None:
            if compiled is not None:
                jit.run(compiled, args, self.interpreter.stats)
            else:
                executor.launch(program, args)

        tracer = obs_trace.ACTIVE
        trace_start = tracer.now() if tracer is not None else 0.0
        try:
            if self.profiler is None:
                execute()
            else:
                with StatsTimer(self.interpreter.stats) as timer:
                    execute()
                spec = spec_string(key)
                self.profiler.record(
                    EAGER,
                    spec,
                    program.name,
                    spec,
                    choice,
                    HOST_STREAM,
                    timer.wall,
                    stats_delta=timer.delta,
                )
        except VMError as exc:
            raise VMError(f"kernel {program.name!r} failed: {exc}") from exc
        if tracer is not None:
            tracer.complete(
                f"launch:{program.name}",
                "runtime",
                obs_trace.HOST_TID,
                trace_start,
                tracer.now() - trace_start,
                {"engine": choice},
            )
        self.context.launches += 1
        self.context.stats = self.interpreter.stats
        return kernel

    def stats(self) -> ExecutionStats:
        """Counters over every launch: the synchronous engines' shared
        stats plus, when streams are in use, all per-stream stats."""
        if self._pool is None:
            return self.interpreter.stats
        total = ExecutionStats()
        total.merge(self.interpreter.stats)
        total.merge(self._pool.aggregate_stats())
        return total

    def metrics(self) -> dict:
        """One flat snapshot of every runtime-level counter, under the
        frozen dot-namespaced contract
        (:data:`repro.obs.metrics.RUNTIME_METRICS_KEYS`).  Subsumes the
        per-subsystem counter objects — the specialization cache, the
        merged :class:`~repro.vm.interp.ExecutionStats`, the stream
        pool, the JIT manager, the adaptive policy — without replacing
        them; absent subsystems report zeros so the key set never
        varies."""
        from repro.obs.metrics import RUNTIME_METRICS_KEYS, validate_metrics

        stats = self.stats()
        pool = self._pool
        jit = self.jit
        adaptive = self.adaptive
        store = self.store
        snapshot = {
            "runtime.launches": self.context.launches,
            "runtime.spec_cache.entries": len(self.cache),
            "runtime.spec_cache.hits": self.cache.hits,
            "runtime.spec_cache.misses": self.cache.misses,
            "runtime.spec_cache.evictions": self.cache.evictions,
            "runtime.stats.blocks_run": stats.blocks_run,
            "runtime.stats.instructions": stats.instructions,
            "runtime.stats.global_bits_loaded": stats.global_bits_loaded,
            "runtime.stats.global_bits_stored": stats.global_bits_stored,
            "runtime.stats.shared_bits_loaded": stats.shared_bits_loaded,
            "runtime.stats.shared_bits_stored": stats.shared_bits_stored,
            "runtime.stats.copy_async_issued": stats.copy_async_issued,
            "runtime.stats.dot_ops": stats.dot_ops,
            "runtime.stats.synchronizations": stats.synchronizations,
            "streams.count": len(pool.streams) if pool is not None else 0,
            "streams.launches": pool.launches if pool is not None else 0,
            "streams.executions": pool.executions if pool is not None else 0,
            "jit.enabled": int(jit is not None),
            "jit.compiled": jit.compiled if jit is not None else 0,
            "jit.bailouts": jit.bailouts if jit is not None else 0,
            "jit.promotions": jit.promotions if jit is not None else 0,
            "jit.cache.hits": jit.cache.hits if jit is not None else 0,
            "jit.cache.misses": jit.cache.misses if jit is not None else 0,
            "jit.cache.evictions": jit.cache.evictions if jit is not None else 0,
            "adaptive.enabled": int(adaptive is not None),
            "adaptive.swaps": adaptive.swaps if adaptive is not None else 0,
            "adaptive.evaluations": (
                adaptive.evaluations if adaptive is not None else 0
            ),
            "store.enabled": int(store is not None),
            "store.hits": store.hits if store is not None else 0,
            "store.misses": store.misses if store is not None else 0,
            "store.publishes": store.publishes if store is not None else 0,
            "store.gc_evictions": store.gc_evictions if store is not None else 0,
        }
        return validate_metrics(snapshot, RUNTIME_METRICS_KEYS, "Runtime")
