"""Multi-stream runtime: asynchronous kernel launches with hazard tracking.

Real devices overlap many independent kernel launches; the synchronous
``Runtime.launch`` path executes one grid at a time, so orchestration
overhead — not kernel math — dominates once kernels are fast (the SPEC
CPU2026 observation in PAPERS.md).  This module adds the CUDA-shaped
stream vocabulary on top of the VM engines:

- :class:`Stream` — a FIFO queue of launches executed by a dedicated
  worker thread with its own pair of engines (sequential interpreter +
  grid-vectorized batched executor) and its own
  :class:`~repro.vm.interp.ExecutionStats`;
- :class:`Event` — a marker recorded on a stream; ``event.wait()`` blocks
  the host, ``stream.wait_event(event)`` orders one stream behind another;
- :class:`StreamPool` — owns the streams, schedules launches that don't
  name a stream (round-robin, steered memory-aware: a launch that
  conflicts with outstanding work lands on the conflicting stream so FIFO
  order replaces a cross-stream wait), and tracks cross-stream hazards.

Correctness model
-----------------
Every submitted launch gets a **global-memory access summary**: byte
ranges derived from the program's ``ViewGlobal`` instructions (reads from
``LoadGlobal``/``CopyAsync``/``Lookup``/``PrintTensor``, writes from
``StoreGlobal``/``CopyAsync``).  The ranges are **offset-granular**
along the leading dimension: an access whose leading offset is a
parameter-only expression charges just the row slice it touches, so
slice-disjoint writers through one shared view stay concurrent; only
block-varying offsets (and whole-tensor reads) fall back to charging
the whole view.  Writes serialize, reads share: a launch depends on
every earlier outstanding launch whose ranges overlap with at least one
side writing.  A program whose views cannot be resolved at submit time
(pointer arithmetic, block-varying shapes) is treated as writing all of
memory — always correct, never concurrent.  Because dependencies only
ever point at earlier submissions, execution is deadlock-free and
results are bit-exact with serial replay in submission order.

Throughput model
----------------
Streams execute concurrently on worker threads (numpy releases the GIL on
large array ops, so multi-block grids overlap on multi-core hosts), and
each stream **coalesces** queued launches: consecutive launches of the
same program whose dependencies are met and whose access ranges are
pairwise disjoint execute as one stacked grid
(:meth:`~repro.vm.batched.BatchedExecutor.launch_many`), paying the
per-instruction Python dispatch cost once per group instead of once per
launch.  That is exactly the paper's launch-overhead argument transposed
to the simulator: batching the orchestration, not the math.

Workloads that re-submit an identical launch DAG every iteration can
additionally freeze all of the above — hazard edges, stream placement,
coalescing groups — into a replayable :class:`~repro.runtime.graphs.
ExecutionGraph` via :meth:`StreamPool.capture` (see
:mod:`repro.runtime.graphs`).
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Sequence

import numpy as np

from repro.errors import VMError
from repro.ir import instructions as insts
from repro.obs import trace as obs_trace
from repro.ir.evaluator import evaluate
from repro.ir.expr import Expr, Var
from repro.ir.program import Program
from repro.vm.batched import BatchedExecutor, select_engine, supports_batched
from repro.vm.interp import ExecutionStats, Interpreter
from repro.vm.memory import GlobalMemory


# ---------------------------------------------------------------------------
# Global-memory access analysis
# ---------------------------------------------------------------------------

_ACCESS_ATTR = "_stream_access_summary"

#: Sentinel end for a conservative whole-memory range.
_WHOLE_MEMORY = (0, float("inf"), True)


class _AccessSlice:
    """One global-memory access through a view.

    ``offset0``/``extent0`` are the leading-dimension slice the access
    touches (expressions over launch parameters), or ``None`` when the
    access cannot be narrowed — block-varying offsets, whole-tensor reads
    (``Lookup``/``PrintTensor``) — in which case the whole view is
    charged.  ``writes`` marks stores."""

    __slots__ = ("offset0", "extent0", "writes")

    def __init__(self, offset0, extent0, writes) -> None:
        self.offset0 = offset0
        self.extent0 = extent0
        self.writes = writes


class _ViewAccess:
    """One ``ViewGlobal`` of a program: which pointer parameter it is based
    on, its shape expressions, and the per-instruction access slices."""

    __slots__ = ("param", "dtype", "shape", "slices")

    def __init__(self, param, dtype, shape) -> None:
        self.param = param
        self.dtype = dtype
        self.shape = tuple(shape)
        self.slices: list[_AccessSlice] = []


def _is_param_only(value, params: set) -> bool:
    """True when ``value`` is a constant or an expression over launch
    parameters only (no block indices, no loop variables)."""
    if isinstance(value, Expr):
        for node in value.walk():
            if isinstance(node, Var) and node not in params:
                return False
    return True


def _shape_is_param_only(shape, params: set) -> bool:
    return all(_is_param_only(extent, params) for extent in shape)


def _leading_extent(tensor):
    shape = tensor.ttype.shape
    return shape[0] if shape else None


def analyze_access(program: Program):
    """Map the program's global views to per-access slice summaries.

    Returns ``(views, conservative)`` where ``views`` is a list of
    :class:`_ViewAccess` and ``conservative`` is True when any global view
    cannot be attributed to a pointer parameter with a parameter-only
    shape (the launch is then treated as writing all of memory).

    Accesses are **offset-granular** along the leading dimension: a load
    or store whose leading offset is a parameter-only expression records
    the exact row slice it touches, so two launches writing disjoint
    slices through a *shared* view resolve to disjoint byte ranges and
    may run concurrently.  Offsets involving block indices fall back to
    charging the whole view.  Memoized on the program — the analysis is
    launch-invariant.
    """
    cached = program.__dict__.get(_ACCESS_ATTR)
    if cached is not None:
        return cached
    params = set(program.params)
    views: dict = {}
    conservative = False
    for inst in program.body.instructions():
        if isinstance(inst, insts.ViewGlobal):
            shape = inst.out.ttype.shape
            if (
                isinstance(inst.ptr, Var)
                and inst.ptr in params
                and _shape_is_param_only(shape, params)
            ):
                views[inst.out] = _ViewAccess(inst.ptr, inst.out.ttype.dtype, shape)
            else:
                conservative = True

    def record(var, offset0, extent0, writes):
        access = views.get(var)
        if access is None:
            return
        if (
            offset0 is not None
            and extent0 is not None
            and access.shape
            and _is_param_only(offset0, params)
            and _is_param_only(extent0, params)
        ):
            access.slices.append(_AccessSlice(offset0, extent0, writes))
        else:
            access.slices.append(_AccessSlice(None, None, writes))

    for inst in program.body.instructions():
        if isinstance(inst, insts.LoadGlobal):
            offset0 = inst.offset[0] if inst.offset else None
            record(inst.src, offset0, _leading_extent(inst.out), False)
        elif isinstance(inst, insts.StoreGlobal):
            offset0 = inst.offset[0] if inst.offset else None
            record(inst.dst, offset0, _leading_extent(inst.src), True)
        elif isinstance(inst, insts.CopyAsync):
            extent0 = inst.shape[0] if inst.shape else _leading_extent(inst.dst)
            offset0 = inst.src_offset[0] if inst.src_offset else None
            record(inst.src, offset0, extent0, False)
            record(inst.dst, None, None, True)
        elif isinstance(inst, insts.Lookup):
            record(inst.table, None, None, False)
        elif isinstance(inst, insts.PrintTensor):
            record(inst.tensor, None, None, False)
    result = (list(views.values()), conservative)
    program.__dict__[_ACCESS_ATTR] = result
    return result


_SHAPE_PARAMS_ATTR = "_stream_shape_param_indices"


def shape_param_indices(program: Program) -> tuple[int, ...]:
    """Indices of parameters referenced by any ``ViewGlobal`` shape.

    The batched engine requires global view shapes to be uniform across
    blocks, so launches may only coalesce when they agree on these
    arguments (other scalars may differ — they stack as per-block
    bindings).  Memoized on the program.
    """
    cached = program.__dict__.get(_SHAPE_PARAMS_ATTR)
    if cached is not None:
        return cached
    referenced: set = set()
    for inst in program.body.instructions():
        if not isinstance(inst, insts.ViewGlobal):
            continue
        for extent in inst.out.ttype.shape:
            if isinstance(extent, Expr):
                for node in extent.walk():
                    if isinstance(node, Var):
                        referenced.add(node)
    result = tuple(
        i for i, p in enumerate(program.params) if p in referenced
    )
    program.__dict__[_SHAPE_PARAMS_ATTR] = result
    return result


def _eval_extent(value, env) -> int:
    return int(evaluate(value, env)) if isinstance(value, Expr) else int(value)


def launch_ranges(program: Program, args: Sequence) -> list[tuple]:
    """Byte ranges ``(start, end, writes)`` this launch touches in global
    memory, resolved against its arguments.

    Ranges are **offset-granular**: an access whose leading-dimension
    offset is statically known (a parameter-only expression) contributes
    only the row slice it touches, so slice-disjoint writers through a
    shared view get disjoint ranges and may execute concurrently.
    Accesses with block-varying offsets charge their whole view.

    Shared-memory traffic and ``AllocateGlobal`` workspace (fresh,
    private addresses) are excluded.  Falls back to one whole-memory
    write range when the program's views defeat static analysis.
    """
    views, conservative = analyze_access(program)
    if conservative:
        return [_WHOLE_MEMORY]
    env = {p: a for p, a in zip(program.params, args)}
    ranges: set = set()
    for access in views:
        if not access.slices:
            continue
        base = int(env[access.param])
        rows = _eval_extent(access.shape[0], env) if access.shape else 1
        inner = 1
        for extent in access.shape[1:]:
            inner *= _eval_extent(extent, env)
        row_bits = inner * access.dtype.nbits
        total_bytes = (rows * row_bits + 7) // 8
        for sl in access.slices:
            if sl.offset0 is None or row_bits == 0:
                ranges.add((base, base + total_bytes, sl.writes))
                continue
            r0 = _eval_extent(sl.offset0, env)
            r1 = r0 + _eval_extent(sl.extent0, env)
            if r1 <= r0:
                continue  # zero-extent access: touches nothing
            if r0 < 0:
                # Negative leading offsets defeat the byte-range model
                # (wrap-around indexing can reach arbitrary device
                # bytes), so charge all of memory, not just the view.
                ranges.add(_WHOLE_MEMORY)
                continue
            r1 = min(r1, rows)
            if r1 <= r0:
                # Starts at/past the view's end: a masked access touches
                # nothing; an unmasked one raises before taking effect.
                continue
            ranges.add(
                (base + (r0 * row_bits) // 8, base + (r1 * row_bits + 7) // 8, sl.writes)
            )
    return sorted(ranges)


def stackable_with_group(
    program: Program,
    grid: tuple,
    first_args: Sequence,
    nxt_grid: tuple,
    nxt_args: Sequence,
    group_len: int,
) -> bool:
    """Static core of launch-coalescing eligibility, shared by the live
    stream worker and execution-graph instantiation (so the two can
    never drift): a batchable program, one grid shape within the
    stacked-block cap, and identical shape-contributing scalars.
    Callers remain responsible for the dynamic side — program/engine
    identity, dependency readiness, and pairwise range disjointness.
    """
    if not supports_batched(program):
        return False
    per_launch = int(np.prod(grid)) if grid else 1
    if per_launch * (group_len + 1) > Stream.MAX_MERGED_BLOCKS:
        return False
    if nxt_grid != grid:
        return False
    # Global view shapes must stay uniform across the stacked blocks:
    # launches that bind shape-contributing params differently are
    # individually valid but cannot share one batched execution.
    shape_params = shape_param_indices(program)
    return all(nxt_args[i] == first_args[i] for i in shape_params)


def ranges_conflict(a: list[tuple], b: list[tuple]) -> bool:
    """True when two launches' ranges overlap with at least one writing.

    Empty ranges (``start == end``) touch no bytes and never conflict —
    the half-open overlap test alone would wrongly flag an empty range
    sitting strictly inside a non-empty one.
    """
    for a_start, a_end, a_w in a:
        if a_start >= a_end:
            continue
        for b_start, b_end, b_w in b:
            if b_start >= b_end:
                continue
            if (a_w or b_w) and a_start < b_end and b_start < a_end:
                return True
    return False


# ---------------------------------------------------------------------------
# Handles and events
# ---------------------------------------------------------------------------


class LaunchHandle:
    """An asynchronously issued kernel launch.

    ``wait()`` blocks until the launch retires and re-raises any
    execution error on the host thread (the same error every later
    ``wait``/``synchronize`` call observes).
    """

    def __init__(self, program: Program, args: tuple, stream: "Stream",
                 seq: int, ranges: list[tuple], engine: str) -> None:
        self.program = program
        self.args = args
        self.stream = stream
        self.seq = seq
        self.ranges = ranges
        self.engine = engine
        self.deps: tuple[LaunchHandle, ...] = ()
        self.error: BaseException | None = None
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self) -> None:
        self._done.wait()
        if self.error is not None:
            raise VMError(
                f"async launch of {self.program.name!r} on {self.stream} failed: "
                f"{self.error}"
            ) from self.error

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"LaunchHandle({self.program.name}, seq={self.seq}, {state})"


class Event:
    """A stream-ordering marker.

    Recorded from a stream (:meth:`Stream.record_event`), it captures the
    stream's current tail launch: completion of the tail implies
    completion of everything enqueued before the record (streams retire
    launches in order), and an event recorded on an idle stream is
    already signaled.

    :meth:`Event.manual` creates a *host-controlled* event instead: it
    stays unsignaled until :meth:`set` is called, so the host can gate a
    stream (``stream.wait_event(gate)``) while it builds up the stream's
    queue — the stream-level analogue of launching into a paused capture.
    """

    def __init__(self, handle: LaunchHandle | None, gate: threading.Event | None = None) -> None:
        self._handle = handle
        self._gate = gate

    @classmethod
    def manual(cls) -> "Event":
        """An event the host signals explicitly with :meth:`set`."""
        return cls(None, gate=threading.Event())

    def set(self) -> None:
        """Signal a manual event (no-op question for recorded events)."""
        if self._gate is None:
            raise VMError("only Event.manual() events can be set by the host")
        self._gate.set()

    def query(self) -> bool:
        if self._gate is not None:
            return self._gate.is_set()
        return self._handle is None or self._handle.done

    def wait(self, timeout: float | None = None) -> None:
        """Block the host until the event signals; with ``timeout`` (in
        seconds), raise :class:`VMError` instead of waiting forever on an
        event that is never signaled."""
        if self._gate is not None:
            if not self._gate.wait(timeout):
                raise VMError(
                    f"timed out after {timeout}s waiting for a manual event "
                    "that was never set"
                )
        elif self._handle is not None:
            if not self._handle._done.wait(timeout):
                raise VMError(
                    f"timed out after {timeout}s waiting for {self._handle}"
                )
            self._handle.wait()  # re-raise any launch error

    def _wait_signal(self, timeout: float | None = None) -> bool:
        """Worker-side wait: blocks without re-raising launch errors.
        Returns False when ``timeout`` expires before the signal."""
        if self._gate is not None:
            return self._gate.wait(timeout)
        if self._handle is not None:
            return self._handle._done.wait(timeout)
        return True


class _EventWait:
    """Queue marker: the worker blocks on the event before continuing."""

    __slots__ = ("event", "timeout")

    def __init__(self, event: Event, timeout: float | None = None) -> None:
        self.event = event
        self.timeout = timeout


class StreamTask:
    """An opaque unit of work executed on a stream's worker thread.

    Tasks participate in FIFO order and ``synchronize`` accounting like
    launches, but are *not* hazard-tracked, scheduled, or coalesced — the
    graph-replay subsystem (:mod:`repro.runtime.graphs`) uses them to
    drive the per-stream engines with all of those decisions precomputed.
    An exception escaping :meth:`run` becomes the stream's sticky error.
    """

    def run(self, stream: "Stream") -> None:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Streams
# ---------------------------------------------------------------------------


class Stream:
    """A FIFO launch queue with its own executors and statistics.

    Launches retire strictly in enqueue order.  The worker thread starts
    lazily on the first enqueue and coalesces eligible neighbours into
    one stacked batched execution (see module docstring).
    """

    #: Upper bound on blocks in one coalesced execution.  Small grids are
    #: where coalescing pays (per-instruction dispatch overhead dominates);
    #: past this size the stacked arrays outgrow cache and merging turns
    #: neutral-to-negative, so large grids execute one launch at a time.
    MAX_MERGED_BLOCKS = 64

    def __init__(self, pool: "StreamPool", index: int) -> None:
        self.pool = pool
        self.index = index
        self.stats = ExecutionStats()
        self.interpreter = Interpreter(
            pool.memory, shared_capacity=pool.shared_capacity, stdout=pool.stdout
        )
        self.interpreter.stats = self.stats
        self.batched = BatchedExecutor(
            pool.memory,
            shared_capacity=pool.shared_capacity,
            stats=self.stats,
            stdout=pool.stdout,
        )
        self.launches = 0          # individual launches retired
        self.executions = 0        # engine invocations (after coalescing)
        self._queue: deque = deque()
        self._cond = threading.Condition()
        self._inflight = 0
        self._closing = False
        self._worker: threading.Thread | None = None
        self._tail: LaunchHandle | None = None
        self._error: BaseException | None = None  # sticky, CUDA-style
        #: Set when an event wait times out: the ordering the wait was
        #: enforcing is unknown, so queued launches are poisoned rather
        #: than run as if the wait had succeeded.
        self._timed_out = False

    # -- host API ----------------------------------------------------------
    def synchronize(self) -> None:
        """Block until every launch enqueued so far has retired; re-raise
        the stream's first execution error (sticky, like a CUDA device
        error — it stays raised on every later synchronize)."""
        with self._cond:
            while self._inflight > 0:
                self._cond.wait()
            error = self._error
        if error is not None:
            raise VMError(f"{self} launch failed: {error}") from error

    def record_event(self) -> Event:
        """Capture this stream's current tail as an :class:`Event`."""
        with self._cond:
            tail = self._tail if self._tail is not None and not self._tail.done else None
            return Event(tail)

    def wait_event(self, event: Event, timeout: float | None = None) -> None:
        """Order all future work on this stream after ``event``.

        With ``timeout`` (seconds), a wait on an event that never signals
        becomes the stream's sticky error — surfaced by the next
        ``synchronize`` — instead of hanging the worker forever.  A
        timed-out wait *poisons* the stream: launches queued behind it
        retire with an error instead of executing, because running them
        would silently drop the ordering the wait was enforcing.
        """
        if event.query():
            return
        with self._cond:
            self._queue.append(_EventWait(event, timeout))
            self._cond.notify()
        self._ensure_worker()

    def enqueue_task(self, task: StreamTask) -> None:
        """Enqueue a :class:`StreamTask`, FIFO-ordered against launches
        and counted by ``synchronize`` until it retires."""
        with self._cond:
            self._queue.append(task)
            self._inflight += 1
            self._cond.notify()
        self._ensure_worker()

    def __repr__(self) -> str:
        return f"Stream({self.index})"

    # -- pool-side enqueue (caller holds the pool lock) ---------------------
    def _enqueue(self, handle: LaunchHandle) -> None:
        with self._cond:
            self._queue.append(handle)
            self._inflight += 1
            self._tail = handle
            self._cond.notify()

    def _ensure_worker(self) -> None:
        # Under the lock: concurrent submitters must not double-spawn a
        # worker (two workers draining one queue would break FIFO).
        with self._cond:
            if self._worker is None or not self._worker.is_alive():
                self._worker = threading.Thread(
                    target=self._run, name=f"repro-stream-{self.index}", daemon=True
                )
                self._worker.start()

    def _close(self) -> None:
        with self._cond:
            self._closing = True
            self._cond.notify()
        if self._worker is not None:
            self._worker.join(timeout=30.0)

    # -- worker ------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closing:
                    self._cond.wait()
                if not self._queue:
                    return  # closing and drained
                item = self._queue.popleft()
            if isinstance(item, _EventWait):
                if not item.event._wait_signal(item.timeout):
                    with self._cond:
                        self._timed_out = True
                        if self._error is None:
                            self._error = VMError(
                                f"timed out after {item.timeout}s waiting for "
                                f"an event on {self} that was never signaled"
                            )
                continue
            if isinstance(item, StreamTask):
                try:
                    item.run(self)
                except BaseException as exc:  # noqa: BLE001 — sticky, like launches
                    with self._cond:
                        if self._error is None:
                            self._error = exc
                finally:
                    with self._cond:
                        self._inflight -= 1
                        self._cond.notify_all()
                continue
            if self._timed_out:
                # A timed-out event wait upstream: the ordering it was
                # enforcing is gone, so this launch must not run.
                item.error = VMError(
                    f"{self} is poisoned by a timed-out event wait"
                )
                self._finish_group([item], executed=False)
                continue
            for dep in item.deps:
                dep._done.wait()
            failed = next((d for d in item.deps if d.error is not None), None)
            if failed is not None:
                # Poisoned input: retire without executing.
                item.error = VMError(
                    f"dependency {failed.program.name!r} (seq={failed.seq}) failed: "
                    f"{failed.error}"
                )
                self._finish_group([item], executed=False)
                continue
            group = [item]
            with self._cond:
                while self._queue and self._mergeable(item, self._queue[0], group):
                    group.append(self._queue.popleft())
            self._execute_group(group)

    def _mergeable(self, first: LaunchHandle, nxt, group: list) -> bool:
        if not isinstance(nxt, LaunchHandle):
            return False
        if nxt.program is not first.program or nxt.engine != first.engine:
            return False
        if first.engine in ("sequential", "compiled"):
            # Stacked groups execute on the batched engine; an explicit
            # compiled launch must not be silently demoted by merging.
            return False
        if any(not dep.done or dep.error is not None for dep in nxt.deps):
            return False
        if not stackable_with_group(
            first.program,
            first.program.grid_size(first.args),
            first.args,
            nxt.program.grid_size(nxt.args),
            nxt.args,
            len(group),
        ):
            return False
        # Pairwise disjointness: coalesced launches interleave, so any
        # write overlap (even RAW within the group) forbids merging.
        return all(not ranges_conflict(nxt.ranges, member.ranges) for member in group)

    def _execute_group(self, group: list[LaunchHandle]) -> None:
        profiler = self.pool.profiler
        try:
            first = group[0]
            if len(group) == 1:
                choice = first.engine
                if choice == "auto":
                    choice = select_engine(
                        first.program, first.program.grid_size(first.args)
                    )
            else:
                choice = "batched"
            jit = self.pool.jit
            compiled = None
            if (
                jit is not None
                and len(group) == 1
                and first.engine in ("auto", "compiled")
            ):
                # The compiled tier: an explicit engine="compiled" launch
                # compiles immediately; an "auto" launch promotes once its
                # specialization's profiled heat clears the manager's
                # threshold (explicit sequential/batched are honored).  A
                # bailout falls back bit-exactly to the batched engine.
                compiled = jit.maybe_compile(
                    first.program,
                    first.args,
                    self.pool.profiler,
                    forced=first.engine == "compiled",
                )
            choice = (
                "compiled"
                if compiled is not None
                else ("batched" if choice == "compiled" else choice)
            )

            def execute() -> None:
                if compiled is not None:
                    jit.run(compiled, first.args, self.stats)
                elif len(group) == 1:
                    engine = self.batched if choice == "batched" else self.interpreter
                    engine.launch(first.program, first.args)
                else:
                    self.batched.launch_many(first.program, [h.args for h in group])

            tracer = obs_trace.ACTIVE
            trace_start = tracer.now() if tracer is not None else 0.0
            if profiler is None:
                execute()
            else:
                from repro.runtime.profiling import StatsTimer

                with StatsTimer(self.stats) as timer:
                    execute()
                self._record_group(profiler, group, choice, timer)
            if tracer is not None:
                tracer.complete(
                    f"exec:{first.program.name}",
                    "stream",
                    self.index + 1,
                    trace_start,
                    tracer.now() - trace_start,
                    {"engine": choice, "launches": len(group)},
                )
            self.executions += 1
        except BaseException as exc:  # noqa: BLE001 — propagated to waiters
            for handle in group:
                handle.error = exc
        finally:
            self._finish_group(group, executed=True)

    def _record_group(self, profiler, group, engine_choice, timer) -> None:
        """Attribute one engine invocation to its member launches under
        the eager scope (imports deferred: profiling is off the default
        hot path)."""
        from repro.compiler.pipeline import specialization_key
        from repro.runtime.profiling import EAGER, spec_string

        program = group[0].program
        # Eager sites are keyed by specialization-key string, so launches
        # that coalesced with different scalar bindings still record
        # under their own tunable identity.
        specs = [
            spec_string(specialization_key(program, handle.args))
            for handle in group
        ]
        profiler.record_group(
            EAGER,
            specs,
            program.name,
            specs,
            engine_choice,
            self.index,
            timer.wall,
            stats_delta=timer.delta,
        )

    def _finish_group(self, group: list[LaunchHandle], executed: bool) -> None:
        if executed:
            self.launches += len(group)
        for handle in group:
            handle._done.set()
        self.pool._retire(group)
        with self._cond:
            for handle in group:
                if handle.error is not None and self._error is None:
                    self._error = handle.error
            self._inflight -= len(group)
            self._cond.notify_all()


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


class StreamPool:
    """A fixed set of streams over one device memory, with scheduling and
    cross-stream hazard tracking (see module docstring).

    Usable as a context manager; ``shutdown()`` drains and joins the
    worker threads (they are daemons, so leaking a pool cannot hang
    interpreter exit).
    """

    def __init__(
        self,
        memory: GlobalMemory,
        num_streams: int = 4,
        shared_capacity: int = 228 * 1024,
        stdout=None,
    ) -> None:
        if num_streams < 1:
            raise ValueError(f"num_streams must be positive, got {num_streams}")
        self.memory = memory
        self.shared_capacity = shared_capacity
        self.stdout = stdout
        self.streams = [Stream(self, i) for i in range(num_streams)]
        self._lock = threading.Lock()
        self._outstanding: deque[LaunchHandle] = deque()
        self._rr = itertools.count()
        self._seq = itertools.count()
        self._capture = None  # active ExecutionGraph recording, if any
        #: Active :class:`~repro.runtime.profiling.Profile`, or None.
        #: When set, every engine invocation — eager group or graph
        #: replay — records a per-node cost into it.
        self.profiler = None
        #: Attached :class:`~repro.runtime.adaptive.AdaptivePolicy`, or
        #: None.  When set, :meth:`capture` returns the graph already
        #: under management (an ``AdaptiveGraph``), so every captured
        #: DAG auto-reoptimizes after the policy's warmup window.  See
        #: :mod:`repro.runtime.adaptive`.
        self.adaptive = None
        #: Attached :class:`~repro.runtime.jit.JitManager`, or None.
        #: When set, single-launch executions on every stream (eager
        #: groups and graph-replay tasks alike) promote hot
        #: specializations to their compiled kernels.  See
        #: :mod:`repro.runtime.jit`.
        self.jit = None

    # -- graph capture ------------------------------------------------------
    @property
    def capturing(self) -> bool:
        """True while an execution-graph capture is recording submissions."""
        return self._capture is not None

    def capture(self, profile=None) -> "repro.runtime.graphs.ExecutionGraph":  # noqa: F821
        """Begin capturing an execution graph: used as a context manager,
        every ``submit`` inside the block is *recorded* (scheduling,
        hazard analysis and coalescing run once, at capture time) instead
        of executed, and the resulting graph replays the frozen launch
        DAG without any of that per-launch work.  See
        :mod:`repro.runtime.graphs`.

        ``profile`` (a prior :class:`~repro.runtime.profiling.Profile`)
        turns on **profile-guided capture**: engine choices, per-launch
        stream placement and the stream count are derived from measured
        costs instead of the heuristics, falling back to the heuristics
        for anything the profile never saw.  With an :attr:`adaptive`
        policy attached, the returned graph is already under management
        (replays through it count toward the policy's warmup window).
        See :mod:`repro.runtime.adaptive`.
        """
        from repro.runtime.graphs import ExecutionGraph

        graph = ExecutionGraph(self, profile=profile)
        if self.adaptive is not None:
            return self.adaptive.manage(graph)
        return graph

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        program: Program,
        args: Sequence,
        stream: Stream | None = None,
        engine: str = "auto",
    ) -> LaunchHandle:
        """Enqueue a launch; returns immediately with its handle.

        ``stream=None`` lets the scheduler place the launch: round-robin
        across streams, except that a launch conflicting with outstanding
        work goes to the most recent conflicting launch's stream, where
        FIFO order replaces a cross-stream wait (memory-aware placement).

        During an active :meth:`capture`, the launch is recorded into the
        graph (nothing executes) and a no-op handle is returned.
        """
        if self._capture is not None:
            return self._capture._record(program, args, stream=stream, engine=engine)
        if len(args) != len(program.params):
            raise VMError(
                f"{program.name} expects {len(program.params)} args, got {len(args)}"
            )
        args = tuple(args)
        ranges = launch_ranges(program, args)
        with self._lock:
            while self._outstanding and self._outstanding[0].done:
                self._outstanding.popleft()
            deps = tuple(
                h
                for h in self._outstanding
                if not h.done and ranges_conflict(h.ranges, ranges)
            )
            if stream is None:
                stream = self._pick_stream(deps)
            handle = LaunchHandle(
                program, args, stream, next(self._seq), ranges, engine
            )
            handle.deps = deps
            self._outstanding.append(handle)
            # Enqueue under the pool lock: if a concurrent submitter could
            # interleave here, a dependent launch might enter its stream's
            # FIFO *ahead* of a dependency placed on the same stream, and
            # the worker would deadlock waiting on work queued behind it.
            stream._enqueue(handle)
        stream._ensure_worker()
        return handle

    def _pick_stream(self, deps: tuple[LaunchHandle, ...]) -> Stream:
        if deps:
            return deps[-1].stream
        return self.streams[next(self._rr) % len(self.streams)]

    def _retire(self, group: list[LaunchHandle]) -> None:
        with self._lock:
            while self._outstanding and self._outstanding[0].done:
                self._outstanding.popleft()

    # -- host-side synchronization ------------------------------------------
    def synchronize(self) -> None:
        """Wait for every stream to drain; re-raise the first error."""
        for stream in self.streams:
            stream.synchronize()

    def aggregate_stats(self) -> ExecutionStats:
        """Sum of all per-stream execution statistics."""
        total = ExecutionStats()
        for stream in self.streams:
            total.merge(stream.stats)
        return total

    @property
    def launches(self) -> int:
        return sum(s.launches for s in self.streams)

    @property
    def executions(self) -> int:
        """Engine invocations after coalescing (<= launches)."""
        return sum(s.executions for s in self.streams)

    def shutdown(self) -> None:
        """Stop the worker threads after draining every queue.  Never
        raises; use :meth:`synchronize` to surface execution errors."""
        for stream in self.streams:
            stream._close()

    def __enter__(self) -> "StreamPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                self.synchronize()
        finally:
            self.shutdown()

    def __repr__(self) -> str:
        return (
            f"StreamPool({len(self.streams)} streams, {self.launches} launches "
            f"in {self.executions} executions)"
        )
