"""Multi-process sharded serving: the placement/transport layer.

The runtime package is the **local engine** (one process's Runtime +
spec cache + policy, behind :class:`~repro.runtime.engine.LocalEngine`);
this package is everything *between* engines:

- :mod:`~repro.serving.spec` — the deterministic rebuild recipe
  (:class:`WorkerSpec`) that replaces shipping live objects;
- :mod:`~repro.serving.messages` — the versioned-JSON wire protocol
  (no pickle ever crosses a process boundary);
- :mod:`~repro.serving.worker` — the shard process entry point;
- :mod:`~repro.serving.router` — worker pool, admission control,
  SLO-aware scheduling, dispatch and crash recovery;
- :mod:`~repro.serving.arrivals` — open-loop Poisson / bursty trace
  generators for benchmarking the above.

See ``docs/serving.md`` for the architecture and failure model.
"""

from repro.serving.arrivals import bursty_trace, poisson_trace
from repro.serving.messages import (
    MSG_JSON_VERSION,
    recv_msg,
    request_from_wire,
    request_to_wire,
    result_to_wire,
    send_msg,
)
from repro.serving.router import Router, RouterResult, ServedRequest, WorkerPool
from repro.serving.spec import WorkerSpec
from repro.serving.worker import CRASH_EXIT_CODE, worker_main

__all__ = [
    "CRASH_EXIT_CODE",
    "MSG_JSON_VERSION",
    "Router",
    "RouterResult",
    "ServedRequest",
    "WorkerPool",
    "WorkerSpec",
    "bursty_trace",
    "poisson_trace",
    "recv_msg",
    "request_from_wire",
    "request_to_wire",
    "result_to_wire",
    "send_msg",
    "worker_main",
]
