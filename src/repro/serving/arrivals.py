"""Open-loop arrival generators for serving benchmarks.

Closed-loop load (issue, wait, issue) hides queueing: the generator
slows down whenever the system does, so tail latency looks flat no
matter how overloaded the server is.  The serving bench therefore
drives the router **open-loop**: arrival times are drawn up front from
a stochastic process and requests land on the router at those times
regardless of how far behind it is — the regime where p99 latency
actually measures scheduling quality.

Two generators, both seeded and fully deterministic:

- :func:`poisson_trace` — exponential inter-arrivals at a target rate,
  the standard memoryless open-loop model;
- :func:`bursty_trace` — synchronized bursts separated by idle gaps,
  the adversarial arrival pattern for admission control and SLO
  scheduling (every burst momentarily exceeds capacity).

Each request gets a sequential ``rid`` (which also seeds its decode
activations — see :class:`~repro.llm.batching.Request`), a priority
drawn round-robin from ``priorities``, and the trace-wide ``slo_s``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.llm.batching import Request


def _build(
    arrivals,
    prompt_tokens: int,
    output_tokens: int,
    priorities: Sequence[int],
    slo_s: float,
    rid_base: int,
) -> list[Request]:
    levels = tuple(priorities) or (0,)
    return [
        Request(
            arrival_s=float(t),
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            rid=rid_base + i,
            priority=levels[i % len(levels)],
            slo_s=slo_s,
        )
        for i, t in enumerate(arrivals)
    ]


def poisson_trace(
    num_requests: int,
    rate_rps: float,
    prompt_tokens: int = 512,
    output_tokens: int = 64,
    seed: int = 0,
    priorities: Sequence[int] = (0,),
    slo_s: float = math.inf,
    rid_base: int = 0,
) -> list[Request]:
    """Open-loop Poisson arrivals at ``rate_rps`` requests/second."""
    if num_requests <= 0:
        return []
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_rps, size=num_requests)
    arrivals = np.cumsum(gaps) - gaps[0]  # first request lands at t=0
    return _build(arrivals, prompt_tokens, output_tokens, priorities, slo_s, rid_base)


def bursty_trace(
    num_bursts: int,
    burst_size: int,
    burst_gap_s: float,
    prompt_tokens: int = 512,
    output_tokens: int = 64,
    jitter_s: float = 0.0,
    seed: int = 0,
    priorities: Sequence[int] = (0,),
    slo_s: float = math.inf,
    rid_base: int = 0,
) -> list[Request]:
    """Synchronized bursts: ``burst_size`` simultaneous arrivals every
    ``burst_gap_s`` seconds, each request jittered by up to
    ``jitter_s`` (uniform, seeded)."""
    if num_bursts <= 0 or burst_size <= 0:
        return []
    if burst_gap_s < 0:
        raise ValueError(f"burst_gap_s must be non-negative, got {burst_gap_s}")
    rng = np.random.default_rng(seed)
    arrivals = []
    for burst in range(num_bursts):
        base = burst * burst_gap_s
        for _ in range(burst_size):
            offset = rng.uniform(0.0, jitter_s) if jitter_s > 0 else 0.0
            arrivals.append(base + offset)
    arrivals.sort()
    return _build(arrivals, prompt_tokens, output_tokens, priorities, slo_s, rid_base)
