"""The serving wire protocol: versioned JSON envelopes over pipes.

Router and workers exchange **only JSON text** — no pickled live
objects ever crosses a process boundary.  Graphs travel as
:class:`~repro.runtime.graphs.GraphPlan` JSON, profiles as
:class:`~repro.runtime.profiling.Profile` JSON, and requests/results as
the flat dictionaries below.  Keeping the wire format inspectable and
version-stamped means a router and worker from different builds fail
loudly (a :class:`~repro.errors.VMError` naming the version mismatch)
instead of silently mis-decoding each other.

Message envelope::

    {"v": 1, "type": "<msg type>", ...payload...}

Types: ``ready`` (worker → router, once after boot), ``run`` (router →
worker, a chunk of requests), ``done`` (worker → router, per-request
results + counters), ``pull_state`` / ``state`` (graph plans + profile
export), ``pull_trace`` / ``trace`` (the worker's buffered trace
events + metrics snapshot + its monotonic-clock reading, its own
``trace_v`` version stamp inside the envelope — the fleet-trace merge
frame, see :mod:`repro.obs.trace`), ``crash`` (router → worker, fault
injection: hard-exit mid-loop), ``shutdown`` (router → worker, clean
exit), ``error`` (worker → router, an exception message instead of
results).
"""

from __future__ import annotations

import json
import math

from repro.errors import VMError
from repro.llm.batching import Request

MSG_JSON_VERSION = 1

#: Message types either side may legally emit.
MSG_TYPES = frozenset(
    {
        "ready", "run", "done", "pull_state", "state",
        "pull_trace", "trace", "crash", "shutdown", "error",
    }
)


def send_msg(conn, msg_type: str, **payload) -> None:
    """Send one enveloped JSON message over a ``multiprocessing``
    connection (as bytes: the payload is text, never a pickle)."""
    if msg_type not in MSG_TYPES:
        raise VMError(f"unknown serving message type: {msg_type!r}")
    body = {"v": MSG_JSON_VERSION, "type": msg_type}
    body.update(payload)
    conn.send_bytes(json.dumps(body).encode("utf-8"))


def recv_msg(conn) -> dict:
    """Receive and validate one enveloped message (blocking)."""
    raw = conn.recv_bytes()
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise VMError(f"malformed serving message: {exc}") from exc
    if not isinstance(body, dict) or "type" not in body:
        raise VMError("serving message missing a type")
    version = body.get("v")
    if version != MSG_JSON_VERSION:
        raise VMError(
            f"serving protocol version mismatch: peer sent v={version!r}, "
            f"this build speaks v={MSG_JSON_VERSION}"
        )
    if body["type"] not in MSG_TYPES:
        raise VMError(f"unknown serving message type: {body['type']!r}")
    return body


# ---------------------------------------------------------------------------
# Request / result wire formats
# ---------------------------------------------------------------------------

def request_to_wire(request: Request) -> dict:
    """A request as a flat JSON-safe dict.  ``slo_s=inf`` (best-effort)
    maps to ``null`` — strict JSON has no Infinity."""
    return {
        "rid": request.rid,
        "arrival_s": request.arrival_s,
        "prompt_tokens": request.prompt_tokens,
        "output_tokens": request.output_tokens,
        "priority": request.priority,
        "slo_s": None if math.isinf(request.slo_s) else request.slo_s,
    }


def request_from_wire(data: dict) -> Request:
    try:
        slo = data["slo_s"]
        return Request(
            arrival_s=float(data["arrival_s"]),
            prompt_tokens=int(data["prompt_tokens"]),
            output_tokens=int(data["output_tokens"]),
            rid=int(data["rid"]),
            priority=int(data["priority"]),
            slo_s=math.inf if slo is None else float(slo),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise VMError(f"malformed wire request: {exc}") from exc


def result_to_wire(result) -> dict:
    """A :class:`~repro.llm.batching.RequestResult` as a flat dict.
    Latencies are the worker's simulated timings; the digest is the
    bit-exactness witness the router checks against its oracle."""
    return {
        "rid": result.request.rid,
        "ttft_s": result.ttft_s,
        "latency_s": result.latency_s,
        "digest": result.output_digest,
    }
