"""The front-end router: admission, SLO scheduling, dispatch, recovery.

The placement/transport half of the engine/transport split.  A
:class:`WorkerPool` owns N worker processes (spawned, one
:class:`~repro.llm.batching.ContinuousBatchingSimulator` each, JSON
pipes only); the :class:`Router` in front of it turns an open-loop
request trace into per-worker chunks:

1. **Admission control** — a virtual-clock sweep over the trace using
   the analytic serving model: the router simulates ``workers ×
   max_batch`` serving slots as a min-heap of free times and rejects
   any request whose projected queueing delay exceeds
   ``admission_wait_s`` (or that finds the queue at ``max_queue``).
   Overload is shed at the door, where it is cheap, instead of
   poisoning every in-flight request's tail latency.
2. **SLO-aware scheduling** — admitted requests are ordered by
   ``(-priority, deadline, arrival, rid)``: strict priority first,
   earliest-deadline-first within a priority level
   (``deadline = arrival + slo_s``; best-effort requests sort last).
3. **Dispatch** — the scheduled queue is cut into ``chunk_size``
   chunks, handed to idle workers as they free up, and results are
   collected as each worker answers.
4. **Crash recovery** — a worker that dies mid-chunk (its pipe drops or
   its process exits without answering) has its chunk *reinserted into
   the schedule by policy order* — the same ``(-priority, deadline,
   arrival, rid)`` key that built the queue, FIFO among equals — and is
   respawned from its spec.  (Front-inserting the recovered chunk would
   let a low-priority chunk starve higher-priority queued work under
   strict-priority scheduling.)  Requests are never lost and never
   double-counted: a chunk's results are recorded only when its
   ``done`` message arrives, so a half-served chunk simply runs again —
   decode outputs are deterministic per ``rid``, so a re-dispatched
   request produces the identical digest.

The router holds **no engine state**: everything it knows about a shard
arrived as JSON (``done`` results, ``state`` exports), and everything a
shard knows was rebuilt from the :class:`~repro.serving.spec.WorkerSpec`
recipe.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import time
from dataclasses import dataclass, field

from repro.errors import VMError
from repro.llm.batching import Request, _percentile
from repro.obs import trace as obs_trace
from repro.serving.messages import recv_msg, request_to_wire, send_msg
from repro.serving.spec import WorkerSpec


class WorkerHandle:
    """One worker process + its pipe, respawnable from the spec."""

    def __init__(self, index: int, spec: WorkerSpec, ctx) -> None:
        self.index = index
        self.spec = spec
        self._ctx = ctx
        self.conn = None
        self.process = None
        self.respawns = 0

    def start(self, timeout_s: float = 60.0) -> None:
        """Spawn the process and block until it reports ``ready``
        (build + first compile happen before any chunk is dispatched)."""
        from repro.serving.worker import worker_main

        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.spec.to_json()),
            name=f"repro-serving-worker-{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.conn, self.process = parent_conn, process
        if not parent_conn.poll(timeout_s):
            self.kill()
            raise VMError(f"worker {self.index} did not become ready")
        msg = recv_msg(parent_conn)
        if msg["type"] != "ready":
            self.kill()
            raise VMError(f"worker {self.index} sent {msg['type']!r} before ready")

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def respawn(self, timeout_s: float = 60.0) -> None:
        self.kill()
        self.start(timeout_s)
        self.respawns += 1

    def kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=10.0)
        if self.conn is not None:
            self.conn.close()
            self.conn = None

    def shutdown(self) -> None:
        """Ask for a clean exit; escalate to kill if ignored."""
        if self.conn is not None and self.alive:
            try:
                send_msg(self.conn, "shutdown")
                self.process.join(timeout=10.0)
            except (BrokenPipeError, OSError):
                pass
        self.kill()


class WorkerPool:
    """N workers built from one spec (spawn context: no inherited state,
    the spec recipe is the *only* channel for engine identity)."""

    def __init__(
        self, spec: WorkerSpec, num_workers: int, start_method: str = "spawn"
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.spec = spec
        ctx = mp.get_context(start_method)
        self.handles = [WorkerHandle(i, spec, ctx) for i in range(num_workers)]
        self._started = False

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def start(self, timeout_s: float = 60.0) -> None:
        if not self._started:
            for handle in self.handles:
                handle.start(timeout_s)
            self._started = True

    def shutdown(self) -> None:
        for handle in self.handles:
            handle.shutdown()
        self._started = False

    def inject_crash(self, index: int) -> None:
        """Fault injection: tell worker ``index`` to hard-exit
        (``os._exit`` — no reply, no cleanup), as if it segfaulted."""
        handle = self.handles[index]
        if handle.conn is not None:
            try:
                send_msg(handle.conn, "crash")
            except (BrokenPipeError, OSError):
                pass

    def pull_state(self, index: int, timeout_s: float = 60.0) -> dict:
        """One worker's graph plans + cumulative profile + cache
        counters, as JSON-decoded payload."""
        handle = self.handles[index]
        send_msg(handle.conn, "pull_state")
        if not handle.conn.poll(timeout_s):
            raise VMError(f"worker {index} did not answer pull_state")
        msg = recv_msg(handle.conn)
        if msg["type"] != "state":
            raise VMError(f"worker {index} answered {msg['type']!r} to pull_state")
        return msg

    def pull_trace(self, index: int, timeout_s: float = 60.0) -> dict:
        """One worker's trace buffer + metrics snapshot, with its clock
        offset onto *this* process's ``perf_counter`` estimated
        NTP-style: the request/reply is bracketed locally and the
        worker's reported reading is assumed to fall at the bracket
        midpoint — ``offset = clock_now - (t_send + t_recv) / 2``.
        Subtracting ``clock_offset_s`` from the worker's raw timestamps
        maps them onto the router clock (the pipe round-trip is tens of
        microseconds, far finer than the millisecond-scale spans being
        merged)."""
        handle = self.handles[index]
        t_send = time.perf_counter()
        send_msg(handle.conn, "pull_trace")
        if not handle.conn.poll(timeout_s):
            raise VMError(f"worker {index} did not answer pull_trace")
        msg = recv_msg(handle.conn)
        t_recv = time.perf_counter()
        if msg["type"] != "trace":
            raise VMError(f"worker {index} answered {msg['type']!r} to pull_trace")
        if msg.get("trace_v") != obs_trace.TRACE_JSON_VERSION:
            raise VMError(
                f"worker {index} trace version mismatch: got "
                f"{msg.get('trace_v')!r}, expected {obs_trace.TRACE_JSON_VERSION}"
            )
        msg["clock_offset_s"] = float(msg["clock_now"]) - 0.5 * (t_send + t_recv)
        return msg


@dataclass
class ServedRequest:
    """One completed request as the router recorded it."""

    request: Request
    ttft_s: float
    latency_s: float
    digest: str | None
    worker: int

    @property
    def slo_met(self) -> bool:
        return self.latency_s <= self.request.slo_s


@dataclass
class RouterResult:
    """Aggregate outcome of one routed trace."""

    completed: list[ServedRequest] = field(default_factory=list)
    rejected: list[Request] = field(default_factory=list)
    #: Requests re-dispatched after a worker crash (each counted once
    #: per re-dispatch) and workers respawned during the trace.
    redispatched: int = 0
    respawns: int = 0
    #: Real wall-clock time of the dispatch loop (reported, not gated:
    #: it depends on host core count, while the simulated timings below
    #: are deterministic).
    wall_s: float = 0.0
    #: Per-worker **simulated** serving time: the sum of the virtual
    #: durations of every chunk the worker served.  The repo's latency
    #: accounting is analytic throughout (the VM is functional, not a
    #: timing model), so sharded-serving speedups are measured on these.
    worker_time_s: dict = field(default_factory=dict)
    total_tokens: int = 0
    kernel_launches: int = 0
    graph_captures: int = 0
    graph_replays: int = 0
    auto_reoptimizations: int = 0
    #: Compiled-tier counters summed over worker chunks (``jit=True``
    #: specs): specializations compiled and compiled executions run.
    jit_compiled: int = 0
    jit_promotions: int = 0
    #: Raw per-worker counter sums (every ``done``-frame counter, keyed
    #: by worker index) — the source :meth:`per_worker` reads.
    worker_counters: dict = field(default_factory=dict)

    @property
    def num_completed(self) -> int:
        return len(self.completed)

    @property
    def simulated_makespan_s(self) -> float:
        """Simulated completion time of the sharded trace: the busiest
        worker's total virtual serving time (workers serve their chunk
        queues concurrently)."""
        return max(self.worker_time_s.values(), default=0.0)

    @property
    def simulated_throughput_tokens_per_s(self) -> float:
        makespan = self.simulated_makespan_s
        return self.total_tokens / makespan if makespan else 0.0

    def latency_percentile(self, p: float) -> float:
        return _percentile([r.latency_s for r in self.completed], p)

    def ttft_percentile(self, p: float) -> float:
        return _percentile([r.ttft_s for r in self.completed], p)

    @property
    def slo_attainment(self) -> float:
        """Fraction of completed requests that met their SLO (1.0 when
        nothing completed: an empty trace violates nothing)."""
        if not self.completed:
            return 1.0
        return sum(1 for r in self.completed if r.slo_met) / len(self.completed)

    def digests(self) -> dict:
        return {r.request.rid: r.digest for r in self.completed}

    def per_worker(self) -> dict:
        """Per-worker breakdown: requests served, simulated latency/TTFT
        percentiles over that worker's completions, its simulated busy
        time, and its summed chunk counters (kernel launches, graph
        captures/replays, JIT promotions, specialization-cache
        hits/misses, …) — not just the fleet aggregates."""
        workers = sorted(
            set(self.worker_time_s)
            | set(self.worker_counters)
            | {r.worker for r in self.completed}
        )
        breakdown = {}
        for worker in workers:
            served = [r for r in self.completed if r.worker == worker]
            latencies = [r.latency_s for r in served]
            ttfts = [r.ttft_s for r in served]
            row = {
                "requests": len(served),
                "latency_p50_s": _percentile(latencies, 50),
                "latency_p99_s": _percentile(latencies, 99),
                "ttft_p50_s": _percentile(ttfts, 50),
                "ttft_p99_s": _percentile(ttfts, 99),
                "time_s": self.worker_time_s.get(worker, 0.0),
            }
            for key, value in sorted(self.worker_counters.get(worker, {}).items()):
                if key != "total_time_s":  # already surfaced as time_s
                    row[key] = value
            breakdown[worker] = row
        return breakdown

    def metrics(self) -> dict:
        """Fleet-wide counters under the frozen dot-namespaced contract
        (:data:`repro.obs.metrics.ROUTER_METRICS_KEYS`).  ``router.shed``
        is the admission-reject count — overload is measured at the
        door, where it was shed."""
        from repro.obs.metrics import ROUTER_METRICS_KEYS, validate_metrics

        snapshot = {
            "router.completed": self.num_completed,
            "router.shed": len(self.rejected),
            "router.redispatched": self.redispatched,
            "router.respawns": self.respawns,
            "router.total_tokens": self.total_tokens,
            "router.kernel_launches": self.kernel_launches,
            "router.graph_captures": self.graph_captures,
            "router.graph_replays": self.graph_replays,
            "router.auto_reoptimizations": self.auto_reoptimizations,
            "router.jit_compiled": self.jit_compiled,
            "router.jit_promotions": self.jit_promotions,
            "router.slo_attainment": self.slo_attainment,
            "router.simulated_makespan_s": self.simulated_makespan_s,
            "router.wall_s": self.wall_s,
        }
        return validate_metrics(snapshot, ROUTER_METRICS_KEYS, "RouterResult")


class Router:
    """Continuous-batching front end over a :class:`WorkerPool`."""

    def __init__(
        self,
        pool: WorkerPool,
        chunk_size: int = 8,
        max_queue: int | None = None,
        admission_wait_s: float = float("inf"),
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.pool = pool
        self.chunk_size = chunk_size
        self.max_queue = max_queue
        self.admission_wait_s = admission_wait_s
        from repro.llm.engine import ServingSimulator

        self._estimator = ServingSimulator(
            pool.spec.model_config(), pool.spec.serving_config()
        )

    # -- admission control ---------------------------------------------------
    def estimate_service_s(self, request: Request) -> float:
        """Analytic service-time estimate: one prefill plus the
        request's decode steps at worst-case (full-batch) occupancy."""
        spec = self.pool.spec
        decode = self._estimator.decode_step_latency(
            batch=spec.max_batch,
            context=request.prompt_tokens + request.output_tokens,
        )
        return (
            self._estimator.prefill_latency(request.prompt_tokens)
            + request.output_tokens * decode
        )

    def admit(self, requests: list[Request]) -> tuple[list[Request], list[Request]]:
        """Virtual-clock admission sweep (in arrival order).

        The pool's ``workers × max_batch`` serving slots are modeled as
        a min-heap of free times.  A request is rejected when its
        projected wait for a slot exceeds ``admission_wait_s``, or when
        more than ``max_queue`` admitted requests would be waiting
        (in-system beyond the slot capacity) at its arrival.
        """
        spec = self.pool.spec
        capacity = len(self.pool.handles) * spec.max_batch
        slots = [0.0] * capacity
        heapq.heapify(slots)
        admitted: list[Request] = []
        rejected: list[Request] = []
        backlog: list[float] = []  # projected finish times of waiting requests
        for request in sorted(requests, key=lambda r: (r.arrival_s, r.rid)):
            free_at = slots[0]
            wait = max(0.0, free_at - request.arrival_s)
            if wait > self.admission_wait_s:
                rejected.append(request)
                continue
            if self.max_queue is not None:
                while backlog and backlog[0] <= request.arrival_s:
                    heapq.heappop(backlog)
                if len(backlog) >= capacity + self.max_queue:
                    rejected.append(request)
                    continue
            start = max(request.arrival_s, free_at)
            finish = start + self.estimate_service_s(request)
            heapq.heapreplace(slots, finish)
            if self.max_queue is not None:
                heapq.heappush(backlog, finish)
            admitted.append(request)
        return admitted, rejected

    # -- SLO-aware scheduling ------------------------------------------------
    @staticmethod
    def schedule(admitted: list[Request]) -> list[Request]:
        """Strict priority, then earliest-deadline-first, then arrival.
        ``rid`` is the final tiebreak so the order is total and
        deterministic (re-dispatch after a crash replays it exactly)."""
        return sorted(
            admitted, key=lambda r: (-r.priority, r.deadline_s, r.arrival_s, r.rid)
        )

    @staticmethod
    def _chunk_key(chunk: list[Request]) -> tuple:
        """A chunk's schedule key: its head request's policy key.  Chunks
        are contiguous slices of the policy-sorted schedule, so the head
        is the chunk's minimum and head-to-head comparison preserves the
        global policy order."""
        head = chunk[0]
        return (-head.priority, head.deadline_s, head.arrival_s, head.rid)

    def _requeue(self, queue: list[list[Request]], chunk: list[Request]) -> None:
        """Reinsert a recovered chunk by policy order (strict priority /
        EDF / arrival / rid), FIFO among equal keys — never at the
        queue front, which would let a recovered low-priority chunk
        starve higher-priority queued work."""
        key = self._chunk_key(chunk)
        for i, pending in enumerate(queue):
            if self._chunk_key(pending) > key:
                queue.insert(i, chunk)
                return
        queue.append(chunk)

    # -- dispatch loop -------------------------------------------------------
    def serve(
        self,
        requests: list[Request],
        timeout_s: float = 300.0,
        poll_s: float = 0.02,
        on_dispatch=None,
    ) -> RouterResult:
        """Route a trace through the pool and collect every result.

        ``on_dispatch(worker_index, dispatch_count)`` is called after
        each chunk is handed to a worker — the deterministic
        fault-injection hook (return ``"kill"`` to hard-kill that
        worker's process mid-chunk, exercising the recovery path).

        ``timeout_s`` bounds the whole loop in wall time: a wedged
        worker raises :class:`~repro.errors.VMError` instead of hanging
        the router forever.
        """
        self.pool.start()
        tracer = obs_trace.ACTIVE
        serve_start = tracer.now() if tracer is not None else 0.0
        outcome = RouterResult()
        admitted, outcome.rejected = self.admit(requests)
        if tracer is not None:
            tracer.complete(
                "router.admit",
                "router",
                obs_trace.HOST_TID,
                serve_start,
                tracer.now() - serve_start,
                {"admitted": len(admitted), "shed": len(outcome.rejected)},
            )
        scheduled = self.schedule(admitted)
        chunks = [
            scheduled[i : i + self.chunk_size]
            for i in range(0, len(scheduled), self.chunk_size)
        ]
        queue: list[list[Request]] = list(chunks)
        busy: dict[int, list[Request]] = {}
        dispatch_count = 0
        started = time.perf_counter()
        deadline = started + timeout_s
        while queue or busy:
            if time.perf_counter() > deadline:
                raise VMError(
                    f"router timed out after {timeout_s:.0f}s with "
                    f"{len(queue)} chunks queued and {len(busy)} in flight"
                )
            # Hand chunks to idle workers.
            for handle in self.pool.handles:
                if not queue:
                    break
                if handle.index in busy:
                    continue
                chunk = queue.pop(0)
                try:
                    send_msg(
                        handle.conn,
                        "run",
                        requests=[request_to_wire(r) for r in chunk],
                    )
                except (BrokenPipeError, OSError):
                    # Dead before it even took the chunk: recover, retry.
                    self._requeue(queue, chunk)
                    self._recover(handle, outcome, redispatch=0)
                    continue
                busy[handle.index] = chunk
                dispatch_count += 1
                if tracer is not None:
                    tracer.instant(
                        "router.dispatch",
                        "router",
                        obs_trace.HOST_TID,
                        {
                            "worker": handle.index,
                            "chunk": len(chunk),
                            "dispatch": dispatch_count,
                        },
                    )
                if on_dispatch is not None:
                    if on_dispatch(handle.index, dispatch_count) == "kill":
                        handle.process.kill()
            # Collect answers / detect deaths.
            progressed = False
            for index in list(busy):
                handle = self.pool.handles[index]
                crashed = False
                if handle.conn.poll(poll_s):
                    try:
                        msg = recv_msg(handle.conn)
                    except (EOFError, OSError):
                        crashed = True
                    else:
                        if msg["type"] == "error":
                            raise VMError(
                                f"worker {index} failed: {msg.get('message')}"
                            )
                        if msg["type"] != "done":
                            raise VMError(
                                f"worker {index} sent unexpected "
                                f"{msg['type']!r} mid-trace"
                            )
                        self._record(msg, busy.pop(index), index, outcome)
                        progressed = True
                elif not handle.alive:
                    crashed = True
                if crashed:
                    chunk = busy.pop(index)
                    self._requeue(queue, chunk)
                    self._recover(handle, outcome, redispatch=len(chunk))
                    progressed = True
            if not progressed and not busy and queue:
                # All workers idle with work queued: loop immediately.
                continue
        outcome.wall_s = time.perf_counter() - started
        if tracer is not None:
            tracer.complete(
                "router.serve",
                "router",
                obs_trace.HOST_TID,
                serve_start,
                tracer.now() - serve_start,
                {
                    "completed": outcome.num_completed,
                    "shed": len(outcome.rejected),
                    "dispatches": dispatch_count,
                },
            )
        return outcome

    def _record(
        self, msg: dict, chunk: list[Request], worker: int, outcome: RouterResult
    ) -> None:
        by_rid = {r.rid: r for r in chunk}
        results = msg.get("results", [])
        if {r["rid"] for r in results} != set(by_rid):
            raise VMError(
                f"worker {worker} answered a different request set than dispatched"
            )
        for wire in results:
            outcome.completed.append(
                ServedRequest(
                    request=by_rid[wire["rid"]],
                    ttft_s=float(wire["ttft_s"]),
                    latency_s=float(wire["latency_s"]),
                    digest=wire.get("digest"),
                    worker=worker,
                )
            )
        counters = msg.get("counters", {})
        sums = outcome.worker_counters.setdefault(worker, {})
        for key, value in counters.items():
            sums[key] = sums.get(key, 0) + value
        outcome.worker_time_s[worker] = outcome.worker_time_s.get(
            worker, 0.0
        ) + counters.get("total_time_s", 0.0)
        outcome.total_tokens += counters.get("total_tokens", 0)
        outcome.kernel_launches += counters.get("kernel_launches", 0)
        outcome.graph_captures += counters.get("graph_captures", 0)
        outcome.graph_replays += counters.get("graph_replays", 0)
        outcome.auto_reoptimizations += counters.get("auto_reoptimizations", 0)
        outcome.jit_compiled += counters.get("jit_compiled", 0)
        outcome.jit_promotions += counters.get("jit_promotions", 0)

    def _recover(
        self, handle: WorkerHandle, outcome: RouterResult, redispatch: int
    ) -> None:
        """Respawn a dead worker; account for the chunk going back."""
        handle.respawn()
        outcome.respawns += 1
        outcome.redispatched += redispatch
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.instant(
                "router.recover",
                "router",
                obs_trace.HOST_TID,
                {"worker": handle.index, "redispatched": redispatch},
            )

    # -- fleet trace ---------------------------------------------------------
    def fleet_trace(self) -> dict:
        """One coherent Chrome trace for the whole fleet.

        Pulls every worker's buffered events (:meth:`WorkerPool.pull_trace`),
        normalizes each process's monotonic timestamps onto the router
        clock via the per-worker NTP-midpoint offset, and merges them
        with the router's own events: the router is pid 0, worker *i* is
        pid ``i + 1``, and within each process tid 0 is the host lane
        with streams on lanes 1+.  The result loads directly in
        Perfetto / ``chrome://tracing`` and round-trips through
        :func:`repro.obs.trace.load_trace`."""
        local = obs_trace.ACTIVE
        processes = [
            {
                "name": "router",
                "pid": 0,
                "events": local.events() if local is not None else [],
                "offset_s": 0.0,
            }
        ]
        dropped = local.dropped if local is not None else 0
        for handle in self.pool.handles:
            msg = self.pool.pull_trace(handle.index)
            processes.append(
                {
                    "name": f"worker-{handle.index}",
                    "pid": handle.index + 1,
                    "events": msg["events"],
                    "offset_s": msg["clock_offset_s"],
                }
            )
            dropped += msg.get("dropped", 0)
        trace = obs_trace.merge_process_traces(processes)
        trace["otherData"]["dropped"] = dropped
        return trace
