"""The worker specification: how to rebuild an identical engine anywhere.

Sharded serving never ships weights, programs or buffers between
processes — it ships a small versioned-JSON *recipe* and every worker
rebuilds the same state from it deterministically:

- the decode weight matrix is drawn from ``default_rng(weight_seed)``,
  so every process quantizes and device-transforms bit-identical
  weights;
- model / GPU / dtype references are **names** resolved against the
  in-process registries (:data:`~repro.llm.models.MODELS`,
  :data:`~repro.perf.gpus.GPUS`,
  :func:`~repro.dtypes.registry.dtype_from_name`);
- specialization keys and graph signatures are structural sha256
  hashes, so graphs captured from a spec-built simulator in one process
  validate against plans captured in another (see
  :meth:`~repro.runtime.graphs.ExecutionGraph.apply_plan`).

This is what makes the JSON-only wire protocol sufficient: identity
lives in the recipe, not in any live object.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.errors import VMError

SPEC_JSON_VERSION = 1


@dataclass(frozen=True)
class WorkerSpec:
    """Everything needed to build one worker's simulator, by value."""

    #: Model name in :data:`repro.llm.models.MODELS` (analytic timings).
    model: str = "Gemma-2-9B"
    #: Serving system ("tilus" | "ladder" | "vllm") and its weight dtype.
    system: str = "tilus"
    weight_dtype: str = "u4"
    #: GPU name in :data:`repro.perf.gpus.GPUS`.
    gpu: str = "L40S"
    group_size: int = 128
    #: Kernel-in-the-loop decode linear: shape, dtype, quant group and
    #: the RNG seed its weights are drawn from.
    linear_k: int = 64
    linear_n: int = 16
    linear_dtype: str = "i6"
    linear_group: int = 32
    weight_seed: int = 0
    #: Engine knobs, mirrored onto the simulator.
    max_batch: int = 8
    num_streams: int = 4
    use_graphs: bool = True
    adaptive: bool = False
    profile: bool = False
    #: Attach the compiled tier: hot decode specializations promote out
    #: of the interpreter (see :mod:`repro.runtime.jit`).
    jit: bool = False
    #: Promotion threshold override (accumulated interpreted seconds);
    #: None keeps the manager default.  ``0.0`` promotes on first
    #: profiled sight — what trace smoke tests use to guarantee a JIT
    #: event in a short run.
    jit_threshold_s: float | None = None
    #: Install a process tracer in the worker (see
    #: :mod:`repro.obs.trace`): the worker buffers span/instant events
    #: and ships them on ``pull_trace`` for the router's fleet merge.
    trace: bool = False
    #: Directory of a persistent :class:`~repro.store.TuningStore`.
    #: A worker built from a spec with a path boots *converged*:
    #: profile-guided capture from the stored profile (zero adaptive
    #: swaps), staged JIT kernels, and it publishes its own converged
    #: state back on shutdown.  None (the default — old specs parse
    #: unchanged) serves cold.
    store_path: str | None = None

    # -- JSON round-trip -----------------------------------------------------
    def to_json(self) -> str:
        body = {"version": SPEC_JSON_VERSION, "kind": "worker-spec"}
        body.update(asdict(self))
        return json.dumps(body)

    @classmethod
    def from_json(cls, text: str) -> "WorkerSpec":
        try:
            body = json.loads(text)
        except json.JSONDecodeError as exc:
            raise VMError(f"malformed worker spec JSON: {exc}") from exc
        if not isinstance(body, dict) or body.get("kind") != "worker-spec":
            raise VMError("not a worker-spec JSON document")
        if body.get("version") != SPEC_JSON_VERSION:
            raise VMError(
                f"worker-spec version mismatch: got {body.get('version')!r}, "
                f"expected {SPEC_JSON_VERSION}"
            )
        fields = {k: v for k, v in body.items() if k not in ("version", "kind")}
        try:
            return cls(**fields)
        except TypeError as exc:
            raise VMError(f"malformed worker spec: {exc}") from exc

    # -- deterministic rebuild -----------------------------------------------
    def serving_config(self):
        """The analytic :class:`~repro.llm.engine.ServingConfig` this
        spec names (also what the router's admission estimator uses)."""
        from repro.dtypes.registry import dtype_from_name
        from repro.llm.engine import ServingConfig
        from repro.perf.gpus import gpu_by_name

        return ServingConfig(
            self.system,
            dtype_from_name(self.weight_dtype),
            gpu_by_name(self.gpu),
            group_size=self.group_size,
        )

    def model_config(self):
        from repro.llm.models import MODELS

        try:
            return MODELS[self.model]
        except KeyError as exc:
            raise VMError(f"unknown model in worker spec: {self.model!r}") from exc

    def store_scope(self) -> str:
        """The tuning-store scope every worker sharing this recipe's
        *engine identity* reads and writes.  Hashes only the fields that
        determine what executes (model, dtypes, shapes, seed) — not
        observability or store knobs — so a respawned or scaled-out
        worker lands on the state its identical siblings published."""
        import hashlib

        identity = (
            self.model, self.system, self.weight_dtype, self.gpu,
            self.group_size, self.linear_k, self.linear_n,
            self.linear_dtype, self.linear_group, self.weight_seed,
        )
        digest = hashlib.sha256(repr(identity).encode("utf-8")).hexdigest()
        return f"worker-{digest[:16]}"

    def build_simulator(self):
        """Build this spec's kernel-in-the-loop
        :class:`~repro.llm.batching.ContinuousBatchingSimulator`.

        Bit-determinism contract: two processes building from equal
        specs produce simulators whose per-request decode outputs (and
        therefore :attr:`~repro.llm.batching.RequestResult.output_digest`
        values) agree bit-for-bit for equal ``rid`` s.
        """
        import numpy as np

        from repro import ops
        from repro.dtypes.registry import dtype_from_name
        from repro.llm.batching import ContinuousBatchingSimulator

        weight = np.random.default_rng(self.weight_seed).standard_normal(
            (self.linear_k, self.linear_n)
        )
        linear = ops.prepare_linear(
            weight, dtype_from_name(self.linear_dtype), group_size=self.linear_group
        )
        return ContinuousBatchingSimulator(
            self.model_config(),
            self.serving_config(),
            max_batch=self.max_batch,
            decode_linear=linear,
            num_streams=self.num_streams,
            use_graphs=self.use_graphs,
            profile=self.profile,
            adaptive=self.adaptive,
            jit=self.jit,
            jit_threshold_s=self.jit_threshold_s,
            store=self.store_path,
            store_scope=self.store_scope(),
        )
