"""The worker process: one local engine behind a JSON pipe.

``worker_main`` is the ``multiprocessing`` entry point for one shard.
It rebuilds its simulator deterministically from a
:class:`~repro.serving.spec.WorkerSpec` (never from shipped objects),
announces ``ready``, then serves ``run`` chunks until told to shut
down.  All replies are JSON (:mod:`repro.serving.messages`); on any
exception while serving a chunk the worker answers ``error`` with the
message text instead of dying silently, so the router can surface it.

State export (``pull_state``) returns the worker's cumulative decode
:class:`~repro.runtime.profiling.Profile` and one
:class:`~repro.runtime.graphs.GraphPlan` per captured batch size —
the JSON the router uses for cross-shard warm-starts and for checking
a shard's placement decisions against its own.

The ``crash`` message is the fault-injection hook: the worker replies
nothing and hard-exits (``os._exit``), indistinguishable from a kill —
the router's crash-recovery path is exercised by a *real* dead process,
not a simulated flag.
"""

from __future__ import annotations

import os
import traceback

from repro.serving.messages import (
    recv_msg,
    request_from_wire,
    result_to_wire,
    send_msg,
)
from repro.serving.spec import WorkerSpec

#: Exit status of a fault-injected crash (visible in ``Process.exitcode``).
CRASH_EXIT_CODE = 17


def _state_payload(sim, cumulative_profile) -> dict:
    """Graph plans + cumulative profile as JSON strings."""
    from repro.runtime.engine import LocalEngine
    from repro.runtime.profiling import Profile

    plans = {}
    for batch, graph in sorted(sim._graphs.items()):
        plans[str(batch)] = LocalEngine.plan_json(graph)
    profile = cumulative_profile if cumulative_profile is not None else Profile()
    runtime = sim.decode_linear.runtime
    cache = runtime.cache
    payload = {
        "plans": plans,
        "profile": profile.to_json(),
        "cache": {"hits": cache.hits, "misses": cache.misses},
    }
    if runtime.jit is not None:
        payload["jit"] = runtime.jit.counters()
    return payload


def worker_main(conn, spec_json: str) -> None:
    """Serve one shard over ``conn`` until ``shutdown`` (or ``crash``)."""
    from repro.runtime.profiling import Profile

    spec = WorkerSpec.from_json(spec_json)
    sim = spec.build_simulator()
    cumulative = Profile() if spec.profile else None
    send_msg(conn, "ready", pid=os.getpid())
    while True:
        msg = recv_msg(conn)
        kind = msg["type"]
        if kind == "shutdown":
            break
        if kind == "crash":
            # Fault injection: die exactly as a killed process would —
            # no reply, no cleanup, no Python-level unwind.
            os._exit(CRASH_EXIT_CODE)
        if kind == "run":
            try:
                requests = [request_from_wire(r) for r in msg["requests"]]
                outcome = sim.run(requests)
                if cumulative is not None and outcome.profile is not None:
                    cumulative.merge(outcome.profile)
                send_msg(
                    conn,
                    "done",
                    results=[result_to_wire(r) for r in outcome.results],
                    counters={
                        "total_time_s": outcome.total_time_s,
                        "total_tokens": outcome.total_tokens,
                        "kernel_launches": outcome.kernel_launches,
                        "graph_captures": outcome.graph_captures,
                        "graph_replays": outcome.graph_replays,
                        "auto_reoptimizations": outcome.auto_reoptimizations,
                        "jit_compiled": outcome.jit_compiled,
                        "jit_promotions": outcome.jit_promotions,
                    },
                )
            except Exception as exc:  # noqa: BLE001 — forwarded to router
                send_msg(
                    conn,
                    "error",
                    message=f"{type(exc).__name__}: {exc}",
                    traceback=traceback.format_exc(),
                )
        elif kind == "pull_state":
            send_msg(conn, "state", **_state_payload(sim, cumulative))
        else:
            send_msg(conn, "error", message=f"unexpected message: {kind!r}")
    conn.close()
