"""The worker process: one local engine behind a JSON pipe.

``worker_main`` is the ``multiprocessing`` entry point for one shard.
It rebuilds its simulator deterministically from a
:class:`~repro.serving.spec.WorkerSpec` (never from shipped objects),
announces ``ready``, then serves ``run`` chunks until told to shut
down.  All replies are JSON (:mod:`repro.serving.messages`); on any
exception while serving a chunk the worker answers ``error`` with the
message text instead of dying silently, so the router can surface it.

State export (``pull_state``) returns the worker's cumulative decode
:class:`~repro.runtime.profiling.Profile` and one
:class:`~repro.runtime.graphs.GraphPlan` per captured batch size —
the JSON the router uses for cross-shard warm-starts and for checking
a shard's placement decisions against its own.

Trace export (``pull_trace``) is the observability half: with
``spec.trace`` the worker installs a process tracer at boot
(:mod:`repro.obs.trace`), wraps each served chunk in a ``worker.chunk``
span (stream/graph/JIT emit points inside the simulator record on
their own lanes), and ships the raw event buffer plus its unified
``metrics()`` snapshot and a ``perf_counter`` reading — the clock
reference the router's fleet merge uses to normalize this process's
timestamps onto its own.

The ``crash`` message is the fault-injection hook: the worker replies
nothing and hard-exits (``os._exit``), indistinguishable from a kill —
the router's crash-recovery path is exercised by a *real* dead process,
not a simulated flag.
"""

from __future__ import annotations

import os
import time
import traceback

from repro.obs import trace as obs_trace
from repro.serving.messages import (
    recv_msg,
    request_from_wire,
    result_to_wire,
    send_msg,
)
from repro.serving.spec import WorkerSpec

#: Exit status of a fault-injected crash (visible in ``Process.exitcode``).
CRASH_EXIT_CODE = 17


def _state_payload(sim, cumulative_profile) -> dict:
    """Graph plans + cumulative profile as JSON strings."""
    from repro.runtime.engine import LocalEngine
    from repro.runtime.profiling import Profile

    plans = {}
    for batch, graph in sorted(sim._graphs.items()):
        plans[str(batch)] = LocalEngine.plan_json(graph)
    profile = cumulative_profile if cumulative_profile is not None else Profile()
    runtime = sim.decode_linear.runtime
    cache = runtime.cache
    payload = {
        "plans": plans,
        "profile": profile.to_json(),
        "cache": {"hits": cache.hits, "misses": cache.misses},
    }
    if runtime.jit is not None:
        payload["jit"] = runtime.jit.counters()
    return payload


def worker_main(conn, spec_json: str) -> None:
    """Serve one shard over ``conn`` until ``shutdown`` (or ``crash``)."""
    from repro.runtime.profiling import Profile

    spec = WorkerSpec.from_json(spec_json)
    sim = spec.build_simulator()
    cumulative = Profile() if spec.profile else None
    tracer = obs_trace.install() if spec.trace else None
    cache = sim.decode_linear.runtime.cache if sim.decode_linear is not None else None
    send_msg(conn, "ready", pid=os.getpid())
    while True:
        msg = recv_msg(conn)
        kind = msg["type"]
        if kind == "shutdown":
            if spec.store_path is not None:
                # Best-effort: persist this worker's converged tuning
                # state so the next spawn (respawn, scale-out, a fresh
                # fleet) boots warm.  A publish failure must never turn
                # a clean shutdown into a crash.
                try:
                    sim.publish_store()
                except Exception:
                    pass
            break
        if kind == "crash":
            # Fault injection: die exactly as a killed process would —
            # no reply, no cleanup, no Python-level unwind.
            os._exit(CRASH_EXIT_CODE)
        if kind == "run":
            try:
                requests = [request_from_wire(r) for r in msg["requests"]]
                hits0 = cache.hits if cache is not None else 0
                misses0 = cache.misses if cache is not None else 0
                trace_start = tracer.now() if tracer is not None else 0.0
                outcome = sim.run(requests)
                if tracer is not None:
                    tracer.complete(
                        "worker.chunk",
                        "worker",
                        obs_trace.HOST_TID,
                        trace_start,
                        tracer.now() - trace_start,
                        {"requests": len(requests)},
                    )
                if cumulative is not None and outcome.profile is not None:
                    cumulative.merge(outcome.profile)
                send_msg(
                    conn,
                    "done",
                    results=[result_to_wire(r) for r in outcome.results],
                    counters={
                        "total_time_s": outcome.total_time_s,
                        "total_tokens": outcome.total_tokens,
                        "kernel_launches": outcome.kernel_launches,
                        "graph_captures": outcome.graph_captures,
                        "graph_replays": outcome.graph_replays,
                        "auto_reoptimizations": outcome.auto_reoptimizations,
                        "jit_compiled": outcome.jit_compiled,
                        "jit_promotions": outcome.jit_promotions,
                        # Per-chunk specialization-cache deltas, so the
                        # router's per-worker breakdown sums correctly
                        # across chunks and respawns.
                        "cache_hits": (cache.hits - hits0) if cache is not None else 0,
                        "cache_misses": (
                            (cache.misses - misses0) if cache is not None else 0
                        ),
                    },
                )
            except Exception as exc:  # noqa: BLE001 — forwarded to router
                send_msg(
                    conn,
                    "error",
                    message=f"{type(exc).__name__}: {exc}",
                    traceback=traceback.format_exc(),
                )
        elif kind == "pull_state":
            send_msg(conn, "state", **_state_payload(sim, cumulative))
        elif kind == "pull_trace":
            # The fleet-trace frame: raw events (this process's
            # monotonic clock), the unified metrics snapshot, and the
            # clock reading the router pairs with its own send/receive
            # bracket to estimate this worker's clock offset.
            send_msg(
                conn,
                "trace",
                trace_v=obs_trace.TRACE_JSON_VERSION,
                events=tracer.events() if tracer is not None else [],
                dropped=tracer.dropped if tracer is not None else 0,
                metrics=sim.metrics(),
                clock_now=time.perf_counter(),
            )
        else:
            send_msg(conn, "error", message=f"unexpected message: {kind!r}")
    conn.close()
