"""Persistent tuning store (see :mod:`repro.store.store`)."""

from repro.store.store import (
    STORE_JSON_VERSION,
    TuningStore,
    decode_kernel,
    encode_kernel,
)

__all__ = [
    "STORE_JSON_VERSION",
    "TuningStore",
    "decode_kernel",
    "encode_kernel",
]
