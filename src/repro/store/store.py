"""The persistent tuning store: fleet-warm state that outlives a process.

Every other subsystem in the runtime learns *per process*: the
specialization cache, recorded :class:`~repro.runtime.profiling.Profile`
records, JIT heat and compiled kernels, and ``tune_profiled`` rankings
all die with the process that paid for them, so each spawned worker
(:mod:`repro.serving`) re-pays a warmup another worker already paid.
:class:`TuningStore` is the durable half of that loop — a
content-addressed on-disk store keyed by what the artifacts *are*
(program fingerprints inside specialization-key strings, dtype sets,
profile content stamps), not where they came from:

- serialized :class:`~repro.runtime.profiling.Profile` s (the
  profile-guided capture and JIT-heat input);
- optimized :class:`~repro.runtime.graphs.GraphPlan` placements, keyed
  by graph signature;
- JIT state: per-specialization heat plus lowered-kernel **sources**
  (:class:`~repro.compiler.lower.LoweredKernel`), rehydratable in a
  fresh process without re-running the pass pipeline;
- ``tune_profiled`` rankings, keyed by workload and profile stamp.

Durability contract (what the fault-injection suite pins):

- **Atomic publication.**  Entries are written to a temp file in the
  store directory, flushed, fsynced, and ``os.replace``-d into place —
  a reader sees the whole entry or no entry, never a torn one, and a
  SIGKILL mid-publish leaves only an invisible temp file.
- **Loud-but-soft loads.**  Every malformed entry — truncated JSON,
  non-object body, wrong version, wrong kind, key mismatch, payload
  checksum mismatch, stale stamp — raises :class:`VMError` *at the
  store layer*; every caller in the engine stack catches it and
  degrades to a cold compile.  A bad entry never crashes a worker and
  never silently feeds garbage to an optimizer.
- **LRU/size-capped GC.**  The entry count and total byte size are
  bounded; eviction is least-recently-*used* (loads refresh mtime).
  GC unlinks whole entry files, and readers treat a file vanishing
  mid-read as a plain miss — eviction can never produce a partial read.

Counters (``hits``/``misses``/``publishes``/``gc_evictions``) surface
through ``Runtime.metrics()`` under the frozen ``store.*`` keys, and
publish/load/gc emit ``store``-category trace spans when a process
tracer is installed.
"""

from __future__ import annotations

import base64
import fcntl
import hashlib
import json
import os
import tempfile
import threading

import numpy as np

from repro.errors import VMError
from repro.obs import trace as obs_trace

__all__ = [
    "STORE_JSON_VERSION",
    "TuningStore",
    "encode_kernel",
    "decode_kernel",
]

#: Version stamp written into (and required of) every entry body.
STORE_JSON_VERSION = 1

#: Entry kinds the typed wrappers publish.
KINDS = ("profile", "plan", "rankings", "jit")

#: Default entry-count cap.
DEFAULT_MAX_ENTRIES = 256

#: Default total-size cap (bytes of entry files).
DEFAULT_MAX_BYTES = 64 << 20

#: Temp-file prefix: never matches the ``*.json`` entry glob, so a
#: SIGKILL-orphaned temp write is invisible to every reader.
_TMP_PREFIX = ".publish-"


def _canon(value):
    """JSON-normalize a value (tuples become lists, int keys become
    strings) so stamps and keys compare equal across a round-trip."""
    return json.loads(json.dumps(value))


def _payload_checksum(payload) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Lowered-kernel (de)hydration
#
# A LoweredKernel is source + a constant pool; the source re-compiles in
# any process, but the pool holds numpy arrays, dtype objects and fancy-
# index tuples that must survive JSON.  Anything outside the encodable
# set makes the whole kernel unpersistable (encode_kernel returns None)
# — the fresh process just re-lowers, which is only a warmup cost.
# ---------------------------------------------------------------------------


def _encode_const(obj) -> dict:
    if isinstance(obj, np.ndarray):
        return {
            "kind": "ndarray",
            "dtype": obj.dtype.str,
            "shape": list(obj.shape),
            "data": base64.b64encode(obj.tobytes()).decode("ascii"),
        }
    if isinstance(obj, bool) or isinstance(obj, (int, float)):
        return {"kind": "scalar", "type": type(obj).__name__, "value": obj}
    if isinstance(obj, str):
        return {"kind": "str", "value": obj}
    if isinstance(obj, tuple) and all(isinstance(e, np.ndarray) for e in obj):
        return {"kind": "tuple", "items": [_encode_const(e) for e in obj]}
    name = getattr(obj, "name", None)
    if name is not None:
        from repro.dtypes.registry import dtype_from_name

        try:
            if dtype_from_name(name) is obj:
                return {"kind": "dtype", "name": name}
        except (KeyError, VMError, ValueError):
            pass
    raise VMError(f"unpersistable kernel constant of type {type(obj).__name__}")


def _decode_const(record: dict):
    kind = record.get("kind")
    if kind == "ndarray":
        data = base64.b64decode(record["data"])
        arr = np.frombuffer(data, dtype=np.dtype(record["dtype"]))
        arr = arr.reshape(tuple(record["shape"])).copy()
        arr.setflags(write=False)
        return arr
    if kind == "scalar":
        value = record["value"]
        caster = {"bool": bool, "int": int, "float": float}.get(record.get("type"))
        if caster is None:
            raise VMError(f"unknown scalar constant type {record.get('type')!r}")
        return caster(value)
    if kind == "str":
        return record["value"]
    if kind == "tuple":
        return tuple(_decode_const(e) for e in record["items"])
    if kind == "dtype":
        from repro.dtypes.registry import dtype_from_name

        return dtype_from_name(record["name"])
    raise VMError(f"unknown kernel constant kind {kind!r}")


def encode_kernel(kernel) -> dict | None:
    """A :class:`~repro.compiler.lower.LoweredKernel` as a JSON-native
    record, or ``None`` when its constant pool holds something that
    cannot survive serialization (the kernel is simply not persisted —
    a fresh process re-lowers it)."""
    if kernel.consts is None:
        return None
    try:
        consts = {
            name: _encode_const(obj) for name, obj in kernel.consts.items()
        }
    except VMError:
        return None
    return {
        "program_name": kernel.program_name,
        "spec": repr(kernel.spec),
        "grid": list(kernel.grid),
        "nblocks": kernel.nblocks,
        "ptr_indices": list(kernel.ptr_indices),
        "source": kernel.source,
        "passes": list(kernel.passes),
        "buffer_len": kernel.buffer_len,
        "shared_used": bool(kernel.shared_used),
        "num_params": kernel.num_params,
        "consts": consts,
    }


def decode_kernel(record: dict, memory, key: tuple):
    """Rehydrate a stored kernel record against ``memory`` (the
    receiving process's :class:`~repro.vm.memory.GlobalMemory`) under
    specialization key ``key``.  Raises :class:`VMError` on any
    mismatch or corruption — the caller falls back to a cold lowering.
    """
    from repro.compiler.lower import _HELPERS, LoweredKernel, PASS_NAMES

    try:
        buffer_len = int(record["buffer_len"])
        source = record["source"]
        consts = {
            name: _decode_const(c) for name, c in record["consts"].items()
        }
        grid = tuple(int(g) for g in record["grid"])
        ptr_indices = tuple(int(i) for i in record["ptr_indices"])
        nblocks = int(record["nblocks"])
        num_params = int(record["num_params"])
        program_name = record["program_name"]
        shared_used = bool(record["shared_used"])
    except (KeyError, TypeError, ValueError) as exc:
        raise VMError(f"malformed stored kernel record: {exc}") from exc
    if not isinstance(source, str) or "_jit_kernel" not in source:
        raise VMError("stored kernel source is not a _jit_kernel definition")
    if buffer_len != len(memory.buffer):
        raise VMError(
            f"stored kernel for {program_name} was lowered against a "
            f"{buffer_len}-byte buffer, this memory has {len(memory.buffer)}"
        )
    try:
        code = compile(source, f"<store:{program_name}>", "exec")
        namespace = dict(_HELPERS)
        namespace.update(consts)
        exec(code, namespace)  # noqa: S102 - integrity-checked store entry
        fn = namespace["_jit_kernel"]
    except (SyntaxError, KeyError, ValueError) as exc:
        raise VMError(f"stored kernel source does not compile: {exc}") from exc
    return LoweredKernel(
        program_name=program_name,
        spec=key,
        grid=grid,
        nblocks=nblocks,
        ptr_indices=ptr_indices,
        source=source,
        passes=tuple(PASS_NAMES),
        buffer_len=buffer_len,
        shared_used=shared_used,
        num_consts=len(consts),
        num_params=num_params,
        consts=consts,
        _fn=fn,
    )


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class TuningStore:
    """Content-addressed on-disk store of tuning artifacts.

    One directory holds every entry as ``<kind>-<sha256[:24]>.json``
    where the hash covers ``(kind, key)`` — the key being a caller-
    chosen content identity (a scope string, a graph signature, a
    workload key).  See the module docstring for the durability
    contract.  Thread-safe; multi-process-safe by construction (atomic
    rename is the only publication primitive, and GC tolerates racing
    unlinks).
    """

    def __init__(
        self,
        root: str,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = os.fspath(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.publishes = 0
        self.gc_evictions = 0

    # -- addressing ----------------------------------------------------------
    @staticmethod
    def entry_id(kind: str, key: str) -> str:
        digest = hashlib.sha256(f"{kind}\x00{key}".encode("utf-8")).hexdigest()
        return digest[:24]

    def entry_path(self, kind: str, key: str) -> str:
        return os.path.join(self.root, f"{kind}-{self.entry_id(kind, key)}.json")

    # -- raw publish / load --------------------------------------------------
    def publish(self, kind: str, key: str, payload, stamp=None) -> str:
        """Atomically write one entry; returns its path.

        ``payload`` must be JSON-native.  ``stamp`` is an optional
        content fingerprint a loader can insist on (see ``expect_stamp``
        on :meth:`load`); it is stored JSON-normalized so producer and
        consumer compare equal shapes.
        """
        body = {
            "version": STORE_JSON_VERSION,
            "kind": kind,
            "key": key,
            "stamp": _canon(stamp),
            "payload": payload,
            "checksum": _payload_checksum(_canon(payload)),
        }
        text = json.dumps(body, sort_keys=True)
        path = self.entry_path(kind, key)
        tracer = obs_trace.ACTIVE
        start = tracer.now() if tracer is not None else 0.0
        for _attempt in range(16):
            fd, tmp = tempfile.mkstemp(prefix=_TMP_PREFIX, dir=self.root)
            try:
                # The exclusive flock marks this temp as *live*: GC's
                # orphan sweep skips locked temps, and the kernel drops
                # the lock if this process dies mid-write — so a
                # SIGKILL'd orphan is sweepable the moment it exists.
                fcntl.flock(fd, fcntl.LOCK_EX)
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                    handle.flush()
                    os.fsync(handle.fileno())
                    os.replace(tmp, path)  # rename with the lock held
                break
            except FileNotFoundError:
                # A racing GC won the lock in the instant between
                # mkstemp and flock and swept the temp.  Nothing was
                # published; write again.
                continue
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        else:
            raise VMError(
                f"store entry {kind}:{key} could not be published: the "
                "temp file was repeatedly swept by concurrent GC"
            )
        with self._lock:
            self.publishes += 1
        if tracer is not None:
            tracer.complete(
                f"store.publish:{kind}",
                "store",
                obs_trace.HOST_TID,
                start,
                tracer.now() - start,
                {"key": key, "bytes": len(text)},
            )
        self.gc()
        return path

    def load(self, kind: str, key: str, expect_stamp=None):
        """The entry's payload, or ``None`` when absent (a counted miss).

        Raises :class:`VMError` — after counting a miss — on every
        corruption class: truncated or non-object JSON, version or kind
        mismatch, key mismatch, checksum mismatch, and (when
        ``expect_stamp`` is given) a stale stamp.  Callers catch and
        degrade to a cold compile; the error text names the entry.
        """
        path = self.entry_path(kind, key)
        tracer = obs_trace.ACTIVE
        start = tracer.now() if tracer is not None else 0.0
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            # Absent — or unlinked by a racing GC mid-lookup; both are
            # plain misses, never errors.
            with self._lock:
                self.misses += 1
            if tracer is not None:
                tracer.instant(
                    f"store.miss:{kind}", "store", obs_trace.HOST_TID, {"key": key}
                )
            return None
        try:
            payload = self._validate(text, kind, key, expect_stamp)
        except VMError:
            with self._lock:
                self.misses += 1
            if tracer is not None:
                tracer.instant(
                    f"store.corrupt:{kind}", "store", obs_trace.HOST_TID, {"key": key}
                )
            raise
        with self._lock:
            self.hits += 1
        try:
            os.utime(path)  # LRU touch: recently loaded entries survive GC
        except OSError:
            pass
        if tracer is not None:
            tracer.complete(
                f"store.hit:{kind}",
                "store",
                obs_trace.HOST_TID,
                start,
                tracer.now() - start,
                {"key": key},
            )
        return payload

    @staticmethod
    def _validate(text: str, kind: str, key: str, expect_stamp):
        name = f"store entry {kind}:{key}"
        try:
            body = json.loads(text)
        except ValueError as exc:
            raise VMError(f"{name} is truncated or malformed: {exc}") from exc
        if not isinstance(body, dict):
            raise VMError(f"{name} must be a JSON object, got {type(body).__name__}")
        version = body.get("version")
        if version != STORE_JSON_VERSION:
            raise VMError(
                f"{name} has unsupported version {version!r} "
                f"(this build reads version {STORE_JSON_VERSION})"
            )
        if body.get("kind") != kind:
            raise VMError(f"{name} declares kind {body.get('kind')!r}")
        if body.get("key") != key:
            raise VMError(
                f"{name} declares key {body.get('key')!r} — hash collision "
                "or relocated entry"
            )
        if "payload" not in body:
            raise VMError(f"{name} is missing its payload")
        payload = body["payload"]
        if _payload_checksum(payload) != body.get("checksum"):
            raise VMError(f"{name} failed its payload checksum — corrupt entry")
        if expect_stamp is not None and body.get("stamp") != _canon(expect_stamp):
            raise VMError(
                f"{name} is stale: stamp {body.get('stamp')!r} != "
                f"expected {_canon(expect_stamp)!r}"
            )
        return payload

    # -- garbage collection --------------------------------------------------
    def gc(self) -> int:
        """Enforce the count/byte caps, least-recently-used first, and
        sweep orphaned temp files.  Returns the number of entries
        evicted.  Races cleanly with readers and other GCs: eviction is
        a whole-file unlink, a reader that loses the race sees a plain
        miss, and an already-unlinked victim is skipped."""
        entries = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for name in names:
            path = os.path.join(self.root, name)
            if name.startswith(_TMP_PREFIX):
                # Temp file: a live publisher holds an exclusive flock
                # on its temp for the whole write window, so a lock we
                # *can* take means the writer is gone (SIGKILL released
                # it) — a sweepable orphan, never visible to loads.
                try:
                    tmp_fd = os.open(path, os.O_RDONLY)
                except OSError:
                    continue  # already renamed or swept by a racer
                try:
                    try:
                        fcntl.flock(tmp_fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    except OSError:
                        continue  # a live writer owns it: leave it be
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                finally:
                    os.close(tmp_fd)
                continue
            if not name.endswith(".json"):
                continue
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(reverse=True)  # newest first
        kept = 0
        kept_bytes = 0
        evicted = 0
        tracer = obs_trace.ACTIVE
        for mtime, size, path in entries:
            kept += 1
            kept_bytes += size
            if kept <= self.max_entries and kept_bytes <= self.max_bytes:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            evicted += 1
            if tracer is not None:
                tracer.instant(
                    "store.gc_evict",
                    "store",
                    obs_trace.HOST_TID,
                    {"path": os.path.basename(path)},
                )
        if evicted:
            with self._lock:
                self.gc_evictions += evicted
        return evicted

    def counters(self) -> dict:
        """JSON-friendly counter snapshot (mirrored into the frozen
        ``store.*`` metrics keys by ``Runtime.metrics()``)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "publishes": self.publishes,
                "gc_evictions": self.gc_evictions,
            }

    def entry_count(self) -> int:
        try:
            return sum(
                1 for name in os.listdir(self.root) if name.endswith(".json")
            )
        except OSError:
            return 0

    # -- typed wrappers ------------------------------------------------------
    def publish_profile(self, scope: str, profile) -> str:
        """Persist a :class:`~repro.runtime.profiling.Profile` under
        ``scope``, stamped with its content fingerprint."""
        payload = json.loads(profile.to_json())
        return self.publish("profile", scope, payload, stamp=list(profile.stamp()))

    def load_profile(self, scope: str):
        """The stored profile for ``scope`` as a live
        :class:`~repro.runtime.profiling.Profile`, or None.  Raises
        :class:`VMError` on corruption (store layer *or* profile
        parse)."""
        from repro.runtime.profiling import Profile

        payload = self.load("profile", scope)
        if payload is None:
            return None
        return Profile.from_json(json.dumps(payload))

    def publish_plan(self, scope: str, signature: str, plan) -> str:
        """Persist a :class:`~repro.runtime.graphs.GraphPlan` under
        ``scope`` + its graph signature."""
        payload = json.loads(plan.to_json())
        return self.publish("plan", f"{scope}:{signature}", payload)

    def load_plan(self, scope: str, signature: str):
        """The stored plan for this scope + graph signature as a live
        :class:`~repro.runtime.graphs.GraphPlan`, or None."""
        from repro.runtime.graphs import GraphPlan

        payload = self.load("plan", f"{scope}:{signature}")
        if payload is None:
            return None
        plan = GraphPlan.from_json(json.dumps(payload))
        if plan.signature != signature:
            raise VMError(
                f"stored plan carries signature {plan.signature}, "
                f"expected {signature}"
            )
        return plan

    def publish_rankings(self, scope: str, workload_key: str, payload, stamp) -> str:
        """Persist one ``tune_profiled`` ranking, keyed by workload and
        stamped by the profile that produced it."""
        return self.publish(
            "rankings", f"{scope}:{workload_key}", payload, stamp=stamp
        )

    def load_rankings(self, scope: str, workload_key: str, expect_stamp):
        """The stored ranking payload for this workload under this exact
        profile stamp, or None.  A ranking computed from *other* traffic
        raises (stale stamp) rather than silently serving a winner the
        current profile might not pick."""
        return self.load("rankings", f"{scope}:{workload_key}", expect_stamp)

    def publish_jit(self, scope: str, manager, profile) -> int:
        """Persist a :class:`~repro.runtime.jit.JitManager`'s warm state:
        per-specialization heat from ``profile`` plus every cached
        kernel's source and constant pool.  Returns the number of
        kernels persisted (unpersistable ones are skipped — they only
        cost a re-lowering)."""
        heat = {}
        kernels = []
        with manager._lock:
            cached = list(manager.cache._kernels.items())
        for key, kernel in cached:
            record = encode_kernel(kernel)
            if record is None:
                continue
            kernels.append(record)
        if profile is not None:
            for spec in {r["spec"] for r in kernels}:
                seconds = profile.spec_heat(spec)
                if seconds > 0.0:
                    heat[spec] = seconds
            # Heat for hot-but-not-yet-compiled (or unpersistable)
            # specializations still pre-promotes the next process.
            with profile._lock:
                specs = {node.spec for node in profile.nodes.values()}
            for spec in specs:
                seconds = profile.spec_heat(spec)
                if seconds > 0.0:
                    heat.setdefault(spec, seconds)
        payload = {"heat": heat, "kernels": kernels}
        self.publish("jit", scope, payload)
        return len(kernels)

    def load_jit(self, scope: str):
        """The stored JIT payload (``{"heat": {...}, "kernels": [...]}``)
        for ``scope``, or None."""
        payload = self.load("jit", scope)
        if payload is None:
            return None
        if (
            not isinstance(payload, dict)
            or not isinstance(payload.get("heat"), dict)
            or not isinstance(payload.get("kernels"), list)
        ):
            raise VMError(f"store entry jit:{scope} payload is not a JIT snapshot")
        return payload

    def __repr__(self) -> str:
        return (
            f"TuningStore({self.root!r}, {self.entry_count()} entries, "
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.publishes} publishes, {self.gc_evictions} gc-evicted)"
        )
