"""Small shared utilities: bit manipulation, index math, misc helpers."""

from repro.utils.bits import (
    bit_mask,
    extract_bits,
    insert_bits,
    pack_bits,
    unpack_bits,
)
from repro.utils.indexmath import ceil_div, gcd, prod, ravel_index, unravel_index

__all__ = [
    "bit_mask",
    "extract_bits",
    "insert_bits",
    "pack_bits",
    "unpack_bits",
    "ceil_div",
    "gcd",
    "prod",
    "ravel_index",
    "unravel_index",
]
