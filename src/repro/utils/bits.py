"""Bit-level packing and extraction helpers.

These implement the compact sub-byte storage scheme of paper Section 7.1:
values narrower than 8 bits are stored back to back with no padding, so a
single value may straddle a byte boundary (Figure 8).  All helpers are
vectorized over numpy arrays and operate LSB-first within each byte: the
value at element index ``k`` occupies absolute bit positions
``[k * nbits, (k + 1) * nbits)`` of the byte stream.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataTypeError


def bit_mask(nbits: int) -> int:
    """Return an integer with the lowest ``nbits`` bits set."""
    if nbits < 0:
        raise DataTypeError(f"bit_mask: nbits must be non-negative, got {nbits}")
    return (1 << nbits) - 1


def _check_bitorder(name: str, bitorder: str) -> None:
    if bitorder not in ("little", "big"):
        raise DataTypeError(
            f"{name}: bitorder must be 'little' or 'big', got {bitorder!r}"
        )


def pack_bits(values: np.ndarray, nbits: int, bitorder: str = "little") -> np.ndarray:
    """Pack unsigned bit patterns into a compact uint8 byte stream.

    Args:
        values: array of non-negative integers, each < 2**nbits.  Flattened
            in C order before packing.
        nbits: width of each element in bits (1..64).
        bitorder: ``"little"`` (the VM's native order, LSB first within
            each element and each byte) or ``"big"`` (MSB first — the
            order used by e.g. big-endian bitstream formats).

    Returns:
        A 1-D uint8 array of length ``ceil(len(values) * nbits / 8)``.
    """
    if not 1 <= nbits <= 64:
        raise DataTypeError(f"pack_bits: nbits must be in [1, 64], got {nbits}")
    _check_bitorder("pack_bits", bitorder)
    flat = np.ascontiguousarray(values).reshape(-1).astype(np.uint64)
    if flat.size and int(flat.max()) >> nbits:
        raise DataTypeError(
            f"pack_bits: value {int(flat.max())} does not fit in {nbits} bits"
        )
    total_bits = flat.size * nbits
    nbytes = (total_bits + 7) // 8
    # Expand each value into its individual bits, then repack by 8.
    bit_idx = np.arange(nbits, dtype=np.uint64)
    if bitorder == "big":
        bit_idx = bit_idx[::-1]
    bits = ((flat[:, None] >> bit_idx[None, :]) & 1).astype(np.uint8).reshape(-1)
    padded = np.zeros(nbytes * 8, dtype=np.uint8)
    padded[:total_bits] = bits
    shifts = np.arange(8, dtype=np.uint8)
    if bitorder == "big":
        shifts = shifts[::-1]
    byte_weights = np.uint8(1) << shifts
    return (padded.reshape(nbytes, 8) * byte_weights).sum(axis=1).astype(np.uint8)


def unpack_bits(
    data: np.ndarray, nbits: int, count: int, bitorder: str = "little"
) -> np.ndarray:
    """Inverse of :func:`pack_bits` (pass the matching ``bitorder``).

    Args:
        data: uint8 byte stream.
        nbits: width of each element in bits.
        count: number of elements to extract.
        bitorder: ``"little"`` or ``"big"``; see :func:`pack_bits`.

    Returns:
        A 1-D uint64 array of ``count`` bit patterns.
    """
    if not 1 <= nbits <= 64:
        raise DataTypeError(f"unpack_bits: nbits must be in [1, 64], got {nbits}")
    _check_bitorder("unpack_bits", bitorder)
    data = np.ascontiguousarray(data).reshape(-1).astype(np.uint8)
    total_bits = count * nbits
    if data.size * 8 < total_bits:
        raise DataTypeError(
            f"unpack_bits: need {total_bits} bits but buffer has {data.size * 8}"
        )
    shifts = np.arange(8, dtype=np.uint8)
    if bitorder == "big":
        shifts = shifts[::-1]
    bits = ((data[:, None] >> shifts[None, :]) & 1).reshape(-1)
    bits = bits[:total_bits].reshape(count, nbits).astype(np.uint64)
    weights = np.uint64(1) << np.arange(nbits, dtype=np.uint64)
    if bitorder == "big":
        weights = weights[::-1]
    return (bits * weights).sum(axis=1, dtype=np.uint64)


def extract_bits(data: np.ndarray, bit_offset: int, nbits: int) -> int:
    """Extract ``nbits`` starting at absolute ``bit_offset`` from a byte stream.

    Implements the load path of paper Figure 8(b): AND to select bits,
    SHIFT to align, OR to merge parts that straddle byte boundaries.
    """
    data = np.ascontiguousarray(data).reshape(-1).astype(np.uint8)
    result = 0
    taken = 0
    while taken < nbits:
        byte_idx = (bit_offset + taken) // 8
        bit_in_byte = (bit_offset + taken) % 8
        take = min(8 - bit_in_byte, nbits - taken)
        part = (int(data[byte_idx]) >> bit_in_byte) & bit_mask(take)
        result |= part << taken
        taken += take
    return result


def insert_bits(data: np.ndarray, bit_offset: int, nbits: int, value: int) -> None:
    """Insert ``value`` (``nbits`` wide) at ``bit_offset``, in place.

    Implements the store path of paper Figure 8(c): clear the target bits
    with a mask, then OR in the new value while preserving neighbours.
    """
    if value >> nbits:
        raise DataTypeError(f"insert_bits: value {value} does not fit in {nbits} bits")
    written = 0
    while written < nbits:
        byte_idx = (bit_offset + written) // 8
        bit_in_byte = (bit_offset + written) % 8
        put = min(8 - bit_in_byte, nbits - written)
        part = (value >> written) & bit_mask(put)
        clear = ~(bit_mask(put) << bit_in_byte) & 0xFF
        data[byte_idx] = np.uint8((int(data[byte_idx]) & clear) | (part << bit_in_byte))
        written += put
