"""Integer index arithmetic shared by the layout system and the VM.

``ravel_index`` / ``unravel_index`` convert between multi-dimensional indices
in a row-major grid and linear indices, exactly the ``ravel``/``unravel``
operations of paper Section 5 (Figure 6).  They accept both Python ints and
numpy arrays so the VM can apply layouts to whole tiles at once.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import LayoutError


def prod(values: Sequence[int]) -> int:
    """Product of a sequence of integers (1 for the empty sequence)."""
    result = 1
    for v in values:
        result *= int(v)
    return result


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division."""
    return -(-a // b)


def gcd(a: int, b: int) -> int:
    """Greatest common divisor (thin wrapper for a stable import point)."""
    return math.gcd(a, b)


def ravel_index(indices: Sequence, shape: Sequence[int]):
    """Row-major linearization of a multi-index.

    ``ravel_index([i2, j1], [8, 4]) == i2 * 4 + j1`` as in paper Figure 6.
    Works element-wise when entries of ``indices`` are numpy arrays.
    """
    if len(indices) != len(shape):
        raise LayoutError(
            f"ravel_index: rank mismatch, {len(indices)} indices vs shape {list(shape)}"
        )
    linear = 0
    for idx, extent in zip(indices, shape):
        linear = linear * int(extent) + idx
    return linear


def unravel_index(linear, shape: Sequence[int]):
    """Row-major inverse of :func:`ravel_index`.

    ``unravel_index(i, [4, 2, 8]) == [i // 16, i // 8 % 2, i % 8]``.
    Returns a list with one entry per dimension; entries are arrays when
    ``linear`` is an array.
    """
    strides = []
    acc = 1
    for extent in reversed(shape):
        strides.append(acc)
        acc *= int(extent)
    strides.reverse()
    out = []
    for extent, stride in zip(shape, strides):
        out.append((linear // stride) % int(extent))
    return out


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def argsort(seq: Sequence[int]) -> list[int]:
    """Indices that would sort ``seq`` ascending (stable)."""
    return sorted(range(len(seq)), key=lambda k: seq[k])


def as_int_tuple(values) -> tuple[int, ...]:
    """Normalize a scalar/sequence of ints into a tuple of Python ints."""
    if isinstance(values, (int, np.integer)):
        return (int(values),)
    return tuple(int(v) for v in values)
