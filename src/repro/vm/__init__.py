"""Virtual machine: simulated device memory and the execution engines.

Two engines execute the same instruction set: the sequential
:class:`Interpreter` (one block at a time) and the grid-vectorized
:class:`BatchedExecutor` (all blocks in lockstep as stacked numpy ops).
:func:`select_engine` implements the runtime's ``engine="auto"`` policy.
"""

from repro.vm.batched import (
    BatchedExecutor,
    BatchedRegisterValue,
    BatchedSharedMemory,
    BatchedView,
    select_engine,
    supports_batched,
)
from repro.vm.dispatch import BATCHED, SEQUENTIAL, DispatchTable
from repro.vm.interp import BlockContext, ExecutionStats, Interpreter
from repro.vm.memory import GlobalMemory, SharedMemory, TensorView
from repro.vm.values import RegisterValue

__all__ = [
    "Interpreter",
    "BatchedExecutor",
    "BatchedRegisterValue",
    "BatchedSharedMemory",
    "BatchedView",
    "select_engine",
    "supports_batched",
    "DispatchTable",
    "SEQUENTIAL",
    "BATCHED",
    "BlockContext",
    "ExecutionStats",
    "GlobalMemory",
    "SharedMemory",
    "TensorView",
    "RegisterValue",
]
