"""Virtual machine: simulated device memory and the program interpreter."""

from repro.vm.interp import BlockContext, ExecutionStats, Interpreter
from repro.vm.memory import GlobalMemory, SharedMemory, TensorView
from repro.vm.values import RegisterValue

__all__ = [
    "Interpreter",
    "BlockContext",
    "ExecutionStats",
    "GlobalMemory",
    "SharedMemory",
    "TensorView",
    "RegisterValue",
]
