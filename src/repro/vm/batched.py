"""Grid-vectorized VM execution engine.

The sequential :class:`~repro.vm.interp.Interpreter` runs thread blocks one
after another in a Python loop, so per-instruction Python overhead is paid
once *per block*.  Thread blocks are independent by construction (paper
Section 6), which makes the grid a perfect vectorization axis: this module
executes **all blocks in lockstep**, representing every register tile as a
``(num_blocks, num_threads, bits_per_thread)`` tensor and every memory
transfer as one stacked gather/scatter, so per-instruction overhead is paid
once *per launch*.

Engine selection
----------------
:func:`select_engine` implements the policy used by
:class:`repro.runtime.runtime.Runtime` with ``engine="auto"``:

- **batched** is selected when the launch grid has more than one thread
  block and every global view shape is block-invariant (built from
  constants and parameters only);
- **sequential** is selected otherwise — single-block launches gain
  nothing from stacking, and per-block tensor shapes cannot be stacked.

``PrintTensor`` batches too: output is buffered per block during lockstep
execution and flushed in block order when the launch retires, which
reproduces the sequential engine's interleaving exactly for register
tensors and block-private memory (the only prints the SIMB contract
makes well-defined).

Callers can force either engine explicitly; the differential test harness
(``tests/harness``) runs randomized programs through both engines and
asserts bit-exact agreement — including sub-byte storage, register
reinterpretation and divergent control flow.

Bit-exactness assumes programs honor the SIMB contract that thread blocks
are independent: a block must not read global memory that another block
of the same launch writes.  Real hardware gives such programs no ordering
either; the sequential engine merely serializes them by accident of its
block loop.

Control-flow divergence is handled SIMT-style: every statement executes
under a boolean *active mask* over blocks; ``if``/``for``/``while`` split
and re-converge the mask, ``break``/``continue``/``Exit`` subtract from it.
All environment updates merge per block, so an inactive block observes no
effect from instructions it did not execute.

Known, documented divergences from the sequential engine (none observable
through tensor outputs of well-formed programs):

- ``AllocateGlobal`` address assignment order differs when a program
  allocates workspace more than once (contents are still per-block
  private; a single ``AllocateGlobal`` per program gets bit-identical
  addresses via :meth:`~repro.vm.memory.GlobalMemory.alloc_n`);
- ``PrintTensor`` of a *global view* renders the view's state at the
  lockstep execution point, so a program that (illegally) prints memory
  another block writes may observe a different interleaving;
- scalar expressions with block-varying operands evaluate both arms of
  short-circuit logicals and conditionals (under guard-refined masks, so
  guarded divisions still behave sequentially);
- a block whose loop extent is zero observes the loop variable as bound
  (to the first iteration index) if it reads it after the loop, where the
  sequential engine would raise an unbound-variable error.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import IRError, VMError
from repro.ir import instructions as insts
from repro.ir.evaluator import _c_div, _c_mod
from repro.ir.expr import (
    Binary,
    CastExpr,
    Compare,
    Conditional,
    Constant,
    Expr,
    Logical,
    Unary,
    Var,
)
from repro.ir.program import Program
from repro.ir.stmt import (
    AssignStmt,
    BreakStmt,
    ContinueStmt,
    ForStmt,
    IfStmt,
    InstructionStmt,
    SeqStmt,
    Stmt,
    WhileStmt,
)
from repro.ir.types import TensorVar
from repro.vm.dispatch import (
    BATCHED,
    bounds_mask,
    decompose_linear,
    layout_tile_coords,
    pad_tile_indices,
)
from repro.vm.interp import ExecutionStats
from repro.vm.values import apply_elementwise
from repro.vm.memory import GlobalMemory


# ---------------------------------------------------------------------------
# Batched scalar evaluation
# ---------------------------------------------------------------------------


def _c_div_vec(a, b, active=None):
    a = np.asarray(a)
    b = np.asarray(b)
    if a.dtype.kind == "f" or b.dtype.kind == "f":
        return a / b
    if active is not None and b.ndim:
        # Blocks masked off by divergent control flow never evaluate this
        # expression sequentially; neutralize their divisors so only an
        # *active* zero divisor is an error.
        b = np.where(np.broadcast_to(active, b.shape), b, 1)
    if np.any(b == 0):
        raise VMError("division by zero in scalar expression")
    q = np.abs(a) // np.abs(b)
    return np.where((a >= 0) == (b >= 0), q, -q)


def _c_mod_vec(a, b, active=None):
    a = np.asarray(a)
    b = np.asarray(b)
    if a.dtype.kind == "f" or b.dtype.kind == "f":
        return np.fmod(a, b)
    return a - _c_div_vec(a, b, active) * b


def _is_arr(x) -> bool:
    return isinstance(x, np.ndarray)


def batched_evaluate(expr: Expr, env, active=None):
    """Evaluate ``expr`` where env values may be per-block ``(B,)`` arrays.

    Uniform subexpressions stay Python scalars (matching the sequential
    evaluator exactly, including C division semantics); anything touched by
    a block-varying variable becomes a per-block array computed with the
    vectorized equivalents of the same C semantics.

    ``active`` is the divergence mask of the blocks actually evaluating
    the expression.  Array arms of conditionals and short-circuit logicals
    are evaluated for *all* blocks but under a mask refined by their guard,
    and division neutralizes masked-off divisors — so a program that
    guards a division (``if bi > 0: ... x / bi ...``) behaves exactly as
    it does sequentially.
    """
    if isinstance(expr, Constant):
        return expr.value
    if isinstance(expr, Var):
        if expr not in env:
            raise IRError(f"unbound variable {expr.name!r} during evaluation")
        return env[expr]
    if isinstance(expr, Binary):
        a = batched_evaluate(expr.lhs, env, active)
        b = batched_evaluate(expr.rhs, env, active)
        op = expr.op
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if not _is_arr(a) and not _is_arr(b):
                return _c_div(a, b)
            return _c_div_vec(a, b, active)
        if op == "%":
            if not _is_arr(a) and not _is_arr(b):
                return _c_mod(a, b)
            return _c_mod_vec(a, b, active)
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<":
            return a << b
        if op == ">>":
            return a >> b
        raise IRError(f"unknown binary op {op!r}")
    if isinstance(expr, Unary):
        a = batched_evaluate(expr.operand, env, active)
        if expr.op == "-":
            return -a
        if expr.op == "~":
            return ~a
        if expr.op == "!":
            return ~np.asarray(a, dtype=bool) if _is_arr(a) else (not a)
        raise IRError(f"unknown unary op {expr.op!r}")
    if isinstance(expr, Compare):
        a = batched_evaluate(expr.lhs, env, active)
        b = batched_evaluate(expr.rhs, env, active)
        op = expr.op
        if op == "==":
            return a == b
        if op == "!=":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        raise IRError(f"unknown comparison {op!r}")
    if isinstance(expr, Logical):
        if expr.op not in ("&&", "||"):
            raise IRError(f"unknown logical op {expr.op!r}")
        a = batched_evaluate(expr.lhs, env, active)
        if not _is_arr(a):
            # Uniform left side keeps short-circuit semantics.
            if expr.op == "&&" and not a:
                return False
            if expr.op == "||" and a:
                return True
            b = batched_evaluate(expr.rhs, env, active)
            return np.asarray(b, dtype=bool) if _is_arr(b) else bool(b)
        am = np.asarray(a, dtype=bool)
        # The right side only evaluates sequentially where the left side
        # does not short-circuit; refine the mask accordingly.
        guard = am if expr.op == "&&" else ~am
        rhs_active = guard if active is None else (active & guard)
        b = batched_evaluate(expr.rhs, env, rhs_active)
        bm = np.asarray(b, dtype=bool)
        return (am & bm) if expr.op == "&&" else (am | bm)
    if isinstance(expr, Conditional):
        cond = batched_evaluate(expr.cond, env, active)
        if not _is_arr(cond):
            return batched_evaluate(expr.then if cond else expr.otherwise, env, active)
        cmask = np.asarray(cond, dtype=bool)
        then_active = cmask if active is None else (active & cmask)
        else_active = ~cmask if active is None else (active & ~cmask)
        return np.where(
            cmask,
            batched_evaluate(expr.then, env, then_active),
            batched_evaluate(expr.otherwise, env, else_active),
        )
    if isinstance(expr, CastExpr):
        value = batched_evaluate(expr.operand, env, active)
        if expr.dtype.is_float:
            return value.astype(np.float64) if _is_arr(value) else float(value)
        if _is_arr(value):
            return np.trunc(value).astype(np.int64) if value.dtype.kind == "f" else value.astype(np.int64)
        return int(value)
    raise IRError(f"cannot evaluate expression node {type(expr).__name__}")


def _as_mask(value, nblocks: int) -> np.ndarray:
    """Coerce a condition value into a (B,) boolean mask."""
    return np.broadcast_to(np.asarray(value, dtype=bool), (nblocks,))


def _as_col(value, nblocks: int) -> np.ndarray:
    """Coerce a scalar-or-(B,) value into a (B, 1) int64 column."""
    arr = np.asarray(value, dtype=np.int64)
    if arr.ndim == 0:
        return np.full((nblocks, 1), int(arr), dtype=np.int64)
    return arr.reshape(nblocks, 1)


# ---------------------------------------------------------------------------
# Batched runtime values
# ---------------------------------------------------------------------------


class BatchedRegisterValue:
    """All blocks' copies of one register tensor: bits of shape (B, T, W).

    Mirrors :class:`repro.vm.values.RegisterValue` operation by operation
    (identical decode → numpy op → encode pipelines) so results are
    bit-exact with per-block execution.
    """

    def __init__(self, dtype, layout, bits: np.ndarray) -> None:
        expected = (bits.shape[0], layout.num_threads, layout.local_size * dtype.nbits)
        if bits.shape != expected:
            raise VMError(
                f"batched register bits shape {bits.shape} does not match "
                f"layout {layout.short_repr()} x {dtype} (expected {expected})"
            )
        self.dtype = dtype
        self.layout = layout
        self.bits = bits

    @property
    def nblocks(self) -> int:
        return self.bits.shape[0]

    # -- constructors -----------------------------------------------------
    @classmethod
    def zeros(cls, dtype, layout, nblocks: int) -> "BatchedRegisterValue":
        bits = np.zeros(
            (nblocks, layout.num_threads, layout.local_size * dtype.nbits),
            dtype=np.uint8,
        )
        return cls(dtype, layout, bits)

    @classmethod
    def filled(cls, dtype, layout, value, nblocks: int) -> "BatchedRegisterValue":
        values = np.full((nblocks, layout.num_threads, layout.local_size), value)
        return cls.from_thread_values(dtype, layout, values)

    @classmethod
    def from_patterns(cls, dtype, layout, patterns: np.ndarray) -> "BatchedRegisterValue":
        patterns = np.asarray(patterns, dtype=np.uint64)
        nb = patterns.shape[0]
        expected = (nb, layout.num_threads, layout.local_size)
        if patterns.shape != expected:
            raise VMError(f"pattern shape {patterns.shape} != {expected}")
        nbits = dtype.nbits
        bit_idx = np.arange(nbits, dtype=np.uint64)
        bits = ((patterns[..., None] >> bit_idx) & np.uint64(1)).astype(np.uint8)
        return cls(
            dtype, layout, bits.reshape(nb, layout.num_threads, layout.local_size * nbits)
        )

    @classmethod
    def from_thread_values(cls, dtype, layout, values: np.ndarray) -> "BatchedRegisterValue":
        values = np.asarray(values)
        nb = values.shape[0]
        patterns = dtype.to_bits(values.reshape(-1)).reshape(
            nb, layout.num_threads, layout.local_size
        )
        return cls.from_patterns(dtype, layout, patterns)

    @classmethod
    def from_logical(cls, dtype, layout, tensor: np.ndarray) -> "BatchedRegisterValue":
        tensor = np.asarray(tensor)
        nb = tensor.shape[0]
        if tensor.shape[1:] != layout.shape:
            raise VMError(
                f"logical shape {tensor.shape[1:]} != layout shape {layout.shape}"
            )
        coords = layout_tile_coords(layout)
        bidx = np.arange(nb, dtype=np.int64)[:, None]
        values = tensor[(bidx,) + tuple(c[None, :] for c in coords)]
        return cls.from_thread_values(
            dtype, layout, values.reshape(nb, layout.num_threads, layout.local_size)
        )

    # -- accessors --------------------------------------------------------
    @property
    def bits_per_thread(self) -> int:
        return self.bits.shape[2]

    def thread_patterns(self) -> np.ndarray:
        nbits = self.dtype.nbits
        nb, t, width = self.bits.shape
        grouped = self.bits.reshape(nb, t, width // nbits, nbits).astype(np.uint64)
        weights = np.uint64(1) << np.arange(nbits, dtype=np.uint64)
        return (grouped * weights).sum(axis=3, dtype=np.uint64)

    def thread_values(self) -> np.ndarray:
        patterns = self.thread_patterns()
        return self.dtype.from_bits(patterns.reshape(-1)).reshape(patterns.shape)

    def to_logical(self) -> np.ndarray:
        values = self.thread_values()
        nb = self.nblocks
        out = np.zeros((nb,) + self.layout.shape, dtype=values.dtype)
        coords = layout_tile_coords(self.layout)
        bidx = np.arange(nb, dtype=np.int64)[:, None]
        out[(bidx,) + tuple(c[None, :] for c in coords)] = values.reshape(nb, -1)
        return out

    # -- operations -------------------------------------------------------
    def view(self, dtype, layout) -> "BatchedRegisterValue":
        if layout.num_threads != self.layout.num_threads:
            raise VMError(
                f"view: thread count {self.layout.num_threads} -> "
                f"{layout.num_threads} mismatch"
            )
        if layout.local_size * dtype.nbits != self.bits_per_thread:
            raise VMError(
                f"view: bits-per-thread mismatch: {self.bits_per_thread} -> "
                f"{layout.local_size * dtype.nbits}"
            )
        return BatchedRegisterValue(dtype, layout, self.bits)

    def cast(self, dtype) -> "BatchedRegisterValue":
        values = self.thread_values()
        if dtype.is_integer and self.dtype.is_float:
            values = np.trunc(values)
        return BatchedRegisterValue.from_thread_values(dtype, self.layout, values)

    def binary(self, op: str, other) -> "BatchedRegisterValue":
        a = self.thread_values()
        if isinstance(other, BatchedRegisterValue):
            if other.layout.num_threads != self.layout.num_threads or (
                other.layout.local_size != self.layout.local_size
            ):
                raise VMError("elementwise operands must have matching layouts")
            b = other.thread_values()
        elif isinstance(other, np.ndarray):
            b = other.reshape(-1, 1, 1)  # per-block scalar broadcast
        else:
            b = other
        result = apply_elementwise(self.dtype, op, a, b)
        return BatchedRegisterValue.from_thread_values(self.dtype, self.layout, result)

    def neg(self) -> "BatchedRegisterValue":
        return BatchedRegisterValue.from_thread_values(
            self.dtype, self.layout, -self.thread_values()
        )

    def merge_into(self, old: "BatchedRegisterValue", active: np.ndarray) -> "BatchedRegisterValue":
        """Keep this value for active blocks, ``old`` elsewhere."""
        bits = np.where(active[:, None, None], self.bits, old.bits)
        return BatchedRegisterValue(self.dtype, self.layout, bits)

    def __repr__(self) -> str:
        return f"BatchedRegisterValue({self.dtype}, {self.layout.short_repr()}, B={self.nblocks})"


class BatchedView:
    """Per-block typed windows into one flat byte buffer (bit addressing).

    ``base_bits[b]`` is the absolute bit address of element 0 for block
    ``b``.  Global views share the device buffer with uniform (or per-block)
    bases; shared views use one row per block inside a flat
    :class:`BatchedSharedMemory` buffer.
    """

    def __init__(self, buffer: np.ndarray, base_bits, dtype, shape: tuple[int, ...]) -> None:
        self.buffer = buffer
        self.base_bits = np.asarray(base_bits, dtype=np.int64).reshape(-1)
        self.dtype = dtype
        self.shape = tuple(int(s) for s in shape)
        self.size = int(np.prod(self.shape)) if self.shape else 1

    @property
    def nblocks(self) -> int:
        return self.base_bits.shape[0]

    def _oob(self, exc: IndexError) -> VMError:
        return VMError(
            f"batched tensor view [{self.dtype}{list(self.shape)}] addresses "
            f"bytes outside its buffer ({len(self.buffer)} bytes): {exc}"
        )

    def _linear(self, indices: list) -> np.ndarray:
        if len(indices) != len(self.shape):
            raise VMError(
                f"rank mismatch: {len(indices)} indices for shape {list(self.shape)}"
            )
        linear = np.zeros_like(np.asarray(indices[0], dtype=np.int64))
        for idx, extent in zip(indices, self.shape):
            idx = np.asarray(idx, dtype=np.int64)
            if idx.size and (idx.min() < 0 or idx.max() >= extent):
                raise VMError(
                    f"index out of bounds: [{idx.min()}, {idx.max()}] not within "
                    f"[0, {extent}) for tensor {self.dtype}{list(self.shape)}"
                )
            linear = linear * extent + idx
        return linear

    def gather_bits(self, indices: list, where=None, clip: bool = False) -> np.ndarray:
        """Read bit patterns at per-block multi-indices of shape (B, n).

        ``where`` (broadcastable to (B, n)) neutralizes unselected entries
        to index 0 before bounds checking (their results are discarded by
        the caller); ``clip`` clamps all indices into range instead of
        checking (masked-load semantics).
        """
        if clip:
            indices = [np.clip(i, 0, e - 1) for i, e in zip(indices, self.shape)]
        elif where is not None:
            indices = [np.where(where, i, 0) for i in indices]
        linear = self._linear(indices)
        nbits = self.dtype.nbits
        bit_addr = self.base_bits[:, None] + linear * nbits
        try:
            if nbits % 8 == 0 and (self.base_bits % 8 == 0).all():
                byte_addr = bit_addr // 8
                out = np.zeros(linear.shape, dtype=np.uint64)
                for k in range(nbits // 8):
                    out |= self.buffer[byte_addr + k].astype(np.uint64) << np.uint64(8 * k)
                return out
            byte_addr = bit_addr // 8
            shift = (bit_addr % 8).astype(np.uint64)
            window = np.zeros(linear.shape, dtype=np.uint64)
            for k in range(8):
                window |= self.buffer[byte_addr + k].astype(np.uint64) << np.uint64(8 * k)
        except IndexError as exc:
            raise self._oob(exc) from exc
        mask = np.uint64((1 << nbits) - 1)
        return (window >> shift) & mask

    def scatter_bits(self, indices: list, patterns: np.ndarray, select=None) -> None:
        """Write bit patterns at per-block multi-indices of shape (B, n).

        ``select`` is a boolean (B, n) mask choosing which elements are
        written (inactive blocks, masked-out lanes).  Flattening is
        block-major, so overlapping writes resolve in the same order as
        sequential per-block execution.
        """
        shape2d = np.broadcast(np.asarray(indices[0]), self.base_bits[:, None]).shape
        if select is None:
            select = np.ones(shape2d, dtype=bool)
        else:
            select = np.broadcast_to(select, shape2d)
        if not select.any():
            return
        idx_flat = [np.broadcast_to(np.asarray(i, dtype=np.int64), shape2d)[select] for i in indices]
        base_flat = np.broadcast_to(self.base_bits[:, None], shape2d)[select]
        pat_flat = np.broadcast_to(np.asarray(patterns, dtype=np.uint64), shape2d)[select]
        linear = self._linear(idx_flat)
        nbits = self.dtype.nbits
        bit_addr = base_flat + linear * nbits
        try:
            if nbits % 8 == 0 and (self.base_bits % 8 == 0).all():
                byte_addr = bit_addr // 8
                for k in range(nbits // 8):
                    self.buffer[byte_addr + k] = (
                        (pat_flat >> np.uint64(8 * k)) & np.uint64(0xFF)
                    ).astype(np.uint8)
                return
            # Sub-byte path: per-bit read-modify-write.  Deduplicate to the
            # *last* writer per bit position (block-major order), then a
            # single unbuffered clear+set per bit is exact.
            offsets = np.arange(nbits, dtype=np.int64)
            pos = (bit_addr[:, None] + offsets).reshape(-1)
            bit_vals = (
                (pat_flat[:, None] >> offsets.astype(np.uint64)) & np.uint64(1)
            ).astype(np.uint8).reshape(-1)
            rev = pos[::-1]
            _, first_in_rev = np.unique(rev, return_index=True)
            keep = pos.shape[0] - 1 - first_in_rev
            pos_u = pos[keep]
            val_u = bit_vals[keep]
            byte_idx = pos_u // 8
            bit_in_byte = (pos_u % 8).astype(np.uint8)
            np.bitwise_and.at(self.buffer, byte_idx, ~(np.uint8(1) << bit_in_byte))
            np.bitwise_or.at(self.buffer, byte_idx, val_u << bit_in_byte)
        except IndexError as exc:
            raise self._oob(exc) from exc

    def merge_into(self, old: "BatchedView", active: np.ndarray) -> "BatchedView":
        if old.buffer is not self.buffer:
            raise VMError("cannot merge views over different buffers")
        base = np.where(active, self.base_bits, old.base_bits)
        return BatchedView(self.buffer, base, self.dtype, self.shape)


class BatchedSharedMemory:
    """Per-block shared memories packed as rows of one flat buffer.

    Row ``b`` spans ``[b * row_bytes, (b + 1) * row_bytes)`` with an 8-byte
    guard at the end of each row so sub-byte window reads never cross into
    the next block's row.
    """

    def __init__(self, nblocks: int, capacity_bytes: int = 228 * 1024) -> None:
        self.nblocks = nblocks
        self.capacity = capacity_bytes
        self.row_bytes = capacity_bytes + 8
        # The backing buffer is created lazily on the first allocation:
        # most kernels on the hot launch path never touch shared memory,
        # and nblocks * 228KB of zeroed pages per launch is not free.
        self.buffer: np.ndarray | None = None
        self.row_base_bits = np.arange(nblocks, dtype=np.int64) * self.row_bytes * 8
        self._next = np.zeros(nblocks, dtype=np.int64)
        self.high_water = 0

    def alloc(self, nbytes: int, active: np.ndarray) -> np.ndarray:
        """Bump-allocate ``nbytes`` in every active block; returns (B,) byte
        offsets within each block's row (stale for inactive blocks)."""
        if self.buffer is None:
            self.buffer = np.zeros(self.nblocks * self.row_bytes, dtype=np.uint8)
        aligned = (int(nbytes) + 15) // 16 * 16
        addr = self._next.copy()
        grown = self._next + aligned
        if bool((active & (grown > self.capacity)).any()):
            free = self.capacity - int(self._next[active].max())
            raise VMError(
                f"shared memory exhausted: requested {nbytes} B, "
                f"{free} B free of {self.capacity} B"
            )
        self._next = np.where(active, grown, self._next)
        self.high_water = max(self.high_water, int(self._next.max()))
        return addr


class BatchedContext:
    """Lockstep state of all thread blocks during one launch."""

    def __init__(self, executor: "BatchedExecutor", nblocks: int, coords: tuple) -> None:
        self.executor = executor
        self.nblocks = nblocks
        self.block_coords = coords  # one (B,) array per grid dimension
        self.env: dict[Var, object] = dict(executor.launch_env)
        self.shared = BatchedSharedMemory(nblocks, executor.shared_capacity)
        self.exited = np.zeros(nblocks, dtype=bool)
        self.pending_copy_count = 0
        self.committed_group_sizes: list[int] = []
        #: Per-block buffered ``PrintTensor`` output, flushed in block
        #: order when the launch retires (created on first print).
        self.prints: list[list[str]] | None = None

    def lookup_tensor(self, var: TensorVar):
        value = self.env.get(var)
        if value is None:
            raise VMError(f"tensor {var.name} used before definition")
        return value


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class BatchedExecutor:
    """Executes Tilus programs with all thread blocks stacked on one axis.

    Shares :class:`~repro.vm.interp.ExecutionStats` semantics with the
    sequential engine: every counter advances exactly as if the blocks had
    run one at a time.
    """

    def __init__(
        self,
        memory: GlobalMemory | None = None,
        shared_capacity: int = 228 * 1024,
        stats: ExecutionStats | None = None,
        stdout=None,
    ) -> None:
        self.memory = memory if memory is not None else GlobalMemory()
        self.shared_capacity = shared_capacity
        self.stats = stats if stats is not None else ExecutionStats()
        self.launch_env: dict[Var, object] = {}
        self._break_stack: list[np.ndarray] = []
        self._stdout = stdout

    # -- host-side helpers (same API as the sequential engine) -------------
    def upload(self, values: np.ndarray, dtype) -> int:
        from repro.vm.interp import Interpreter

        return Interpreter.upload(self, values, dtype)  # type: ignore[arg-type]

    def alloc_output(self, shape: Sequence[int], dtype) -> int:
        from repro.vm.interp import Interpreter

        return Interpreter.alloc_output(self, shape, dtype)  # type: ignore[arg-type]

    def download(self, addr: int, shape: Sequence[int], dtype) -> np.ndarray:
        from repro.vm.interp import Interpreter

        return Interpreter.download(self, addr, shape, dtype)  # type: ignore[arg-type]

    # -- launch ------------------------------------------------------------
    def launch(self, program: Program, args: Sequence) -> ExecutionStats:
        """Run all thread blocks of ``program`` in lockstep."""
        if len(args) != len(program.params):
            raise VMError(
                f"{program.name} expects {len(program.params)} args, got {len(args)}"
            )
        self.launch_env = {p: a for p, a in zip(program.params, args)}
        grid = program.grid_size(args)
        nblocks = int(np.prod(grid)) if grid else 1
        coords = tuple(decompose_linear(tuple(grid)))
        return self._execute(program, nblocks, coords)

    def launch_many(self, program: Program, args_list: Sequence[Sequence]) -> ExecutionStats:
        """Run several independent launches of one program as a single
        stacked grid.

        All launches must share the same grid shape; any parameter may
        differ per launch — differing values (pointers or scalars) are
        bound as per-block arrays, exactly like block-varying scalars.
        The stacked block order is launch-major, so memory effects,
        ``AllocateGlobal`` addresses and buffered prints all match the
        launches running back to back.  Callers are responsible for the
        launches being independent (no cross-launch read/write hazards);
        the stream runtime only coalesces launches it has proven disjoint.
        """
        if not args_list:
            return self.stats
        if len(args_list) == 1:
            return self.launch(program, args_list[0])
        for args in args_list:
            if len(args) != len(program.params):
                raise VMError(
                    f"{program.name} expects {len(program.params)} args, got {len(args)}"
                )
        grids = {program.grid_size(args) for args in args_list}
        if len(grids) != 1:
            raise VMError(
                f"launch_many requires one grid shape, got {sorted(grids)}"
            )
        grid = next(iter(grids))
        per_launch = int(np.prod(grid)) if grid else 1
        nlaunches = len(args_list)
        env: dict[Var, object] = {}
        for i, p in enumerate(program.params):
            values = [args[i] for args in args_list]
            if all(v == values[0] for v in values[1:]) or nlaunches == 1:
                env[p] = values[0]
            else:
                stacked = np.asarray(
                    values, dtype=np.float64 if p.dtype.is_float else np.int64
                )
                env[p] = np.repeat(stacked, per_launch)
        self.launch_env = env
        coords = tuple(
            np.tile(c, nlaunches) for c in decompose_linear(tuple(grid))
        )
        return self._execute(program, per_launch * nlaunches, coords)

    def _execute(self, program: Program, nblocks: int, coords: tuple) -> ExecutionStats:
        ctx = BatchedContext(self, nblocks, coords)
        self.stats.blocks_run += nblocks
        active = np.ones(nblocks, dtype=bool)
        self._break_stack = []
        self._run_stmt(program.body, ctx, active)
        self._flush_prints(ctx)
        return self.stats

    def _flush_prints(self, ctx: "BatchedContext") -> None:
        """Emit buffered per-block print output in block order (block
        retire order), matching the sequential engine's interleaving."""
        if ctx.prints is None:
            return
        for texts in ctx.prints:
            for text in texts:
                if self._stdout is not None:
                    self._stdout.write(text + "\n")
                else:
                    print(text)

    # -- statement execution (SIMT reconvergence) ---------------------------
    def _run_stmt(self, stmt: Stmt, ctx: BatchedContext, active: np.ndarray) -> np.ndarray:
        """Execute ``stmt`` under ``active``; returns the still-live mask."""
        if isinstance(stmt, SeqStmt):
            live = active
            for child in stmt.body:
                if not live.any():
                    break
                live = self._run_stmt(child, ctx, live)
            return live
        if isinstance(stmt, InstructionStmt):
            self.stats.instructions += int(active.sum())
            BATCHED.lookup(stmt.instruction)(self, stmt.instruction, ctx, active)
            return active & ~ctx.exited
        if isinstance(stmt, AssignStmt):
            value = batched_evaluate(stmt.value, ctx.env, active)
            self._bind_scalar(ctx, stmt.var, value, active)
            return active
        if isinstance(stmt, IfStmt):
            cond = batched_evaluate(stmt.cond, ctx.env, active)
            if not _is_arr(cond):
                if cond:
                    return self._run_stmt(stmt.then_body, ctx, active)
                if stmt.else_body is not None:
                    return self._run_stmt(stmt.else_body, ctx, active)
                return active
            cmask = _as_mask(cond, ctx.nblocks)
            then_mask = active & cmask
            else_mask = active & ~cmask
            then_live = (
                self._run_stmt(stmt.then_body, ctx, then_mask)
                if then_mask.any()
                else then_mask
            )
            else_live = (
                self._run_stmt(stmt.else_body, ctx, else_mask)
                if stmt.else_body is not None and else_mask.any()
                else else_mask
            )
            return then_live | else_live
        if isinstance(stmt, ForStmt):
            extent = batched_evaluate(stmt.extent, ctx.env, active)
            if _is_arr(extent):
                extent = extent.astype(np.int64)
            else:
                extent = int(extent)
            broken = np.zeros(ctx.nblocks, dtype=bool)
            self._break_stack.append(broken)
            i = 0
            while True:
                iter_active = active & ~ctx.exited & ~broken & (i < extent)
                if not iter_active.any():
                    break
                # Bind per block: a block whose extent is exhausted keeps
                # its own last iteration value, exactly as sequential
                # execution leaves the loop variable behind.
                self._bind_scalar(ctx, stmt.var, i, iter_active)
                self._run_stmt(stmt.body, ctx, iter_active)
                i += 1
            self._break_stack.pop()
            return active & ~ctx.exited
        if isinstance(stmt, WhileStmt):
            broken = np.zeros(ctx.nblocks, dtype=bool)
            done = np.zeros(ctx.nblocks, dtype=bool)
            self._break_stack.append(broken)
            while True:
                base = active & ~ctx.exited & ~broken & ~done
                if not base.any():
                    break
                cmask = _as_mask(batched_evaluate(stmt.cond, ctx.env, base), ctx.nblocks)
                done |= base & ~cmask
                iter_active = base & cmask
                if not iter_active.any():
                    break
                self._run_stmt(stmt.body, ctx, iter_active)
            self._break_stack.pop()
            return active & ~ctx.exited
        if isinstance(stmt, BreakStmt):
            if not self._break_stack:
                raise VMError("break outside of a loop")
            self._break_stack[-1] |= active
            return np.zeros_like(active)
        if isinstance(stmt, ContinueStmt):
            # Continue just kills the rest of this iteration; the loop head
            # recomputes the next iteration's mask from the loop-entry mask,
            # so continued blocks rejoin automatically.
            return np.zeros_like(active)
        raise VMError(f"unknown statement {type(stmt).__name__}")

    # -- environment merging -----------------------------------------------
    def _bind_scalar(self, ctx: BatchedContext, var: Var, value, active: np.ndarray) -> None:
        if bool(active.all()):
            ctx.env[var] = value
            return
        old = ctx.env.get(var)
        if old is None:
            ctx.env[var] = value
            return
        ctx.env[var] = np.where(active, value, old)

    def _bind_tensor(self, ctx: BatchedContext, var: TensorVar, value, active: np.ndarray) -> None:
        if bool(active.all()):
            ctx.env[var] = value
            return
        old = ctx.env.get(var)
        if old is None:
            ctx.env[var] = value
            return
        ctx.env[var] = value.merge_into(old, active)


# ---------------------------------------------------------------------------
# Batched instruction handlers
# ---------------------------------------------------------------------------


def _tile_indices(
    layout, offsets, ctx: BatchedContext, active, broadcast_dims=frozenset()
) -> list:
    """Per-block (B, n) memory indices touched by a register tile.

    Padding/broadcast semantics come from the shared
    :func:`repro.vm.dispatch.pad_tile_indices`; the only batched-specific
    part is evaluating each offset into a (B, 1) column so the shared
    helper broadcasts it against the (n,) tile coordinates.
    """
    coords = layout_tile_coords(layout)
    origin = [_as_col(batched_evaluate(o, ctx.env, active), ctx.nblocks) for o in offsets]
    return pad_tile_indices(coords, origin, broadcast_dims)


@BATCHED.register(insts.BlockIndices)
def _bexec_block_indices(vm, inst: insts.BlockIndices, ctx: BatchedContext, active) -> None:
    if len(inst.out_vars) != len(ctx.block_coords):
        raise VMError(
            f"BlockIndices unpacks {len(inst.out_vars)} values but the grid "
            f"has rank {len(ctx.block_coords)}"
        )
    for var, arr in zip(inst.out_vars, ctx.block_coords):
        ctx.env[var] = arr


@BATCHED.register(insts.ViewGlobal)
def _bexec_view_global(vm, inst: insts.ViewGlobal, ctx: BatchedContext, active) -> None:
    ptr = batched_evaluate(inst.ptr, ctx.env, active)
    ttype = inst.out.ttype
    shape = []
    for s in ttype.shape:
        if hasattr(s, "dtype"):
            v = batched_evaluate(s, ctx.env, active)
            if _is_arr(v):
                uniq = np.unique(v[active]) if active.any() else np.unique(v)
                if uniq.size > 1:
                    raise VMError(
                        "batched engine requires uniform global view shapes; "
                        f"got extents {uniq.tolist()} across blocks"
                    )
                v = int(uniq[0]) if uniq.size else 0
            shape.append(int(v))
        else:
            shape.append(int(s))
    shape = tuple(shape)
    base = np.where(active, _as_col(ptr, ctx.nblocks).reshape(-1) * 8, 0)
    size = int(np.prod(shape)) if shape else 1
    limit = (len(vm.memory.buffer) - 8) * 8
    end = base + size * ttype.dtype.nbits
    if bool((base < 0).any()):
        raise VMError(
            f"tensor view [{ttype.dtype}{list(shape)}] starts before the "
            f"buffer: bit offset {int(base.min())} is negative"
        )
    if bool((end > limit).any()):
        raise VMError(
            f"tensor view [{ttype.dtype}{list(shape)}] at bit offset "
            f"{int(base[end > limit][0])} exceeds its buffer: needs "
            f"{int(end.max())} bits, buffer has {limit}"
        )
    view = BatchedView(vm.memory.buffer, base, ttype.dtype, shape)
    vm._bind_tensor(ctx, inst.out, view, active)


@BATCHED.register(insts.AllocateRegister)
def _bexec_allocate_register(vm, inst: insts.AllocateRegister, ctx: BatchedContext, active) -> None:
    ttype = inst.out.ttype
    if inst.init is not None:
        value = BatchedRegisterValue.filled(ttype.dtype, ttype.layout, inst.init, ctx.nblocks)
    else:
        value = BatchedRegisterValue.zeros(ttype.dtype, ttype.layout, ctx.nblocks)
    vm._bind_tensor(ctx, inst.out, value, active)


@BATCHED.register(insts.AllocateShared)
def _bexec_allocate_shared(vm, inst: insts.AllocateShared, ctx: BatchedContext, active) -> None:
    ttype = inst.out.ttype
    shape = ttype.static_shape()
    if shape is None:
        raise VMError("shared tensors require static shapes")
    nbytes = (int(np.prod(shape)) * ttype.dtype.nbits + 7) // 8
    addr = ctx.shared.alloc(nbytes, active)
    base_bits = ctx.shared.row_base_bits + addr * 8
    view = BatchedView(ctx.shared.buffer, base_bits, ttype.dtype, shape)
    vm._bind_tensor(ctx, inst.out, view, active)


@BATCHED.register(insts.FreeShared)
def _bexec_free_shared(vm, inst: insts.FreeShared, ctx: BatchedContext, active) -> None:
    ctx.env.pop(inst.tensor, None)


@BATCHED.register(insts.AllocateGlobal)
def _bexec_allocate_global(vm, inst: insts.AllocateGlobal, ctx: BatchedContext, active) -> None:
    ttype = inst.out.ttype
    shape = ttype.static_shape()
    if shape is None:
        raise VMError("workspace tensors require static shapes")
    nbytes = (int(np.prod(shape)) * ttype.dtype.nbits + 7) // 8
    addrs = np.zeros(ctx.nblocks, dtype=np.int64)
    idx = np.flatnonzero(active)
    if idx.size:
        # One vectorized reservation covering every active block, in block
        # order — the same addresses a per-block alloc loop (and the
        # sequential engine's block loop) would assign.
        addrs[idx] = vm.memory.alloc_n(nbytes, idx.size)
    view = BatchedView(vm.memory.buffer, addrs * 8, ttype.dtype, shape)
    vm._bind_tensor(ctx, inst.out, view, active)


# transfer ------------------------------------------------------------------


def _load(vm, inst, ctx: BatchedContext, active, shared: bool) -> None:
    src: BatchedView = ctx.lookup_tensor(inst.src)
    layout = inst.out.ttype.layout
    indices = _tile_indices(layout, inst.offset, ctx, active, inst.broadcast_dims)
    if getattr(inst, "masked", False):
        valid = bounds_mask(indices, src.shape)
        patterns = src.gather_bits(indices, clip=True)
        patterns = np.where(valid, patterns, np.uint64(0))
    else:
        patterns = src.gather_bits(indices, where=active[:, None])
    patterns = patterns.reshape(ctx.nblocks, layout.num_threads, layout.local_size)
    count = int(active.sum())
    if shared:
        vm.stats.shared_bits_loaded += layout.size * src.dtype.nbits * count
    else:
        vm.stats.global_bits_loaded += layout.size * src.dtype.nbits * count
    value = BatchedRegisterValue.from_patterns(inst.out.ttype.dtype, layout, patterns)
    vm._bind_tensor(ctx, inst.out, value, active)


@BATCHED.register(insts.LoadGlobal)
def _bexec_load_global(vm, inst: insts.LoadGlobal, ctx: BatchedContext, active) -> None:
    _load(vm, inst, ctx, active, shared=False)


@BATCHED.register(insts.LoadShared)
def _bexec_load_shared(vm, inst: insts.LoadShared, ctx: BatchedContext, active) -> None:
    _load(vm, inst, ctx, active, shared=True)


@BATCHED.register(insts.StoreGlobal)
def _bexec_store_global(vm, inst: insts.StoreGlobal, ctx: BatchedContext, active) -> None:
    value: BatchedRegisterValue = ctx.lookup_tensor(inst.src)
    dst: BatchedView = ctx.lookup_tensor(inst.dst)
    indices = _tile_indices(value.layout, inst.offset, ctx, active)
    patterns = value.thread_patterns().reshape(ctx.nblocks, -1)
    n = patterns.shape[1]
    select = np.broadcast_to(active[:, None], (ctx.nblocks, n))
    if inst.masked:
        valid = bounds_mask(indices, dst.shape)
        select = select & valid
        counted = int((active & valid.any(axis=1)).sum())
    else:
        counted = int(active.sum())
    dst.scatter_bits(indices, patterns, select=select)
    vm.stats.global_bits_stored += value.layout.size * dst.dtype.nbits * counted


@BATCHED.register(insts.StoreShared)
def _bexec_store_shared(vm, inst: insts.StoreShared, ctx: BatchedContext, active) -> None:
    value: BatchedRegisterValue = ctx.lookup_tensor(inst.src)
    dst: BatchedView = ctx.lookup_tensor(inst.dst)
    indices = _tile_indices(value.layout, inst.offset, ctx, active)
    patterns = value.thread_patterns().reshape(ctx.nblocks, -1)
    select = np.broadcast_to(active[:, None], (ctx.nblocks, patterns.shape[1]))
    dst.scatter_bits(indices, patterns, select=select)
    vm.stats.shared_bits_stored += value.layout.size * dst.dtype.nbits * int(active.sum())


@BATCHED.register(insts.CopyAsync)
def _bexec_copy_async(vm, inst: insts.CopyAsync, ctx: BatchedContext, active) -> None:
    src: BatchedView = ctx.lookup_tensor(inst.src)
    dst: BatchedView = ctx.lookup_tensor(inst.dst)
    shape = inst.copy_shape()
    size = int(np.prod(shape))
    idx = decompose_linear(tuple(shape))
    src_origin = [_as_col(batched_evaluate(o, ctx.env, active), ctx.nblocks) for o in inst.src_offset]
    dst_origin = [_as_col(batched_evaluate(o, ctx.env, active), ctx.nblocks) for o in inst.dst_offset]
    zero = np.zeros(size, dtype=np.int64)
    src_full = [zero] * (len(src_origin) - len(idx)) + idx
    dst_full = [zero] * (len(dst_origin) - len(idx)) + idx
    src_idx = [f[None, :] + o for f, o in zip(src_full, src_origin)]
    dst_idx = [f[None, :] + o for f, o in zip(dst_full, dst_origin)]
    # cp.async zero-fills out-of-bounds source elements (zfill semantics).
    valid = bounds_mask(src_idx, src.shape)
    patterns = np.where(valid, src.gather_bits(src_idx, clip=True), np.uint64(0))
    select = np.broadcast_to(active[:, None], (ctx.nblocks, size))
    dst.scatter_bits(dst_idx, patterns, select=select)
    count = int(active.sum())
    ctx.pending_copy_count += 1
    vm.stats.copy_async_issued += count
    vm.stats.global_bits_loaded += size * src.dtype.nbits * count


@BATCHED.register(insts.CopyAsyncCommitGroup)
def _bexec_copy_async_commit(vm, inst, ctx: BatchedContext, active) -> None:
    ctx.committed_group_sizes.append(ctx.pending_copy_count)
    ctx.pending_copy_count = 0


@BATCHED.register(insts.CopyAsyncWaitGroup)
def _bexec_copy_async_wait(vm, inst: insts.CopyAsyncWaitGroup, ctx: BatchedContext, active) -> None:
    while len(ctx.committed_group_sizes) > inst.n:
        ctx.committed_group_sizes.pop(0)


# computation ---------------------------------------------------------------


@BATCHED.register(insts.ElementwiseBinary)
def _bexec_elementwise_binary(vm, inst: insts.ElementwiseBinary, ctx: BatchedContext, active) -> None:
    a: BatchedRegisterValue = ctx.lookup_tensor(inst.a)
    if isinstance(inst.b, TensorVar):
        b = ctx.lookup_tensor(inst.b)
    else:
        b = batched_evaluate(inst.b, ctx.env, active)
    vm._bind_tensor(ctx, inst.out, a.binary(inst.op, b), active)


@BATCHED.register(insts.Neg)
def _bexec_neg(vm, inst: insts.Neg, ctx: BatchedContext, active) -> None:
    vm._bind_tensor(ctx, inst.out, ctx.lookup_tensor(inst.a).neg(), active)


@BATCHED.register(insts.Cast)
def _bexec_cast(vm, inst: insts.Cast, ctx: BatchedContext, active) -> None:
    vm._bind_tensor(ctx, inst.out, ctx.lookup_tensor(inst.a).cast(inst.dtype), active)


@BATCHED.register(insts.ReduceSum)
def _bexec_reduce_sum(vm, inst: insts.ReduceSum, ctx: BatchedContext, active) -> None:
    value: BatchedRegisterValue = ctx.lookup_tensor(inst.a)
    logical = value.to_logical()
    reduced = logical.sum(axis=inst.axis + 1, keepdims=True)
    out_t = inst.out.ttype
    vm._bind_tensor(
        ctx, inst.out, BatchedRegisterValue.from_logical(out_t.dtype, out_t.layout, reduced), active
    )


@BATCHED.register(insts.Lookup)
def _bexec_lookup(vm, inst: insts.Lookup, ctx: BatchedContext, active) -> None:
    codes: BatchedRegisterValue = ctx.lookup_tensor(inst.codes)
    table = ctx.lookup_tensor(inst.table)
    indices = codes.thread_values().astype(np.int64)
    flat = indices.reshape(ctx.nblocks, -1)
    safe = np.where(active[:, None], flat, 0)
    if isinstance(table, BatchedRegisterValue):
        logical = table.to_logical()  # (B, extent)
        extent = logical.shape[1]
        act = safe[active]
        if act.size and (act.min() < 0 or act.max() >= extent):
            raise VMError(
                f"lookup code {int(act.max())} exceeds table of {extent}"
            )
        bidx = np.arange(ctx.nblocks, dtype=np.int64)[:, None]
        # Clipping only neutralizes inactive blocks' garbage codes; active
        # codes were just bounds-checked above.
        values = logical[bidx, np.clip(safe, 0, extent - 1)]
    else:
        extent = table.shape[0]
        act = safe[active]
        if act.size and (act.min() < 0 or act.max() >= extent):
            raise VMError(
                f"lookup code {int(act.max())} exceeds table of {extent}"
            )
        bits = table.gather_bits([safe])
        values = table.dtype.from_bits(bits.reshape(-1)).reshape(safe.shape)
    out_t = inst.out.ttype
    vm._bind_tensor(
        ctx,
        inst.out,
        BatchedRegisterValue.from_thread_values(
            out_t.dtype, out_t.layout, values.reshape(indices.shape)
        ),
        active,
    )


@BATCHED.register(insts.View)
def _bexec_view(vm, inst: insts.View, ctx: BatchedContext, active) -> None:
    out_t = inst.out.ttype
    vm._bind_tensor(
        ctx, inst.out, ctx.lookup_tensor(inst.a).view(out_t.dtype, out_t.layout), active
    )


@BATCHED.register(insts.Dot)
def _bexec_dot(vm, inst: insts.Dot, ctx: BatchedContext, active) -> None:
    a = ctx.lookup_tensor(inst.a).to_logical()
    b = ctx.lookup_tensor(inst.b).to_logical()
    c = ctx.lookup_tensor(inst.c).to_logical()
    result = a.astype(np.float64) @ b.astype(np.float64) + c
    out_t = inst.out.ttype
    vm._bind_tensor(
        ctx, inst.out, BatchedRegisterValue.from_logical(out_t.dtype, out_t.layout, result), active
    )
    vm.stats.dot_ops += a.shape[1] * a.shape[2] * b.shape[2] * int(active.sum())


# misc ----------------------------------------------------------------------


@BATCHED.register(insts.Synchronize)
def _bexec_synchronize(vm, inst, ctx: BatchedContext, active) -> None:
    vm.stats.synchronizations += int(active.sum())


@BATCHED.register(insts.Exit)
def _bexec_exit(vm, inst, ctx: BatchedContext, active) -> None:
    ctx.exited |= active


@BATCHED.register(insts.PrintTensor)
def _bexec_print_tensor(vm, inst: insts.PrintTensor, ctx: BatchedContext, active) -> None:
    # Rendered now (per-block state at this lockstep point), flushed in
    # block order at launch retire — see BatchedExecutor._flush_prints.
    from repro.vm.memory import TensorView

    if ctx.prints is None:
        ctx.prints = [[] for _ in range(ctx.nblocks)]
    value = ctx.lookup_tensor(inst.tensor)
    prefix = f"{inst.message}: " if inst.message else ""
    if isinstance(value, BatchedRegisterValue):
        logical = value.to_logical()
        for b in np.flatnonzero(active):
            ctx.prints[b].append(f"{prefix}{inst.tensor.name} =\n{logical[b]}")
    else:
        for b in np.flatnonzero(active):
            view = TensorView(
                value.buffer, int(value.base_bits[b]), value.dtype, value.shape
            )
            ctx.prints[b].append(f"{prefix}{inst.tensor.name} =\n{view.read_all()}")


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------


_BATCHABLE_ATTR = "_supports_batched"


def _uniform_view_shapes(program: Program) -> bool:
    """True when every ``ViewGlobal`` shape is block-invariant.

    A shape expression built only from constants and program parameters is
    the same for every block; one referencing any other scalar (a block
    index, a loop variable) may vary per block, which lockstep execution
    cannot represent as a single tensor view.
    """
    params = set(program.params)
    for inst in program.body.instructions():
        if not isinstance(inst, insts.ViewGlobal):
            continue
        for extent in inst.out.ttype.shape:
            if not isinstance(extent, Expr):
                continue
            for node in extent.walk():
                if isinstance(node, Var) and node not in params:
                    return False
    return True


def supports_batched(program: Program) -> bool:
    """True when the batched engine can execute ``program``: every
    instruction has a batched handler and all global view shapes are
    block-invariant (memoized — this sits on the launch path).
    ``PrintTensor`` programs batch too (per-block buffered output)."""
    cached = program.__dict__.get(_BATCHABLE_ATTR)
    if cached is None:
        cached = all(
            BATCHED.supports(i) for i in program.body.instructions()
        ) and _uniform_view_shapes(program)
        program.__dict__[_BATCHABLE_ATTR] = cached
    return cached


def select_engine(program: Program, grid: Sequence[int]) -> str:
    """The ``engine="auto"`` policy: batched for multi-block grids of
    batchable programs, sequential otherwise (see module docstring)."""
    nblocks = int(np.prod(grid)) if len(tuple(grid)) else 1
    if nblocks > 1 and supports_batched(program):
        return "batched"
    return "sequential"
