"""Handler-table dispatch for VM execution engines.

Both execution engines — the sequential :class:`~repro.vm.interp.Interpreter`
and the grid-vectorized :class:`~repro.vm.batched.BatchedExecutor` — execute
the same thread-block-level instruction set (paper Table 1) but with very
different inner loops.  Instead of a per-instruction ``if``/``elif`` chain
(or reflective ``getattr`` lookups) inside each engine, every engine owns a
:class:`DispatchTable` mapping instruction classes to handler functions.
Handlers are plain module-level functions registered with a decorator::

    SEQUENTIAL = DispatchTable("sequential")

    @SEQUENTIAL.register(insts.LoadGlobal)
    def _exec_load_global(vm, inst, ctx):
        ...

This keeps the instruction set open for extension (a new instruction brings
its own handlers) and makes "which engine supports what" a first-class,
inspectable property instead of an accident of method naming.

The module also holds the index-math helpers shared by both engines:
per-layout tile coordinates (cached per layout instance, since the mapping
is launch-invariant) and row-major linear-index decomposition.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.errors import VMError
from repro.ir import instructions as insts

#: Cache attribute stashed on Layout instances; the (thread, local) -> index
#: tables are pure functions of the layout and dominate interpreter time
#: when recomputed on every load/store.
_COORDS_ATTR = "_vm_tile_coords"


class DispatchTable:
    """Maps instruction classes to handler callables for one engine.

    Handlers take ``(vm, inst, ctx)`` for the sequential engine and
    ``(vm, inst, ctx, active)`` for the batched engine; the table itself is
    agnostic — it only stores and looks up callables.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._handlers: dict[type, Callable] = {}

    def register(self, *inst_classes: type) -> Callable:
        """Decorator: bind a handler to one or more instruction classes."""

        def decorate(fn: Callable) -> Callable:
            for cls in inst_classes:
                if not (isinstance(cls, type) and issubclass(cls, insts.Instruction)):
                    raise TypeError(f"{cls!r} is not an Instruction class")
                if cls in self._handlers:
                    raise ValueError(
                        f"duplicate {self.name} handler for {cls.__name__}"
                    )
                self._handlers[cls] = fn
            return fn

        return decorate

    def lookup(self, inst: insts.Instruction) -> Callable:
        """The handler for ``inst``, or raise :class:`VMError`."""
        handler = self._handlers.get(type(inst))
        if handler is None:
            raise VMError(
                f"no {self.name} handler for instruction {type(inst).__name__}"
            )
        return handler

    def supports(self, inst: insts.Instruction) -> bool:
        return type(inst) in self._handlers

    def instruction_classes(self) -> Iterable[type]:
        return self._handlers.keys()

    def __len__(self) -> int:
        return len(self._handlers)

    def __repr__(self) -> str:
        return f"DispatchTable({self.name!r}, {len(self)} handlers)"


#: Dispatch table of the sequential interpreter (populated by repro.vm.interp).
SEQUENTIAL = DispatchTable("sequential")

#: Dispatch table of the grid-vectorized executor (populated by
#: repro.vm.batched).
BATCHED = DispatchTable("batched")


# ---------------------------------------------------------------------------
# Index-math helpers shared by both engines
# ---------------------------------------------------------------------------


def layout_tile_coords(layout) -> list[np.ndarray]:
    """Logical coordinates touched by one register tile, flattened.

    Returns one int64 array of length ``num_threads * local_size`` per
    tensor dimension, ordered (thread-major, local-minor) — the order both
    engines use for gather/scatter and pattern reshapes.  Cached on the
    layout instance: the mapping depends only on the layout.
    """
    cached = getattr(layout, _COORDS_ATTR, None)
    if cached is not None:
        return cached
    t = np.repeat(np.arange(layout.num_threads), layout.local_size)
    i = np.tile(np.arange(layout.local_size), layout.num_threads)
    coords = [
        np.ascontiguousarray(np.broadcast_to(c, t.shape), dtype=np.int64)
        for c in layout.map_batch(t, i)
    ]
    try:
        setattr(layout, _COORDS_ATTR, coords)
    except AttributeError:
        pass  # layouts with __slots__ simply skip the cache
    return coords


def decompose_linear(shape: tuple[int, ...]) -> list[np.ndarray]:
    """Row-major multi-indices of every element of a ``shape`` tensor."""
    size = int(np.prod(shape)) if shape else 1
    linear = np.arange(size, dtype=np.int64)
    idx: list[np.ndarray] = []
    rem = linear
    for extent in reversed(shape):
        idx.append(rem % extent)
        rem = rem // extent
    idx.reverse()
    return idx


def bounds_mask(indices: list[np.ndarray], shape: tuple[int, ...]) -> np.ndarray:
    """Elementwise validity of multi-indices against ``shape``."""
    valid = np.ones(np.asarray(indices[0]).shape, dtype=bool)
    for idx, extent in zip(indices, shape):
        valid &= (idx >= 0) & (idx < extent)
    return valid


def pad_tile_indices(
    coords: list[np.ndarray],
    origin: list,
    broadcast_dims: frozenset[int] = frozenset(),
) -> list:
    """Combine tile coordinates with a (possibly lower-rank) tensor origin.

    When the register tile has lower rank than the memory tensor the tile
    addresses the trailing dimensions and the leading ones are fixed by the
    origin alone; dimensions in ``broadcast_dims`` ignore the tile
    coordinate entirely (scale-vector broadcast loads).  ``origin`` entries
    may be Python ints (sequential engine) or per-block arrays shaped to
    broadcast against the coordinates (batched engine).
    """
    pad = len(origin) - len(coords)
    if pad < 0:
        raise VMError(
            f"register tile rank {len(coords)} exceeds tensor rank {len(origin)}"
        )
    zero = np.zeros_like(coords[0])
    full = [zero] * pad + list(coords)
    return [
        (zero if d in broadcast_dims else c) + o
        for d, (c, o) in enumerate(zip(full, origin))
    ]
