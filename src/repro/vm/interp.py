"""The Tilus virtual machine interpreter (sequential engine).

Executes a :class:`~repro.ir.Program` over a simulated device: thread
blocks run sequentially (their semantics are independent), and inside a
block every instruction operates on whole tiles at once, mirroring the
thread-block-level (SIMB) execution model of paper Section 6.

The interpreter is *functionally* faithful — including bit-exact sub-byte
storage and register reinterpretation — while timing behaviour is the
domain of :mod:`repro.perf`.

Instruction semantics live in module-level handlers registered in the
:data:`repro.vm.dispatch.SEQUENTIAL` table; the class only owns statement
execution (control flow), launch bookkeeping and the host-side memory
helpers.  The grid-vectorized sibling engine is
:class:`repro.vm.batched.BatchedExecutor`, which shares this module's
semantics instruction by instruction (locked in by the differential test
harness under ``tests/harness``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import VMError
from repro.ir import instructions as insts
from repro.ir.evaluator import evaluate
from repro.ir.expr import Var
from repro.ir.program import Program
from repro.ir.stmt import (
    AssignStmt,
    BreakStmt,
    ContinueStmt,
    ForStmt,
    IfStmt,
    InstructionStmt,
    SeqStmt,
    Stmt,
    WhileStmt,
)
from repro.ir.types import TensorVar
from repro.vm.dispatch import (
    SEQUENTIAL,
    bounds_mask,
    decompose_linear,
    layout_tile_coords,
    pad_tile_indices,
)
from repro.vm.memory import GlobalMemory, SharedMemory, TensorView
from repro.vm.values import RegisterValue


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Exit(Exception):
    pass


class ExecutionStats:
    """Counters collected during interpretation (useful in tests and for
    sanity-checking the performance model's operation counts)."""

    def __init__(self) -> None:
        self.blocks_run = 0
        self.instructions = 0
        self.global_bits_loaded = 0
        self.global_bits_stored = 0
        self.shared_bits_loaded = 0
        self.shared_bits_stored = 0
        self.copy_async_issued = 0
        self.dot_ops = 0
        self.synchronizations = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy of all counters (for comparisons in tests)."""
        return {k: v for k, v in vars(self).items()}

    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        """Add ``other``'s counters into this object (for aggregating
        per-stream statistics); returns self."""
        for key, value in vars(other).items():
            setattr(self, key, getattr(self, key) + value)
        return self

    def __repr__(self) -> str:
        return (
            f"ExecutionStats(blocks={self.blocks_run}, insts={self.instructions}, "
            f"gld={self.global_bits_loaded}b, gst={self.global_bits_stored}b, "
            f"dots={self.dot_ops})"
        )


class BlockContext:
    """Mutable state of one thread block during interpretation."""

    def __init__(self, interpreter: "Interpreter", block_idx: tuple[int, ...]) -> None:
        self.interp = interpreter
        self.block_idx = block_idx
        self.env: dict[Var, object] = dict(interpreter.launch_env)
        self.shared = SharedMemory(capacity_bytes=interpreter.shared_capacity)
        self.pending_copies: list = []
        self.committed_groups: list = []

    def lookup_tensor(self, var: TensorVar):
        value = self.env.get(var)
        if value is None:
            raise VMError(f"tensor {var.name} used before definition")
        return value


class Interpreter:
    """Executes Tilus programs on a simulated device, block by block."""

    def __init__(
        self,
        memory: GlobalMemory | None = None,
        shared_capacity: int = 228 * 1024,
        stdout=None,
    ) -> None:
        self.memory = memory if memory is not None else GlobalMemory()
        self.shared_capacity = shared_capacity
        self.launch_env: dict[Var, object] = {}
        self.stats = ExecutionStats()
        self._stdout = stdout
        #: Buffered ``PrintTensor`` output for the launch in flight,
        #: flushed at launch retire (created on first print) — the same
        #: ordered-sink contract as the batched engine, so callers can
        #: capture either engine's prints by swapping ``stdout``.
        self._prints: list[str] | None = None

    # -- host-side helpers ---------------------------------------------------
    def upload(self, values: np.ndarray, dtype) -> int:
        """Encode a numpy array into device memory; returns the byte address."""
        values = np.asarray(values)
        nbytes = (values.size * dtype.nbits + 7) // 8
        addr = self.memory.alloc(nbytes)
        view = TensorView(self.memory.buffer, addr * 8, dtype, values.shape)
        view.write_all(values)
        return addr

    def alloc_output(self, shape: Sequence[int], dtype) -> int:
        """Allocate uninitialized device memory for an output tensor."""
        from repro.utils.indexmath import prod

        nbytes = (prod(shape) * dtype.nbits + 7) // 8
        return self.memory.alloc(nbytes)

    def download(self, addr: int, shape: Sequence[int], dtype) -> np.ndarray:
        """Decode a device tensor back into a numpy array."""
        view = TensorView(self.memory.buffer, addr * 8, dtype, tuple(shape))
        return view.read_all()

    # -- launch ------------------------------------------------------------------
    def launch(self, program: Program, args: Sequence) -> ExecutionStats:
        """Run all thread blocks of ``program`` with the given arguments."""
        if len(args) != len(program.params):
            raise VMError(
                f"{program.name} expects {len(program.params)} args, got {len(args)}"
            )
        self.launch_env = {p: a for p, a in zip(program.params, args)}
        grid = program.grid_size(args)
        nblocks = int(np.prod(grid)) if grid else 1
        coords = decompose_linear(tuple(grid))
        self._prints = None
        try:
            for linear in range(nblocks):
                ctx = BlockContext(self, tuple(int(c[linear]) for c in coords))
                self.stats.blocks_run += 1
                try:
                    self._run_stmt(program.body, ctx)
                except _Exit:
                    pass
        finally:
            self._flush_prints()
        return self.stats

    def _flush_prints(self) -> None:
        """Emit buffered print output in block (retire) order.  Blocks
        already run sequentially, so buffering changes nothing about the
        interleaving — it makes the launch's output atomic and routes it
        through the swappable ``stdout`` sink, mirroring
        :meth:`repro.vm.batched.BatchedExecutor._flush_prints`."""
        prints, self._prints = self._prints, None
        if prints is None:
            return
        for text in prints:
            if self._stdout is not None:
                self._stdout.write(text + "\n")
            else:
                print(text)

    # -- statement execution -----------------------------------------------------
    def _run_stmt(self, stmt: Stmt, ctx: BlockContext) -> None:
        if isinstance(stmt, SeqStmt):
            for child in stmt.body:
                self._run_stmt(child, ctx)
        elif isinstance(stmt, InstructionStmt):
            self.stats.instructions += 1
            self._run_instruction(stmt.instruction, ctx)
        elif isinstance(stmt, AssignStmt):
            ctx.env[stmt.var] = evaluate(stmt.value, ctx.env)
        elif isinstance(stmt, IfStmt):
            if evaluate(stmt.cond, ctx.env):
                self._run_stmt(stmt.then_body, ctx)
            elif stmt.else_body is not None:
                self._run_stmt(stmt.else_body, ctx)
        elif isinstance(stmt, ForStmt):
            extent = int(evaluate(stmt.extent, ctx.env))
            for i in range(extent):
                ctx.env[stmt.var] = i
                try:
                    self._run_stmt(stmt.body, ctx)
                except _Continue:
                    continue
                except _Break:
                    break
        elif isinstance(stmt, WhileStmt):
            while evaluate(stmt.cond, ctx.env):
                try:
                    self._run_stmt(stmt.body, ctx)
                except _Continue:
                    continue
                except _Break:
                    break
        elif isinstance(stmt, BreakStmt):
            raise _Break()
        elif isinstance(stmt, ContinueStmt):
            raise _Continue()
        else:
            raise VMError(f"unknown statement {type(stmt).__name__}")

    # -- instruction execution ------------------------------------------------------
    def _run_instruction(self, inst: insts.Instruction, ctx: BlockContext) -> None:
        SEQUENTIAL.lookup(inst)(self, inst, ctx)


# ---------------------------------------------------------------------------
# Sequential instruction handlers
# ---------------------------------------------------------------------------


def _tile_indices(layout, offset, ctx: BlockContext, broadcast_dims=frozenset()):
    """Global/shared indices touched by a register tile at ``offset``.

    When the register tile has lower rank than the memory tensor (e.g.
    a 1-D ``u8[96]`` tile stored into ``u8[K/BK, N/BN, 96]`` at
    ``offset=[bk, bj, 0]``), the tile addresses the trailing dimensions
    and the leading ones are fixed by the offset alone.  Dimensions in
    ``broadcast_dims`` ignore the tile coordinate entirely (scale-vector
    broadcast loads).
    """
    coords = layout_tile_coords(layout)
    origin = [int(evaluate(o, ctx.env)) for o in offset]
    return pad_tile_indices(coords, origin, broadcast_dims)


# tensor creation -------------------------------------------------------------


@SEQUENTIAL.register(insts.BlockIndices)
def _exec_block_indices(vm: Interpreter, inst: insts.BlockIndices, ctx: BlockContext) -> None:
    if len(inst.out_vars) != len(ctx.block_idx):
        raise VMError(
            f"BlockIndices unpacks {len(inst.out_vars)} values but the grid "
            f"has rank {len(ctx.block_idx)}"
        )
    for var, value in zip(inst.out_vars, ctx.block_idx):
        ctx.env[var] = value


@SEQUENTIAL.register(insts.ViewGlobal)
def _exec_view_global(vm: Interpreter, inst: insts.ViewGlobal, ctx: BlockContext) -> None:
    ptr = int(evaluate(inst.ptr, ctx.env))
    ttype = inst.out.ttype
    shape = tuple(
        int(evaluate(s, ctx.env)) if hasattr(s, "dtype") else int(s)
        for s in ttype.shape
    )
    ctx.env[inst.out] = TensorView(vm.memory.buffer, ptr * 8, ttype.dtype, shape)


@SEQUENTIAL.register(insts.AllocateRegister)
def _exec_allocate_register(
    vm: Interpreter, inst: insts.AllocateRegister, ctx: BlockContext
) -> None:
    ttype = inst.out.ttype
    if inst.init is not None:
        value = RegisterValue.filled(ttype.dtype, ttype.layout, inst.init)
    else:
        value = RegisterValue.zeros(ttype.dtype, ttype.layout)
    ctx.env[inst.out] = value


@SEQUENTIAL.register(insts.AllocateShared)
def _exec_allocate_shared(
    vm: Interpreter, inst: insts.AllocateShared, ctx: BlockContext
) -> None:
    ttype = inst.out.ttype
    shape = ttype.static_shape()
    if shape is None:
        raise VMError("shared tensors require static shapes")
    addr = ctx.shared.alloc((int(np.prod(shape)) * ttype.dtype.nbits + 7) // 8)
    ctx.env[inst.out] = TensorView(ctx.shared.buffer, addr * 8, ttype.dtype, shape)


@SEQUENTIAL.register(insts.FreeShared)
def _exec_free_shared(vm: Interpreter, inst: insts.FreeShared, ctx: BlockContext) -> None:
    # The VM gives each block fresh shared buffers; reuse is the
    # planner's concern.  Freeing just drops the binding.
    ctx.env.pop(inst.tensor, None)


@SEQUENTIAL.register(insts.AllocateGlobal)
def _exec_allocate_global(
    vm: Interpreter, inst: insts.AllocateGlobal, ctx: BlockContext
) -> None:
    ttype = inst.out.ttype
    shape = ttype.static_shape()
    if shape is None:
        raise VMError("workspace tensors require static shapes")
    addr = vm.memory.alloc((int(np.prod(shape)) * ttype.dtype.nbits + 7) // 8)
    ctx.env[inst.out] = TensorView(vm.memory.buffer, addr * 8, ttype.dtype, shape)


# transfer ------------------------------------------------------------------


@SEQUENTIAL.register(insts.LoadGlobal)
def _exec_load_global(vm: Interpreter, inst: insts.LoadGlobal, ctx: BlockContext) -> None:
    src: TensorView = ctx.lookup_tensor(inst.src)
    layout = inst.out.ttype.layout
    indices = _tile_indices(layout, inst.offset, ctx, inst.broadcast_dims)
    if inst.masked:
        valid = bounds_mask(indices, src.shape)
        clipped = [np.clip(i, 0, e - 1) for i, e in zip(indices, src.shape)]
        patterns = src.gather_bits(clipped)
        patterns = np.where(valid, patterns, np.uint64(0))
    else:
        patterns = src.gather_bits(indices)
    patterns = patterns.reshape(layout.num_threads, layout.local_size)
    vm.stats.global_bits_loaded += layout.size * src.dtype.nbits
    ctx.env[inst.out] = RegisterValue.from_patterns(inst.out.ttype.dtype, layout, patterns)


@SEQUENTIAL.register(insts.LoadShared)
def _exec_load_shared(vm: Interpreter, inst: insts.LoadShared, ctx: BlockContext) -> None:
    src: TensorView = ctx.lookup_tensor(inst.src)
    layout = inst.out.ttype.layout
    indices = _tile_indices(layout, inst.offset, ctx, inst.broadcast_dims)
    patterns = src.gather_bits(indices).reshape(layout.num_threads, layout.local_size)
    vm.stats.shared_bits_loaded += layout.size * src.dtype.nbits
    ctx.env[inst.out] = RegisterValue.from_patterns(inst.out.ttype.dtype, layout, patterns)


@SEQUENTIAL.register(insts.StoreGlobal)
def _exec_store_global(vm: Interpreter, inst: insts.StoreGlobal, ctx: BlockContext) -> None:
    value: RegisterValue = ctx.lookup_tensor(inst.src)
    dst: TensorView = ctx.lookup_tensor(inst.dst)
    indices = _tile_indices(value.layout, inst.offset, ctx)
    patterns = value.thread_patterns().reshape(-1)
    if inst.masked:
        valid = bounds_mask(indices, dst.shape)
        if not valid.any():
            return
        indices = [i[valid] for i in indices]
        patterns = patterns[valid]
    dst.scatter_bits(indices, patterns)
    vm.stats.global_bits_stored += value.layout.size * dst.dtype.nbits


@SEQUENTIAL.register(insts.StoreShared)
def _exec_store_shared(vm: Interpreter, inst: insts.StoreShared, ctx: BlockContext) -> None:
    value: RegisterValue = ctx.lookup_tensor(inst.src)
    dst: TensorView = ctx.lookup_tensor(inst.dst)
    indices = _tile_indices(value.layout, inst.offset, ctx)
    dst.scatter_bits(indices, value.thread_patterns().reshape(-1))
    vm.stats.shared_bits_stored += value.layout.size * dst.dtype.nbits


@SEQUENTIAL.register(insts.CopyAsync)
def _exec_copy_async(vm: Interpreter, inst: insts.CopyAsync, ctx: BlockContext) -> None:
    src: TensorView = ctx.lookup_tensor(inst.src)
    dst: TensorView = ctx.lookup_tensor(inst.dst)
    shape = inst.copy_shape()
    src_origin = [int(evaluate(o, ctx.env)) for o in inst.src_offset]
    dst_origin = [int(evaluate(o, ctx.env)) for o in inst.dst_offset]
    # Functional semantics: copy eagerly; group tracking validates usage.
    size = int(np.prod(shape))
    idx = decompose_linear(tuple(shape))
    # Region rank may be lower than either tensor's rank: address the
    # trailing dimensions, leading ones fixed by the offsets.
    zero = np.zeros(size, dtype=np.int64)
    src_idx = [zero] * (len(src_origin) - len(idx)) + idx
    dst_idx = [zero] * (len(dst_origin) - len(idx)) + idx
    src_idx = [i + o for i, o in zip(src_idx, src_origin)]
    dst_idx = [i + o for i, o in zip(dst_idx, dst_origin)]
    # cp.async zero-fills out-of-bounds source elements (zfill semantics).
    valid = bounds_mask(src_idx, src.shape)
    clipped = [np.clip(i, 0, e - 1) for i, e in zip(src_idx, src.shape)]
    patterns = np.where(valid, src.gather_bits(clipped), np.uint64(0))
    dst.scatter_bits(dst_idx, patterns)
    ctx.pending_copies.append(inst)
    vm.stats.copy_async_issued += 1
    vm.stats.global_bits_loaded += size * src.dtype.nbits


@SEQUENTIAL.register(insts.CopyAsyncCommitGroup)
def _exec_copy_async_commit(vm: Interpreter, inst, ctx: BlockContext) -> None:
    ctx.committed_groups.append(ctx.pending_copies)
    ctx.pending_copies = []


@SEQUENTIAL.register(insts.CopyAsyncWaitGroup)
def _exec_copy_async_wait(
    vm: Interpreter, inst: insts.CopyAsyncWaitGroup, ctx: BlockContext
) -> None:
    while len(ctx.committed_groups) > inst.n:
        ctx.committed_groups.pop(0)


# computation --------------------------------------------------------------


@SEQUENTIAL.register(insts.ElementwiseBinary)
def _exec_elementwise_binary(
    vm: Interpreter, inst: insts.ElementwiseBinary, ctx: BlockContext
) -> None:
    a: RegisterValue = ctx.lookup_tensor(inst.a)
    if isinstance(inst.b, TensorVar):
        b = ctx.lookup_tensor(inst.b)
    else:
        b = evaluate(inst.b, ctx.env)
    ctx.env[inst.out] = a.binary(inst.op, b)


@SEQUENTIAL.register(insts.Neg)
def _exec_neg(vm: Interpreter, inst: insts.Neg, ctx: BlockContext) -> None:
    ctx.env[inst.out] = ctx.lookup_tensor(inst.a).neg()


@SEQUENTIAL.register(insts.Cast)
def _exec_cast(vm: Interpreter, inst: insts.Cast, ctx: BlockContext) -> None:
    ctx.env[inst.out] = ctx.lookup_tensor(inst.a).cast(inst.dtype)


@SEQUENTIAL.register(insts.ReduceSum)
def _exec_reduce_sum(vm: Interpreter, inst: insts.ReduceSum, ctx: BlockContext) -> None:
    value: RegisterValue = ctx.lookup_tensor(inst.a)
    logical = value.to_logical()
    reduced = logical.sum(axis=inst.axis, keepdims=True)
    out_t = inst.out.ttype
    ctx.env[inst.out] = RegisterValue.from_logical(out_t.dtype, out_t.layout, reduced)


@SEQUENTIAL.register(insts.Lookup)
def _exec_lookup(vm: Interpreter, inst: insts.Lookup, ctx: BlockContext) -> None:
    codes: RegisterValue = ctx.lookup_tensor(inst.codes)
    table = ctx.lookup_tensor(inst.table)
    indices = codes.thread_values().astype(np.int64)
    if isinstance(table, RegisterValue):
        # Register-held codebook: use the logical 1-D table.
        logical = table.to_logical()
        extent = logical.shape[0]
        if indices.size and (indices.min() < 0 or indices.max() >= extent):
            raise VMError(
                f"lookup code {int(indices.max())} exceeds table of {extent}"
            )
        values = logical[indices.reshape(-1)]
    else:
        extent = table.shape[0]
        if indices.size and (indices.min() < 0 or indices.max() >= extent):
            raise VMError(
                f"lookup code {int(indices.max())} exceeds table of {extent}"
            )
        bits = table.gather_bits([indices.reshape(-1)])
        values = table.dtype.from_bits(bits)
    out_t = inst.out.ttype
    ctx.env[inst.out] = RegisterValue.from_thread_values(
        out_t.dtype, out_t.layout, values.reshape(indices.shape)
    )


@SEQUENTIAL.register(insts.View)
def _exec_view(vm: Interpreter, inst: insts.View, ctx: BlockContext) -> None:
    out_t = inst.out.ttype
    ctx.env[inst.out] = ctx.lookup_tensor(inst.a).view(out_t.dtype, out_t.layout)


@SEQUENTIAL.register(insts.Dot)
def _exec_dot(vm: Interpreter, inst: insts.Dot, ctx: BlockContext) -> None:
    a = ctx.lookup_tensor(inst.a).to_logical()
    b = ctx.lookup_tensor(inst.b).to_logical()
    c = ctx.lookup_tensor(inst.c).to_logical()
    result = a.astype(np.float64) @ b.astype(np.float64) + c
    out_t = inst.out.ttype
    ctx.env[inst.out] = RegisterValue.from_logical(out_t.dtype, out_t.layout, result)
    vm.stats.dot_ops += a.shape[0] * a.shape[1] * b.shape[1]


# misc --------------------------------------------------------------------


@SEQUENTIAL.register(insts.Synchronize)
def _exec_synchronize(vm: Interpreter, inst, ctx: BlockContext) -> None:
    vm.stats.synchronizations += 1


@SEQUENTIAL.register(insts.Exit)
def _exec_exit(vm: Interpreter, inst, ctx: BlockContext) -> None:
    raise _Exit()


@SEQUENTIAL.register(insts.PrintTensor)
def _exec_print_tensor(vm: Interpreter, inst: insts.PrintTensor, ctx: BlockContext) -> None:
    value = ctx.lookup_tensor(inst.tensor)
    rendered = value.to_logical() if isinstance(value, RegisterValue) else value.read_all()
    prefix = f"{inst.message}: " if inst.message else ""
    text = f"{prefix}{inst.tensor.name} =\n{rendered}"
    # Rendered now (per-block state at this point), flushed in block
    # order at launch retire — see Interpreter._flush_prints.
    if vm._prints is None:
        vm._prints = []
    vm._prints.append(text)
