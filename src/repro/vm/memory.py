"""Simulated device memory with bit-granular tensor views.

Global and shared memory are byte buffers.  Tensor views address elements at
*bit* granularity so that sub-byte types are stored compactly (paper
Section 7.1): element ``k`` of an ``nbits``-wide tensor occupies absolute
bits ``[base + k * nbits, base + (k + 1) * nbits)``.

Gather/scatter are vectorized through a little-endian bit view of the
buffer (``np.unpackbits``/``np.packbits``) for sub-byte types and through
direct byte views for standard widths.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.dtypes import DataType
from repro.errors import OutOfMemoryError, VMError
from repro.utils.indexmath import prod

_ALIGN = 256  # allocation alignment in bytes (cudaMalloc-like)


class GlobalMemory:
    """A device DRAM simulation: one byte buffer with a bump allocator.

    The allocator is thread-safe: the multi-stream runtime executes
    kernels on worker threads, and ``AllocateGlobal`` allocates from
    inside a launch.  Buffer *contents* are not locked — disjoint-range
    access is the kernels' contract (enforced by the stream runtime's
    hazard tracking).
    """

    def __init__(self, capacity_bytes: int = 1 << 30) -> None:
        self.capacity = int(capacity_bytes)
        self.buffer = np.zeros(self.capacity + 8, dtype=np.uint8)  # +8 guard
        self._next = 0
        self._allocations: dict[int, int] = {}
        self._lock = threading.Lock()

    @property
    def used_bytes(self) -> int:
        return self._next

    def alloc(self, nbytes: int) -> int:
        """Allocate ``nbytes`` and return the byte address."""
        nbytes = int(nbytes)
        aligned = (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        with self._lock:
            addr = self._next
            if addr + aligned > self.capacity:
                raise OutOfMemoryError(
                    f"device OOM: requested {nbytes} B with {self.capacity - addr} B free "
                    f"of {self.capacity} B"
                )
            self._next += aligned
            self._allocations[addr] = nbytes
        return addr

    def alloc_n(self, nbytes: int, count: int) -> np.ndarray:
        """Vectorized bump allocation: ``count`` consecutive allocations of
        ``nbytes`` each, in one reservation.

        Returns the byte addresses as an int64 array.  The addresses are
        exactly what ``count`` successive :meth:`alloc` calls would have
        produced (same alignment, same order), so engines that allocate
        per block in bulk stay address-deterministic with engines that
        allocate in a per-block loop.
        """
        nbytes = int(nbytes)
        count = int(count)
        aligned = (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        with self._lock:
            base = self._next
            if base + aligned * count > self.capacity:
                raise OutOfMemoryError(
                    f"device OOM: requested {count} x {nbytes} B with "
                    f"{self.capacity - base} B free of {self.capacity} B"
                )
            self._next = base + aligned * count
            addrs = base + aligned * np.arange(count, dtype=np.int64)
            self._allocations.update((int(a), nbytes) for a in addrs)
        return addrs

    def free_all(self) -> None:
        """Reset the allocator (buffers become invalid)."""
        with self._lock:
            self._next = 0
            self._allocations.clear()
            self.buffer[:] = 0


class TensorView:
    """A typed, shaped window into a byte buffer with bit addressing.

    Used for both global and shared tensors.  ``base_bits`` is the absolute
    bit address of element 0; elements are ordered row-major.
    """

    def __init__(
        self,
        buffer: np.ndarray,
        base_bits: int,
        dtype: DataType,
        shape: tuple[int, ...],
    ) -> None:
        self.buffer = buffer
        self.base_bits = int(base_bits)
        self.dtype = dtype
        self.shape = tuple(int(s) for s in shape)
        self.size = prod(self.shape)
        if self.base_bits < 0:
            raise VMError(
                f"tensor view [{dtype}{list(self.shape)}] starts before the "
                f"buffer: bit offset {self.base_bits} is negative"
            )
        end_bits = self.base_bits + self.size * dtype.nbits
        if end_bits > (len(buffer) - 8) * 8:
            raise VMError(
                f"tensor view [{dtype}{list(self.shape)}] at bit offset "
                f"{self.base_bits} exceeds its buffer: needs {end_bits} bits, "
                f"buffer has {(len(buffer) - 8) * 8}"
            )

    # -- addressing -----------------------------------------------------------
    def _linear(self, indices: list[np.ndarray]) -> np.ndarray:
        if len(indices) != len(self.shape):
            raise VMError(
                f"rank mismatch: {len(indices)} indices for shape {list(self.shape)}"
            )
        linear = np.zeros_like(np.asarray(indices[0], dtype=np.int64))
        for idx, extent in zip(indices, self.shape):
            idx = np.asarray(idx, dtype=np.int64)
            if idx.size and (idx.min() < 0 or idx.max() >= extent):
                raise VMError(
                    f"index out of bounds: [{idx.min()}, {idx.max()}] not within "
                    f"[0, {extent}) for tensor {self.dtype}{list(self.shape)}"
                )
            linear = linear * extent + idx
        return linear

    # -- element access ---------------------------------------------------------
    def _oob(self, exc: IndexError) -> VMError:
        """Translate a stray numpy IndexError into a typed VM error."""
        return VMError(
            f"tensor view [{self.dtype}{list(self.shape)}] at bit offset "
            f"{self.base_bits} addresses bytes outside its buffer "
            f"({len(self.buffer)} bytes): {exc}"
        )

    def gather_bits(self, indices: list[np.ndarray]) -> np.ndarray:
        """Read bit patterns at the given multi-indices (vectorized)."""
        linear = self._linear(indices)
        nbits = self.dtype.nbits
        bit_addr = self.base_bits + linear * nbits
        try:
            if nbits % 8 == 0 and self.base_bits % 8 == 0:
                return self._gather_bytes(bit_addr // 8, nbits // 8)
            # Sub-byte/unaligned path: read a 64-bit little-endian window.
            byte_addr = bit_addr // 8
            shift = (bit_addr % 8).astype(np.uint64)
            window = np.zeros(linear.shape, dtype=np.uint64)
            for k in range(8):
                window |= self.buffer[byte_addr + k].astype(np.uint64) << np.uint64(8 * k)
        except IndexError as exc:
            raise self._oob(exc) from exc
        mask = np.uint64((1 << nbits) - 1)
        return (window >> shift) & mask

    def _gather_bytes(self, byte_addr: np.ndarray, nbytes: int) -> np.ndarray:
        out = np.zeros(byte_addr.shape, dtype=np.uint64)
        for k in range(nbytes):
            out |= self.buffer[byte_addr + k].astype(np.uint64) << np.uint64(8 * k)
        return out

    def scatter_bits(self, indices: list[np.ndarray], patterns: np.ndarray) -> None:
        """Write bit patterns at the given multi-indices (vectorized)."""
        linear = self._linear(indices)
        patterns = np.broadcast_to(np.asarray(patterns, dtype=np.uint64), linear.shape)
        nbits = self.dtype.nbits
        try:
            if nbits % 8 == 0 and self.base_bits % 8 == 0:
                byte_addr = (self.base_bits + linear * nbits) // 8
                for k in range(nbits // 8):
                    self.buffer[byte_addr + k] = (
                        (patterns >> np.uint64(8 * k)) & np.uint64(0xFF)
                    ).astype(np.uint8)
                return
            # Sub-byte path: edit through a bit view of the touched region.
            bit_addr = self.base_bits + linear.reshape(-1) * nbits
            lo_byte = int(bit_addr.min() // 8)
            hi_byte = int((bit_addr.max() + nbits + 7) // 8)
            region = np.unpackbits(self.buffer[lo_byte:hi_byte], bitorder="little")
            offsets = bit_addr - lo_byte * 8
            positions = (offsets[:, None] + np.arange(nbits)).reshape(-1)
            value_bits = (
                (patterns.reshape(-1)[:, None] >> np.arange(nbits, dtype=np.uint64)) & np.uint64(1)
            ).astype(np.uint8).reshape(-1)
            region[positions] = value_bits
            self.buffer[lo_byte:hi_byte] = np.packbits(region, bitorder="little")[: hi_byte - lo_byte]
        except IndexError as exc:
            raise self._oob(exc) from exc

    # -- whole-tensor convenience ------------------------------------------------
    def read_all(self) -> np.ndarray:
        """Decode the full tensor into a numpy array of its logical shape."""
        linear = np.arange(self.size, dtype=np.int64)
        idx = []
        rem = linear
        for extent in reversed(self.shape):
            idx.append(rem % extent)
            rem = rem // extent
        idx.reverse()
        bits = self.gather_bits(idx)
        return self.dtype.from_bits(bits).reshape(self.shape)

    def write_all(self, values: np.ndarray) -> None:
        """Encode and store a full logical tensor."""
        values = np.asarray(values)
        if values.shape != self.shape:
            raise VMError(f"write_all shape mismatch: {values.shape} vs {self.shape}")
        linear = np.arange(self.size, dtype=np.int64)
        idx = []
        rem = linear
        for extent in reversed(self.shape):
            idx.append(rem % extent)
            rem = rem // extent
        idx.reverse()
        self.scatter_bits(idx, self.dtype.to_bits(values.reshape(-1)))


class SharedMemory:
    """Per-block shared memory: a bump-allocated byte buffer.

    Real kernels get one shared region sized by the memory planner; here
    each block gets a fresh buffer, and the planner's job (offset
    assignment, capacity check) happens in the compiler.
    """

    def __init__(self, capacity_bytes: int = 228 * 1024) -> None:
        self.capacity = capacity_bytes
        self.buffer = np.zeros(capacity_bytes + 8, dtype=np.uint8)
        self._next = 0
        self.high_water = 0

    def alloc(self, nbytes: int) -> int:
        addr = self._next
        aligned = (int(nbytes) + 15) // 16 * 16
        if addr + aligned > self.capacity:
            raise VMError(
                f"shared memory exhausted: requested {nbytes} B, "
                f"{self.capacity - addr} B free of {self.capacity} B"
            )
        self._next += aligned
        self.high_water = max(self.high_water, self._next)
        return addr
