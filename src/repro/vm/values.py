"""Runtime values of the virtual machine.

The central type is :class:`RegisterValue`: a register tensor held as raw
*bits per thread*.  Each of the layout's ``num_threads`` threads owns
``local_size`` elements of ``dtype.nbits`` bits, stored compactly.  Keeping
bits (not values) is what makes ``View`` — the paper's zero-cost register
reinterpretation — faithful: a view re-reads the same bits under a new
element width and layout, exactly as the hardware registers would be
reinterpreted.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes import DataType
from repro.errors import VMError
from repro.layout import Layout


def apply_elementwise(dtype: DataType, op: str, a: np.ndarray, b) -> np.ndarray:
    """Elementwise arithmetic in the decode domain, shared by both engines.

    ``a`` holds decoded values of ``dtype``; ``b`` is a scalar or an array
    already broadcast-compatible with ``a``.  Integer division truncates
    toward zero and modulo round-trips its quotient through the storage
    type (C semantics) — keeping this logic in ONE place is what lets the
    sequential and batched register values stay bit-exact with each other.
    """
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if dtype.is_integer:
            quotient = np.floor_divide(a, b)
            # C truncation toward zero for negative results.
            return np.where(
                (a % b != 0) & ((a < 0) != (np.asarray(b) < 0)), quotient + 1, quotient
            )
        return a / b
    if op == "%":
        if dtype.is_integer:
            # Mirror hardware: the quotient materializes in a register of
            # ``dtype`` before the multiply-subtract, so round-trip it
            # through the storage codec.
            quotient = dtype.quantize(apply_elementwise(dtype, "/", a, b))
            return a - np.asarray(quotient, dtype=a.dtype) * b
        return np.fmod(a, b)
    raise VMError(f"unknown elementwise op {op!r}")


class RegisterValue:
    """A register tensor: per-thread bit storage plus (dtype, layout).

    Attributes:
        dtype: element type.
        layout: distribution of elements over threads.
        bits: uint8 array of shape (num_threads, bits_per_thread) holding
            one bit per entry (0/1).  Element ``i`` of thread ``t`` lives in
            ``bits[t, i*nbits : (i+1)*nbits]``, LSB first.
    """

    def __init__(self, dtype: DataType, layout: Layout, bits: np.ndarray) -> None:
        expected = (layout.num_threads, layout.local_size * dtype.nbits)
        if bits.shape != expected:
            raise VMError(
                f"register bits shape {bits.shape} does not match layout "
                f"{layout.short_repr()} x {dtype} (expected {expected})"
            )
        self.dtype = dtype
        self.layout = layout
        self.bits = bits

    # -- constructors -----------------------------------------------------------
    @classmethod
    def zeros(cls, dtype: DataType, layout: Layout) -> "RegisterValue":
        bits = np.zeros((layout.num_threads, layout.local_size * dtype.nbits), dtype=np.uint8)
        return cls(dtype, layout, bits)

    @classmethod
    def from_patterns(cls, dtype: DataType, layout: Layout, patterns: np.ndarray) -> "RegisterValue":
        """Build from per-(thread, local) uint64 bit patterns."""
        patterns = np.asarray(patterns, dtype=np.uint64)
        expected = (layout.num_threads, layout.local_size)
        if patterns.shape != expected:
            raise VMError(f"pattern shape {patterns.shape} != {expected}")
        nbits = dtype.nbits
        bit_idx = np.arange(nbits, dtype=np.uint64)
        bits = ((patterns[..., None] >> bit_idx) & np.uint64(1)).astype(np.uint8)
        return cls(dtype, layout, bits.reshape(layout.num_threads, layout.local_size * nbits))

    @classmethod
    def from_thread_values(
        cls, dtype: DataType, layout: Layout, values: np.ndarray
    ) -> "RegisterValue":
        """Build from per-(thread, local) numeric values."""
        values = np.asarray(values)
        patterns = dtype.to_bits(values.reshape(-1)).reshape(
            layout.num_threads, layout.local_size
        )
        return cls.from_patterns(dtype, layout, patterns)

    @classmethod
    def from_logical(cls, dtype: DataType, layout: Layout, tensor: np.ndarray) -> "RegisterValue":
        """Build from a logical tensor of the layout's shape."""
        tensor = np.asarray(tensor)
        if tensor.shape != layout.shape:
            raise VMError(f"logical shape {tensor.shape} != layout shape {layout.shape}")
        t = np.repeat(np.arange(layout.num_threads), layout.local_size)
        i = np.tile(np.arange(layout.local_size), layout.num_threads)
        coords = layout.map_batch(t, i)
        values = tensor[tuple(np.broadcast_to(c, t.shape) for c in coords)]
        return cls.from_thread_values(
            dtype, layout, values.reshape(layout.num_threads, layout.local_size)
        )

    @classmethod
    def filled(cls, dtype: DataType, layout: Layout, value: float) -> "RegisterValue":
        values = np.full((layout.num_threads, layout.local_size), value)
        return cls.from_thread_values(dtype, layout, values)

    # -- accessors ----------------------------------------------------------------
    @property
    def bits_per_thread(self) -> int:
        return self.bits.shape[1]

    def thread_patterns(self) -> np.ndarray:
        """Per-(thread, local) uint64 bit patterns."""
        nbits = self.dtype.nbits
        t, width = self.bits.shape
        grouped = self.bits.reshape(t, width // nbits, nbits).astype(np.uint64)
        weights = np.uint64(1) << np.arange(nbits, dtype=np.uint64)
        return (grouped * weights).sum(axis=2, dtype=np.uint64)

    def thread_values(self) -> np.ndarray:
        """Per-(thread, local) decoded numeric values."""
        patterns = self.thread_patterns()
        return self.dtype.from_bits(patterns.reshape(-1)).reshape(patterns.shape)

    def to_logical(self) -> np.ndarray:
        """Reassemble the logical tensor (threads may replicate elements;
        later threads win, matching last-writer-wins store order)."""
        values = self.thread_values()
        out = np.zeros(self.layout.shape, dtype=values.dtype)
        t = np.repeat(np.arange(self.layout.num_threads), self.layout.local_size)
        i = np.tile(np.arange(self.layout.local_size), self.layout.num_threads)
        coords = self.layout.map_batch(t, i)
        out[tuple(np.broadcast_to(c, t.shape) for c in coords)] = values.reshape(-1)
        return out

    # -- operations -----------------------------------------------------------------
    def view(self, dtype: DataType, layout: Layout) -> "RegisterValue":
        """Zero-cost reinterpretation (paper Figure 2(c)).

        Same thread count, same bits per thread; the bit rows are reused
        as-is under the new element width.
        """
        if layout.num_threads != self.layout.num_threads:
            raise VMError(
                f"view: thread count {self.layout.num_threads} -> "
                f"{layout.num_threads} mismatch"
            )
        if layout.local_size * dtype.nbits != self.bits_per_thread:
            raise VMError(
                f"view: bits-per-thread mismatch: {self.bits_per_thread} -> "
                f"{layout.local_size * dtype.nbits}"
            )
        return RegisterValue(dtype, layout, self.bits)

    def cast(self, dtype: DataType) -> "RegisterValue":
        """Value conversion preserving the layout.

        Float→integer truncates toward zero then saturates (C semantics);
        all other directions round to nearest representable.
        """
        values = self.thread_values()
        if dtype.is_integer and self.dtype.is_float:
            values = np.trunc(values)
        return RegisterValue.from_thread_values(dtype, self.layout, values)

    def binary(self, op: str, other) -> "RegisterValue":
        """Elementwise arithmetic with a register tensor or scalar."""
        a = self.thread_values()
        if isinstance(other, RegisterValue):
            if other.layout.num_threads != self.layout.num_threads or (
                other.layout.local_size != self.layout.local_size
            ):
                raise VMError("elementwise operands must have matching layouts")
            b = other.thread_values()
        else:
            b = other
        result = apply_elementwise(self.dtype, op, a, b)
        return RegisterValue.from_thread_values(self.dtype, self.layout, result)

    def neg(self) -> "RegisterValue":
        return RegisterValue.from_thread_values(self.dtype, self.layout, -self.thread_values())

    def copy(self) -> "RegisterValue":
        return RegisterValue(self.dtype, self.layout, self.bits.copy())

    def __repr__(self) -> str:
        return f"RegisterValue({self.dtype}, {self.layout.short_repr()})"
