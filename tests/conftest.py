"""Pytest configuration (shared strategies live in tests/helpers.py)."""
