"""Differential test harness for the VM execution engines.

:mod:`tests.harness.generator` produces randomized Tilus programs with
mixed data types (including sub-byte), control flow, shared-memory
staging, register reinterpretation and tensor-core ops;
:mod:`tests.harness.differential` runs each program through every
execution mode — the sequential interpreter, the grid-vectorized
batched executor, the multi-stream runtime, and execution-graph
capture-and-replay — and asserts *bit-exact* agreement of every output
tensor plus execution-stat parity.
"""

from tests.harness.differential import DifferentialMismatch, run_differential
from tests.harness.generator import GeneratedCase, generate_case

__all__ = [
    "GeneratedCase",
    "generate_case",
    "run_differential",
    "DifferentialMismatch",
]
