"""Run one generated case through every execution mode and compare
bit-exactly.

Every mode gets an *identical* device image: a fresh
:class:`~repro.vm.memory.GlobalMemory`, the same uploads in the same
order (so identical addresses), and zero-initialized output regions.
After executing the case's launch plan the raw **bit patterns** of every
output tensor are compared — not decoded values — so NaN payloads,
negative zeros and sub-byte padding must all agree.  Execution
statistics are compared as well: every mode is required to count work
exactly as if blocks had run one at a time.

Nine modes are locked together:

- ``sequential``   — the block-loop interpreter, the semantic reference;
- ``batched``      — the grid-vectorized executor, forced for every launch;
- ``stream``       — the multi-stream runtime: launches are issued
  round-robin across the streams of a :class:`~repro.runtime.streams.
  StreamPool`, so multi-launch cases (split-k partial → reduce) rely on
  cross-stream hazard tracking for their ordering, and out-of-order
  retirement must still produce serial-replay results;
- ``graph-replay`` — the execution-graph subsystem: the case's launch
  plan is *captured* (scheduling, hazard edges and coalescing groups
  frozen once, nothing executed), then replayed through the per-stream
  engines with all per-launch analysis skipped — and must still match
  the sequential reference bit-for-bit with stat parity;
- ``graph-optimized`` — the profile-guided pass: the plan is captured
  and replayed once on a *throwaway* device image with profiling on
  (collecting real per-node costs under the graph's signature), then a
  fresh image's capture is rebuilt by ``graph.optimize(profile)`` —
  measured-cost LPT stream placement, re-derived coalescing groups —
  and replayed; moving every node to a profile-chosen stream must
  change nothing observable.
- ``adaptive``     — the adaptive runtime: the same throwaway-image
  profile drives **profile-guided capture** (``capture(profile=...)``:
  measured-cost placement and stream-count capping decided at
  instantiate time, overriding the plan's explicit stream hints), and
  the resulting graph is replayed through an
  :class:`~repro.runtime.adaptive.AdaptivePolicy`-managed facade with
  the pool's profiler recording — letting the capture pick everything
  from measured costs must change nothing observable either.
- ``plan-roundtrip`` — the cross-process placement-transfer path used
  by sharded serving: the captured graph's :class:`~repro.runtime.
  graphs.GraphPlan` is serialized to versioned JSON, parsed back, and
  re-applied (``apply_plan``) — validated node-by-node against the
  capture's specialization keys, grids and hazard edges — and the
  re-instantiated graph is replayed; a schedule surviving the wire
  must change nothing observable.
- ``warm-store``   — the fleet-warm-boot path used by the persistent
  tuning store: the throwaway-image profile is *published to* and
  *loaded back from* an on-disk :class:`~repro.store.TuningStore`
  (versioned JSON, checksummed, atomically renamed), the loaded copy
  drives profile-guided capture exactly as ``adaptive`` does, and the
  graph is replayed under ``manage(warm=True)`` — a profile surviving
  the disk round-trip, and the zero-first-swap warm policy, must
  change nothing observable.
- ``jit``          — the compiled tier: every launch is lowered through
  the :mod:`repro.compiler.lower` pass pipeline (const-fold the bound
  scalars → unroll the block loop → flatten to straight-line vectorized
  source) and the ``compile()``-d kernel executes instead of the
  interpreter; launches the pipeline bails out on (data-dependent
  control flow, unsupported ops) fall back to the batched executor.
  Bit patterns *and* execution statistics must match the sequential
  reference — the compiled kernel is required to count blocks,
  instructions and global traffic exactly as if it had interpreted.

The adaptive mode's swap dynamics (warmup windows, hysteresis,
atomicity) are exercised separately by ``tests/test_adaptive.py`` —
one differential execution replays each plan exactly once, so swaps
cannot fire here by construction.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.adaptive import AdaptivePolicy
from repro.runtime.profiling import Profile
from repro.runtime.streams import StreamPool
from repro.vm import BatchedExecutor, GlobalMemory, Interpreter, TensorView
from repro.vm.dispatch import decompose_linear
from repro.vm.interp import ExecutionStats

from tests.harness.generator import GeneratedCase

#: Execution modes every case must agree across.
MODES = (
    "sequential",
    "batched",
    "stream",
    "graph-replay",
    "graph-optimized",
    "adaptive",
    "plan-roundtrip",
    "warm-store",
    "jit",
)


class DifferentialMismatch(AssertionError):
    """Two execution modes disagreed on a generated program."""


def _resolve_args(spec, buffers):
    """Map a launch's buffer-index spec to device addresses; an entry may
    be ``idx`` or ``(idx, byte_offset)``."""
    args = []
    for entry in spec:
        if isinstance(entry, tuple):
            idx, offset = entry
            args.append(buffers[idx] + offset)
        else:
            args.append(buffers[entry])
    return args


def _capture_plan(pool: StreamPool, plan, buffers, profile=None):
    """Capture the case's launch plan round-robin across the pool's
    streams.  The one shared entry point for every graph-based mode (and
    the profile-collection pass): plan order and stream assignment must
    stay byte-identical between them, because the profile lookup keys on
    the resulting graph signature.  ``profile`` switches the capture to
    profile-guided mode (the adaptive path)."""
    with pool.capture(profile=profile) as graph:
        for i, (program, spec) in enumerate(plan):
            pool.submit(
                program,
                _resolve_args(spec, buffers),
                stream=pool.streams[i % len(pool.streams)],
            )
    return graph


def _collect_profile(case: GeneratedCase) -> Profile:
    """Execute the case's captured graph once on a *throwaway* device
    image with profiling enabled: the recorded per-node costs carry the
    graph's signature, so the real image's capture (identical plan,
    identical upload order ⇒ identical specialization keys) can be
    optimized against them."""
    memory = GlobalMemory(1 << 24)
    host = Interpreter(memory)
    buffers = [host.upload(data, dtype) for data, dtype in case.inputs]
    buffers.extend(
        host.alloc_output(shape, dtype) for shape, dtype in case.outputs
    )
    with StreamPool(memory, num_streams=4) as pool:
        graph = _capture_plan(pool, case.launch_plan(), buffers)
        pool.profiler = Profile()
        graph.replay()
        pool.synchronize()
        return pool.profiler


def _run_engine(case: GeneratedCase, mode: str):
    memory = GlobalMemory(1 << 24)
    host = Interpreter(memory)
    buffers = [host.upload(data, dtype) for data, dtype in case.inputs]
    out_addrs = [host.alloc_output(shape, dtype) for shape, dtype in case.outputs]
    buffers.extend(out_addrs)
    plan = case.launch_plan()
    if mode == "sequential":
        for program, spec in plan:
            host.launch(program, _resolve_args(spec, buffers))
        stats = host.stats
    elif mode == "batched":
        executor = BatchedExecutor(memory, stats=host.stats)
        for program, spec in plan:
            executor.launch(program, _resolve_args(spec, buffers))
        stats = host.stats
    elif mode == "stream":
        with StreamPool(memory, num_streams=4) as pool:
            for i, (program, spec) in enumerate(plan):
                pool.submit(
                    program,
                    _resolve_args(spec, buffers),
                    stream=pool.streams[i % len(pool.streams)],
                )
            pool.synchronize()
        stats = pool.aggregate_stats()
    elif mode == "graph-replay":
        with StreamPool(memory, num_streams=4) as pool:
            graph = _capture_plan(pool, plan, buffers)
            assert len(graph) == len(plan)
            graph.replay()
            pool.synchronize()
        stats = pool.aggregate_stats()
    elif mode == "graph-optimized":
        profile = _collect_profile(case)
        with StreamPool(memory, num_streams=4) as pool:
            graph = _capture_plan(pool, plan, buffers)
            optimized = graph.optimize(profile)
            # No pointer bindings are registered, so all memory is
            # presumed observable: elimination must drop nothing.
            assert optimized.num_nodes == len(plan)
            optimized.replay()
            pool.synchronize()
        stats = pool.aggregate_stats()
    elif mode == "adaptive":
        profile = _collect_profile(case)
        with StreamPool(memory, num_streams=4) as pool:
            graph = _capture_plan(pool, plan, buffers, profile=profile)
            assert len(graph) == len(plan)
            # Warmup larger than the single replay below: the policy
            # observes but never swaps mid-case (replaying the plan
            # twice would double-execute it and break stat parity).
            managed = AdaptivePolicy(warmup_replays=8, min_gain=0.5).manage(graph)
            pool.profiler = Profile()
            managed.replay()
            pool.synchronize()
        stats = pool.aggregate_stats()
    elif mode == "warm-store":
        import tempfile

        from repro.store import TuningStore

        profile = _collect_profile(case)
        with tempfile.TemporaryDirectory() as root:
            store = TuningStore(root)
            store.publish_profile("diff", profile)
            loaded = store.load_profile("diff")
        assert loaded.stamp() == profile.stamp()
        with StreamPool(memory, num_streams=4) as pool:
            graph = _capture_plan(pool, plan, buffers, profile=loaded)
            assert len(graph) == len(plan)
            managed = AdaptivePolicy(warmup_replays=8, min_gain=0.5).manage(
                graph, warm=True
            )
            pool.profiler = Profile()
            managed.replay()
            pool.synchronize()
        stats = pool.aggregate_stats()
    elif mode == "jit":
        from repro.compiler.lower import LoweringBailout, lower_program

        fallback = BatchedExecutor(memory, stats=host.stats)
        for program, spec in plan:
            args = _resolve_args(spec, buffers)
            try:
                kernel = lower_program(program, args, memory)
            except LoweringBailout:
                fallback.launch(program, args)
                continue
            kernel.run(memory, args, host.stats)
        stats = host.stats
    elif mode == "plan-roundtrip":
        from repro.runtime.graphs import GraphPlan

        with StreamPool(memory, num_streams=4) as pool:
            graph = _capture_plan(pool, plan, buffers)
            wire = graph.plan().to_json()
            applied = graph.apply_plan(GraphPlan.from_json(wire))
            assert applied.signature == graph.signature
            assert len(applied) == len(plan)
            applied.replay()
            pool.synchronize()
        stats = pool.aggregate_stats()
    else:
        raise ValueError(f"unknown mode {mode!r}")
    outputs = []
    for addr, (shape, dtype) in zip(out_addrs, case.outputs):
        view = TensorView(memory.buffer, addr * 8, dtype, tuple(shape))
        bits = view.gather_bits(decompose_linear(tuple(shape)))
        outputs.append(bits.copy())
    return outputs, stats.snapshot()


def run_differential(case: GeneratedCase) -> None:
    """Assert all modes produce bit-identical outputs and equal stats."""
    reference_mode = MODES[0]
    ref_outs, ref_stats = _run_engine(case, reference_mode)
    for mode in MODES[1:]:
        outs, stats = _run_engine(case, mode)
        for idx, (ref_bits, got_bits) in enumerate(zip(ref_outs, outs)):
            if not np.array_equal(ref_bits, got_bits):
                diff = np.flatnonzero(ref_bits != got_bits)
                shape, dtype = case.outputs[idx]
                raise DifferentialMismatch(
                    f"output {idx} ({dtype}{list(shape)}) differs at "
                    f"{diff.size}/{ref_bits.size} elements between "
                    f"{reference_mode} and {mode} (first at linear index "
                    f"{diff[0]}: {reference_mode}={ref_bits[diff[0]]:#x} "
                    f"{mode}={got_bits[diff[0]]:#x})\n{case.describe()}"
                )
        if ref_stats != stats:
            delta = {
                k: (ref_stats[k], stats[k])
                for k in ref_stats
                if ref_stats[k] != stats[k]
            }
            raise DifferentialMismatch(
                f"execution stats diverge ({reference_mode}, {mode}): "
                f"{delta}\n{case.describe()}"
            )
