"""Run one generated case through both engines and compare bit-exactly.

Both engines get *identical* device images: a fresh
:class:`~repro.vm.memory.GlobalMemory`, the same uploads in the same
order (so identical addresses), and zero-initialized output regions.
After execution the raw **bit patterns** of every output tensor are
compared — not decoded values — so NaN payloads, negative zeros and
sub-byte padding must all agree.  Execution statistics are compared as
well: the batched engine is required to count work exactly as if blocks
had run one at a time.
"""

from __future__ import annotations

import numpy as np

from repro.vm import BatchedExecutor, GlobalMemory, Interpreter, TensorView
from repro.vm.dispatch import decompose_linear

from tests.harness.generator import GeneratedCase


class DifferentialMismatch(AssertionError):
    """The two engines disagreed on a generated program."""


def _run_engine(case: GeneratedCase, engine: str):
    memory = GlobalMemory(1 << 24)
    host = Interpreter(memory)
    args = [host.upload(data, dtype) for data, dtype in case.inputs]
    out_addrs = [host.alloc_output(shape, dtype) for shape, dtype in case.outputs]
    args.extend(out_addrs)
    if engine == "sequential":
        executor = host
    else:
        executor = BatchedExecutor(memory, stats=host.stats)
    executor.launch(case.program, args)
    outputs = []
    for addr, (shape, dtype) in zip(out_addrs, case.outputs):
        view = TensorView(memory.buffer, addr * 8, dtype, tuple(shape))
        bits = view.gather_bits(decompose_linear(tuple(shape)))
        outputs.append(bits.copy())
    return outputs, host.stats.snapshot()


def run_differential(case: GeneratedCase) -> None:
    """Assert both engines produce bit-identical outputs and equal stats."""
    seq_outs, seq_stats = _run_engine(case, "sequential")
    bat_outs, bat_stats = _run_engine(case, "batched")
    for idx, (seq_bits, bat_bits) in enumerate(zip(seq_outs, bat_outs)):
        if not np.array_equal(seq_bits, bat_bits):
            diff = np.flatnonzero(seq_bits != bat_bits)
            shape, dtype = case.outputs[idx]
            raise DifferentialMismatch(
                f"output {idx} ({dtype}{list(shape)}) differs at "
                f"{diff.size}/{seq_bits.size} elements (first at linear index "
                f"{diff[0]}: sequential={seq_bits[diff[0]]:#x} "
                f"batched={bat_bits[diff[0]]:#x})\n{case.describe()}"
            )
    if seq_stats != bat_stats:
        delta = {
            k: (seq_stats[k], bat_stats[k])
            for k in seq_stats
            if seq_stats[k] != bat_stats[k]
        }
        raise DifferentialMismatch(
            f"execution stats diverge (sequential, batched): {delta}\n{case.describe()}"
        )
