"""Randomized Tilus program generator for differential testing.

Every case is built from a seeded RNG, so the suite is fully
reproducible: ``generate_case(seed)`` always yields the same program and
the same input data.  Cases are drawn from several *families*, each
exercising a different slice of the instruction set:

- ``pipeline``     — load → elementwise/cast/view chains → store, with
  optional divergent if/else, accumulation loops (with ``continue`` /
  ``break``), while-loops with per-block trip counts, early ``Exit``,
  broadcast loads and masked boundary tiles;
- ``subbyte_view`` — compact sub-byte tiles (1..7 bit) loaded and
  bit-reinterpreted to ``u16`` (paper Figure 2(c)), then stored;
- ``shared``       — shared-memory staging: store/load roundtrips with a
  changed thread mapping, and ``cp.async`` staging with zero-fill;
- ``dot``          — tensor-core style tile MMA with accumulation;
- ``reduce``       — row/column reductions;
- ``lookup``       — codebook expansion from sub-byte codes;
- ``pipelined_matmul`` — the *full* quantized matmul template
  (``kernels/matmul.py``) on its software-pipelined ``cp.async`` path;
- ``splitk``       — the split-k partial + reduce kernel pair
  (``kernels/splitk.py``), a multi-launch case whose second launch reads
  what the first wrote (exercising cross-launch hazard ordering in the
  multi-stream execution mode).

All programs write only through their output pointers and keep every
unmasked access in bounds, so every engine must produce *bit-identical*
device memory for the outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dtypes import DataType, dtype_from_name, float16, float32, int32, uint8
from repro.ir.program import Program
from repro.ir.stmt import AssignStmt
from repro.ir.expr import wrap
from repro.kernels import (
    MatmulConfig,
    matmul_layouts,
    quantized_matmul_program,
    splitk_partial_program,
    splitk_reduce_program,
)
from repro.lang import ProgramBuilder, pointer
from repro.layout import column_spatial, spatial
from repro.quant import QuantScheme, quantize_weight, transform_weight

from tests.helpers import random_values_for


@dataclass
class GeneratedCase:
    """One differential test case: program(s) plus launch data.

    Buffers are numbered inputs-first then outputs; ``launches`` maps each
    program to the buffer indices forming its argument list (``None`` for
    the common single-program case: one launch taking every buffer in
    order).
    """

    seed: int
    family: str
    program: Program
    #: (array, dtype) pairs uploaded in parameter order.
    inputs: list = field(default_factory=list)
    #: (shape, dtype) pairs allocated (zero-initialized device memory) after
    #: the inputs, continuing the parameter order.
    outputs: list = field(default_factory=list)
    #: Optional multi-launch plan: (program, buffer-index tuple) pairs.
    launches: list = field(default=None)

    def launch_plan(self) -> list:
        """Normalized (program, buffer indices) launch sequence."""
        if self.launches is not None:
            return self.launches
        nbuffers = len(self.inputs) + len(self.outputs)
        return [(self.program, tuple(range(nbuffers)))]

    def describe(self) -> str:
        programs = "\n".join(repr(p) for p, _ in self.launch_plan())
        return f"seed={self.seed} family={self.family}\n{programs}"


_FAMILIES = (
    "pipeline",
    "pipeline",
    "pipeline",
    "subbyte_view",
    "shared",
    "dot",
    "reduce",
    "lookup",
    "pipelined_matmul",
    "splitk",
)

_GRIDS = [(2, 1), (2, 2), (3, 1), (2, 3), (4, 2), (3, 2)]
_TILES = [(4, 8), (8, 4), (2, 16)]


def generate_case(seed: int) -> GeneratedCase:
    """Build the deterministic case for ``seed``."""
    rng = np.random.default_rng(seed)
    family = _FAMILIES[int(rng.integers(len(_FAMILIES)))]
    builder = {
        "pipeline": _gen_pipeline,
        "subbyte_view": _gen_subbyte_view,
        "shared": _gen_shared,
        "dot": _gen_dot,
        "reduce": _gen_reduce,
        "lookup": _gen_lookup,
        "pipelined_matmul": _gen_pipelined_matmul,
        "splitk": _gen_splitk,
    }[family]
    return builder(seed, rng, family)


def _pick(rng, options):
    return options[int(rng.integers(len(options)))]


# ---------------------------------------------------------------------------
# pipeline family
# ---------------------------------------------------------------------------

_PIPELINE_DTYPES = ["f16", "f32", "i32", "i16", "i8", "u8", "u16"]
_CASTS = {
    "f16": ["f32", "i32", "i16"],
    "f32": ["f16", "i32"],
    "i32": ["f32", "i16", "f16"],
    "i16": ["i32", "f32"],
    "i8": ["i32", "f32", "i16"],
    "u8": ["i32", "u16", "f32"],
    "u16": ["i32", "f32"],
}


def _scalar_for(rng, dtype: DataType):
    if dtype.is_integer:
        return int(rng.integers(1, 5))
    return float(np.float16(rng.uniform(0.5, 2.0)))


def _gen_pipeline(seed: int, rng, family: str) -> GeneratedCase:
    gb, gw = _pick(rng, _GRIDS)
    th, tw = _pick(rng, _TILES)
    dname = _pick(rng, _PIPELINE_DTYPES)
    dtype = dtype_from_name(dname)
    layout = spatial(th, tw)
    masked = bool(rng.integers(4) == 0)
    broadcast = bool(rng.integers(3) == 0)

    rows, cols = gb * th, gw * tw
    if masked:
        rows -= int(rng.integers(1, th))  # last row-tiles overshoot

    pb = ProgramBuilder(f"pipeline_{seed}", grid=[gb, gw])
    in_ptr = pb.param("in0", pointer(dtype))
    brd_ptr = pb.param("brd", pointer(dtype)) if broadcast else None
    out_ptr = pb.param("out0", pointer(dtype))

    bi, bj = pb.block_indices()
    g_in = pb.view_global(in_ptr, dtype=dtype, shape=[rows, cols])
    g_out = pb.view_global(out_ptr, dtype=dtype, shape=[rows, cols])

    cur = pb.load_global(g_in, layout=layout, offset=[bi * th, bj * tw], masked=masked)
    if broadcast:
        g_brd = pb.view_global(brd_ptr, dtype=dtype, shape=[1, cols])
        row = pb.load_global(g_brd, layout=layout, offset=[0, bj * tw], broadcast_dims=[0])
        cur = pb.add(cur, row)

    cur_d = dname
    squared = False
    for _ in range(int(rng.integers(2, 6))):
        op = _pick(rng, ["add", "sub", "mul", "neg", "cast", "view", "div", "mod", "tile"])
        d = dtype_from_name(cur_d)
        if op in ("add", "sub", "mul"):
            cur = getattr(pb, op)(cur, _scalar_for(rng, d))
        elif op == "div" and d.is_integer:
            cur = pb.div(cur, int(rng.integers(2, 5)))
        elif op == "mod" and d.is_integer:
            cur = pb.mod(cur, int(rng.integers(2, 6)))
        elif op == "neg" and d.is_signed:
            cur = pb.neg(cur)
        elif op == "cast":
            cur_d = _pick(rng, _CASTS[cur_d])
            cur = pb.cast(cur, cur_d)
        elif op == "view" and d.nbits in (8, 16, 32):
            # Reinterpret to the unsigned integer of the same width and
            # back: a pure bit-level no-op that must stay bit-exact.
            u = f"u{d.nbits}"
            cur = pb.view(cur, u, cur.ttype.layout)
            cur = pb.view(cur, cur_d, cur.ttype.layout)
        elif op == "tile" and not squared and dname in ("f16", "i8", "u8"):
            # Square at most once, and only small-range sources, so later
            # float→int casts stay on the well-defined (in-range) path.
            squared = True
            cur = pb.mul(cur, cur)

    # Optional control flow over the accumulated tile.
    feature = _pick(rng, ["none", "ifelse", "forloop", "while", "exit", "divguard"])
    acc_d = "f32" if dtype_from_name(cur_d).is_float else "i32"
    if feature == "ifelse":
        merged = pb.allocate_register(cur_d, layout=cur.ttype.layout, init=0.0)
        with pb.if_then(((bi + bj) % 2).equals(0)):
            pb.add(cur, _scalar_for(rng, dtype_from_name(cur_d)), out=merged)
        with pb.otherwise():
            pb.sub(cur, _scalar_for(rng, dtype_from_name(cur_d)), out=merged)
        cur = merged
    elif feature == "forloop":
        acc = pb.allocate_register(acc_d, layout=cur.ttype.layout, init=0.0)
        contrib = pb.cast(cur, acc_d)
        skip = int(rng.integers(4))
        varying = bool(rng.integers(2))
        extent = 2 + bi % 2 if varying else int(rng.integers(2, 5))
        with pb.for_range(extent) as i:
            if skip == 0:
                with pb.if_then(((i + bi) % 2).equals(0)):
                    pb.continue_()
            elif skip == 1:
                with pb.if_then(i > 1 + bi % 2):
                    pb.break_()
            pb.add(acc, contrib, out=acc)
        if varying:
            # Post-loop read of the loop variable: each block must observe
            # its *own* final iteration index.
            pb.add(acc, i + 1, out=acc)
        cur, cur_d = acc, acc_d
    elif feature == "while":
        acc = pb.allocate_register(acc_d, layout=cur.ttype.layout, init=1.0)
        contrib = pb.cast(cur, acc_d)
        j = pb.assign("i32", (bi + bj) % 3 + 1)
        with pb.while_loop(j > 0):
            pb.add(acc, contrib, out=acc)
            pb._stack[-1].append(AssignStmt(j, wrap(j - 1)))
        cur, cur_d = acc, acc_d
    elif feature == "exit":
        with pb.if_then(((bi * gw + bj) % 3).equals(0)):
            pb.exit()
    elif feature == "divguard":
        # Division by the block index, guarded by divergent control flow:
        # masked-off blocks must not poison the batched evaluation.
        merged = pb.allocate_register(cur_d, layout=cur.ttype.layout, init=0.0)
        with pb.if_then(bi > 0):
            safe_row = (bi * th * bi) / bi  # == bi * th only where bi > 0
            extra = pb.load_global(
                g_in, layout=layout, offset=[safe_row, bj * tw], masked=masked
            )
            extra_c = pb.cast(extra, cur_d) if cur_d != dname else extra
            pb.add(cur, extra_c, out=merged)
        with pb.otherwise():
            pb.sub(cur, _scalar_for(rng, dtype_from_name(cur_d)), out=merged)
        cur = merged

    out_final = pb.cast(cur, dname) if cur_d != dname else cur
    pb.store_global(out_final, g_out, offset=[bi * th, bj * tw], masked=masked)
    program = pb.finish()

    inputs = [(random_values_for(dtype, (rows, cols), rng), dtype)]
    if broadcast:
        inputs.append((random_values_for(dtype, (1, cols), rng), dtype))
    return GeneratedCase(
        seed, family, program, inputs=inputs, outputs=[((rows, cols), dtype)]
    )


# ---------------------------------------------------------------------------
# sub-byte reinterpretation family
# ---------------------------------------------------------------------------

_SUBBYTE = ["u1", "u2", "u3", "u4", "u5", "u6", "u7", "i4", "i6"]


def _gen_subbyte_view(seed: int, rng, family: str) -> GeneratedCase:
    gb, gw = _pick(rng, _GRIDS)
    th, tw = _pick(rng, [(4, 8), (8, 4)])
    dtype = dtype_from_name(_pick(rng, _SUBBYTE))
    nbits = dtype.nbits
    bits = int(np.lcm(nbits, 16))
    lc = bits // nbits          # sub-byte locals per thread
    u16_lc = bits // 16         # u16 locals after reinterpretation
    u16 = dtype_from_name("u16")

    layout = spatial(th, tw).local(1, lc)
    u16_layout = spatial(th, tw).local(1, u16_lc)
    rows, cols = gb * th, gw * tw * lc
    out_cols = gw * tw * u16_lc

    pb = ProgramBuilder(f"subbyte_{seed}", grid=[gb, gw])
    in_ptr = pb.param("in0", pointer(dtype))
    out_ptr = pb.param("out0", pointer(u16))
    bi, bj = pb.block_indices()
    g_in = pb.view_global(in_ptr, dtype=dtype, shape=[rows, cols])
    g_out = pb.view_global(out_ptr, dtype=u16, shape=[rows, out_cols])

    tile = pb.load_global(g_in, layout=layout, offset=[bi * th, bj * tw * lc])
    as_u16 = pb.view(tile, u16, u16_layout)
    if rng.integers(2) == 0:
        # Round-trip the bits through the sub-byte type before storing.
        back = pb.view(as_u16, dtype, layout)
        as_u16 = pb.view(back, u16, u16_layout)
    pb.store_global(as_u16, g_out, offset=[bi * th, bj * tw * u16_lc])
    program = pb.finish()

    data = random_values_for(dtype, (rows, cols), rng)
    return GeneratedCase(
        seed, family, program, inputs=[(data, dtype)], outputs=[((rows, out_cols), u16)]
    )


# ---------------------------------------------------------------------------
# shared memory family
# ---------------------------------------------------------------------------


def _gen_shared(seed: int, rng, family: str) -> GeneratedCase:
    gb, gw = _pick(rng, _GRIDS)
    th, tw = _pick(rng, _TILES)
    dname = _pick(rng, ["f16", "u8", "i32", "u4"])
    dtype = dtype_from_name(dname)
    layout = spatial(th, tw)
    rows, cols = gb * th, gw * tw
    use_copy_async = bool(rng.integers(2))
    remap = bool(rng.integers(2))

    pb = ProgramBuilder(f"shared_{seed}", grid=[gb, gw])
    in_ptr = pb.param("in0", pointer(dtype))
    out_ptr = pb.param("out0", pointer(dtype))
    bi, bj = pb.block_indices()
    g_in = pb.view_global(in_ptr, dtype=dtype, shape=[rows, cols])
    g_out = pb.view_global(out_ptr, dtype=dtype, shape=[rows, cols])

    smem = pb.allocate_shared(dtype, [th, tw])
    if use_copy_async:
        pb.copy_async(smem, g_in, src_offset=[bi * th, bj * tw])
        pb.copy_async_commit_group()
        pb.copy_async_wait_group(0)
        pb.synchronize()
    else:
        tile = pb.load_global(g_in, layout=layout, offset=[bi * th, bj * tw])
        pb.store_shared(tile, smem)
        pb.synchronize()
    # Reload under a different thread mapping: the values cross threads
    # through shared memory, which only agrees if the bit-level staging is
    # exact in both engines.
    reload_layout = column_spatial(th, tw) if remap else layout
    staged = pb.load_shared(smem, layout=reload_layout)
    pb.free_shared(smem)
    pb.store_global(staged, g_out, offset=[bi * th, bj * tw])
    program = pb.finish()

    data = random_values_for(dtype, (rows, cols), rng)
    return GeneratedCase(
        seed, family, program, inputs=[(data, dtype)], outputs=[((rows, cols), dtype)]
    )


# ---------------------------------------------------------------------------
# dot family
# ---------------------------------------------------------------------------


def _gen_dot(seed: int, rng, family: str) -> GeneratedCase:
    gb, gw = _pick(rng, [(2, 1), (2, 2), (3, 1), (4, 1)])
    m, k, n = 8, 4, 8
    a_layout = spatial(m, k)
    b_layout = spatial(k, n)
    c_layout = spatial(m, 4).local(1, 2)  # (8, 8) over 32 threads
    steps = int(rng.integers(1, 4))

    pb = ProgramBuilder(f"dot_{seed}", grid=[gb, gw])
    a_ptr = pb.param("a", pointer(float16))
    b_ptr = pb.param("b", pointer(float16))
    out_ptr = pb.param("out0", pointer(float32))
    bi, bj = pb.block_indices()
    g_a = pb.view_global(a_ptr, dtype=float16, shape=[gb * m, steps * k])
    g_b = pb.view_global(b_ptr, dtype=float16, shape=[steps * k, gw * n])
    g_out = pb.view_global(out_ptr, dtype=float32, shape=[gb * m, gw * n])

    acc = pb.allocate_register(float32, layout=c_layout, init=0.0)
    with pb.for_range(steps) as s:
        a = pb.load_global(g_a, layout=a_layout, offset=[bi * m, s * k])
        b = pb.load_global(g_b, layout=b_layout, offset=[s * k, bj * n])
        pb.dot(a, b, acc, out=acc)
    pb.store_global(acc, g_out, offset=[bi * m, bj * n])
    program = pb.finish()

    a_data = float16.quantize(rng.standard_normal((gb * m, steps * k)))
    b_data = float16.quantize(rng.standard_normal((steps * k, gw * n)))
    return GeneratedCase(
        seed,
        family,
        program,
        inputs=[(a_data, float16), (b_data, float16)],
        outputs=[((gb * m, gw * n), float32)],
    )


# ---------------------------------------------------------------------------
# reduce family
# ---------------------------------------------------------------------------


def _gen_reduce(seed: int, rng, family: str) -> GeneratedCase:
    gb, gw = _pick(rng, _GRIDS)
    th, tw = _pick(rng, [(4, 8), (8, 4)])
    dname = _pick(rng, ["f16", "f32", "i32"])
    dtype = dtype_from_name(dname)
    layout = spatial(th, tw)
    axis = int(rng.integers(2))
    rows, cols = gb * th, gw * tw

    pb = ProgramBuilder(f"reduce_{seed}", grid=[gb, gw])
    in_ptr = pb.param("in0", pointer(dtype))
    out_ptr = pb.param("out0", pointer(dtype))
    bi, bj = pb.block_indices()
    g_in = pb.view_global(in_ptr, dtype=dtype, shape=[rows, cols])
    if axis == 0:
        out_shape = (gb, cols)
        red_layout = spatial(1, tw)
        offset = [bi, bj * tw]
    else:
        out_shape = (rows, gw)
        red_layout = spatial(th, 1)
        offset = [bi * th, bj]
    g_out = pb.view_global(out_ptr, dtype=dtype, shape=list(out_shape))

    tile = pb.load_global(g_in, layout=layout, offset=[bi * th, bj * tw])
    reduced = pb.reduce_sum(tile, axis=axis, layout=red_layout)
    pb.store_global(reduced, g_out, offset=offset)
    program = pb.finish()

    data = random_values_for(dtype, (rows, cols), rng)
    if dtype.is_integer:
        data = np.clip(data, -7, 7)  # keep sums in range
    return GeneratedCase(
        seed, family, program, inputs=[(data, dtype)], outputs=[(out_shape, dtype)]
    )


# ---------------------------------------------------------------------------
# lookup family
# ---------------------------------------------------------------------------


def _gen_lookup(seed: int, rng, family: str) -> GeneratedCase:
    gb, gw = _pick(rng, [(2, 1), (2, 2), (3, 1), (3, 2)])
    th, tw = _pick(rng, [(4, 8), (8, 4)])
    code_d = dtype_from_name(_pick(rng, ["u2", "u4"]))
    lc = 16 // code_d.nbits
    layout = spatial(th, tw).local(1, lc)
    rows, cols = gb * th, gw * tw * lc
    table_len = 1 << code_d.nbits

    pb = ProgramBuilder(f"lookup_{seed}", grid=[gb, gw])
    codes_ptr = pb.param("codes", pointer(code_d))
    table_ptr = pb.param("table", pointer(float16))
    out_ptr = pb.param("out0", pointer(float16))
    bi, bj = pb.block_indices()
    g_codes = pb.view_global(codes_ptr, dtype=code_d, shape=[rows, cols])
    g_table = pb.view_global(table_ptr, dtype=float16, shape=[table_len])
    g_out = pb.view_global(out_ptr, dtype=float16, shape=[rows, cols])

    codes = pb.load_global(g_codes, layout=layout, offset=[bi * th, bj * tw * lc])
    values = pb.lookup(codes, g_table)
    pb.store_global(values, g_out, offset=[bi * th, bj * tw * lc])
    program = pb.finish()

    code_data = rng.integers(0, table_len, size=(rows, cols))
    table_data = float16.quantize(rng.standard_normal(table_len))
    return GeneratedCase(
        seed,
        family,
        program,
        inputs=[(code_data, code_d), (table_data, float16)],
        outputs=[((rows, cols), float16)],
    )


# ---------------------------------------------------------------------------
# template families: the real kernel programs
# ---------------------------------------------------------------------------

#: Weight types whose per-thread fragment is byte-aligned for the
#: (block_m=16, block_n=8, block_k=16) tile (4 weight locals per thread,
#: so any even bit width qualifies).
_TEMPLATE_WEIGHTS = ["u2", "u4", "i4", "u6", "i6", "u8", "i8"]


def _quantized_operands(rng, m, n, k, wdtype: DataType, group: int, cfg: MatmulConfig):
    """Host-side data for one template instantiation: activations, packed
    weight, scales (the exact preprocessing `ops.prepare_linear` does)."""
    scheme = QuantScheme(wdtype, group_size=group)
    a = float16.quantize(rng.standard_normal((m, k)))
    q, scales = quantize_weight(rng.standard_normal((k, n)), scheme)
    lay = matmul_layouts(cfg, wdtype)
    packed = transform_weight(q, wdtype, lay.b_warp)
    return scheme, a, packed, float16.quantize(scales)


def _gen_pipelined_matmul(seed: int, rng, family: str) -> GeneratedCase:
    """The full quantized matmul template on its software-pipelined
    ``cp.async`` path (``num_stages >= 2``): shared-memory multi-buffering,
    commit/wait groups, masked boundary tiles and sub-byte weight
    reinterpretation, all in one program."""
    cfg = MatmulConfig(16, 8, 16, num_stages=int(rng.integers(2, 4)))
    wdtype = dtype_from_name(_pick(rng, _TEMPLATE_WEIGHTS))
    m = int(_pick(rng, [8, 16, 24, 32]))
    n = int(_pick(rng, [16, 24]))
    k = int(_pick(rng, [32, 48, 64]))
    group = int(_pick(rng, [g for g in (16, 32) if k % g == 0]))
    scheme, a, packed, scales = _quantized_operands(rng, m, n, k, wdtype, group, cfg)
    program = quantized_matmul_program(m, n, k, float16, scheme, cfg)
    return GeneratedCase(
        seed,
        family,
        program,
        inputs=[(a, float16), (packed, uint8), (scales, float16)],
        outputs=[((m, n), float16)],
    )


def _gen_splitk(seed: int, rng, family: str) -> GeneratedCase:
    """The split-k pair: a partial kernel reducing k-slices into an f32
    workspace, then a reduce kernel summing the slices.  Two launches with
    a read-after-write dependency through the workspace — the stream
    execution mode must order them via hazard tracking."""
    sk = 2
    cfg = MatmulConfig(16, 8, 16, split_k=sk)
    wdtype = dtype_from_name(_pick(rng, _TEMPLATE_WEIGHTS))
    m = int(_pick(rng, [8, 16, 24]))
    n = int(_pick(rng, [16, 24]))
    k = int(_pick(rng, [32, 64]))
    group = int(_pick(rng, [g for g in (16, 32) if k % g == 0]))
    scheme, a, packed, scales = _quantized_operands(rng, m, n, k, wdtype, group, cfg)
    partial = splitk_partial_program(m, n, k, float16, scheme, cfg)
    reduce = splitk_reduce_program(m, n, sk, float16, tile_n=8)
    return GeneratedCase(
        seed,
        family,
        partial,
        inputs=[(a, float16), (packed, uint8), (scales, float16)],
        # The f32 workspace is compared too: partial sums are fully
        # deterministic, so engines must agree on them bit-for-bit.
        outputs=[((sk, m, n), float32), ((m, n), float16)],
        launches=[(partial, (0, 1, 2, 3)), (reduce, (3, 4))],
    )
