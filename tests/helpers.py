"""Shared test fixtures and hypothesis strategies."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.layout import Layout, column_local, column_spatial, local, spatial


@st.composite
def primitive_layouts(draw, rank: int = 2, max_extent: int = 4):
    """A random primitive layout of the given rank."""
    kind = draw(st.sampled_from([local, spatial, column_local, column_spatial]))
    extents = [draw(st.integers(1, max_extent)) for _ in range(rank)]
    return kind(*extents)


@st.composite
def composed_layouts(draw, rank: int = 2, max_factors: int = 3, max_extent: int = 3):
    """A random Kronecker product of 1..max_factors primitives."""
    n = draw(st.integers(1, max_factors))
    layout = draw(primitive_layouts(rank=rank, max_extent=max_extent))
    for _ in range(n - 1):
        layout = layout.compose(draw(primitive_layouts(rank=rank, max_extent=max_extent)))
    return layout


def layout_table_dict(layout: Layout) -> dict:
    """Map (thread, local) -> logical index tuple, for comparisons."""
    table = layout.table()
    return {
        (t, i): tuple(table[t, i])
        for t in range(layout.num_threads)
        for i in range(layout.local_size)
    }


def random_values_for(dtype, shape, rng: np.random.Generator):
    """Representable random values for any data type."""
    if dtype.is_integer:
        return rng.integers(int(dtype.min_value), int(dtype.max_value) + 1, size=shape)
    return dtype.quantize(rng.standard_normal(shape) * 2)
